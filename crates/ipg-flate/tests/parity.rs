//! Fast-path / slow-path parity on the zlib golden fixtures: the
//! table-driven decoder must produce byte-identical output *and* identical
//! `consumed` counts on every `golden_*.bin`, and must fail with the same
//! error on truncated and corrupted variants (error parity, not just
//! success parity).

use ipg_flate::{inflate_with_limit, inflate_with_limit_slow};

const GOLDEN: [&str; 5] =
    ["golden_0.bin", "golden_23.bin", "golden_1800.bin", "golden_2048.bin", "golden_100000.bin"];

fn golden(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing golden vector {path}: {e}"))
}

fn assert_parity(data: &[u8], what: &str) {
    let fast = inflate_with_limit(data, usize::MAX);
    let slow = inflate_with_limit_slow(data, usize::MAX);
    match (&fast, &slow) {
        (Ok((fo, fc)), Ok((so, sc))) => {
            assert_eq!(fo, so, "output differs: {what}");
            assert_eq!(fc, sc, "consumed differs: {what}");
        }
        (Err(fe), Err(se)) => assert_eq!(fe, se, "error differs: {what}"),
        _ => panic!(
            "one path succeeded, one failed: {what} (fast ok={}, slow ok={})",
            fast.is_ok(),
            slow.is_ok()
        ),
    }
}

#[test]
fn golden_fixtures_decode_identically() {
    for name in GOLDEN {
        let data = golden(name);
        let (out, consumed) = inflate_with_limit(&data, usize::MAX)
            .unwrap_or_else(|e| panic!("{name} must inflate on the fast path: {e}"));
        let (slow_out, slow_consumed) = inflate_with_limit_slow(&data, usize::MAX)
            .unwrap_or_else(|e| panic!("{name} must inflate on the slow path: {e}"));
        assert_eq!(out, slow_out, "{name}: outputs must be byte-identical");
        assert_eq!(consumed, slow_consumed, "{name}: consumed counts must match");
        assert_eq!(consumed, data.len(), "{name}: whole fixture is one stream");
    }
}

#[test]
fn truncated_fixtures_fail_identically() {
    for name in GOLDEN {
        let data = golden(name);
        // Every prefix of the small fixtures; sampled prefixes of the rest.
        let step = (data.len() / 97).max(1);
        for cut in (0..data.len()).step_by(step) {
            assert_parity(&data[..cut], &format!("{name} truncated to {cut} bytes"));
        }
    }
}

#[test]
fn corrupted_fixtures_fail_or_succeed_identically() {
    // Single-byte corruption at every offset of the small fixtures: most
    // flips produce invalid streams (bad tables, bad symbols, bad
    // distances); some still decode — both paths must agree either way.
    for name in ["golden_23.bin", "golden_1800.bin", "golden_2048.bin"] {
        let data = golden(name);
        for i in 0..data.len() {
            for flip in [0xff, 0x01, 0x80] {
                let mut bad = data.clone();
                bad[i] ^= flip;
                assert_parity(&bad, &format!("{name} byte {i} xor {flip:#x}"));
            }
        }
    }
}

#[test]
fn bit_level_corruption_parity_on_dynamic_fixture() {
    // Single-bit flips hit Huffman code boundaries more precisely than
    // byte flips; the dynamic fixture exercises table construction too.
    let data = golden("golden_2048.bin");
    for bit in 0..(8 * data.len().min(256)) {
        let mut bad = data.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        assert_parity(&bad, &format!("golden_2048.bin bit {bit}"));
    }
}

#[test]
fn limit_parity_on_golden_fixtures() {
    // TooLarge must trip identically at every interesting limit.
    for name in GOLDEN {
        let data = golden(name);
        let full = match inflate_with_limit(&data, usize::MAX) {
            Ok((out, _)) => out.len(),
            Err(_) => continue,
        };
        for limit in [0, 1, full.saturating_sub(1), full, full + 1] {
            assert_parity_with_limit(&data, limit, name);
        }
    }
}

fn assert_parity_with_limit(data: &[u8], limit: usize, what: &str) {
    let fast = inflate_with_limit(data, limit);
    let slow = inflate_with_limit_slow(data, limit);
    assert_eq!(fast, slow, "limit {limit} parity: {what}");
}
