//! Golden-vector tests: raw DEFLATE streams produced by zlib (via CPython's
//! `zlib` module at corpus-build time, `wbits=-15`) must inflate correctly.
//! These exercise the *dynamic Huffman* path, which our own encoder never
//! produces — exactly the cross-implementation check the paper's blackbox
//! integration with zlib relies on.

use ipg_flate::inflate;

fn golden(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing golden vector {path}: {e}"))
}

#[test]
fn zlib_small_text() {
    let out = inflate(&golden("golden_23.bin")).expect("valid zlib output");
    assert_eq!(out, b"hello hello hello hello");
}

#[test]
fn zlib_all_bytes_dynamic_huffman() {
    // All 256 byte values once, then LCG-generated lowercase letters: the
    // skewed, match-free tail makes zlib emit a dynamic-Huffman block
    // (BTYPE=2 — check the fixture's first byte), while the prefix keeps
    // every literal symbol in play.
    let out = inflate(&golden("golden_2048.bin")).expect("valid zlib output");
    let mut want: Vec<u8> = (0..=255u8).collect();
    let mut x: u64 = 1;
    while want.len() < 2048 {
        x = (x * 1103515245 + 12345) & 0x7fff_ffff;
        want.push(b'a' + (x % 26) as u8);
    }
    assert_eq!(golden("golden_2048.bin")[0] >> 1 & 3, 2, "fixture must be a dynamic block");
    assert_eq!(out.len(), 2048);
    assert_eq!(out, want);
}

#[test]
fn zlib_english_text() {
    let out = inflate(&golden("golden_1800.bin")).expect("valid zlib output");
    let want: Vec<u8> = b"The quick brown fox jumps over the lazy dog. "
        .iter()
        .copied()
        .cycle()
        .take(1800)
        .collect();
    assert_eq!(out, want);
}

#[test]
fn zlib_empty_stream() {
    let out = inflate(&golden("golden_0.bin")).expect("valid zlib output");
    assert!(out.is_empty());
}

#[test]
fn zlib_long_run() {
    let out = inflate(&golden("golden_100000.bin")).expect("valid zlib output");
    assert_eq!(out, vec![b'a'; 100000]);
}

#[test]
fn our_compressor_is_not_worse_than_stored_on_zlib_corpora() {
    // Sanity: our fixed-Huffman encoder compresses the compressible golden
    // plaintexts (not a ratio contest with zlib, just non-degeneracy).
    let text: Vec<u8> = b"The quick brown fox jumps over the lazy dog. "
        .iter()
        .copied()
        .cycle()
        .take(1800)
        .collect();
    let ours = ipg_flate::compress(&text);
    assert!(ours.len() < text.len() / 2);
    assert_eq!(inflate(&ours).unwrap(), text);
}
