//! Differential properties for the table-driven fast path:
//!
//! * `inflate(deflate(x)) == x` on random inputs, for both decoder paths;
//! * the two-level [`TableDecoder`] agrees symbol-for-symbol with the
//!   canonical per-bit [`Decoder`] on randomized code-length profiles,
//!   including incomplete and degenerate one-symbol codes, and the two
//!   builders accept/reject exactly the same profiles.

use ipg_flate::bits::BitReader;
use ipg_flate::huffman::{codes_from_lengths, Decoder, TableDecoder};
use proptest::prelude::*;

/// Decodes `stream` symbol-by-symbol with both decoders, asserting the
/// symbol sequences match until the first failure.
fn assert_decoders_agree(lengths: &[u8], stream: &[u8]) {
    let canonical = Decoder::from_lengths(lengths);
    let table = TableDecoder::from_lengths(lengths, |_| 0);
    match (&canonical, &table) {
        (Some(canonical), Some(table)) => {
            let mut rc = BitReader::new(stream);
            let mut rt = BitReader::new(stream);
            loop {
                let a = canonical.decode(&mut rc);
                let b = table.decode(&mut rt);
                assert_eq!(a, b, "decoders disagree (lengths {lengths:?})");
                if a.is_none() {
                    break;
                }
                assert_eq!(
                    rc.bytes_consumed(),
                    rt.bytes_consumed(),
                    "decoders consumed different amounts (lengths {lengths:?})"
                );
            }
        }
        (None, None) => {}
        _ => panic!(
            "builders disagree on profile validity: canonical={}, table={} (lengths {lengths:?})",
            canonical.is_some(),
            table.is_some()
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inflate_roundtrips_deflate(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let packed = ipg_flate::compress(&data);
        prop_assert_eq!(ipg_flate::inflate(&packed).as_deref(), Ok(&data[..]), "fast path");
        prop_assert_eq!(ipg_flate::inflate_slow(&packed).as_deref(), Ok(&data[..]), "slow path");

        let stored = ipg_flate::compress_stored(&data);
        prop_assert_eq!(ipg_flate::inflate(&stored).as_deref(), Ok(&data[..]), "fast stored");
    }

    #[test]
    fn inflate_roundtrips_repetitive_data(
        unit in prop::collection::vec(any::<u8>(), 1..8),
        repeats in 1usize..2000,
    ) {
        // Repetitive inputs drive the LZ77 matcher, exercising overlapping
        // back-reference copies at every small distance.
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * repeats).collect();
        let packed = ipg_flate::compress(&data);
        prop_assert_eq!(ipg_flate::inflate(&packed).as_deref(), Ok(&data[..]));
        prop_assert_eq!(ipg_flate::inflate_slow(&packed).as_deref(), Ok(&data[..]));
    }

    #[test]
    fn table_decoder_agrees_on_random_profiles(
        lengths in prop::collection::vec(0u8..16, 1..290),
        stream in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Most random profiles are over-subscribed: this mainly checks the
        // builders reject identically; valid draws also compare decodes.
        assert_decoders_agree(&lengths, &stream);
    }

    #[test]
    fn table_decoder_agrees_on_valid_profiles(
        split in 1usize..15,
        n_syms in 2usize..30,
        stream in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // An always-valid family: symbol 0 gets a short code, the rest
        // share the next level down (an incomplete profile whenever that
        // level is not full). depth ≥ 5 keeps 29 codes under-subscribed.
        let depth = split.clamp(5, 14) as u8;
        let mut lengths = vec![depth];
        let deep = depth + 1;
        for _ in 1..n_syms {
            lengths.push(deep);
        }
        assert_decoders_agree(&lengths, &stream);
    }
}

#[test]
fn decoders_agree_on_fixed_tables() {
    use ipg_flate::huffman::{fixed_distance_lengths, fixed_literal_lengths};
    let stream: Vec<u8> = (0..=255u8).cycle().take(512).collect();
    assert_decoders_agree(&fixed_literal_lengths(), &stream);
    assert_decoders_agree(&fixed_distance_lengths(), &stream);
}

#[test]
fn decoders_agree_on_degenerate_one_symbol_profile() {
    // zlib accepts the incomplete one-symbol distance tree real encoders
    // emit; the unassigned half of the code space must fail identically.
    assert_decoders_agree(&[1], &[0b0000_0000]);
    assert_decoders_agree(&[1], &[0b1111_1111]);
    assert_decoders_agree(&[5], &[0b0001_0110]);
}

#[test]
fn decoders_agree_on_rfc_example() {
    let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
    // Encode every symbol once, then decode the stream with both.
    let codes = codes_from_lengths(&lengths);
    let mut w = ipg_flate::bits::BitWriter::new();
    for &(c, l) in &codes {
        w.huffman_code(c, l as u32);
    }
    let stream = w.finish();
    assert_decoders_agree(&lengths, &stream);
}
