//! CRC-32 (IEEE 802.3 polynomial, as used by ZIP and PNG).

/// The reflected polynomial.
const POLY: u32 = 0xedb8_8320;

/// Computes the table at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `data` (the standard one-shot form).
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC-32.
#[derive(Clone, Debug)]
pub struct Hasher {
    state: u32,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// Starts a new computation.
    pub fn new() -> Self {
        Hasher { state: 0xffff_ffff }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// Finishes, returning the checksum.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Hasher::new();
        h.update(b"1234");
        h.update(b"56789");
        assert_eq!(h.finalize(), crc32(b"123456789"));
    }
}
