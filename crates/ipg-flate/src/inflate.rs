//! DEFLATE decoding (RFC 1951).
//!
//! Two implementations share the block/stored/header logic:
//!
//! * the **fast path** ([`inflate`], [`inflate_with_limit`]) decodes via
//!   [`TableDecoder`] — two-level tables over a 64-bit refill, packed
//!   extra-bits, pre-reserved output, and chunked back-reference copies;
//! * the **slow path** ([`inflate_slow`], [`inflate_with_limit_slow`])
//!   keeps the original per-bit canonical walk as the validation baseline
//!   (`tests/parity.rs` pins the two to byte-identical outputs, consumed
//!   counts, and errors; `benches/inflate_throughput.rs` measures the gap).

use crate::bits::BitReader;
use crate::huffman::{
    entry_extra_bits, entry_symbol, fixed_distance_lengths, fixed_literal_lengths, TableDecoder,
};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::OnceLock;

/// Errors produced by [`inflate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InflateError {
    /// The bit stream ended prematurely.
    UnexpectedEof,
    /// Reserved block type 3.
    BadBlockType,
    /// Stored block length check (`LEN != !NLEN`).
    BadStoredLength,
    /// Invalid Huffman table description.
    BadHuffmanTable,
    /// A back-reference pointed before the start of output.
    BadDistance,
    /// Invalid literal/length or distance symbol.
    BadSymbol,
    /// Output exceeded the caller's limit.
    TooLarge,
}

impl fmt::Display for InflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            InflateError::UnexpectedEof => "unexpected end of deflate stream",
            InflateError::BadBlockType => "reserved deflate block type",
            InflateError::BadStoredLength => "stored block length mismatch",
            InflateError::BadHuffmanTable => "invalid huffman table",
            InflateError::BadDistance => "back-reference before output start",
            InflateError::BadSymbol => "invalid symbol",
            InflateError::TooLarge => "output exceeds size limit",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for InflateError {}

/// Length-code base values and extra bits (codes 257..=285).
pub(crate) const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
pub(crate) const LENGTH_EXTRA: [u8; 29] =
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0];

/// Distance-code base values and extra bits (codes 0..=29).
pub(crate) const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
pub(crate) const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Order in which code-length code lengths are stored (RFC 1951 §3.2.7).
pub(crate) const CLCL_ORDER: [usize; 19] =
    [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15];

/// The litlen-table extra-bits mapping packed into [`TableDecoder`]
/// entries: length codes carry their RFC 1951 extra-bits count, literals
/// and end-of-block carry zero.
fn litlen_extra(sym: u16) -> u8 {
    match sym {
        257..=285 => LENGTH_EXTRA[(sym - 257) as usize],
        _ => 0,
    }
}

/// The distance-table extra-bits mapping.
fn dist_extra(sym: u16) -> u8 {
    if (sym as usize) < DIST_EXTRA.len() {
        DIST_EXTRA[sym as usize]
    } else {
        0
    }
}

/// The fixed-Huffman table pair, built once (the slow path rebuilds its
/// canonical decoders per block, exactly as the seed implementation did).
fn fixed_tables() -> &'static (TableDecoder, TableDecoder) {
    static TABLES: OnceLock<(TableDecoder, TableDecoder)> = OnceLock::new();
    TABLES.get_or_init(|| {
        let lit = TableDecoder::from_lengths(&fixed_literal_lengths(), litlen_extra)
            .expect("fixed table is well-formed");
        let dist = TableDecoder::from_lengths(&fixed_distance_lengths(), dist_extra)
            .expect("fixed table is well-formed");
        (lit, dist)
    })
}

/// Decompresses a complete raw DEFLATE stream.
///
/// # Errors
///
/// See [`InflateError`].
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    inflate_with_limit(data, usize::MAX).map(|(out, _)| out)
}

/// Decompresses with an output size limit; returns the output and the
/// number of *input* bytes consumed (so ZIP entries without a trailing
/// marker can locate the next header).
///
/// # Errors
///
/// See [`InflateError`]; [`InflateError::TooLarge`] when the output would
/// exceed `limit`.
pub fn inflate_with_limit(data: &[u8], limit: usize) -> Result<(Vec<u8>, usize), InflateError> {
    let mut r = BitReader::new(data);
    let mut out: Vec<u8> = Vec::with_capacity(initial_capacity(data.len(), limit));
    loop {
        let bfinal = r.bit().ok_or(InflateError::UnexpectedEof)?;
        let btype = r.bits(2).ok_or(InflateError::UnexpectedEof)?;
        match btype {
            0 => inflate_stored(&mut r, &mut out, limit)?,
            1 => {
                let (lit, dist) = fixed_tables();
                inflate_block_fast(&mut r, lit, dist, &mut out, limit)?;
            }
            2 => {
                let (lengths, hlit) = read_dynamic_lengths(&mut r)?;
                let tables = dynamic_tables(&lengths, hlit)?;
                inflate_block_fast(&mut r, &tables.0, &tables.1, &mut out, limit)?;
            }
            _ => return Err(InflateError::BadBlockType),
        }
        if bfinal == 1 {
            break;
        }
    }
    Ok((out, r.bytes_consumed().min(data.len())))
}

/// Slow-path counterpart of [`inflate`]: the frozen seed decoder (see
/// [`crate::seed`]), kept as the validation baseline and the benchmark
/// reference.
///
/// # Errors
///
/// See [`InflateError`].
pub fn inflate_slow(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    inflate_with_limit_slow(data, usize::MAX).map(|(out, _)| out)
}

/// Slow-path counterpart of [`inflate_with_limit`].
///
/// # Errors
///
/// See [`InflateError`].
pub fn inflate_with_limit_slow(
    data: &[u8],
    limit: usize,
) -> Result<(Vec<u8>, usize), InflateError> {
    crate::seed::inflate_with_limit(data, limit)
}

/// A sane starting capacity: DEFLATE rarely exceeds ~4:1 on the corpora we
/// decode, and the cap at `limit` keeps hostile tiny-input/huge-limit
/// combinations from over-allocating.
pub(crate) fn initial_capacity(input_len: usize, limit: usize) -> usize {
    limit.min(4 * input_len)
}

/// How many dynamic table pairs to keep per thread.
const TABLE_CACHE_SIZE: usize = 8;

/// One cache slot: the length profile and its `hlit` split, plus the
/// tables built from them.
type CachedTables = (Vec<u8>, usize, Rc<(TableDecoder, TableDecoder)>);

thread_local! {
    /// Recently built dynamic table pairs, keyed by the *exact* code-length
    /// profile. ZIP archives routinely hold many members compressed with
    /// identical tables (the synthetic corpus's identical-payload entries
    /// are the extreme case), so re-decoding skips the table build
    /// entirely. Keys are compared in full — a lookup can never pair a
    /// stream with the wrong tables.
    static TABLE_CACHE: RefCell<Vec<CachedTables>> = const { RefCell::new(Vec::new()) };
}

/// The table pair for a dynamic block's length profile, from cache or
/// freshly built.
fn dynamic_tables(
    lengths: &[u8],
    hlit: usize,
) -> Result<Rc<(TableDecoder, TableDecoder)>, InflateError> {
    TABLE_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(hit) =
            cache.iter().find(|(k, kh, _)| *kh == hlit && k[..] == *lengths).map(|(_, _, t)| t)
        {
            return Ok(Rc::clone(hit));
        }
        let lit = TableDecoder::from_lengths(&lengths[..hlit], litlen_extra)
            .ok_or(InflateError::BadHuffmanTable)?;
        let dist = TableDecoder::from_lengths(&lengths[hlit..], dist_extra)
            .ok_or(InflateError::BadHuffmanTable)?;
        let tables = Rc::new((lit, dist));
        if cache.len() == TABLE_CACHE_SIZE {
            cache.remove(0);
        }
        cache.push((lengths.to_vec(), hlit, Rc::clone(&tables)));
        Ok(tables)
    })
}

/// A stored block: `LEN`/`NLEN` after byte alignment, then raw bytes
/// bulk-copied into `out`.
fn inflate_stored(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    limit: usize,
) -> Result<(), InflateError> {
    r.align_byte();
    let len = r.bits(16).ok_or(InflateError::UnexpectedEof)?;
    let nlen = r.bits(16).ok_or(InflateError::UnexpectedEof)?;
    if len != !nlen & 0xffff {
        return Err(InflateError::BadStoredLength);
    }
    let len = len as usize;
    if out.len() + len > limit {
        return Err(InflateError::TooLarge);
    }
    if !r.copy_aligned_bytes(len, out) {
        return Err(InflateError::UnexpectedEof);
    }
    Ok(())
}

/// Reads the dynamic-table header (RFC 1951 §3.2.7), returning the
/// combined code-length vector and the literal/length count `hlit` (so
/// both decoder flavours can be built from one parse).
fn read_dynamic_lengths(r: &mut BitReader<'_>) -> Result<(Vec<u8>, usize), InflateError> {
    let hlit = r.bits(5).ok_or(InflateError::UnexpectedEof)? as usize + 257;
    let hdist = r.bits(5).ok_or(InflateError::UnexpectedEof)? as usize + 1;
    let hclen = r.bits(4).ok_or(InflateError::UnexpectedEof)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(InflateError::BadHuffmanTable);
    }

    let mut clcl = [0u8; 19];
    for &idx in CLCL_ORDER.iter().take(hclen) {
        clcl[idx] = r.bits(3).ok_or(InflateError::UnexpectedEof)? as u8;
    }
    // Code-length codes are at most 7 bits, so this builds a tiny
    // single-level table; it accepts exactly what `Decoder` accepts.
    let cl_dec = TableDecoder::from_lengths(&clcl, |_| 0).ok_or(InflateError::BadHuffmanTable)?;

    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        let sym = cl_dec.decode(r).ok_or(InflateError::UnexpectedEof)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let &prev = lengths.last().ok_or(InflateError::BadHuffmanTable)?;
                let n = 3 + r.bits(2).ok_or(InflateError::UnexpectedEof)?;
                lengths.extend(std::iter::repeat_n(prev, n as usize));
            }
            17 => {
                let n = 3 + r.bits(3).ok_or(InflateError::UnexpectedEof)?;
                lengths.extend(std::iter::repeat_n(0u8, n as usize));
            }
            18 => {
                let n = 11 + r.bits(7).ok_or(InflateError::UnexpectedEof)?;
                lengths.extend(std::iter::repeat_n(0u8, n as usize));
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(InflateError::BadHuffmanTable);
    }
    Ok((lengths, hlit))
}

/// Appends a length-`len` back-reference at `distance`.
///
/// Three regimes, cheapest first: matches short enough that a `memcpy`
/// call costs more than the moved bytes go byte-by-byte; distance-1 runs
/// are a `resize` (memset); everything else bulk-copies via
/// `extend_from_within`, with the careful overlapping fallback — when
/// `distance < len` the copied window doubles each round, so even long
/// small-period runs need only O(log len) copies.
#[inline]
pub(crate) fn copy_match(out: &mut Vec<u8>, distance: usize, len: usize) {
    debug_assert!(distance >= 1 && distance <= out.len());
    let start = out.len() - distance;
    if len <= 8 && distance >= len {
        for i in 0..len {
            let b = out[start + i];
            out.push(b);
        }
    } else if distance == 1 {
        let b = out[out.len() - 1];
        let n = out.len();
        out.resize(n + len, b);
    } else {
        let mut remaining = len;
        while remaining > 0 {
            let chunk = (out.len() - start).min(remaining);
            out.extend_from_within(start..start + chunk);
            remaining -= chunk;
        }
    }
}

/// The table-driven hot loop, with libdeflate's refill discipline: one
/// [`BitReader::refill`] per outer iteration guarantees 56 buffered bits
/// (input permitting), enough for `56 / max_code_len` literal codes — or
/// one literal/length code plus, after a second refill in the match arm,
/// its extra bits, the distance code, and the distance extra bits (at most
/// 5 + 15 + 13 = 33 bits). All decoding below therefore uses raw
/// (refill-free) peeks; packed entries carry the extra-bits count so the
/// `LENGTH_EXTRA`/`DIST_EXTRA` tables are never consulted. Every error
/// maps exactly as the seed decoder's block loop does.
fn inflate_block_fast(
    r: &mut BitReader<'_>,
    lit: &TableDecoder,
    dist: &TableDecoder,
    out: &mut Vec<u8>,
    limit: usize,
) -> Result<(), InflateError> {
    // How many literal code words one refill is guaranteed to cover
    // (`max(1)` keeps the degenerate empty table from dividing by zero —
    // its decode fails immediately anyway).
    let batch_max = 56 / lit.max_code_len().max(1);
    loop {
        r.refill();
        let mut batch = 0;
        loop {
            let entry = lit.decode_entry(r).ok_or(InflateError::UnexpectedEof)?;
            let sym = entry_symbol(entry);
            if sym <= 255 {
                if out.len() >= limit {
                    return Err(InflateError::TooLarge);
                }
                out.push(sym as u8);
                batch += 1;
                if batch == batch_max {
                    break;
                }
                continue;
            }
            if sym == 256 {
                return Ok(());
            }
            if sym > 285 {
                return Err(InflateError::BadSymbol);
            }
            r.refill();
            let extra = entry_extra_bits(entry);
            let len = LENGTH_BASE[(sym - 257) as usize] as usize
                + take_raw(r, extra).ok_or(InflateError::UnexpectedEof)? as usize;
            let dentry = dist.decode_entry(r).ok_or(InflateError::UnexpectedEof)?;
            let dsym = entry_symbol(dentry) as usize;
            if dsym >= 30 {
                return Err(InflateError::BadSymbol);
            }
            let dextra = entry_extra_bits(dentry);
            let distance = DIST_BASE[dsym] as usize
                + take_raw(r, dextra).ok_or(InflateError::UnexpectedEof)? as usize;
            if distance > out.len() {
                return Err(InflateError::BadDistance);
            }
            if out.len() + len > limit {
                return Err(InflateError::TooLarge);
            }
            copy_match(out, distance, len);
            break;
        }
    }
}

/// Reads `count` bits under the hot loop's refill contract (no refill
/// branch; the caller refilled within the last 48 bits).
#[inline]
fn take_raw(r: &mut BitReader<'_>, count: u32) -> Option<u32> {
    let v = r.peek_raw(count);
    if r.consume(count) {
        Some(v)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stored block of "abc" assembled by hand:
    /// BFINAL=1, BTYPE=00, align, LEN=3, NLEN=!3, bytes.
    #[test]
    fn stored_block_by_hand() {
        let data = [0x01, 0x03, 0x00, 0xfc, 0xff, b'a', b'b', b'c'];
        assert_eq!(inflate(&data).unwrap(), b"abc");
    }

    #[test]
    fn stored_length_check_detects_corruption() {
        let data = [0x01, 0x03, 0x00, 0xfd, 0xff, b'a', b'b', b'c'];
        assert_eq!(inflate(&data).unwrap_err(), InflateError::BadStoredLength);
    }

    #[test]
    fn reserved_block_type_rejected() {
        // BFINAL=1, BTYPE=11.
        let data = [0b0000_0111];
        assert_eq!(inflate(&data).unwrap_err(), InflateError::BadBlockType);
    }

    #[test]
    fn empty_input_is_eof() {
        assert_eq!(inflate(&[]).unwrap_err(), InflateError::UnexpectedEof);
    }

    #[test]
    fn fixed_block_empty_stream() {
        // BFINAL=1, BTYPE=01, end-of-block (code 256 = 7 zero bits).
        use crate::bits::BitWriter;
        let mut w = BitWriter::new();
        w.bits(1, 1);
        w.bits(1, 2);
        w.huffman_code(0, 7); // symbol 256 in the fixed table
        let data = w.finish();
        assert_eq!(inflate(&data).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn back_reference_before_start_rejected() {
        use crate::bits::BitWriter;
        use crate::huffman::codes_from_lengths;
        let codes = codes_from_lengths(&crate::huffman::fixed_literal_lengths());
        let mut w = BitWriter::new();
        w.bits(1, 1);
        w.bits(1, 2);
        // length code 257 (len 3) with distance 1 — but output is empty.
        let (c, l) = codes[257];
        w.huffman_code(c, l as u32);
        w.huffman_code(0, 5); // distance code 0 = distance 1
        let data = w.finish();
        assert_eq!(inflate(&data).unwrap_err(), InflateError::BadDistance);
    }

    #[test]
    fn output_limit_enforced() {
        let data = [0x01, 0x03, 0x00, 0xfc, 0xff, b'a', b'b', b'c'];
        assert_eq!(inflate_with_limit(&data, 2).unwrap_err(), InflateError::TooLarge);
    }

    #[test]
    fn consumed_bytes_reported() {
        let mut data = vec![0x01, 0x03, 0x00, 0xfc, 0xff, b'a', b'b', b'c'];
        data.extend_from_slice(b"TRAILING");
        let (out, consumed) = inflate_with_limit(&data, usize::MAX).unwrap();
        assert_eq!(out, b"abc");
        assert_eq!(consumed, 8);
    }

    #[test]
    fn multiple_blocks() {
        // Two stored blocks: "ab" (not final) then "c" (final).
        let data = [
            0x00, 0x02, 0x00, 0xfd, 0xff, b'a', b'b', // BFINAL=0
            0x01, 0x01, 0x00, 0xfe, 0xff, b'c', // BFINAL=1
        ];
        assert_eq!(inflate(&data).unwrap(), b"abc");
    }
}
