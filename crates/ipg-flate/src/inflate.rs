//! DEFLATE decoding (RFC 1951).

use crate::bits::BitReader;
use crate::huffman::{fixed_distance_lengths, fixed_literal_lengths, Decoder};
use std::fmt;

/// Errors produced by [`inflate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InflateError {
    /// The bit stream ended prematurely.
    UnexpectedEof,
    /// Reserved block type 3.
    BadBlockType,
    /// Stored block length check (`LEN != !NLEN`).
    BadStoredLength,
    /// Invalid Huffman table description.
    BadHuffmanTable,
    /// A back-reference pointed before the start of output.
    BadDistance,
    /// Invalid literal/length or distance symbol.
    BadSymbol,
    /// Output exceeded the caller's limit.
    TooLarge,
}

impl fmt::Display for InflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            InflateError::UnexpectedEof => "unexpected end of deflate stream",
            InflateError::BadBlockType => "reserved deflate block type",
            InflateError::BadStoredLength => "stored block length mismatch",
            InflateError::BadHuffmanTable => "invalid huffman table",
            InflateError::BadDistance => "back-reference before output start",
            InflateError::BadSymbol => "invalid symbol",
            InflateError::TooLarge => "output exceeds size limit",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for InflateError {}

/// Length-code base values and extra bits (codes 257..=285).
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] =
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0];

/// Distance-code base values and extra bits (codes 0..=29).
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Order in which code-length code lengths are stored (RFC 1951 §3.2.7).
const CLCL_ORDER: [usize; 19] = [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15];

/// Decompresses a complete raw DEFLATE stream.
///
/// # Errors
///
/// See [`InflateError`].
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    inflate_with_limit(data, usize::MAX).map(|(out, _)| out)
}

/// Decompresses with an output size limit; returns the output and the
/// number of *input* bytes consumed (so ZIP entries without a trailing
/// marker can locate the next header).
///
/// # Errors
///
/// See [`InflateError`]; [`InflateError::TooLarge`] when the output would
/// exceed `limit`.
pub fn inflate_with_limit(data: &[u8], limit: usize) -> Result<(Vec<u8>, usize), InflateError> {
    let mut r = BitReader::new(data);
    let mut out: Vec<u8> = Vec::new();
    loop {
        let bfinal = r.bit().ok_or(InflateError::UnexpectedEof)?;
        let btype = r.bits(2).ok_or(InflateError::UnexpectedEof)?;
        match btype {
            0 => {
                let len = {
                    r.align_byte();
                    let len = r.bits(16).ok_or(InflateError::UnexpectedEof)?;
                    let nlen = r.bits(16).ok_or(InflateError::UnexpectedEof)?;
                    if len != !nlen & 0xffff {
                        return Err(InflateError::BadStoredLength);
                    }
                    len as usize
                };
                if out.len() + len > limit {
                    return Err(InflateError::TooLarge);
                }
                let bytes = r.bytes(len).ok_or(InflateError::UnexpectedEof)?;
                out.extend_from_slice(&bytes);
            }
            1 => {
                let lit = Decoder::from_lengths(&fixed_literal_lengths())
                    .expect("fixed table is well-formed");
                let dist = Decoder::from_lengths(&fixed_distance_lengths())
                    .expect("fixed table is well-formed");
                inflate_block(&mut r, &lit, &dist, &mut out, limit)?;
            }
            2 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &lit, &dist, &mut out, limit)?;
            }
            _ => return Err(InflateError::BadBlockType),
        }
        if bfinal == 1 {
            break;
        }
    }
    Ok((out, r.bytes_consumed().min(data.len())))
}

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder), InflateError> {
    let hlit = r.bits(5).ok_or(InflateError::UnexpectedEof)? as usize + 257;
    let hdist = r.bits(5).ok_or(InflateError::UnexpectedEof)? as usize + 1;
    let hclen = r.bits(4).ok_or(InflateError::UnexpectedEof)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(InflateError::BadHuffmanTable);
    }

    let mut clcl = [0u8; 19];
    for &idx in CLCL_ORDER.iter().take(hclen) {
        clcl[idx] = r.bits(3).ok_or(InflateError::UnexpectedEof)? as u8;
    }
    let cl_dec = Decoder::from_lengths(&clcl).ok_or(InflateError::BadHuffmanTable)?;

    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        let sym = cl_dec.decode(r).ok_or(InflateError::UnexpectedEof)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let &prev = lengths.last().ok_or(InflateError::BadHuffmanTable)?;
                let n = 3 + r.bits(2).ok_or(InflateError::UnexpectedEof)?;
                lengths.extend(std::iter::repeat_n(prev, n as usize));
            }
            17 => {
                let n = 3 + r.bits(3).ok_or(InflateError::UnexpectedEof)?;
                lengths.extend(std::iter::repeat_n(0u8, n as usize));
            }
            18 => {
                let n = 11 + r.bits(7).ok_or(InflateError::UnexpectedEof)?;
                lengths.extend(std::iter::repeat_n(0u8, n as usize));
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(InflateError::BadHuffmanTable);
    }
    let lit = Decoder::from_lengths(&lengths[..hlit]).ok_or(InflateError::BadHuffmanTable)?;
    let dist = Decoder::from_lengths(&lengths[hlit..]).ok_or(InflateError::BadHuffmanTable)?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut BitReader<'_>,
    lit: &Decoder,
    dist: &Decoder,
    out: &mut Vec<u8>,
    limit: usize,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r).ok_or(InflateError::UnexpectedEof)?;
        match sym {
            0..=255 => {
                if out.len() >= limit {
                    return Err(InflateError::TooLarge);
                }
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let idx = (sym - 257) as usize;
                let extra = LENGTH_EXTRA[idx] as u32;
                let len = LENGTH_BASE[idx] as usize
                    + r.bits(extra).ok_or(InflateError::UnexpectedEof)? as usize;
                let dsym = dist.decode(r).ok_or(InflateError::UnexpectedEof)? as usize;
                if dsym >= 30 {
                    return Err(InflateError::BadSymbol);
                }
                let dextra = DIST_EXTRA[dsym] as u32;
                let distance = DIST_BASE[dsym] as usize
                    + r.bits(dextra).ok_or(InflateError::UnexpectedEof)? as usize;
                if distance > out.len() {
                    return Err(InflateError::BadDistance);
                }
                if out.len() + len > limit {
                    return Err(InflateError::TooLarge);
                }
                let start = out.len() - distance;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stored block of "abc" assembled by hand:
    /// BFINAL=1, BTYPE=00, align, LEN=3, NLEN=!3, bytes.
    #[test]
    fn stored_block_by_hand() {
        let data = [0x01, 0x03, 0x00, 0xfc, 0xff, b'a', b'b', b'c'];
        assert_eq!(inflate(&data).unwrap(), b"abc");
    }

    #[test]
    fn stored_length_check_detects_corruption() {
        let data = [0x01, 0x03, 0x00, 0xfd, 0xff, b'a', b'b', b'c'];
        assert_eq!(inflate(&data).unwrap_err(), InflateError::BadStoredLength);
    }

    #[test]
    fn reserved_block_type_rejected() {
        // BFINAL=1, BTYPE=11.
        let data = [0b0000_0111];
        assert_eq!(inflate(&data).unwrap_err(), InflateError::BadBlockType);
    }

    #[test]
    fn empty_input_is_eof() {
        assert_eq!(inflate(&[]).unwrap_err(), InflateError::UnexpectedEof);
    }

    #[test]
    fn fixed_block_empty_stream() {
        // BFINAL=1, BTYPE=01, end-of-block (code 256 = 7 zero bits).
        use crate::bits::BitWriter;
        let mut w = BitWriter::new();
        w.bits(1, 1);
        w.bits(1, 2);
        w.huffman_code(0, 7); // symbol 256 in the fixed table
        let data = w.finish();
        assert_eq!(inflate(&data).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn back_reference_before_start_rejected() {
        use crate::bits::BitWriter;
        use crate::huffman::codes_from_lengths;
        let codes = codes_from_lengths(&crate::huffman::fixed_literal_lengths());
        let mut w = BitWriter::new();
        w.bits(1, 1);
        w.bits(1, 2);
        // length code 257 (len 3) with distance 1 — but output is empty.
        let (c, l) = codes[257];
        w.huffman_code(c, l as u32);
        w.huffman_code(0, 5); // distance code 0 = distance 1
        let data = w.finish();
        assert_eq!(inflate(&data).unwrap_err(), InflateError::BadDistance);
    }

    #[test]
    fn output_limit_enforced() {
        let data = [0x01, 0x03, 0x00, 0xfc, 0xff, b'a', b'b', b'c'];
        assert_eq!(inflate_with_limit(&data, 2).unwrap_err(), InflateError::TooLarge);
    }

    #[test]
    fn consumed_bytes_reported() {
        let mut data = vec![0x01, 0x03, 0x00, 0xfc, 0xff, b'a', b'b', b'c'];
        data.extend_from_slice(b"TRAILING");
        let (out, consumed) = inflate_with_limit(&data, usize::MAX).unwrap();
        assert_eq!(out, b"abc");
        assert_eq!(consumed, 8);
    }

    #[test]
    fn multiple_blocks() {
        // Two stored blocks: "ab" (not final) then "c" (final).
        let data = [
            0x00, 0x02, 0x00, 0xfd, 0xff, b'a', b'b', // BFINAL=0
            0x01, 0x01, 0x00, 0xfe, 0xff, b'c', // BFINAL=1
        ];
        assert_eq!(inflate(&data).unwrap(), b"abc");
    }
}
