//! A from-scratch DEFLATE (RFC 1951) codec.
//!
//! This crate is the offline substitute for zlib in the ZIP case study of
//! the paper (§3.4, §7): the IPG ZIP grammar hands each archive entry's
//! compressed bytes — confined by an interval — to a *blackbox parser*,
//! which here is [`fn@inflate`].
//!
//! Decoding supports all three DEFLATE block types (stored, fixed
//! Huffman, dynamic Huffman). The default path is table-driven
//! (libdeflate-style two-level Huffman tables over a 64-bit bit-buffer
//! refill); the original per-bit canonical decoder survives as
//! [`inflate_slow`] for validation and benchmarking. Encoding supports
//! stored blocks and fixed Huffman with a greedy hash-chain LZ77 matcher —
//! enough to produce realistic compressed archives for the synthetic
//! corpus.
//!
//! CRC-32 is provided in [`mod@crc32`] since both the corpus generator and
//! the `unzip` baselines need it for ZIP.

pub mod bits;
pub mod crc32;
pub mod deflate;
pub mod huffman;
pub mod inflate;
mod seed;

#[doc(inline)]
pub use crc32::crc32;
pub use deflate::{compress, compress_stored};
pub use inflate::{
    inflate, inflate_slow, inflate_with_limit, inflate_with_limit_slow, InflateError,
};

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let stored = compress_stored(data);
        assert_eq!(inflate(&stored).unwrap(), data, "stored roundtrip");
        let fixed = compress(data);
        assert_eq!(inflate(&fixed).unwrap(), data, "fixed-huffman roundtrip");
    }

    #[test]
    fn roundtrip_small_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello world");
        roundtrip(&[0u8; 1000]);
    }

    #[test]
    fn roundtrip_repetitive_data_compresses() {
        let data: Vec<u8> = b"abcabcabcabc".iter().cycle().take(10_000).copied().collect();
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 2, "LZ77 should bite: {}", packed.len());
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn roundtrip_binaryish_data() {
        let data: Vec<u8> = (0..40_000u32).map(|i| (i.wrapping_mul(2_654_435_761)) as u8).collect();
        roundtrip(&data);
    }
}
