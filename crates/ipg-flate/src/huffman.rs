//! Canonical Huffman codes as used by DEFLATE (RFC 1951 §3.2.2).

use crate::bits::BitReader;

/// A canonical Huffman decoder built from code lengths.
#[derive(Clone, Debug)]
pub struct Decoder {
    /// `first_code[len]` — the first canonical code of each length.
    first_code: [u32; 16],
    /// `first_index[len]` — index into `symbols` of that code.
    first_index: [u32; 16],
    /// `count[len]` — number of codes of each length.
    count: [u32; 16],
    /// Symbols ordered by (length, symbol).
    symbols: Vec<u16>,
}

impl Decoder {
    /// Builds a decoder from per-symbol code lengths (0 = unused).
    ///
    /// Returns `None` for over-subscribed length profiles (more codes of
    /// some length than the prefix space allows). Incomplete codes are
    /// accepted, matching zlib's behaviour for the degenerate one-symbol
    /// distance trees real encoders emit.
    pub fn from_lengths(lengths: &[u8]) -> Option<Decoder> {
        let mut count = [0u32; 16];
        for &l in lengths {
            if l > 15 {
                return None;
            }
            count[l as usize] += 1;
        }
        count[0] = 0;

        // Over-subscription check.
        let mut available = 1u32;
        for &n in &count[1..16] {
            available = available.checked_mul(2)?;
            if n > available {
                return None;
            }
            available -= n;
        }

        let mut first_code = [0u32; 16];
        let mut first_index = [0u32; 16];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..16 {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }

        let mut symbols = vec![0u16; index as usize];
        let mut next = first_index;
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[next[l as usize] as usize] = sym as u16;
                next[l as usize] += 1;
            }
        }
        Some(Decoder { first_code, first_index, count, symbols })
    }

    /// Decodes one symbol from the bit stream (`None` on exhausted input
    /// or invalid code).
    pub fn decode(&self, r: &mut BitReader<'_>) -> Option<u16> {
        let mut code = 0u32;
        for len in 1..16usize {
            code = (code << 1) | r.bit()?;
            let rel = code.wrapping_sub(self.first_code[len]);
            if rel < self.count[len] {
                return Some(self.symbols[(self.first_index[len] + rel) as usize]);
            }
        }
        None
    }
}

/// The canonical (code, length) for each symbol — the encoder-side view.
pub fn codes_from_lengths(lengths: &[u8]) -> Vec<(u32, u8)> {
    let mut count = [0u32; 16];
    for &l in lengths {
        count[l as usize] += 1;
    }
    count[0] = 0;
    let mut next_code = [0u32; 16];
    let mut code = 0u32;
    for len in 1..16 {
        code = (code + count[len - 1]) << 1;
        next_code[len] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                (0, 0)
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                (c, l)
            }
        })
        .collect()
}

/// The fixed literal/length code lengths of RFC 1951 §3.2.6.
pub fn fixed_literal_lengths() -> Vec<u8> {
    let mut lengths = vec![8u8; 288];
    for l in lengths.iter_mut().take(256).skip(144) {
        *l = 9;
    }
    for l in lengths.iter_mut().take(280).skip(256) {
        *l = 7;
    }
    lengths
}

/// The fixed distance code lengths (all 5 bits).
pub fn fixed_distance_lengths() -> Vec<u8> {
    vec![5u8; 30]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;

    #[test]
    fn canonical_assignment_matches_rfc_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) for A..H.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = codes_from_lengths(&lengths);
        let expected = [
            (0b010, 3),
            (0b011, 3),
            (0b100, 3),
            (0b101, 3),
            (0b110, 3),
            (0b00, 2),
            (0b1110, 4),
            (0b1111, 4),
        ];
        for (i, &(c, l)) in expected.iter().enumerate() {
            assert_eq!(codes[i], (c, l as u8), "symbol {i}");
        }
    }

    #[test]
    fn decoder_roundtrips_all_symbols() {
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let codes = codes_from_lengths(&lengths);
        for sym in 0..8u16 {
            let (c, l) = codes[sym as usize];
            let mut w = BitWriter::new();
            w.huffman_code(c, l as u32);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(dec.decode(&mut r), Some(sym));
        }
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        // Three codes of length 1 cannot exist.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_none());
        assert!(Decoder::from_lengths(&[16]).is_none());
    }

    #[test]
    fn incomplete_code_accepted() {
        // A single 1-bit code (zlib accepts this for distance trees).
        let dec = Decoder::from_lengths(&[1]).unwrap();
        let mut w = BitWriter::new();
        w.huffman_code(0, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r), Some(0));
    }

    #[test]
    fn fixed_tables_have_rfc_shape() {
        let lit = fixed_literal_lengths();
        assert_eq!(lit.len(), 288);
        assert_eq!(lit[0], 8);
        assert_eq!(lit[144], 9);
        assert_eq!(lit[255], 9);
        assert_eq!(lit[256], 7);
        assert_eq!(lit[279], 7);
        assert_eq!(lit[280], 8);
        assert_eq!(fixed_distance_lengths(), vec![5u8; 30]);
    }

    #[test]
    fn decode_fails_on_truncated_input() {
        let dec = Decoder::from_lengths(&[2, 2, 2, 2]).unwrap();
        let mut r = BitReader::new(&[]);
        assert_eq!(dec.decode(&mut r), None);
    }
}
