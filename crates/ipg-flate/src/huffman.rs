//! Canonical Huffman codes as used by DEFLATE (RFC 1951 §3.2.2).
//!
//! Two decoders are provided: [`Decoder`], the per-bit canonical walk kept
//! as the slow/validation path, and [`TableDecoder`], a libdeflate-style
//! table decoder (a root table sized to the profile's longest code, capped
//! at 11 bits, plus overflow subtables for deeper codes) used by the fast
//! inflate path. Both are built from the same validated length profiles
//! and must agree symbol-for-symbol; `tests/differential.rs` checks this
//! on randomized profiles.

use crate::bits::BitReader;

/// A canonical Huffman decoder built from code lengths.
#[derive(Clone, Debug)]
pub struct Decoder {
    /// `first_code[len]` — the first canonical code of each length.
    first_code: [u32; 16],
    /// `first_index[len]` — index into `symbols` of that code.
    first_index: [u32; 16],
    /// `count[len]` — number of codes of each length.
    count: [u32; 16],
    /// Symbols ordered by (length, symbol).
    symbols: Vec<u16>,
}

impl Decoder {
    /// Builds a decoder from per-symbol code lengths (0 = unused).
    ///
    /// Returns `None` for over-subscribed length profiles (more codes of
    /// some length than the prefix space allows). Incomplete codes are
    /// accepted, matching zlib's behaviour for the degenerate one-symbol
    /// distance trees real encoders emit.
    pub fn from_lengths(lengths: &[u8]) -> Option<Decoder> {
        let count = validated_length_counts(lengths)?;

        let mut first_code = [0u32; 16];
        let mut first_index = [0u32; 16];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..16 {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }

        let mut symbols = vec![0u16; index as usize];
        let mut next = first_index;
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[next[l as usize] as usize] = sym as u16;
                next[l as usize] += 1;
            }
        }
        Some(Decoder { first_code, first_index, count, symbols })
    }

    /// Decodes one symbol from the bit stream (`None` on exhausted input
    /// or invalid code).
    pub fn decode(&self, r: &mut BitReader<'_>) -> Option<u16> {
        let mut code = 0u32;
        for len in 1..16usize {
            code = (code << 1) | r.bit()?;
            let rel = code.wrapping_sub(self.first_code[len]);
            if rel < self.count[len] {
                return Some(self.symbols[(self.first_index[len] + rel) as usize]);
            }
        }
        None
    }
}

/// Per-length code counts, validated: no length above 15, no
/// over-subscribed prefix space. Incomplete codes are accepted (see
/// [`Decoder::from_lengths`]). Shared by both decoder builders so they
/// accept exactly the same profiles.
fn validated_length_counts(lengths: &[u8]) -> Option<[u32; 16]> {
    let mut count = [0u32; 16];
    for &l in lengths {
        if l > 15 {
            return None;
        }
        count[l as usize] += 1;
    }
    count[0] = 0;

    // Over-subscription check.
    let mut available = 1u32;
    for &n in &count[1..16] {
        available = available.checked_mul(2)?;
        if n > available {
            return None;
        }
        available -= n;
    }
    Some(count)
}

/// Reverses the low `len` bits of `code` (DEFLATE stores Huffman codes
/// MSB-first within the LSB-first bit stream).
#[inline]
fn reverse_bits(code: u32, len: u32) -> u32 {
    code.reverse_bits() >> (32 - len)
}

/// A packed decode table: a root table indexed by the next `root_bits`
/// input bits, with codes longer than that spilling into per-prefix
/// subtables appended after the root. `root_bits` adapts to the profile
/// (the longest code, capped at [`TableDecoder::MAX_ROOT_BITS`]), so
/// typical dynamic blocks decode every symbol with a *single* table load
/// and no subtable branch.
///
/// Entry layout (`u32`):
///
/// * bits 0–4 — bits to consume: the full code length for symbol entries,
///   the subtable's index width for pointer entries. `0` marks an entry no
///   code maps to (invalid / incomplete-code hole).
/// * bits 5–8 — the symbol's DEFLATE *extra bits* count, pre-resolved at
///   build time so the hot loop never touches the length/distance
///   extra-bits tables.
/// * bit 15 — set on root entries that point at a subtable.
/// * bits 16–31 — the decoded symbol, or the subtable's start index for
///   pointer entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableDecoder {
    table: Vec<u32>,
    root_bits: u32,
    max_len: u32,
}

const ENTRY_CONSUME_MASK: u32 = 0x1f;
const ENTRY_EXTRA_SHIFT: u32 = 5;
const ENTRY_EXTRA_MASK: u32 = 0xf;
const ENTRY_SUBTABLE: u32 = 1 << 15;

#[inline]
fn pack_entry(sym: u16, consume: u32, extra: u8) -> u32 {
    debug_assert!((1..=15).contains(&consume));
    debug_assert!(extra <= 13);
    ((sym as u32) << 16) | ((extra as u32) << ENTRY_EXTRA_SHIFT) | consume
}

impl TableDecoder {
    /// Upper bound on the root index width. 11 bits keeps the root table
    /// at 8 KiB while covering the longest codes zlib emits in practice,
    /// so subtables only appear for unusually deep dynamic profiles.
    pub const MAX_ROOT_BITS: u32 = 11;

    /// Builds a table decoder from per-symbol code lengths, accepting and
    /// rejecting exactly the profiles [`Decoder::from_lengths`] does.
    /// `extra_bits(sym)` supplies the pre-resolved extra-bits count packed
    /// into each entry (zero for tables without extra bits).
    ///
    /// The build is allocation-lean — one table allocation, canonical
    /// codes computed in-place from the length histogram — because dynamic
    /// blocks pay it per block.
    pub fn from_lengths(lengths: &[u8], extra_bits: impl Fn(u16) -> u8) -> Option<TableDecoder> {
        let count = validated_length_counts(lengths)?;
        let max_len = (1..16).rev().find(|&l| count[l] > 0).unwrap_or(0) as u32;
        let root_bits = max_len.clamp(1, Self::MAX_ROOT_BITS);
        let root_size = 1usize << root_bits;

        let mut next_code = [0u32; 16];
        let mut code = 0u32;
        for len in 1..16 {
            code = (code + count[len - 1]) << 1;
            next_code[len] = code;
        }

        if max_len <= root_bits {
            // Single-level table (the common case): one pass, replicating
            // each code across all root indices sharing its low bits.
            let mut table = vec![0u32; root_size];
            let mut nc = next_code;
            for (sym, &l) in lengths.iter().enumerate() {
                if l == 0 {
                    continue;
                }
                let len = l as u32;
                let c = nc[l as usize];
                nc[l as usize] += 1;
                let entry = pack_entry(sym as u16, len, extra_bits(sym as u16));
                let mut i = reverse_bits(c, len) as usize;
                let step = 1usize << len;
                while i < root_size {
                    table[i] = entry;
                    i += step;
                }
            }
            return Some(TableDecoder { table, root_bits, max_len });
        }

        // Deep profiles: size every subtable first (one per root prefix in
        // use, sized for the longest code sharing that prefix), then fill
        // into a single allocation.
        let mut sub_bits_of = vec![0u8; root_size];
        let mut nc = next_code;
        for &l in lengths {
            if l == 0 {
                continue;
            }
            let len = l as u32;
            let c = nc[l as usize];
            nc[l as usize] += 1;
            if len > root_bits {
                let prefix = (reverse_bits(c, len) as usize) & (root_size - 1);
                sub_bits_of[prefix] = sub_bits_of[prefix].max((len - root_bits) as u8);
            }
        }
        let total: usize = sub_bits_of.iter().map(|&b| if b > 0 { 1usize << b } else { 0 }).sum();
        let mut table = vec![0u32; root_size + total];
        let mut offset = root_size;
        for (prefix, &sub_bits) in sub_bits_of.iter().enumerate() {
            if sub_bits > 0 {
                debug_assert!(offset < (1 << 16), "deflate tables stay well under 2^16 entries");
                table[prefix] = ((offset as u32) << 16) | ENTRY_SUBTABLE | sub_bits as u32;
                offset += 1 << sub_bits;
            }
        }
        let mut nc = next_code;
        for (sym, &l) in lengths.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let len = l as u32;
            let c = nc[l as usize];
            nc[l as usize] += 1;
            let entry = pack_entry(sym as u16, len, extra_bits(sym as u16));
            let rev = reverse_bits(c, len);
            if len <= root_bits {
                let mut i = rev as usize;
                let step = 1usize << len;
                while i < root_size {
                    table[i] = entry;
                    i += step;
                }
            } else {
                let prefix = (rev as usize) & (root_size - 1);
                let sub_bits = sub_bits_of[prefix] as u32;
                let sub_offset = (table[prefix] >> 16) as usize;
                let mut i = (rev >> root_bits) as usize;
                let step = 1usize << (len - root_bits);
                while i < (1 << sub_bits) {
                    table[sub_offset + i] = entry;
                    i += step;
                }
            }
        }

        Some(TableDecoder { table, root_bits, max_len })
    }

    /// Decodes one code word, returning its packed entry with the code's
    /// bits consumed; `None` on exhausted input or a code no symbol maps
    /// to. Extract fields with [`entry_symbol`] and [`entry_extra_bits`].
    ///
    /// Refill contract: the caller must [`BitReader::refill`] beforehand
    /// (code words are at most 15 bits); this keeps the refill branch out
    /// of the decode itself so the hot loop refills once per iteration.
    #[inline]
    pub fn decode_entry(&self, r: &mut BitReader<'_>) -> Option<u32> {
        let root_bits = self.root_bits;
        let root = &self.table[..1usize << root_bits];
        // `idx & (len - 1)` is never ≥ len, so the indexing below is
        // bounds-check-free in the common single-level case.
        let mut entry = root[(r.peek_raw(root_bits) as usize) & (root.len() - 1)];
        if entry & ENTRY_SUBTABLE != 0 {
            let sub_bits = entry & ENTRY_CONSUME_MASK;
            let offset = (entry >> 16) as usize;
            let idx = (r.peek_raw(root_bits + sub_bits) >> root_bits) as usize;
            entry = self.table[offset + idx];
        }
        let consume = entry & ENTRY_CONSUME_MASK;
        if consume == 0 || !r.consume(consume) {
            return None;
        }
        Some(entry)
    }

    /// The longest code in the table (0 for an empty table); callers use
    /// it to bound how many code words one refill can cover.
    #[inline]
    pub fn max_code_len(&self) -> u32 {
        self.max_len
    }

    /// Decodes one symbol (the table-driven equivalent of
    /// [`Decoder::decode`]); refills internally.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Option<u16> {
        r.refill();
        self.decode_entry(r).map(entry_symbol)
    }
}

/// The symbol of a packed entry returned by [`TableDecoder::decode_entry`].
#[inline]
pub fn entry_symbol(entry: u32) -> u16 {
    (entry >> 16) as u16
}

/// The pre-resolved extra-bits count of a packed entry.
#[inline]
pub fn entry_extra_bits(entry: u32) -> u32 {
    (entry >> ENTRY_EXTRA_SHIFT) & ENTRY_EXTRA_MASK
}

/// The canonical (code, length) for each symbol — the encoder-side view.
pub fn codes_from_lengths(lengths: &[u8]) -> Vec<(u32, u8)> {
    let mut count = [0u32; 16];
    for &l in lengths {
        count[l as usize] += 1;
    }
    count[0] = 0;
    let mut next_code = [0u32; 16];
    let mut code = 0u32;
    for len in 1..16 {
        code = (code + count[len - 1]) << 1;
        next_code[len] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                (0, 0)
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                (c, l)
            }
        })
        .collect()
}

/// The fixed literal/length code lengths of RFC 1951 §3.2.6.
pub fn fixed_literal_lengths() -> Vec<u8> {
    let mut lengths = vec![8u8; 288];
    for l in lengths.iter_mut().take(256).skip(144) {
        *l = 9;
    }
    for l in lengths.iter_mut().take(280).skip(256) {
        *l = 7;
    }
    lengths
}

/// The fixed distance code lengths (all 5 bits).
pub fn fixed_distance_lengths() -> Vec<u8> {
    vec![5u8; 30]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;

    #[test]
    fn canonical_assignment_matches_rfc_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) for A..H.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = codes_from_lengths(&lengths);
        let expected = [
            (0b010, 3),
            (0b011, 3),
            (0b100, 3),
            (0b101, 3),
            (0b110, 3),
            (0b00, 2),
            (0b1110, 4),
            (0b1111, 4),
        ];
        for (i, &(c, l)) in expected.iter().enumerate() {
            assert_eq!(codes[i], (c, l as u8), "symbol {i}");
        }
    }

    #[test]
    fn decoder_roundtrips_all_symbols() {
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let codes = codes_from_lengths(&lengths);
        for sym in 0..8u16 {
            let (c, l) = codes[sym as usize];
            let mut w = BitWriter::new();
            w.huffman_code(c, l as u32);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(dec.decode(&mut r), Some(sym));
        }
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        // Three codes of length 1 cannot exist.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_none());
        assert!(Decoder::from_lengths(&[16]).is_none());
    }

    #[test]
    fn incomplete_code_accepted() {
        // A single 1-bit code (zlib accepts this for distance trees).
        let dec = Decoder::from_lengths(&[1]).unwrap();
        let mut w = BitWriter::new();
        w.huffman_code(0, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r), Some(0));
    }

    #[test]
    fn fixed_tables_have_rfc_shape() {
        let lit = fixed_literal_lengths();
        assert_eq!(lit.len(), 288);
        assert_eq!(lit[0], 8);
        assert_eq!(lit[144], 9);
        assert_eq!(lit[255], 9);
        assert_eq!(lit[256], 7);
        assert_eq!(lit[279], 7);
        assert_eq!(lit[280], 8);
        assert_eq!(fixed_distance_lengths(), vec![5u8; 30]);
    }

    #[test]
    fn decode_fails_on_truncated_input() {
        let dec = Decoder::from_lengths(&[2, 2, 2, 2]).unwrap();
        let mut r = BitReader::new(&[]);
        assert_eq!(dec.decode(&mut r), None);
    }

    fn table(lengths: &[u8]) -> Option<TableDecoder> {
        TableDecoder::from_lengths(lengths, |_| 0)
    }

    #[test]
    fn table_decoder_roundtrips_all_symbols() {
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let dec = table(&lengths).unwrap();
        let codes = codes_from_lengths(&lengths);
        for sym in 0..8u16 {
            let (c, l) = codes[sym as usize];
            let mut w = BitWriter::new();
            w.huffman_code(c, l as u32);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(dec.decode(&mut r), Some(sym));
        }
    }

    #[test]
    fn table_decoder_uses_subtables_for_long_codes() {
        // A skewed profile with codes longer than the 9-bit root.
        let mut lengths = vec![1u8];
        for l in 2..=12u8 {
            lengths.push(l);
        }
        lengths.push(12); // complete the code space
        let dec = table(&lengths).unwrap();
        let codes = codes_from_lengths(&lengths);
        for (sym, &(c, l)) in codes.iter().enumerate() {
            let mut w = BitWriter::new();
            w.huffman_code(c, l as u32);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(dec.decode(&mut r), Some(sym as u16), "symbol {sym} (len {l})");
        }
    }

    #[test]
    fn table_decoder_rejects_what_canonical_rejects() {
        assert!(table(&[1, 1, 1]).is_none());
        assert!(table(&[16]).is_none());
        // …and accepts the degenerate one-symbol code, like zlib.
        let dec = table(&[1]).unwrap();
        let mut r = BitReader::new(&[0b0]);
        assert_eq!(dec.decode(&mut r), Some(0));
        // The unassigned half of the code space is an invalid code.
        let mut r = BitReader::new(&[0b1]);
        assert_eq!(dec.decode(&mut r), None);
    }

    #[test]
    fn table_entries_carry_extra_bits() {
        let dec = TableDecoder::from_lengths(&[2, 2, 2, 2], |sym| sym as u8).unwrap();
        let codes = codes_from_lengths(&[2, 2, 2, 2]);
        for sym in 0..4u16 {
            let (c, l) = codes[sym as usize];
            let mut w = BitWriter::new();
            w.huffman_code(c, l as u32);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            r.refill();
            let entry = dec.decode_entry(&mut r).unwrap();
            assert_eq!(entry_symbol(entry), sym);
            assert_eq!(entry_extra_bits(entry), sym as u32);
        }
    }
}
