//! LSB-first bit I/O as DEFLATE requires.

/// Reads bits least-significant-bit first from a byte slice.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index.
    pos: usize,
    /// Bit buffer (bits not yet consumed, LSB first).
    buf: u64,
    /// Number of valid bits in `buf`.
    n: u32,
}

impl<'a> BitReader<'a> {
    /// Starts reading at the beginning of `data`.
    #[inline]
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, buf: 0, n: 0 }
    }

    /// Tops the buffer up to at least 56 valid bits (fewer near end of
    /// input). One unaligned 64-bit load covers the common case, so several
    /// Huffman code words can be decoded per refill; bits above `n` stay
    /// zero so [`BitReader::peek`] pads truncated streams with zeros.
    ///
    /// The inflate hot loop calls this once per iteration and then decodes
    /// with [`BitReader::peek_raw`]: 56 bits cover a worst-case
    /// literal/length code, its extra bits, a distance code, and its extra
    /// bits without intermediate refill branches.
    #[inline]
    pub fn refill(&mut self) {
        if self.pos + 8 <= self.data.len() {
            let chunk = u64::from_le_bytes(
                self.data[self.pos..self.pos + 8].try_into().expect("8-byte chunk"),
            );
            // Whole bytes that still fit: with n ≤ 63 this is 0..=7, so the
            // mask shift below never reaches 64.
            let take = (63 - self.n) >> 3;
            self.buf |= (chunk & ((1u64 << (take * 8)) - 1)) << self.n;
            self.pos += take as usize;
            self.n += take * 8;
        } else {
            while self.n <= 56 && self.pos < self.data.len() {
                self.buf |= (self.data[self.pos] as u64) << self.n;
                self.pos += 1;
                self.n += 8;
            }
        }
    }

    /// Returns the next `count` bits (0 ≤ count ≤ 32) *without* consuming
    /// them, refilling as needed. Past end of input the result is
    /// zero-padded; pair with [`BitReader::consume`], which checks that the
    /// consumed bits actually existed.
    #[inline]
    pub fn peek(&mut self, count: u32) -> u32 {
        debug_assert!(count <= 32);
        if self.n < count {
            self.refill();
        }
        self.peek_raw(count)
    }

    /// [`BitReader::peek`] without the refill check: the caller must have
    /// called [`BitReader::refill`] recently enough that `count` bits are
    /// buffered (or the input is exhausted, in which case the padding zeros
    /// are harmless because [`BitReader::consume`] will refuse them).
    #[inline]
    pub fn peek_raw(&self, count: u32) -> u32 {
        debug_assert!(count <= 32);
        (self.buf & ((1u64 << count) - 1)) as u32
    }

    /// Consumes `count` previously peeked bits; `false` (consuming nothing)
    /// if fewer than `count` bits of input remain.
    #[inline]
    pub fn consume(&mut self, count: u32) -> bool {
        if count > self.n {
            return false;
        }
        self.buf >>= count;
        self.n -= count;
        true
    }

    /// Reads `count` bits (0 ≤ count ≤ 32); `None` at end of input.
    #[inline]
    pub fn bits(&mut self, count: u32) -> Option<u32> {
        let v = self.peek(count);
        if self.consume(count) {
            Some(v)
        } else {
            None
        }
    }

    /// Reads one bit.
    #[inline]
    pub fn bit(&mut self) -> Option<u32> {
        self.bits(1)
    }

    /// Discards buffered bits to the next byte boundary.
    #[inline]
    pub fn align_byte(&mut self) {
        let drop = self.n % 8;
        self.buf >>= drop;
        self.n -= drop;
    }

    /// Reads `count` whole bytes after aligning (used by stored blocks).
    pub fn bytes(&mut self, count: usize) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(count);
        if self.copy_aligned_bytes(count, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// After aligning, appends `count` input bytes to `out` with a bulk
    /// copy; `false` if the input ends first (some bytes may already have
    /// been appended).
    pub fn copy_aligned_bytes(&mut self, count: usize, out: &mut Vec<u8>) -> bool {
        self.align_byte();
        let mut remaining = count;
        // Drain whole bytes still sitting in the bit buffer.
        while remaining > 0 && self.n >= 8 {
            out.push((self.buf & 0xff) as u8);
            self.buf >>= 8;
            self.n -= 8;
            remaining -= 1;
        }
        if remaining > self.data.len() - self.pos {
            return false;
        }
        out.extend_from_slice(&self.data[self.pos..self.pos + remaining]);
        self.pos += remaining;
        true
    }

    /// Number of whole input bytes consumed so far (counting buffered but
    /// unread bits as consumed input).
    #[inline]
    pub fn bytes_consumed(&self) -> usize {
        self.pos - (self.n / 8) as usize
    }
}

/// Writes bits least-significant-bit first.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    buf: u64,
    n: u32,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `count` bits of `v`.
    pub fn bits(&mut self, v: u32, count: u32) {
        debug_assert!(count <= 32);
        self.buf |= (v as u64 & ((1u64 << count) - 1)) << self.n;
        self.n += count;
        while self.n >= 8 {
            self.out.push((self.buf & 0xff) as u8);
            self.buf >>= 8;
            self.n -= 8;
        }
    }

    /// Writes a Huffman code, which DEFLATE stores most-significant-bit
    /// first within the LSB-first stream.
    pub fn huffman_code(&mut self, code: u32, len: u32) {
        let mut rev = 0u32;
        for i in 0..len {
            rev |= ((code >> i) & 1) << (len - 1 - i);
        }
        self.bits(rev, len);
    }

    /// Pads with zero bits to a byte boundary.
    pub fn align_byte(&mut self) {
        if self.n > 0 {
            self.out.push((self.buf & 0xff) as u8);
            self.buf = 0;
            self.n = 0;
        }
    }

    /// Appends raw bytes (caller must be byte-aligned).
    pub fn raw_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(self.n, 0, "raw bytes require byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Finishes writing, returning the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_lsb_first() {
        // 0b1101_0010 = 0xd2: bits come out 0,1,0,0,1,0,1,1.
        let mut r = BitReader::new(&[0xd2]);
        let seq: Vec<u32> = (0..8).map(|_| r.bit().unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 0, 0, 1, 0, 1, 1]);
        assert_eq!(r.bit(), None);
    }

    #[test]
    fn read_multibit_values() {
        let mut r = BitReader::new(&[0xab, 0xcd]);
        assert_eq!(r.bits(4), Some(0xb));
        assert_eq!(r.bits(4), Some(0xa));
        assert_eq!(r.bits(8), Some(0xcd));
    }

    #[test]
    fn zero_bit_read() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.bits(0), Some(0));
    }

    #[test]
    fn align_and_bytes() {
        let mut r = BitReader::new(&[0b0000_0001, 0xaa, 0xbb]);
        assert_eq!(r.bit(), Some(1));
        assert_eq!(r.bytes(2), Some(vec![0xaa, 0xbb]));
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.bits(0b101, 3);
        w.bits(0xff, 8);
        w.bits(0, 2);
        w.bits(0b11, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(3), Some(0b101));
        assert_eq!(r.bits(8), Some(0xff));
        assert_eq!(r.bits(2), Some(0));
        assert_eq!(r.bits(2), Some(0b11));
    }

    #[test]
    fn huffman_codes_are_msb_first() {
        // Code 0b011 of length 3 must appear reversed (110) in the stream.
        let mut w = BitWriter::new();
        w.huffman_code(0b011, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bit(), Some(0));
        assert_eq!(r.bit(), Some(1));
        assert_eq!(r.bit(), Some(1));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = BitReader::new(&[0xab, 0xcd]);
        assert_eq!(r.peek(8), 0xab);
        assert_eq!(r.peek(16), 0xcdab);
        assert!(r.consume(4));
        assert_eq!(r.peek(8), 0xda, "high nibble of 0xab then low nibble of 0xcd");
    }

    #[test]
    fn peek_zero_pads_past_eof_and_consume_refuses() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.peek(16), 0x00ff, "bits past the end read as zero");
        assert!(!r.consume(9), "cannot consume bits that do not exist");
        assert!(r.consume(8));
        assert!(!r.consume(1));
    }

    #[test]
    fn refill_handles_long_inputs() {
        // > 8 bytes exercises the unaligned 64-bit refill path.
        let data: Vec<u8> = (0..32).collect();
        let mut r = BitReader::new(&data);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(r.bits(8), Some(b as u32), "byte {i}");
        }
        assert_eq!(r.bits(1), None);
    }

    #[test]
    fn copy_aligned_bytes_drains_buffer_then_bulk_copies() {
        let mut data = vec![0b0000_0001];
        data.extend(0u8..20);
        let mut r = BitReader::new(&data);
        assert_eq!(r.bit(), Some(1));
        let mut out = Vec::new();
        assert!(r.copy_aligned_bytes(20, &mut out));
        assert_eq!(out, (0u8..20).collect::<Vec<_>>());
        assert!(!r.copy_aligned_bytes(1, &mut out), "input exhausted");
    }

    #[test]
    fn bytes_consumed_tracks_position() {
        let mut r = BitReader::new(&[0xff, 0xff, 0xff]);
        assert_eq!(r.bytes_consumed(), 0);
        r.bits(8).unwrap();
        assert_eq!(r.bytes_consumed(), 1);
        r.bits(4).unwrap();
        assert_eq!(r.bytes_consumed(), 2, "partial byte counts as consumed");
    }
}
