//! LSB-first bit I/O as DEFLATE requires.

/// Reads bits least-significant-bit first from a byte slice.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index.
    pos: usize,
    /// Bit buffer (bits not yet consumed, LSB first).
    buf: u64,
    /// Number of valid bits in `buf`.
    n: u32,
}

impl<'a> BitReader<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, buf: 0, n: 0 }
    }

    fn refill(&mut self) {
        while self.n <= 56 && self.pos < self.data.len() {
            self.buf |= (self.data[self.pos] as u64) << self.n;
            self.pos += 1;
            self.n += 8;
        }
    }

    /// Reads `count` bits (0 ≤ count ≤ 32); `None` at end of input.
    pub fn bits(&mut self, count: u32) -> Option<u32> {
        debug_assert!(count <= 32);
        if self.n < count {
            self.refill();
            if self.n < count {
                return None;
            }
        }
        let v = (self.buf & ((1u64 << count) - 1)) as u32;
        let v = if count == 0 { 0 } else { v };
        self.buf >>= count;
        self.n -= count;
        Some(v)
    }

    /// Reads one bit.
    pub fn bit(&mut self) -> Option<u32> {
        self.bits(1)
    }

    /// Discards buffered bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.n % 8;
        self.buf >>= drop;
        self.n -= drop;
    }

    /// Reads `count` whole bytes after aligning (used by stored blocks).
    pub fn bytes(&mut self, count: usize) -> Option<Vec<u8>> {
        self.align_byte();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.bits(8)? as u8);
        }
        Some(out)
    }

    /// Number of whole input bytes consumed so far (counting buffered but
    /// unread bits as consumed input).
    pub fn bytes_consumed(&self) -> usize {
        self.pos - (self.n / 8) as usize
    }
}

/// Writes bits least-significant-bit first.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    buf: u64,
    n: u32,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `count` bits of `v`.
    pub fn bits(&mut self, v: u32, count: u32) {
        debug_assert!(count <= 32);
        self.buf |= (v as u64 & ((1u64 << count) - 1)) << self.n;
        self.n += count;
        while self.n >= 8 {
            self.out.push((self.buf & 0xff) as u8);
            self.buf >>= 8;
            self.n -= 8;
        }
    }

    /// Writes a Huffman code, which DEFLATE stores most-significant-bit
    /// first within the LSB-first stream.
    pub fn huffman_code(&mut self, code: u32, len: u32) {
        let mut rev = 0u32;
        for i in 0..len {
            rev |= ((code >> i) & 1) << (len - 1 - i);
        }
        self.bits(rev, len);
    }

    /// Pads with zero bits to a byte boundary.
    pub fn align_byte(&mut self) {
        if self.n > 0 {
            self.out.push((self.buf & 0xff) as u8);
            self.buf = 0;
            self.n = 0;
        }
    }

    /// Appends raw bytes (caller must be byte-aligned).
    pub fn raw_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(self.n, 0, "raw bytes require byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Finishes writing, returning the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_lsb_first() {
        // 0b1101_0010 = 0xd2: bits come out 0,1,0,0,1,0,1,1.
        let mut r = BitReader::new(&[0xd2]);
        let seq: Vec<u32> = (0..8).map(|_| r.bit().unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 0, 0, 1, 0, 1, 1]);
        assert_eq!(r.bit(), None);
    }

    #[test]
    fn read_multibit_values() {
        let mut r = BitReader::new(&[0xab, 0xcd]);
        assert_eq!(r.bits(4), Some(0xb));
        assert_eq!(r.bits(4), Some(0xa));
        assert_eq!(r.bits(8), Some(0xcd));
    }

    #[test]
    fn zero_bit_read() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.bits(0), Some(0));
    }

    #[test]
    fn align_and_bytes() {
        let mut r = BitReader::new(&[0b0000_0001, 0xaa, 0xbb]);
        assert_eq!(r.bit(), Some(1));
        assert_eq!(r.bytes(2), Some(vec![0xaa, 0xbb]));
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.bits(0b101, 3);
        w.bits(0xff, 8);
        w.bits(0, 2);
        w.bits(0b11, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(3), Some(0b101));
        assert_eq!(r.bits(8), Some(0xff));
        assert_eq!(r.bits(2), Some(0));
        assert_eq!(r.bits(2), Some(0b11));
    }

    #[test]
    fn huffman_codes_are_msb_first() {
        // Code 0b011 of length 3 must appear reversed (110) in the stream.
        let mut w = BitWriter::new();
        w.huffman_code(0b011, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bit(), Some(0));
        assert_eq!(r.bit(), Some(1));
        assert_eq!(r.bit(), Some(1));
    }

    #[test]
    fn bytes_consumed_tracks_position() {
        let mut r = BitReader::new(&[0xff, 0xff, 0xff]);
        assert_eq!(r.bytes_consumed(), 0);
        r.bits(8).unwrap();
        assert_eq!(r.bytes_consumed(), 1);
        r.bits(4).unwrap();
        assert_eq!(r.bytes_consumed(), 2, "partial byte counts as consumed");
    }
}
