//! The frozen *seed decoder*: the DEFLATE decoder exactly as it stood
//! before the table-driven fast path landed — a byte-at-a-time bit-buffer
//! refill feeding a per-bit canonical Huffman walk.
//!
//! It is deliberately **not** shared with the fast path's plumbing: an
//! independent bit reader and decoder mean the differential and parity
//! suites compare two genuinely separate implementations, and the
//! `inflate_throughput` benchmark measures the fast path against the real
//! seed rather than against a seed that silently inherits the new 64-bit
//! refill. The only deviations from the seed source are the satellite
//! fixes that apply to both paths: output is pre-reserved via
//! [`crate::inflate`]'s capacity heuristic and back-references copy in
//! chunks instead of byte-at-a-time pushes.
//!
//! Observable behaviour (outputs, consumed counts, error values) is
//! identical to the fast path; `tests/parity.rs` pins this.

use crate::huffman::{fixed_distance_lengths, fixed_literal_lengths};
use crate::inflate::{
    copy_match, initial_capacity, InflateError, CLCL_ORDER, DIST_BASE, DIST_EXTRA, LENGTH_BASE,
    LENGTH_EXTRA,
};

/// The seed's LSB-first bit reader: byte-at-a-time refill, mask-per-call
/// reads.
struct SeedBitReader<'a> {
    data: &'a [u8],
    pos: usize,
    buf: u64,
    n: u32,
}

impl<'a> SeedBitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        SeedBitReader { data, pos: 0, buf: 0, n: 0 }
    }

    fn refill(&mut self) {
        while self.n <= 56 && self.pos < self.data.len() {
            self.buf |= (self.data[self.pos] as u64) << self.n;
            self.pos += 1;
            self.n += 8;
        }
    }

    fn bits(&mut self, count: u32) -> Option<u32> {
        debug_assert!(count <= 32);
        if self.n < count {
            self.refill();
            if self.n < count {
                return None;
            }
        }
        let v = (self.buf & ((1u64 << count) - 1)) as u32;
        let v = if count == 0 { 0 } else { v };
        self.buf >>= count;
        self.n -= count;
        Some(v)
    }

    fn bit(&mut self) -> Option<u32> {
        self.bits(1)
    }

    fn align_byte(&mut self) {
        let drop = self.n % 8;
        self.buf >>= drop;
        self.n -= drop;
    }

    fn bytes(&mut self, count: usize) -> Option<Vec<u8>> {
        self.align_byte();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.bits(8)? as u8);
        }
        Some(out)
    }

    fn bytes_consumed(&self) -> usize {
        self.pos - (self.n / 8) as usize
    }
}

/// The seed's canonical Huffman decoder: per-bit first-code walk.
struct SeedDecoder {
    first_code: [u32; 16],
    first_index: [u32; 16],
    count: [u32; 16],
    symbols: Vec<u16>,
}

impl SeedDecoder {
    fn from_lengths(lengths: &[u8]) -> Option<SeedDecoder> {
        let mut count = [0u32; 16];
        for &l in lengths {
            if l > 15 {
                return None;
            }
            count[l as usize] += 1;
        }
        count[0] = 0;

        let mut available = 1u32;
        for &n in &count[1..16] {
            available = available.checked_mul(2)?;
            if n > available {
                return None;
            }
            available -= n;
        }

        let mut first_code = [0u32; 16];
        let mut first_index = [0u32; 16];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..16 {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }

        let mut symbols = vec![0u16; index as usize];
        let mut next = first_index;
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[next[l as usize] as usize] = sym as u16;
                next[l as usize] += 1;
            }
        }
        Some(SeedDecoder { first_code, first_index, count, symbols })
    }

    fn decode(&self, r: &mut SeedBitReader<'_>) -> Option<u16> {
        let mut code = 0u32;
        for len in 1..16usize {
            code = (code << 1) | r.bit()?;
            let rel = code.wrapping_sub(self.first_code[len]);
            if rel < self.count[len] {
                return Some(self.symbols[(self.first_index[len] + rel) as usize]);
            }
        }
        None
    }
}

/// The seed decompressor (see [`crate::inflate_with_limit_slow`]).
pub(crate) fn inflate_with_limit(
    data: &[u8],
    limit: usize,
) -> Result<(Vec<u8>, usize), InflateError> {
    let mut r = SeedBitReader::new(data);
    let mut out: Vec<u8> = Vec::with_capacity(initial_capacity(data.len(), limit));
    loop {
        let bfinal = r.bit().ok_or(InflateError::UnexpectedEof)?;
        let btype = r.bits(2).ok_or(InflateError::UnexpectedEof)?;
        match btype {
            0 => {
                let len = {
                    r.align_byte();
                    let len = r.bits(16).ok_or(InflateError::UnexpectedEof)?;
                    let nlen = r.bits(16).ok_or(InflateError::UnexpectedEof)?;
                    if len != !nlen & 0xffff {
                        return Err(InflateError::BadStoredLength);
                    }
                    len as usize
                };
                if out.len() + len > limit {
                    return Err(InflateError::TooLarge);
                }
                let bytes = r.bytes(len).ok_or(InflateError::UnexpectedEof)?;
                out.extend_from_slice(&bytes);
            }
            1 => {
                let lit = SeedDecoder::from_lengths(&fixed_literal_lengths())
                    .expect("fixed table is well-formed");
                let dist = SeedDecoder::from_lengths(&fixed_distance_lengths())
                    .expect("fixed table is well-formed");
                inflate_block(&mut r, &lit, &dist, &mut out, limit)?;
            }
            2 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &lit, &dist, &mut out, limit)?;
            }
            _ => return Err(InflateError::BadBlockType),
        }
        if bfinal == 1 {
            break;
        }
    }
    Ok((out, r.bytes_consumed().min(data.len())))
}

fn read_dynamic_tables(
    r: &mut SeedBitReader<'_>,
) -> Result<(SeedDecoder, SeedDecoder), InflateError> {
    let hlit = r.bits(5).ok_or(InflateError::UnexpectedEof)? as usize + 257;
    let hdist = r.bits(5).ok_or(InflateError::UnexpectedEof)? as usize + 1;
    let hclen = r.bits(4).ok_or(InflateError::UnexpectedEof)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(InflateError::BadHuffmanTable);
    }

    let mut clcl = [0u8; 19];
    for &idx in CLCL_ORDER.iter().take(hclen) {
        clcl[idx] = r.bits(3).ok_or(InflateError::UnexpectedEof)? as u8;
    }
    let cl_dec = SeedDecoder::from_lengths(&clcl).ok_or(InflateError::BadHuffmanTable)?;

    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        let sym = cl_dec.decode(r).ok_or(InflateError::UnexpectedEof)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let &prev = lengths.last().ok_or(InflateError::BadHuffmanTable)?;
                let n = 3 + r.bits(2).ok_or(InflateError::UnexpectedEof)?;
                lengths.extend(std::iter::repeat_n(prev, n as usize));
            }
            17 => {
                let n = 3 + r.bits(3).ok_or(InflateError::UnexpectedEof)?;
                lengths.extend(std::iter::repeat_n(0u8, n as usize));
            }
            18 => {
                let n = 11 + r.bits(7).ok_or(InflateError::UnexpectedEof)?;
                lengths.extend(std::iter::repeat_n(0u8, n as usize));
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(InflateError::BadHuffmanTable);
    }
    let lit = SeedDecoder::from_lengths(&lengths[..hlit]).ok_or(InflateError::BadHuffmanTable)?;
    let dist = SeedDecoder::from_lengths(&lengths[hlit..]).ok_or(InflateError::BadHuffmanTable)?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut SeedBitReader<'_>,
    lit: &SeedDecoder,
    dist: &SeedDecoder,
    out: &mut Vec<u8>,
    limit: usize,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r).ok_or(InflateError::UnexpectedEof)?;
        match sym {
            0..=255 => {
                if out.len() >= limit {
                    return Err(InflateError::TooLarge);
                }
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let idx = (sym - 257) as usize;
                let extra = LENGTH_EXTRA[idx] as u32;
                let len = LENGTH_BASE[idx] as usize
                    + r.bits(extra).ok_or(InflateError::UnexpectedEof)? as usize;
                let dsym = dist.decode(r).ok_or(InflateError::UnexpectedEof)? as usize;
                if dsym >= 30 {
                    return Err(InflateError::BadSymbol);
                }
                let dextra = DIST_EXTRA[dsym] as u32;
                let distance = DIST_BASE[dsym] as usize
                    + r.bits(dextra).ok_or(InflateError::UnexpectedEof)? as usize;
                if distance > out.len() {
                    return Err(InflateError::BadDistance);
                }
                if out.len() + len > limit {
                    return Err(InflateError::TooLarge);
                }
                copy_match(out, distance, len);
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
}
