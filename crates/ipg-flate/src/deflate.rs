//! DEFLATE encoding: stored blocks and fixed-Huffman blocks with a greedy
//! hash-chain LZ77 matcher.

use crate::bits::BitWriter;
use crate::huffman::{codes_from_lengths, fixed_distance_lengths, fixed_literal_lengths};

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const WINDOW: usize = 32 * 1024;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 64;

/// Compresses `data` as a single stored (uncompressed) DEFLATE stream.
/// Stored blocks hold at most 65535 bytes, so large inputs become several
/// blocks.
pub fn compress_stored(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut chunks = data.chunks(0xffff).peekable();
    if data.is_empty() {
        emit_stored_block(&mut w, &[], true);
    }
    while let Some(chunk) = chunks.next() {
        emit_stored_block(&mut w, chunk, chunks.peek().is_none());
    }
    w.finish()
}

fn emit_stored_block(w: &mut BitWriter, chunk: &[u8], last: bool) {
    w.bits(last as u32, 1);
    w.bits(0, 2);
    w.align_byte();
    let len = chunk.len() as u32;
    w.bits(len, 16);
    w.bits(!len, 16);
    w.raw_bytes(chunk);
}

/// Compresses `data` as one fixed-Huffman DEFLATE block with greedy LZ77.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let lit_codes = codes_from_lengths(&fixed_literal_lengths());
    let dist_codes = codes_from_lengths(&fixed_distance_lengths());
    let mut w = BitWriter::new();
    w.bits(1, 1); // BFINAL
    w.bits(1, 2); // fixed Huffman

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len().max(1)];
    let mut i = 0;
    while i < data.len() {
        let (len, dist) = best_match(data, i, &head, &prev);
        if len >= MIN_MATCH {
            emit_length(&mut w, &lit_codes, len);
            emit_distance(&mut w, &dist_codes, dist);
            for j in i..(i + len).min(data.len().saturating_sub(MIN_MATCH - 1)) {
                insert_hash(data, j, &mut head, &mut prev);
            }
            i += len;
        } else {
            let (c, l) = lit_codes[data[i] as usize];
            w.huffman_code(c, l as u32);
            insert_hash(data, i, &mut head, &mut prev);
            i += 1;
        }
    }
    let (c, l) = lit_codes[256];
    w.huffman_code(c, l as u32); // end of block
    w.finish()
}

fn hash_at(data: &[u8], i: usize) -> Option<usize> {
    if i + MIN_MATCH > data.len() {
        return None;
    }
    let h = (data[i] as u32)
        .wrapping_mul(0x9e37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79b9))
        .wrapping_add(data[i + 2] as u32);
    Some((h as usize) & ((1 << HASH_BITS) - 1))
}

fn insert_hash(data: &[u8], i: usize, head: &mut [usize], prev: &mut [usize]) {
    if let Some(h) = hash_at(data, i) {
        prev[i] = head[h];
        head[h] = i;
    }
}

fn best_match(data: &[u8], i: usize, head: &[usize], prev: &[usize]) -> (usize, usize) {
    let Some(h) = hash_at(data, i) else { return (0, 0) };
    let mut cand = head[h];
    let mut best_len = 0;
    let mut best_dist = 0;
    let mut chain = 0;
    let max_len = MAX_MATCH.min(data.len() - i);
    while cand != usize::MAX && chain < MAX_CHAIN {
        let dist = i - cand;
        if dist > WINDOW {
            break;
        }
        let mut l = 0;
        while l < max_len && data[cand + l] == data[i + l] {
            l += 1;
        }
        if l > best_len {
            best_len = l;
            best_dist = dist;
            if l == max_len {
                break;
            }
        }
        cand = prev[cand];
        chain += 1;
    }
    (best_len, best_dist)
}

fn emit_length(w: &mut BitWriter, lit_codes: &[(u32, u8)], len: usize) {
    // Length codes 257..=285 (RFC 1951 §3.2.5).
    const BASE: [usize; 29] = [
        3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115,
        131, 163, 195, 227, 258,
    ];
    const EXTRA: [u32; 29] =
        [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0];
    let idx = BASE.iter().rposition(|&b| b <= len).expect("len ≥ 3");
    let (c, l) = lit_codes[257 + idx];
    w.huffman_code(c, l as u32);
    w.bits((len - BASE[idx]) as u32, EXTRA[idx]);
}

fn emit_distance(w: &mut BitWriter, dist_codes: &[(u32, u8)], dist: usize) {
    const BASE: [usize; 30] = [
        1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
        2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
    ];
    const EXTRA: [u32; 30] = [
        0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12,
        13, 13,
    ];
    let idx = BASE.iter().rposition(|&b| b <= dist).expect("dist ≥ 1");
    let (c, l) = dist_codes[idx];
    w.huffman_code(c, l as u32);
    w.bits((dist - BASE[idx]) as u32, EXTRA[idx]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    #[test]
    fn stored_empty() {
        let packed = compress_stored(b"");
        assert_eq!(inflate(&packed).unwrap(), b"");
    }

    #[test]
    fn stored_beyond_one_block() {
        let data = vec![0x5a; 100_000];
        let packed = compress_stored(&data);
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn fixed_literals_only() {
        let packed = compress(b"abcdefg");
        assert_eq!(inflate(&packed).unwrap(), b"abcdefg");
    }

    #[test]
    fn fixed_with_matches() {
        let data = b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
        let packed = compress(data);
        assert!(packed.len() < data.len());
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn long_matches_capped_at_258() {
        let data = vec![7u8; 2000];
        let packed = compress(&data);
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn text_like_data() {
        let data: Vec<u8> =
            "the quick brown fox jumps over the lazy dog. ".bytes().cycle().take(5000).collect();
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 2, "got {}", packed.len());
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn incompressible_data_still_roundtrips() {
        let data: Vec<u8> =
            (0..10_000u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8).collect();
        let packed = compress(&data);
        assert_eq!(inflate(&packed).unwrap(), data);
    }
}
