//! The shared log₂ latency histogram: one bucketing scheme used by the
//! service counters ([`crate::stats`]), the Prometheus exposition
//! ([`crate::metrics`]), and the bench harness, so percentiles computed
//! anywhere in the tree agree bucket-for-bucket.
//!
//! Bucket `i` counts observations whose value in microseconds fell in
//! `[2^i, 2^(i+1))`; values of 0 are clamped into bucket 0, and the last
//! bucket is open-ended (any value ≥ 2^39 µs, i.e. ≳ 6 days). Recording
//! is a single relaxed `fetch_add` plus a relaxed sum update, so it is
//! safe on the request hot path. Percentiles are answered from bucket
//! boundaries (geometric midpoints), which on a log₂ scale is plenty
//! for p50/p99.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets. `[2^0, 2^40)` µs spans sub-microsecond to
/// multi-day latencies.
pub const BUCKET_COUNT: usize = 40;

/// The bucket index for a value in microseconds: `floor(log₂(max(us,
/// 1)))`, clamped to the last bucket.
#[inline]
pub fn bucket_index(us: u64) -> usize {
    (63 - us.max(1).leading_zeros() as usize).min(BUCKET_COUNT - 1)
}

/// The inclusive lower bound of bucket `i` in microseconds (0 clamps
/// into bucket 0, so its effective lower bound is 0).
pub fn bucket_lo(i: usize) -> u64 {
    1u64 << i
}

/// The exclusive upper bound of bucket `i` in microseconds (the last
/// bucket is open-ended; its nominal bound is still returned).
pub fn bucket_hi(i: usize) -> u64 {
    1u64 << (i + 1)
}

/// The geometric midpoint of bucket `i` — the value percentile queries
/// report for ranks landing in the bucket.
pub fn bucket_mid(i: usize) -> u64 {
    (1u64 << i) + (1u64 << i) / 2
}

/// The `p`-th percentile (0.0–1.0) over externally-collected bucket
/// counts, in microseconds; 0 when the counts are all zero. This is the
/// pure core shared by [`LogHistogram::percentile`] and snapshot-side
/// consumers.
pub fn percentile_of(counts: &[u64], p: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return bucket_mid(i);
        }
    }
    unreachable!("rank is clamped to the total count")
}

/// A thread-safe log₂-bucketed histogram of microsecond values, with a
/// running sum so exporters can emit Prometheus `_sum`/`_count`.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_us: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// Records a duration (as whole microseconds).
    pub fn record(&self, latency: Duration) {
        self.record_us(latency.as_micros() as u64);
    }

    /// Records a raw microsecond value.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn counts(&self) -> [u64; BUCKET_COUNT] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of all recorded values, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// The `p`-th percentile (0.0–1.0) in microseconds, 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile_of(&self.counts(), p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        // 0 clamps into bucket 0 (no shift by 64, no panic).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        // Exact powers of two open a new bucket; their predecessors don't.
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        // The top of the range clamps into the open-ended last bucket.
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(1 << 39), BUCKET_COUNT - 1);
        assert_eq!(bucket_index((1 << 39) - 1), BUCKET_COUNT - 2);
    }

    #[test]
    fn bounds_and_midpoints_are_consistent() {
        for i in 0..BUCKET_COUNT - 1 {
            assert!(bucket_lo(i) <= bucket_mid(i) && bucket_mid(i) < bucket_hi(i), "bucket {i}");
            assert_eq!(bucket_hi(i), bucket_lo(i + 1));
            // Every in-range value maps back into its own bucket.
            assert_eq!(bucket_index(bucket_lo(i)), i);
            assert_eq!(bucket_index(bucket_hi(i) - 1), i);
        }
    }

    #[test]
    fn quantile_interpolation_reports_geometric_midpoints() {
        let h = LogHistogram::default();
        for us in [1u64, 2, 3, 100, 100, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99, "p50 {p50} must not exceed p99 {p99}");
        // p50 of the sample sits in the 64–128µs bucket (midpoint 96).
        assert_eq!(p50, 96);
        // p99 lands in the 4096–8192µs bucket (midpoint 6144).
        assert_eq!(p99, 6144);
        // Extremes are exact bucket midpoints, not interpolation artifacts.
        assert_eq!(h.percentile(0.0), bucket_mid(0));
        assert_eq!(h.percentile(1.0), bucket_mid(bucket_index(5000)));
        // Sum backs the Prometheus `_sum` series.
        assert_eq!(h.sum_us(), 1 + 2 + 3 + 400 + 5000);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogHistogram::default();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.sum_us(), 0);
    }

    #[test]
    fn extreme_values_record_without_overflowing_buckets() {
        let h = LogHistogram::default();
        h.record_us(0);
        h.record_us(u64::MAX);
        let counts = h.counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[BUCKET_COUNT - 1], 1);
        assert_eq!(h.total(), 2);
    }
}
