//! The structured trace log: one JSON-lines event stream covering every
//! request from protocol admission through pool dispatch to completion.
//!
//! Every admitted request is assigned a process-unique **span id** at
//! admission ([`next_span`]); the id rides on the [`crate::pool::Job`]
//! through queueing, stealing, fault injection, and reply delivery, so
//! the events of one request can be joined back together from the log
//! with nothing but `span`. Event shape (one JSON object per line):
//!
//! ```text
//! {"ts_us":123,"span":7,"event":"admit","kind":"parse"}
//! {"ts_us":130,"span":7,"event":"dispatch","worker":2}
//! {"ts_us":131,"span":7,"event":"fault","fault":"panic"}
//! {"ts_us":140,"span":7,"event":"done","outcome":"error","latency_us":17}
//! ```
//!
//! The log is a **bounded ring buffer** that never blocks the hot path:
//! producers `try_lock` the ring and increment a drop counter instead of
//! waiting when it is contended, and a full ring evicts its oldest line
//! (also drop-counted) rather than growing. A [`TraceWriter`] thread
//! drains the ring to a file (`ipg serve --trace-log`); dropping events
//! under pressure is explicitly preferred to slowing a single request,
//! and the drop count is exported so the loss is visible, never silent.

use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default ring capacity (lines). At ~120 bytes a line this bounds the
/// buffer near 8 MiB under the worst case.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Hands out process-unique span ids, starting at 1 (0 means "no span").
pub fn next_span() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The shared, bounded, non-blocking event ring.
#[derive(Debug)]
pub struct TraceLog {
    ring: Mutex<VecDeque<String>>,
    capacity: usize,
    started: Instant,
    emitted: AtomicU64,
    dropped: AtomicU64,
}

impl TraceLog {
    /// A ring holding at most `capacity` undrained lines.
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            started: Instant::now(),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds since the log was created — the `ts_us` field.
    pub fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Appends one pre-rendered JSON line. Never blocks: a contended
    /// ring lock or a full ring costs one drop-counted event, not one
    /// stalled request.
    pub fn push(&self, line: String) {
        let Ok(mut ring) = self.ring.try_lock() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(line);
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes every undrained line (the writer thread's read side; this
    /// side may block on the lock — only producers must not).
    pub fn drain(&self) -> Vec<String> {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.drain(..).collect()
    }

    /// Events accepted into the ring since creation.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Events lost to contention or ring overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Emits an `admit` event: the request was assigned `span` and
    /// either queued or shed at admission.
    pub(crate) fn admit(&self, span: u64, kind: &str, shed: bool) {
        let ts = self.now_us();
        let queued = if shed { "false" } else { "true" };
        self.push(format!(
            "{{\"ts_us\":{ts},\"span\":{span},\"event\":\"admit\",\"kind\":\"{kind}\",\"queued\":{queued}}}"
        ));
    }

    /// Emits a `dispatch` event: worker `worker` began executing the
    /// span's job.
    pub(crate) fn dispatch(&self, span: u64, worker: usize) {
        let ts = self.now_us();
        self.push(format!(
            "{{\"ts_us\":{ts},\"span\":{span},\"event\":\"dispatch\",\"worker\":{worker}}}"
        ));
    }

    /// Emits a `fault` event: the chaos schedule injected `fault` into
    /// this span's job.
    pub(crate) fn fault(&self, span: u64, fault: &str) {
        let ts = self.now_us();
        self.push(format!(
            "{{\"ts_us\":{ts},\"span\":{span},\"event\":\"fault\",\"fault\":\"{fault}\"}}"
        ));
    }

    /// Emits the terminal `done` event with the ledger classification
    /// and admission→reply latency.
    pub(crate) fn done(&self, span: u64, outcome: &str, latency: Duration) {
        let ts = self.now_us();
        let us = latency.as_micros() as u64;
        self.push(format!(
            "{{\"ts_us\":{ts},\"span\":{span},\"event\":\"done\",\"outcome\":\"{outcome}\",\"latency_us\":{us}}}"
        ));
    }
}

/// The background flusher: drains the ring to a file on a short period
/// and on [`TraceWriter::finish`]. I/O errors after open are counted,
/// not fatal — tracing must never take the service down.
pub struct TraceWriter {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<u64>>,
    path: PathBuf,
}

impl TraceWriter {
    /// Opens (truncating) `path` and spawns the flusher thread.
    ///
    /// # Errors
    ///
    /// The underlying `File::create` error when the path is unwritable.
    pub fn spawn(log: Arc<TraceLog>, path: &Path) -> std::io::Result<TraceWriter> {
        let mut file = std::fs::File::create(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread =
            std::thread::Builder::new().name("ipg-serve-trace".into()).spawn(move || {
                let mut written = 0u64;
                loop {
                    let stopping = stop_flag.load(Ordering::Acquire);
                    for line in log.drain() {
                        if writeln!(file, "{line}").is_ok() {
                            written += 1;
                        }
                    }
                    let _ = file.flush();
                    if stopping {
                        return written;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            })?;
        Ok(TraceWriter { stop, thread: Some(thread), path: path.to_owned() })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops the flusher after one final drain; returns the number of
    /// lines written over the writer's lifetime.
    pub fn finish(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        self.thread.take().and_then(|t| t.join().ok()).unwrap_or(0)
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let a = next_span();
        let b = next_span();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn events_render_as_json_lines_in_order() {
        let log = TraceLog::new(16);
        log.admit(7, "parse", false);
        log.dispatch(7, 2);
        log.fault(7, "panic");
        log.done(7, "error", Duration::from_micros(17));
        let lines = log.drain();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"event\":\"admit\"") && lines[0].contains("\"span\":7"));
        assert!(lines[0].contains("\"kind\":\"parse\"") && lines[0].contains("\"queued\":true"));
        assert!(lines[1].contains("\"event\":\"dispatch\"") && lines[1].contains("\"worker\":2"));
        assert!(
            lines[2].contains("\"event\":\"fault\"") && lines[2].contains("\"fault\":\"panic\"")
        );
        assert!(lines[3].contains("\"event\":\"done\"") && lines[3].contains("\"latency_us\":17"));
        // Every line is a single JSON object.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
        assert_eq!(log.emitted(), 4);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn full_ring_evicts_oldest_and_counts_the_drop() {
        let log = TraceLog::new(2);
        log.push("{\"n\":1}".into());
        log.push("{\"n\":2}".into());
        log.push("{\"n\":3}".into());
        assert_eq!(log.dropped(), 1);
        let lines = log.drain();
        assert_eq!(lines, vec!["{\"n\":2}".to_string(), "{\"n\":3}".to_string()]);
    }

    #[test]
    fn writer_flushes_to_file_and_reports_line_count() {
        let dir = std::env::temp_dir().join(format!("ipg-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let log = Arc::new(TraceLog::new(64));
        let writer = TraceWriter::spawn(Arc::clone(&log), &path).unwrap();
        log.admit(1, "parse", false);
        log.done(1, "done", Duration::from_micros(5));
        let written = writer.finish();
        assert_eq!(written, 2);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        assert!(body.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
