//! `ipg-serve` — a batch/streaming parse service over the IPG bytecode
//! VM, built for the "heavy parse traffic" end of the roadmap.
//!
//! Architecture (bottom up):
//!
//! * **Program cache** — the shared [`ipg_formats::Registry`] maps
//!   grammar names to refcounted [`Compiled`] *generations*.
//!   [`Registry::corpus`] pre-loads all nine corpus grammars through the
//!   versioned `.ipgc` artifact cache ([`ipg_core::ipgc`]) — workers load
//!   persisted bytecode instead of recompiling, and user-supplied
//!   grammars ([`Registry::load_path`]) flow through the same pipeline.
//! * **Hot reload** — [`Server::watch_dir`] polls a grammar directory
//!   ([`watch`]) and atomically swaps changed grammars into the live
//!   registry; every admitted job pins the generation it resolved, so
//!   in-flight parses and sessions are never torn by a swap. Invalid
//!   artifacts are quarantined (`*.bad`), healed from sibling `.ipg`
//!   source when possible, and counted in the stats snapshot
//!   (`reloads_ok` / `reloads_rejected` / `artifacts_quarantined`).
//! * **Sharded worker pool** — one queue per worker plus work stealing
//!   for one-shot jobs ([`pool`]); streaming sessions are pinned to their
//!   owning worker so the suspended frame stack never crosses threads.
//! * **Isolation** — every parse carries a step budget, every session a
//!   byte budget and a rolling deadline; an input that stalls, balloons,
//!   or loops is killed with a clean error and the worker moves on. Every
//!   job body runs under `catch_unwind`: a panicking parse (or an
//!   injected fault, [`fault`]) costs exactly that job — answered with a
//!   typed [`ipg_core::Error::WorkerPanic`] — never the worker.
//! * **Admission control** — one-shot queues are bounded; over the bound
//!   new jobs are shed immediately with [`Response::Busy`] (a typed
//!   `BUSY { retry_after_ms }` on the wire) instead of queued, while
//!   pinned session traffic degrades last.
//! * **Drain** — [`Server::drain`] (wired to SIGTERM/ctrl-c in
//!   `ipg serve`) stops admitting, flushes queued one-shot work, seals
//!   open sessions, and answers everything else `GOAWAY`, so a restart
//!   never tears a frame mid-connection.
//! * **Front ends** — an in-process API ([`Server::parse`],
//!   [`Server::open`]) and a length-framed Unix-socket protocol
//!   ([`proto`], [`Server::serve_unix`]).
//!
//! ```no_run
//! use ipg_serve::{Config, Server};
//!
//! let server = Server::start(Config { workers: 4, ..Config::default() });
//! let archive = ipg_corpus::zip::generate(&Default::default()).bytes;
//! let summary = server.parse("zip", archive).expect("valid archive");
//! assert!(summary.nodes > 0);
//!
//! // Streaming: bytes arrive as they come off the wire.
//! let mut stream = server.open("dns").unwrap();
//! stream.feed(&[0x12, 0x34]);
//! let outcome = stream.finish();
//! # let _ = outcome;
//! ```

pub mod fault;
pub mod histo;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod stats;
pub mod trace;
pub mod watch;

use fault::FaultPlan;
use ipg_core::interp::vm::Hint;
use ipg_core::Error;
use pool::{Job, JobKind, Shard, Shared};
use stats::{Counters, StatsSnapshot};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex, Once, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration. The defaults are production-lean: parallelism
/// from the machine, 50M-step fuel (the repo's standard "pathological
/// loop" bound), 64 MiB per-session buffers, 30 s session deadlines,
/// 1024-deep one-shot queues with BUSY shedding beyond that, and a 10 s
/// per-request reply deadline.
#[derive(Clone, Debug)]
pub struct Config {
    /// Worker threads (0 = `std::thread::available_parallelism`).
    pub workers: usize,
    /// Step budget per parse/session.
    pub max_steps: u64,
    /// Byte budget per streaming session.
    pub max_bytes: usize,
    /// Rolling inactivity deadline after which a session is evicted.
    pub session_deadline: Duration,
    /// Per-shard bound on queued one-shot jobs; beyond it new jobs are
    /// shed with `BUSY { retry_after_ms }` instead of queued.
    pub max_queue: usize,
    /// The retry hint carried in BUSY responses.
    pub retry_after: Duration,
    /// How long a caller waits for its reply before receiving a typed
    /// deadline error (the job itself still completes server-side).
    pub request_deadline: Duration,
    /// Hard cap on a wire frame payload (see [`proto::MAX_FRAME`]).
    pub max_frame: usize,
    /// Wire inactivity timeout and whole-frame deadline: a connection
    /// that stalls mid-frame longer than this is answered with a typed
    /// error and closed (the slow-loris guard).
    pub io_timeout: Duration,
    /// Fault-injection schedule for the chaos harness; `None` (the
    /// default) injects nothing.
    pub faults: Option<Arc<FaultPlan>>,
    /// Structured trace ring (`ipg serve --trace-log`); `None` (the
    /// default) disables span event emission entirely.
    pub trace: Option<Arc<trace::TraceLog>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            workers: 0,
            max_steps: 50_000_000,
            max_bytes: 64 << 20,
            session_deadline: Duration::from_secs(30),
            max_queue: 1024,
            retry_after: Duration::from_millis(25),
            request_deadline: Duration::from_secs(10),
            max_frame: proto::MAX_FRAME,
            io_timeout: Duration::from_secs(5),
            faults: None,
            trace: None,
        }
    }
}

pub use ipg_formats::{Compiled, Registry};

/// Completion summary of a successful parse (what crosses the wire; the
/// in-process API returns it too, keeping both front ends honest about
/// the same contract).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSummary {
    /// VM steps executed.
    pub steps: u64,
    /// Suspensions taken (0 for one-shot jobs).
    pub suspends: u64,
    /// Parse-tree records allocated.
    pub nodes: usize,
    /// Input bytes consumed.
    pub bytes: usize,
}

/// A worker's answer to one job.
#[derive(Debug)]
pub enum Response {
    /// Parse completed.
    Done(ParseSummary),
    /// Session opened under this id.
    Opened {
        /// The session id to use in subsequent `Feed`/`Finish` calls.
        id: u64,
    },
    /// A streaming session wants more input.
    NeedInput {
        /// What would unlock progress.
        hint: Hint,
    },
    /// The parse failed or the request was invalid.
    Error(Error),
    /// Shed at admission: the one-shot queue is over its bound. The job
    /// was never queued; retry after the hinted delay.
    Busy {
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// The server is draining: no new work is admitted and the session
    /// this request addressed (if any) has been sealed.
    GoAway,
}

/// The running service: worker threads plus the shared state. Dropping
/// the server shuts the pool down (abandoning live sessions).
pub struct Server {
    shared: Arc<Shared>,
    registry: Registry,
    metrics: Arc<metrics::Registry>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    watcher: Mutex<Option<watch::Watcher>>,
    started: Instant,
    rr: AtomicU64,
}

/// Suppresses default panic-hook spew (message + backtrace) for panics
/// that the worker pool catches and converts to typed replies. Installed
/// once per process; panics on any non-`ipg-serve-` thread still reach
/// the previous hook untouched.
fn install_quiet_worker_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let caught = std::thread::current().name().is_some_and(|n| n.starts_with("ipg-serve-"));
            if !caught {
                prev(info);
            }
        }));
    });
}

/// Builds the server's metrics registry: every stats counter, the
/// admission ledger with its scrape-time in-flight derivation, the
/// reload/quarantine counters, the process-wide artifact-cache totals,
/// the shared-bucket latency histogram, per-worker queue depths, and —
/// when tracing is on — the trace ring's emit/drop counters. This is
/// the single exposition point: a counter that exists but is not
/// registered here is invisible to every scraper, so the registration
/// list is deliberately exhaustive over [`stats::Counters`].
/// One registration row: metric name, help text, and the accessor
/// picking the backing cell out of [`stats::Counters`].
type CounterSpec = (&'static str, &'static str, fn(&stats::Counters) -> &AtomicU64);

fn build_metrics(shared: &Arc<Shared>) -> Arc<metrics::Registry> {
    let reg = metrics::Registry::new();
    let counters: [CounterSpec; 18] = [
        ("ipg_parses_ok_total", "Completed parses.", |c| &c.parses_ok),
        ("ipg_parses_err_total", "Failed parses.", |c| &c.parses_err),
        ("ipg_sessions_opened_total", "Streaming sessions opened.", |c| &c.sessions_opened),
        ("ipg_sessions_closed_total", "Streaming sessions closed.", |c| &c.sessions_closed),
        ("ipg_sessions_evicted_total", "Sessions dropped by deadline eviction.", |c| {
            &c.sessions_evicted
        }),
        ("ipg_sessions_sealed_total", "Sessions sealed with GOAWAY during drain.", |c| {
            &c.sessions_sealed
        }),
        ("ipg_bytes_in_total", "Input bytes accepted.", |c| &c.bytes_in),
        ("ipg_vm_steps_total", "VM steps executed by completed work.", |c| &c.steps),
        ("ipg_suspends_total", "Suspensions taken by streaming sessions.", |c| &c.suspends),
        ("ipg_steals_total", "Jobs taken from another worker's queue.", |c| &c.steals),
        ("ipg_requests_submitted_total", "Requests admitted (the ledger domain).", |c| {
            &c.requests_submitted
        }),
        ("ipg_requests_completed_total", "Requests answered successfully.", |c| {
            &c.requests_completed
        }),
        ("ipg_requests_shed_total", "Requests shed with BUSY/GOAWAY.", |c| &c.requests_shed),
        ("ipg_requests_failed_total", "Requests answered with a typed error.", |c| {
            &c.requests_failed
        }),
        ("ipg_panics_recovered_total", "Worker panics converted to typed replies.", |c| {
            &c.panics_recovered
        }),
        ("ipg_reloads_ok_total", "Hot reloads that swapped a generation in.", |c| &c.reloads_ok),
        ("ipg_reloads_rejected_total", "Hot reloads refused (previous generation kept).", |c| {
            &c.reloads_rejected
        }),
        ("ipg_artifacts_quarantined_total", "Invalid artifacts quarantined by the watcher.", |c| {
            &c.artifacts_quarantined
        }),
    ];
    for (name, help, read) in counters {
        let s = Arc::clone(shared);
        reg.counter_fn(name, help, move || read(&s.counters).load(Ordering::Relaxed));
    }
    let s = Arc::clone(shared);
    reg.gauge_fn("ipg_live_sessions", "Sessions currently live across all workers.", move || {
        s.counters.live_sessions.load(Ordering::Relaxed)
    });
    // The scrape-time ledger: `submitted == completed + shed + failed +
    // in_flight` holds on every scrape by construction of this gauge.
    let s = Arc::clone(shared);
    reg.gauge_fn(
        "ipg_requests_in_flight",
        "Admitted requests not yet classified (the live reconciliation gap).",
        move || {
            let c = &s.counters;
            let terminal = c.requests_completed.load(Ordering::Relaxed)
                + c.requests_shed.load(Ordering::Relaxed)
                + c.requests_failed.load(Ordering::Relaxed);
            c.requests_submitted.load(Ordering::Relaxed).saturating_sub(terminal)
        },
    );
    let s = Arc::clone(shared);
    reg.histogram_fn(
        "ipg_request_latency_us",
        "Admission-to-reply latency, microseconds (shared log2 buckets).",
        move || (s.counters.latency.counts(), s.counters.latency.sum_us()),
    );
    let s = Arc::clone(shared);
    reg.gauge_vec_fn(
        "ipg_queue_depth",
        "Queued jobs (pinned + stealable) per worker.",
        "worker",
        move || {
            s.shards.iter().enumerate().map(|(w, sh)| (w.to_string(), sh.depth() as u64)).collect()
        },
    );
    // Artifact-cache totals are process-wide (Cache instances are
    // created per load), owned by ipg-core and registered here as shared
    // atomics — the producer's hot path is untouched.
    let totals = ipg_core::ipgc::cache_totals::counters();
    reg.register_counter_shared(
        "ipg_cache_hits_total",
        "Artifact-cache hits (program deserialized, not compiled).",
        totals.hits,
    );
    reg.register_counter_shared(
        "ipg_cache_misses_total",
        "Artifact-cache misses (program compiled, artifact rewritten).",
        totals.misses,
    );
    reg.register_counter_shared(
        "ipg_cache_quarantined_total",
        "Invalid artifacts quarantined by the cache itself.",
        totals.quarantined,
    );
    if let Some(t) = &shared.trace {
        let tl = Arc::clone(t);
        reg.counter_fn(
            "ipg_trace_events_total",
            "Trace events accepted into the ring.",
            move || tl.emitted(),
        );
        let tl = Arc::clone(t);
        reg.counter_fn(
            "ipg_trace_dropped_total",
            "Trace events lost to ring overflow or contention.",
            move || tl.dropped(),
        );
    }
    Arc::new(reg)
}

impl Server {
    /// Starts the pool over the corpus registry.
    pub fn start(cfg: Config) -> Server {
        Server::with_registry(cfg, Registry::corpus())
    }

    /// Starts the pool over an explicit registry.
    pub fn with_registry(cfg: Config, registry: Registry) -> Server {
        install_quiet_worker_panics();
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            shards: (0..workers).map(|_| Shard::new()).collect(),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            next_session: AtomicU64::new(0),
            max_steps: cfg.max_steps,
            max_bytes: cfg.max_bytes,
            session_deadline: cfg.session_deadline,
            max_queue: cfg.max_queue.max(1),
            retry_after_ms: cfg.retry_after.as_millis().max(1) as u64,
            request_deadline: cfg.request_deadline,
            max_frame: cfg.max_frame,
            io_timeout: cfg.io_timeout,
            faults: cfg.faults,
            trace: cfg.trace,
        });
        let metrics = build_metrics(&shared);
        let handles = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ipg-serve-{w}"))
                    .spawn(move || pool::worker_loop(w, shared))
                    .expect("spawn worker")
            })
            .collect();
        Server {
            shared,
            registry,
            metrics,
            workers: Mutex::new(handles),
            watcher: Mutex::new(None),
            started: Instant::now(),
            rr: AtomicU64::new(0),
        }
    }

    /// Starts hot reloading: scans `dir` synchronously (every `.ipg` /
    /// `.ipgc` grammar it holds is loaded into the registry before this
    /// returns), then spawns a polling watcher thread that swaps changed
    /// grammars in atomically under live traffic. Invalid artifacts are
    /// quarantined (`*.bad`) and, when a sibling `.ipg` source exists,
    /// rebuilt from source — see [`watch`] for the full failure policy.
    /// The watcher seals itself on [`Server::drain`] / shutdown.
    ///
    /// # Errors
    ///
    /// [`Error::Grammar`] when `dir` is unreadable or a watcher is
    /// already running.
    pub fn watch_dir(&self, dir: &Path, interval: Duration) -> Result<(), Error> {
        let mut slot = self.watcher.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_some() {
            return Err(Error::Grammar("a grammar watcher is already running".into()));
        }
        *slot = Some(watch::Watcher::spawn(
            self.registry.clone(),
            self.shared.clone(),
            dir.to_owned(),
            interval,
        )?);
        Ok(())
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.shared.shards.len()
    }

    /// The registry backing this server.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// `true` once [`Server::drain`] has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }

    /// Parses `input` under the named grammar, blocking until a worker
    /// picks it up and finishes.
    ///
    /// # Errors
    ///
    /// [`Error::Grammar`] for unknown grammar names; [`Error::Session`]
    /// when shed (BUSY), refused (GOAWAY), or past the request deadline;
    /// [`Error::WorkerPanic`] if the executing worker panicked; the
    /// parse's own error otherwise.
    pub fn parse(&self, grammar: &str, input: Vec<u8>) -> Result<ParseSummary, Error> {
        match self.parse_response(grammar, input) {
            Response::Done(s) => Ok(s),
            Response::Error(e) => Err(e),
            Response::Busy { retry_after_ms } => {
                Err(Error::Session(format!("server busy; retry after {retry_after_ms}ms")))
            }
            Response::GoAway => Err(Error::Session("server is draining (GOAWAY)".into())),
            _ => Err(Error::Session("protocol violation: unexpected response".into())),
        }
    }

    /// Parses `input` and returns the raw typed [`Response`] — what the
    /// wire front end forwards verbatim, so BUSY/GOAWAY stay typed frames
    /// instead of collapsing into error strings.
    pub fn parse_response(&self, grammar: &str, input: Vec<u8>) -> Response {
        let vm = match self.lookup(grammar) {
            Ok(vm) => vm,
            Err(e) => return Response::Error(e),
        };
        let (tx, rx) = channel();
        let job = Job::new(JobKind::Parse { vm, input }, tx);
        match self.admit_oneshot(job) {
            Ok(()) => self.await_reply(rx),
            Err(resp) => resp,
        }
    }

    /// Submits a parse without waiting: the returned receiver yields the
    /// single [`Response`] when a worker completes it — immediately
    /// [`Response::Busy`]/[`Response::GoAway`] if the job was shed at
    /// admission. This is the fan-in primitive the batch benchmark
    /// saturates the pool with.
    ///
    /// # Errors
    ///
    /// [`Error::Grammar`] for unknown grammar names.
    pub fn parse_async(&self, grammar: &str, input: Vec<u8>) -> Result<Receiver<Response>, Error> {
        let vm = self.lookup(grammar)?;
        let (tx, rx) = channel();
        let job = Job::new(JobKind::Parse { vm, input }, tx);
        // On shed, admission already sent the BUSY/GOAWAY into the
        // channel, so the receiver contract (exactly one response) holds.
        let _ = self.admit_oneshot(job);
        Ok(rx)
    }

    /// Admission control for one-shot jobs: refused with GOAWAY while
    /// draining, shed with BUSY when the target shard's one-shot queue is
    /// at its bound. Counted into the request ledger either way.
    fn admit_oneshot(&self, job: Job) -> Result<(), Response> {
        let shared = &self.shared;
        Counters::add(&shared.counters.requests_submitted, 1);
        if shared.is_draining() {
            let resp = Response::GoAway;
            if let Some(t) = &shared.trace {
                t.admit(job.span, "parse", true);
            }
            shared.classify(&resp, job.accepted);
            if let Some(t) = &shared.trace {
                t.done(job.span, pool::outcome_name(&resp), job.accepted.elapsed());
            }
            let _ = job.reply.send(Response::GoAway);
            return Err(resp);
        }
        if let Some(t) = &shared.trace {
            t.admit(job.span, "parse", false);
        }
        let w = (self.rr.fetch_add(1, Ordering::Relaxed) as usize) % self.workers();
        match shared.shards[w].try_push_shared(job, shared.max_queue) {
            Ok(()) => Ok(()),
            Err(job) => {
                let resp = Response::Busy { retry_after_ms: shared.retry_after_ms };
                shared.classify(&resp, job.accepted);
                if let Some(t) = &shared.trace {
                    t.done(job.span, pool::outcome_name(&resp), job.accepted.elapsed());
                }
                let _ = job.reply.send(Response::Busy { retry_after_ms: shared.retry_after_ms });
                Err(resp)
            }
        }
    }

    /// Blocks on the reply with the per-request deadline. On expiry the
    /// caller gets a typed error; the job still runs to completion and is
    /// classified server-side by its worker.
    fn await_reply(&self, rx: Receiver<Response>) -> Response {
        match rx.recv_timeout(self.shared.request_deadline) {
            Ok(resp) => resp,
            Err(RecvTimeoutError::Timeout) => Response::Error(Error::Session(format!(
                "request deadline of {:?} exceeded (job still runs server-side)",
                self.shared.request_deadline
            ))),
            Err(RecvTimeoutError::Disconnected) => {
                Response::Error(Error::Session("worker dropped the request".into()))
            }
        }
    }

    /// Opens a streaming session on the named grammar. The session is
    /// pinned to one worker; the handle routes chunks to it.
    ///
    /// # Errors
    ///
    /// [`Error::Grammar`] for unknown grammar names; [`Error::Session`]
    /// if the pool is draining or shutting down.
    pub fn open(&self, grammar: &str) -> Result<StreamHandle<'_>, Error> {
        match self.open_response(grammar) {
            Response::Opened { id } => Ok(StreamHandle { server: self, id }),
            Response::Error(e) => Err(e),
            Response::GoAway => Err(Error::Session("server is draining (GOAWAY)".into())),
            _ => Err(Error::Session("worker dropped the open request".into())),
        }
    }

    /// Opens a session and returns the raw typed [`Response`] (the wire
    /// front end's entry point).
    pub fn open_response(&self, grammar: &str) -> Response {
        let vm = match self.lookup(grammar) {
            Ok(vm) => vm,
            Err(e) => return Response::Error(e),
        };
        let shared = &self.shared;
        Counters::add(&shared.counters.requests_submitted, 1);
        if shared.is_draining() {
            let resp = Response::GoAway;
            if let Some(t) = &shared.trace {
                let span = trace::next_span();
                t.admit(span, "open", true);
                t.done(span, pool::outcome_name(&resp), Duration::ZERO);
            }
            shared.classify(&resp, Instant::now());
            return resp;
        }
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        let w = shared.owner_of(id);
        let (tx, rx) = channel();
        let job = Job::new(JobKind::Open { id, vm }, tx);
        if let Some(t) = &shared.trace {
            t.admit(job.span, "open", false);
        }
        shared.shards[w].push_pinned(job);
        self.await_reply(rx)
    }

    /// A point-in-time stats snapshot (parses/s, bytes/s, suspend counts,
    /// queue depths, shed/panic counters, latency percentiles).
    pub fn stats(&self) -> StatsSnapshot {
        let depths = self.shared.shards.iter().map(|s| s.depth()).collect();
        StatsSnapshot::collect(&self.shared.counters, self.started, depths)
    }

    /// The metrics registry backing this server's Prometheus exposition.
    pub fn metrics(&self) -> Arc<metrics::Registry> {
        Arc::clone(&self.metrics)
    }

    /// One Prometheus text-format scrape (what `--metrics-addr` and the
    /// `METRICS` protocol op both return).
    pub fn metrics_text(&self) -> String {
        self.metrics.gather()
    }

    /// Starts the Prometheus exposition endpoint: a minimal HTTP/1.0
    /// responder on `addr` answering every request with the current
    /// scrape. The thread exits when the server shuts down or drains.
    /// Returns the bound address (so `:0` requests report their port).
    ///
    /// # Errors
    ///
    /// The bind error when `addr` is unusable.
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        use std::io::{Read, Write};
        let listener = std::net::TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let metrics = Arc::clone(&self.metrics);
        let shared = Arc::clone(&self.shared);
        std::thread::Builder::new().name("ipg-serve-metrics".into()).spawn(move || {
            while !shared.shutdown.load(Ordering::Acquire) {
                let (mut stream, _) = match listener.accept() {
                    Ok(conn) => conn,
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                };
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                // Read the request head (we answer every path the same);
                // stop at the blank line, EOF, or the read timeout.
                let mut head = Vec::new();
                let mut buf = [0u8; 1024];
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            head.extend_from_slice(&buf[..n]);
                            if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                                break;
                            }
                        }
                    }
                }
                let body = metrics.gather();
                let response = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
                     charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = stream.write_all(response.as_bytes());
            }
        })?;
        Ok(local)
    }

    /// Stops the workers after the queues drain and joins them. Live
    /// streaming sessions are dropped (counted as evictions). For a
    /// graceful restart use [`Server::drain`] instead.
    pub fn shutdown(self) {
        self.stop_workers();
    }

    /// Graceful drain: stop admitting (new requests get GOAWAY), flush
    /// queued one-shot jobs, seal open sessions (their next request gets
    /// GOAWAY; remaining ones are sealed at worker exit), then join the
    /// workers. Safe to call from any thread holding the server; calling
    /// it twice is a no-op for the second caller.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.stop_workers();
        // Epilogue: anything that raced past admission after the workers
        // exited would otherwise never be answered — answer it GOAWAY so
        // no caller is left holding a dead reply channel.
        for shard in &self.shared.shards {
            for job in shard.drain_all() {
                pool::send_reply(
                    &self.shared,
                    &job.reply,
                    job.accepted,
                    job.span,
                    Response::GoAway,
                );
            }
        }
    }

    fn stop_workers(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Seal the watcher first: once the shutdown/draining flag is up
        // it exits within one poll interval, and joining it here means
        // no reload can race the queue epilogue that follows.
        if let Some(w) = self.watcher.lock().unwrap_or_else(PoisonError::into_inner).take() {
            w.seal();
        }
        for shard in &self.shared.shards {
            shard.notify();
        }
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Pins the current generation for `grammar`: in-flight work keeps
    /// the generation it was admitted with even if a reload swaps the
    /// registry entry mid-parse.
    fn lookup(&self, grammar: &str) -> Result<Arc<Compiled>, Error> {
        self.registry
            .pin(grammar)
            .ok_or_else(|| Error::Grammar(format!("unknown grammar `{grammar}`")))
    }

    pub(crate) fn session_request(&self, id: u64, kind: JobKind) -> Response {
        let shared = &self.shared;
        Counters::add(&shared.counters.requests_submitted, 1);
        let kind_name = if matches!(kind, JobKind::Finish { .. }) { "finish" } else { "feed" };
        if shared.is_draining() {
            let resp = Response::GoAway;
            if let Some(t) = &shared.trace {
                let span = trace::next_span();
                t.admit(span, kind_name, true);
                t.done(span, pool::outcome_name(&resp), Duration::ZERO);
            }
            shared.classify(&resp, Instant::now());
            return resp;
        }
        let w = shared.owner_of(id);
        let (tx, rx) = channel();
        let job = Job::new(kind, tx);
        if let Some(t) = &shared.trace {
            t.admit(job.span, kind_name, false);
        }
        shared.shards[w].push_pinned(job);
        self.await_reply(rx)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let pending = !self.workers.lock().unwrap_or_else(PoisonError::into_inner).is_empty();
        if pending {
            self.stop_workers();
        }
    }
}

/// In-process handle to a streaming session (the Unix-socket front end
/// speaks to the same sessions by id).
pub struct StreamHandle<'s> {
    server: &'s Server,
    id: u64,
}

impl StreamHandle<'_> {
    /// The session id (what the framed protocol carries).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Routes a chunk to the owning worker and waits for its answer.
    pub fn feed(&mut self, bytes: &[u8]) -> Response {
        self.server.session_request(self.id, JobKind::Feed { id: self.id, bytes: bytes.to_vec() })
    }

    /// Signals end-of-input and waits for the final verdict.
    pub fn finish(self) -> Response {
        self.server.session_request(self.id, JobKind::Finish { id: self.id })
    }
}
