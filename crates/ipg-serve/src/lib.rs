//! `ipg-serve` — a batch/streaming parse service over the IPG bytecode
//! VM, built for the "heavy parse traffic" end of the roadmap.
//!
//! Architecture (bottom up):
//!
//! * **Program cache** — the shared [`ipg_formats::Registry`] maps
//!   grammar names to shared, process-lifetime [`VmParser`]s.
//!   [`Registry::corpus`] pre-loads all nine corpus grammars through the
//!   versioned `.ipgc` artifact cache ([`ipg_core::ipgc`]) — workers load
//!   persisted bytecode instead of recompiling, and user-supplied
//!   grammars ([`Registry::load_path`]) flow through the same pipeline.
//! * **Sharded worker pool** — one queue per worker plus work stealing
//!   for one-shot jobs ([`pool`]); streaming sessions are pinned to their
//!   owning worker so the suspended frame stack never crosses threads.
//! * **Isolation** — every parse carries a step budget, every session a
//!   byte budget and a rolling deadline; an input that stalls, balloons,
//!   or loops is killed with a clean error and the worker moves on.
//! * **Front ends** — an in-process API ([`Server::parse`],
//!   [`Server::open`]) and a length-framed Unix-socket protocol
//!   ([`proto`], [`Server::serve_unix`]).
//!
//! ```no_run
//! use ipg_serve::{Config, Server};
//!
//! let server = Server::start(Config { workers: 4, ..Config::default() });
//! let archive = ipg_corpus::zip::generate(&Default::default()).bytes;
//! let summary = server.parse("zip", archive).expect("valid archive");
//! assert!(summary.nodes > 0);
//!
//! // Streaming: bytes arrive as they come off the wire.
//! let mut stream = server.open("dns").unwrap();
//! stream.feed(&[0x12, 0x34]);
//! let outcome = stream.finish();
//! # let _ = outcome;
//! ```

pub mod pool;
pub mod proto;
pub mod stats;

use ipg_core::interp::vm::{Hint, VmParser};
use ipg_core::Error;
use pool::{Job, Shard, Shared};
use stats::{Counters, StatsSnapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration. The defaults are production-lean: parallelism
/// from the machine, 50M-step fuel (the repo's standard "pathological
/// loop" bound), 64 MiB per-session buffers, 30 s session deadlines.
#[derive(Clone, Debug)]
pub struct Config {
    /// Worker threads (0 = `std::thread::available_parallelism`).
    pub workers: usize,
    /// Step budget per parse/session.
    pub max_steps: u64,
    /// Byte budget per streaming session.
    pub max_bytes: usize,
    /// Rolling inactivity deadline after which a session is evicted.
    pub session_deadline: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            workers: 0,
            max_steps: 50_000_000,
            max_bytes: 64 << 20,
            session_deadline: Duration::from_secs(30),
        }
    }
}

pub use ipg_formats::Registry;

/// Completion summary of a successful parse (what crosses the wire; the
/// in-process API returns it too, keeping both front ends honest about
/// the same contract).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSummary {
    /// VM steps executed.
    pub steps: u64,
    /// Suspensions taken (0 for one-shot jobs).
    pub suspends: u64,
    /// Parse-tree records allocated.
    pub nodes: usize,
    /// Input bytes consumed.
    pub bytes: usize,
}

/// A worker's answer to one job.
#[derive(Debug)]
pub enum Response {
    /// Parse completed.
    Done(ParseSummary),
    /// Session opened under this id.
    Opened {
        /// The session id to use in subsequent `Feed`/`Finish` calls.
        id: u64,
    },
    /// A streaming session wants more input.
    NeedInput {
        /// What would unlock progress.
        hint: Hint,
    },
    /// The parse failed or the request was invalid.
    Error(Error),
}

/// The running service: worker threads plus the shared state. Dropping
/// the server shuts the pool down (abandoning live sessions).
pub struct Server {
    shared: Arc<Shared>,
    registry: Registry,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
    rr: AtomicU64,
}

impl Server {
    /// Starts the pool over the corpus registry.
    pub fn start(cfg: Config) -> Server {
        Server::with_registry(cfg, Registry::corpus())
    }

    /// Starts the pool over an explicit registry.
    pub fn with_registry(cfg: Config, registry: Registry) -> Server {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            shards: (0..workers).map(|_| Shard::new()).collect(),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(0),
            max_steps: cfg.max_steps,
            max_bytes: cfg.max_bytes,
            session_deadline: cfg.session_deadline,
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ipg-serve-{w}"))
                    .spawn(move || pool::worker_loop(w, shared))
                    .expect("spawn worker")
            })
            .collect();
        Server {
            shared,
            registry,
            workers: handles,
            started: Instant::now(),
            rr: AtomicU64::new(0),
        }
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.shared.shards.len()
    }

    /// The registry backing this server.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Parses `input` under the named grammar, blocking until a worker
    /// picks it up and finishes.
    ///
    /// # Errors
    ///
    /// [`Error::Grammar`] for unknown grammar names; the parse's own
    /// error otherwise.
    pub fn parse(&self, grammar: &str, input: Vec<u8>) -> Result<ParseSummary, Error> {
        match self.parse_async(grammar, input)?.recv() {
            Ok(Response::Done(s)) => Ok(s),
            Ok(Response::Error(e)) => Err(e),
            Ok(_) => Err(Error::Session("protocol violation: unexpected response".into())),
            Err(_) => Err(Error::Session("worker dropped the request".into())),
        }
    }

    /// Submits a parse without waiting: the returned receiver yields the
    /// single [`Response`] when a worker completes it. This is the fan-in
    /// primitive the batch benchmark saturates the pool with.
    ///
    /// # Errors
    ///
    /// [`Error::Grammar`] for unknown grammar names.
    pub fn parse_async(&self, grammar: &str, input: Vec<u8>) -> Result<Receiver<Response>, Error> {
        let vm = self.lookup(grammar)?;
        let (tx, rx) = channel();
        let w = (self.rr.fetch_add(1, Ordering::Relaxed) as usize) % self.workers();
        self.shared.shards[w].push(Job::Parse { vm, input, reply: tx }, false);
        Ok(rx)
    }

    /// Opens a streaming session on the named grammar. The session is
    /// pinned to one worker; the handle routes chunks to it.
    ///
    /// # Errors
    ///
    /// [`Error::Grammar`] for unknown grammar names; [`Error::Session`]
    /// if the pool is shutting down.
    pub fn open(&self, grammar: &str) -> Result<StreamHandle<'_>, Error> {
        let vm = self.lookup(grammar)?;
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        let w = self.shared.owner_of(id);
        let (tx, rx) = channel();
        self.shared.shards[w].push(Job::Open { id, vm, reply: tx }, true);
        match rx.recv() {
            Ok(Response::Opened { id }) => Ok(StreamHandle { server: self, id }),
            Ok(Response::Error(e)) => Err(e),
            _ => Err(Error::Session("worker dropped the open request".into())),
        }
    }

    /// A point-in-time stats snapshot (parses/s, bytes/s, suspend counts,
    /// queue depths, eviction counts).
    pub fn stats(&self) -> StatsSnapshot {
        let depths = self.shared.shards.iter().map(|s| s.depth()).collect();
        StatsSnapshot::collect(&self.shared.counters, self.started, depths)
    }

    /// Stops the workers after the queues drain and joins them. Live
    /// streaming sessions are dropped (counted as evictions).
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for shard in &self.shared.shards {
            shard.notify();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    fn lookup(&self, grammar: &str) -> Result<&'static VmParser<'static>, Error> {
        self.registry
            .vm(grammar)
            .ok_or_else(|| Error::Grammar(format!("unknown grammar `{grammar}`")))
    }

    pub(crate) fn session_request(&self, id: u64, job: impl FnOnce(SenderOf) -> Job) -> Response {
        let w = self.shared.owner_of(id);
        let (tx, rx) = channel();
        self.shared.shards[w].push(job(tx), true);
        rx.recv().unwrap_or_else(|_| {
            Response::Error(Error::Session("worker dropped the request".into()))
        })
    }
}

type SenderOf = std::sync::mpsc::Sender<Response>;

impl Drop for Server {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop_workers();
        }
    }
}

/// In-process handle to a streaming session (the Unix-socket front end
/// speaks to the same sessions by id).
pub struct StreamHandle<'s> {
    server: &'s Server,
    id: u64,
}

impl StreamHandle<'_> {
    /// The session id (what the framed protocol carries).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Routes a chunk to the owning worker and waits for its answer.
    pub fn feed(&mut self, bytes: &[u8]) -> Response {
        self.server.session_request(self.id, |tx| Job::Feed {
            id: self.id,
            bytes: bytes.to_vec(),
            reply: tx,
        })
    }

    /// Signals end-of-input and waits for the final verdict.
    pub fn finish(self) -> Response {
        self.server.session_request(self.id, |tx| Job::Finish { id: self.id, reply: tx })
    }
}
