//! Service telemetry: lock-free counters bumped by the workers, read as a
//! consistent-enough snapshot by [`crate::Server::stats`].
//!
//! Two counter families coexist:
//!
//! * **parse-level** (`parses_ok`/`parses_err`, sessions, steps) — what
//!   the VM actually did;
//! * **request-level** (`submitted`/`completed`/`shed`/`failed`) — the
//!   admission-control ledger. Every admitted request is classified into
//!   exactly one terminal bucket, so at quiescence the books reconcile:
//!   `submitted == completed + shed + failed`. The chaos harness asserts
//!   this identity under injected faults — a panic, stall, or drain that
//!   loses a reply shows up as a reconciliation gap.

use crate::histo::LogHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic counters shared by every worker. All increments use relaxed
/// ordering: the snapshot is observational, not a synchronization point.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub parses_ok: AtomicU64,
    pub parses_err: AtomicU64,
    pub sessions_opened: AtomicU64,
    pub sessions_closed: AtomicU64,
    pub sessions_evicted: AtomicU64,
    /// Sessions sealed with GOAWAY during a drain (subset of closings).
    pub sessions_sealed: AtomicU64,
    pub bytes_in: AtomicU64,
    pub steps: AtomicU64,
    pub suspends: AtomicU64,
    pub steals: AtomicU64,
    pub live_sessions: AtomicU64,
    /// Requests admitted past grammar lookup (the reconciliation domain).
    pub requests_submitted: AtomicU64,
    /// Requests answered Done/Opened/NeedInput.
    pub requests_completed: AtomicU64,
    /// Requests answered BUSY (queue bound) or GOAWAY (draining).
    pub requests_shed: AtomicU64,
    /// Requests answered with a typed error (including worker panics).
    pub requests_failed: AtomicU64,
    /// Worker panics caught at the job boundary and converted to
    /// [`ipg_core::Error::WorkerPanic`] replies.
    pub panics_recovered: AtomicU64,
    /// Hot reloads that validated and swapped a new grammar generation in.
    pub reloads_ok: AtomicU64,
    /// Hot reloads refused (bad source or artifact); the previous
    /// generation remained current.
    pub reloads_rejected: AtomicU64,
    /// Invalid `.ipgc` artifacts quarantined (renamed `*.bad`) by the
    /// watcher instead of being served.
    pub artifacts_quarantined: AtomicU64,
    /// Admission→reply latency (shared log₂ bucketing; see
    /// [`crate::histo`]).
    pub latency: LogHistogram,
}

impl Counters {
    #[inline]
    pub(crate) fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time view of the service (the `STATS` protocol op returns
/// this as JSON; see the README for the field meanings).
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Completed parses (one-shot jobs plus finished sessions).
    pub parses_ok: u64,
    /// Failed parses (rejections, fuel/byte-budget kills, misuse).
    pub parses_err: u64,
    /// Streaming sessions opened.
    pub sessions_opened: u64,
    /// Streaming sessions that ran to Done/Error.
    pub sessions_closed: u64,
    /// Sessions dropped by deadline eviction.
    pub sessions_evicted: u64,
    /// Sessions sealed with GOAWAY during drain.
    pub sessions_sealed: u64,
    /// Sessions currently live across all workers.
    pub live_sessions: u64,
    /// Input bytes accepted (one-shot inputs plus streamed chunks).
    pub bytes_in: u64,
    /// VM steps executed by completed work.
    pub steps: u64,
    /// Suspensions taken by streaming sessions.
    pub suspends: u64,
    /// Jobs taken from another worker's queue.
    pub steals: u64,
    /// Requests admitted to the pool (or shed at admission).
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests shed with BUSY/GOAWAY instead of queued.
    pub shed: u64,
    /// Requests answered with a typed error.
    pub failed: u64,
    /// Worker panics caught and converted to typed error replies.
    pub panics_recovered: u64,
    /// Hot reloads that swapped a new grammar generation in.
    pub reloads_ok: u64,
    /// Hot reloads refused with the previous generation kept current.
    pub reloads_rejected: u64,
    /// Invalid artifacts quarantined by the watcher.
    pub artifacts_quarantined: u64,
    /// Median admission→reply latency, microseconds (log-bucketed).
    pub latency_p50_us: u64,
    /// 99th-percentile admission→reply latency, microseconds.
    pub latency_p99_us: u64,
    /// Seconds since the server started.
    pub elapsed_s: f64,
    /// Completed parses per second since start.
    pub parses_per_s: f64,
    /// Input bytes per second since start.
    pub bytes_per_s: f64,
    /// Total queue depth (pinned session jobs + stealable one-shot jobs)
    /// per worker at snapshot time.
    pub queue_depths: Vec<usize>,
}

impl StatsSnapshot {
    pub(crate) fn collect(c: &Counters, started: Instant, queue_depths: Vec<usize>) -> Self {
        let elapsed_s = started.elapsed().as_secs_f64().max(1e-9);
        let parses_ok = c.parses_ok.load(Ordering::Relaxed);
        let bytes_in = c.bytes_in.load(Ordering::Relaxed);
        StatsSnapshot {
            parses_ok,
            parses_err: c.parses_err.load(Ordering::Relaxed),
            sessions_opened: c.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: c.sessions_closed.load(Ordering::Relaxed),
            sessions_evicted: c.sessions_evicted.load(Ordering::Relaxed),
            sessions_sealed: c.sessions_sealed.load(Ordering::Relaxed),
            live_sessions: c.live_sessions.load(Ordering::Relaxed),
            bytes_in,
            steps: c.steps.load(Ordering::Relaxed),
            suspends: c.suspends.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            submitted: c.requests_submitted.load(Ordering::Relaxed),
            completed: c.requests_completed.load(Ordering::Relaxed),
            shed: c.requests_shed.load(Ordering::Relaxed),
            failed: c.requests_failed.load(Ordering::Relaxed),
            panics_recovered: c.panics_recovered.load(Ordering::Relaxed),
            reloads_ok: c.reloads_ok.load(Ordering::Relaxed),
            reloads_rejected: c.reloads_rejected.load(Ordering::Relaxed),
            artifacts_quarantined: c.artifacts_quarantined.load(Ordering::Relaxed),
            latency_p50_us: c.latency.percentile(0.50),
            latency_p99_us: c.latency.percentile(0.99),
            elapsed_s,
            parses_per_s: parses_ok as f64 / elapsed_s,
            bytes_per_s: bytes_in as f64 / elapsed_s,
            queue_depths,
        }
    }

    /// `true` when the admission ledger balances: every admitted request
    /// reached exactly one terminal bucket. Only meaningful at quiescence
    /// (in-flight requests are submitted but not yet classified).
    ///
    /// The body destructures the snapshot exhaustively (no `..`): adding
    /// a counter to [`StatsSnapshot`] fails compilation here until the
    /// new field is explicitly classified as part of the ledger identity
    /// or as informational — a counter can never be *silently* ignored
    /// by the reconciliation check again.
    pub fn reconciles(&self) -> bool {
        let StatsSnapshot {
            // The ledger identity.
            submitted,
            completed,
            shed,
            failed,
            // Informational: parse/session/VM telemetry, not admission
            // ledger entries.
            parses_ok: _,
            parses_err: _,
            sessions_opened: _,
            sessions_closed: _,
            sessions_evicted: _,
            sessions_sealed: _,
            live_sessions: _,
            bytes_in: _,
            steps: _,
            suspends: _,
            steals: _,
            panics_recovered: _,
            // Reload/quarantine counters: checked against the watcher's
            // ground truth by [`StatsSnapshot::reconciles_reloads`].
            reloads_ok: _,
            reloads_rejected: _,
            artifacts_quarantined: _,
            // Derived/latency fields.
            latency_p50_us: _,
            latency_p99_us: _,
            elapsed_s: _,
            parses_per_s: _,
            bytes_per_s: _,
            queue_depths: _,
        } = self;
        *submitted == completed + shed + failed
    }

    /// `true` when the reload/quarantine counters match the expected
    /// ground truth (e.g. the number of artifact swaps a test actually
    /// performed). Split from [`StatsSnapshot::reconciles`] because
    /// reloads are watcher events, not admission-ledger entries — but
    /// drain summaries and the chaos harness check both.
    pub fn reconciles_reloads(
        &self,
        expected_ok: u64,
        expected_rejected: u64,
        expected_quarantined: u64,
    ) -> bool {
        self.reloads_ok == expected_ok
            && self.reloads_rejected == expected_rejected
            && self.artifacts_quarantined == expected_quarantined
    }

    /// Renders the snapshot as a single JSON object (the wire format of
    /// the `STATS` op).
    pub fn to_json(&self) -> String {
        let depths: Vec<String> = self.queue_depths.iter().map(|d| d.to_string()).collect();
        format!(
            "{{\"parses_ok\": {}, \"parses_err\": {}, \"sessions_opened\": {}, \
             \"sessions_closed\": {}, \"sessions_evicted\": {}, \"sessions_sealed\": {}, \
             \"live_sessions\": {}, \"bytes_in\": {}, \"steps\": {}, \"suspends\": {}, \
             \"steals\": {}, \"submitted\": {}, \"completed\": {}, \"shed\": {}, \
             \"failed\": {}, \"panics_recovered\": {}, \"reloads_ok\": {}, \
             \"reloads_rejected\": {}, \"artifacts_quarantined\": {}, \
             \"latency_p50_us\": {}, \"latency_p99_us\": {}, \"elapsed_s\": {:.3}, \
             \"parses_per_s\": {:.1}, \"bytes_per_s\": {:.0}, \"queue_depths\": [{}]}}",
            self.parses_ok,
            self.parses_err,
            self.sessions_opened,
            self.sessions_closed,
            self.sessions_evicted,
            self.sessions_sealed,
            self.live_sessions,
            self.bytes_in,
            self.steps,
            self.suspends,
            self.steals,
            self.submitted,
            self.completed,
            self.shed,
            self.failed,
            self.panics_recovered,
            self.reloads_ok,
            self.reloads_rejected,
            self.artifacts_quarantined,
            self.latency_p50_us,
            self.latency_p99_us,
            self.elapsed_s,
            self.parses_per_s,
            self.bytes_per_s,
            depths.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> StatsSnapshot {
        let c = Counters::default();
        StatsSnapshot::collect(&c, Instant::now(), vec![0, 0])
    }

    #[test]
    fn ledger_reconciles_exactly() {
        let mut s = snapshot();
        s.submitted = 10;
        s.completed = 7;
        s.shed = 2;
        s.failed = 1;
        assert!(s.reconciles());
        // One lost reply breaks the identity in either direction.
        s.failed = 0;
        assert!(!s.reconciles());
        s.failed = 2;
        assert!(!s.reconciles());
    }

    #[test]
    fn reload_reconciliation_checks_every_watcher_counter() {
        let mut s = snapshot();
        s.reloads_ok = 2;
        s.reloads_rejected = 1;
        s.artifacts_quarantined = 1;
        assert!(s.reconciles_reloads(2, 1, 1));
        // A mismatch in any single counter fails the check — none of the
        // three can be silently ignored.
        assert!(!s.reconciles_reloads(3, 1, 1));
        assert!(!s.reconciles_reloads(2, 0, 1));
        assert!(!s.reconciles_reloads(2, 1, 0));
    }

    #[test]
    fn json_snapshot_names_every_reconciled_counter() {
        let j = snapshot().to_json();
        for key in [
            "submitted",
            "completed",
            "shed",
            "failed",
            "reloads_ok",
            "reloads_rejected",
            "artifacts_quarantined",
        ] {
            assert!(j.contains(&format!("\"{key}\"")), "missing {key} in {j}");
        }
    }
}
