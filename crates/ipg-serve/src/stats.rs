//! Service telemetry: lock-free counters bumped by the workers, read as a
//! consistent-enough snapshot by [`crate::Server::stats`].
//!
//! Two counter families coexist:
//!
//! * **parse-level** (`parses_ok`/`parses_err`, sessions, steps) — what
//!   the VM actually did;
//! * **request-level** (`submitted`/`completed`/`shed`/`failed`) — the
//!   admission-control ledger. Every admitted request is classified into
//!   exactly one terminal bucket, so at quiescence the books reconcile:
//!   `submitted == completed + shed + failed`. The chaos harness asserts
//!   this identity under injected faults — a panic, stall, or drain that
//!   loses a reply shows up as a reconciliation gap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Log₂-bucketed latency histogram in microseconds: bucket `i` counts
/// requests whose admission→reply latency fell in `[2^i, 2^(i+1))` µs.
/// Recording is one relaxed `fetch_add`; percentiles are computed at
/// snapshot time from the bucket boundaries (geometric midpoints), which
/// is plenty for p50/p99 on a log scale.
#[derive(Debug)]
pub(crate) struct Histogram {
    buckets: [AtomicU64; 40],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl Histogram {
    pub(crate) fn record(&self, latency: Duration) {
        let us = (latency.as_micros() as u64).max(1);
        let idx = (63 - us.leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// The `p`-th percentile (0.0–1.0) in microseconds, 0 when empty.
    pub(crate) fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)).
                return (1u64 << i) + (1u64 << i) / 2;
            }
        }
        unreachable!("rank is clamped to the total count")
    }
}

/// Monotonic counters shared by every worker. All increments use relaxed
/// ordering: the snapshot is observational, not a synchronization point.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub parses_ok: AtomicU64,
    pub parses_err: AtomicU64,
    pub sessions_opened: AtomicU64,
    pub sessions_closed: AtomicU64,
    pub sessions_evicted: AtomicU64,
    /// Sessions sealed with GOAWAY during a drain (subset of closings).
    pub sessions_sealed: AtomicU64,
    pub bytes_in: AtomicU64,
    pub steps: AtomicU64,
    pub suspends: AtomicU64,
    pub steals: AtomicU64,
    pub live_sessions: AtomicU64,
    /// Requests admitted past grammar lookup (the reconciliation domain).
    pub requests_submitted: AtomicU64,
    /// Requests answered Done/Opened/NeedInput.
    pub requests_completed: AtomicU64,
    /// Requests answered BUSY (queue bound) or GOAWAY (draining).
    pub requests_shed: AtomicU64,
    /// Requests answered with a typed error (including worker panics).
    pub requests_failed: AtomicU64,
    /// Worker panics caught at the job boundary and converted to
    /// [`ipg_core::Error::WorkerPanic`] replies.
    pub panics_recovered: AtomicU64,
    /// Hot reloads that validated and swapped a new grammar generation in.
    pub reloads_ok: AtomicU64,
    /// Hot reloads refused (bad source or artifact); the previous
    /// generation remained current.
    pub reloads_rejected: AtomicU64,
    /// Invalid `.ipgc` artifacts quarantined (renamed `*.bad`) by the
    /// watcher instead of being served.
    pub artifacts_quarantined: AtomicU64,
    pub latency: Histogram,
}

impl Counters {
    #[inline]
    pub(crate) fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time view of the service (the `STATS` protocol op returns
/// this as JSON; see the README for the field meanings).
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Completed parses (one-shot jobs plus finished sessions).
    pub parses_ok: u64,
    /// Failed parses (rejections, fuel/byte-budget kills, misuse).
    pub parses_err: u64,
    /// Streaming sessions opened.
    pub sessions_opened: u64,
    /// Streaming sessions that ran to Done/Error.
    pub sessions_closed: u64,
    /// Sessions dropped by deadline eviction.
    pub sessions_evicted: u64,
    /// Sessions sealed with GOAWAY during drain.
    pub sessions_sealed: u64,
    /// Sessions currently live across all workers.
    pub live_sessions: u64,
    /// Input bytes accepted (one-shot inputs plus streamed chunks).
    pub bytes_in: u64,
    /// VM steps executed by completed work.
    pub steps: u64,
    /// Suspensions taken by streaming sessions.
    pub suspends: u64,
    /// Jobs taken from another worker's queue.
    pub steals: u64,
    /// Requests admitted to the pool (or shed at admission).
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests shed with BUSY/GOAWAY instead of queued.
    pub shed: u64,
    /// Requests answered with a typed error.
    pub failed: u64,
    /// Worker panics caught and converted to typed error replies.
    pub panics_recovered: u64,
    /// Hot reloads that swapped a new grammar generation in.
    pub reloads_ok: u64,
    /// Hot reloads refused with the previous generation kept current.
    pub reloads_rejected: u64,
    /// Invalid artifacts quarantined by the watcher.
    pub artifacts_quarantined: u64,
    /// Median admission→reply latency, microseconds (log-bucketed).
    pub latency_p50_us: u64,
    /// 99th-percentile admission→reply latency, microseconds.
    pub latency_p99_us: u64,
    /// Seconds since the server started.
    pub elapsed_s: f64,
    /// Completed parses per second since start.
    pub parses_per_s: f64,
    /// Input bytes per second since start.
    pub bytes_per_s: f64,
    /// Total queue depth (pinned session jobs + stealable one-shot jobs)
    /// per worker at snapshot time.
    pub queue_depths: Vec<usize>,
}

impl StatsSnapshot {
    pub(crate) fn collect(c: &Counters, started: Instant, queue_depths: Vec<usize>) -> Self {
        let elapsed_s = started.elapsed().as_secs_f64().max(1e-9);
        let parses_ok = c.parses_ok.load(Ordering::Relaxed);
        let bytes_in = c.bytes_in.load(Ordering::Relaxed);
        StatsSnapshot {
            parses_ok,
            parses_err: c.parses_err.load(Ordering::Relaxed),
            sessions_opened: c.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: c.sessions_closed.load(Ordering::Relaxed),
            sessions_evicted: c.sessions_evicted.load(Ordering::Relaxed),
            sessions_sealed: c.sessions_sealed.load(Ordering::Relaxed),
            live_sessions: c.live_sessions.load(Ordering::Relaxed),
            bytes_in,
            steps: c.steps.load(Ordering::Relaxed),
            suspends: c.suspends.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            submitted: c.requests_submitted.load(Ordering::Relaxed),
            completed: c.requests_completed.load(Ordering::Relaxed),
            shed: c.requests_shed.load(Ordering::Relaxed),
            failed: c.requests_failed.load(Ordering::Relaxed),
            panics_recovered: c.panics_recovered.load(Ordering::Relaxed),
            reloads_ok: c.reloads_ok.load(Ordering::Relaxed),
            reloads_rejected: c.reloads_rejected.load(Ordering::Relaxed),
            artifacts_quarantined: c.artifacts_quarantined.load(Ordering::Relaxed),
            latency_p50_us: c.latency.percentile(0.50),
            latency_p99_us: c.latency.percentile(0.99),
            elapsed_s,
            parses_per_s: parses_ok as f64 / elapsed_s,
            bytes_per_s: bytes_in as f64 / elapsed_s,
            queue_depths,
        }
    }

    /// `true` when the admission ledger balances: every admitted request
    /// reached exactly one terminal bucket. Only meaningful at quiescence
    /// (in-flight requests are submitted but not yet classified).
    pub fn reconciles(&self) -> bool {
        self.submitted == self.completed + self.shed + self.failed
    }

    /// Renders the snapshot as a single JSON object (the wire format of
    /// the `STATS` op).
    pub fn to_json(&self) -> String {
        let depths: Vec<String> = self.queue_depths.iter().map(|d| d.to_string()).collect();
        format!(
            "{{\"parses_ok\": {}, \"parses_err\": {}, \"sessions_opened\": {}, \
             \"sessions_closed\": {}, \"sessions_evicted\": {}, \"sessions_sealed\": {}, \
             \"live_sessions\": {}, \"bytes_in\": {}, \"steps\": {}, \"suspends\": {}, \
             \"steals\": {}, \"submitted\": {}, \"completed\": {}, \"shed\": {}, \
             \"failed\": {}, \"panics_recovered\": {}, \"reloads_ok\": {}, \
             \"reloads_rejected\": {}, \"artifacts_quarantined\": {}, \
             \"latency_p50_us\": {}, \"latency_p99_us\": {}, \"elapsed_s\": {:.3}, \
             \"parses_per_s\": {:.1}, \"bytes_per_s\": {:.0}, \"queue_depths\": [{}]}}",
            self.parses_ok,
            self.parses_err,
            self.sessions_opened,
            self.sessions_closed,
            self.sessions_evicted,
            self.sessions_sealed,
            self.live_sessions,
            self.bytes_in,
            self.steps,
            self.suspends,
            self.steals,
            self.submitted,
            self.completed,
            self.shed,
            self.failed,
            self.panics_recovered,
            self.reloads_ok,
            self.reloads_rejected,
            self.artifacts_quarantined,
            self.latency_p50_us,
            self.latency_p99_us,
            self.elapsed_s,
            self.parses_per_s,
            self.bytes_per_s,
            depths.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_monotone_and_bucketed() {
        let h = Histogram::default();
        for us in [1u64, 2, 3, 100, 100, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99, "p50 {p50} must not exceed p99 {p99}");
        // p50 of the sample sits in the 64–128µs bucket (midpoint 96).
        assert_eq!(p50, 96);
        // p99 lands in the 4096–8192µs bucket (midpoint 6144).
        assert_eq!(p99, 6144);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.99), 0);
    }
}
