//! Service telemetry: lock-free counters bumped by the workers, read as a
//! consistent-enough snapshot by [`crate::Server::stats`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic counters shared by every worker. All increments use relaxed
/// ordering: the snapshot is observational, not a synchronization point.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub parses_ok: AtomicU64,
    pub parses_err: AtomicU64,
    pub sessions_opened: AtomicU64,
    pub sessions_closed: AtomicU64,
    pub sessions_evicted: AtomicU64,
    pub bytes_in: AtomicU64,
    pub steps: AtomicU64,
    pub suspends: AtomicU64,
    pub steals: AtomicU64,
    pub live_sessions: AtomicU64,
}

impl Counters {
    #[inline]
    pub(crate) fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time view of the service (the `STATS` protocol op returns
/// this as JSON; see the README for the field meanings).
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Completed parses (one-shot jobs plus finished sessions).
    pub parses_ok: u64,
    /// Failed parses (rejections, fuel/byte-budget kills, misuse).
    pub parses_err: u64,
    /// Streaming sessions opened.
    pub sessions_opened: u64,
    /// Streaming sessions that ran to Done/Error.
    pub sessions_closed: u64,
    /// Sessions dropped by deadline eviction.
    pub sessions_evicted: u64,
    /// Sessions currently live across all workers.
    pub live_sessions: u64,
    /// Input bytes accepted (one-shot inputs plus streamed chunks).
    pub bytes_in: u64,
    /// VM steps executed by completed work.
    pub steps: u64,
    /// Suspensions taken by streaming sessions.
    pub suspends: u64,
    /// Jobs taken from another worker's queue.
    pub steals: u64,
    /// Seconds since the server started.
    pub elapsed_s: f64,
    /// Completed parses per second since start.
    pub parses_per_s: f64,
    /// Input bytes per second since start.
    pub bytes_per_s: f64,
    /// Total queue depth (pinned session jobs + stealable one-shot jobs)
    /// per worker at snapshot time.
    pub queue_depths: Vec<usize>,
}

impl StatsSnapshot {
    pub(crate) fn collect(c: &Counters, started: Instant, queue_depths: Vec<usize>) -> Self {
        let elapsed_s = started.elapsed().as_secs_f64().max(1e-9);
        let parses_ok = c.parses_ok.load(Ordering::Relaxed);
        let bytes_in = c.bytes_in.load(Ordering::Relaxed);
        StatsSnapshot {
            parses_ok,
            parses_err: c.parses_err.load(Ordering::Relaxed),
            sessions_opened: c.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: c.sessions_closed.load(Ordering::Relaxed),
            sessions_evicted: c.sessions_evicted.load(Ordering::Relaxed),
            live_sessions: c.live_sessions.load(Ordering::Relaxed),
            bytes_in,
            steps: c.steps.load(Ordering::Relaxed),
            suspends: c.suspends.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            elapsed_s,
            parses_per_s: parses_ok as f64 / elapsed_s,
            bytes_per_s: bytes_in as f64 / elapsed_s,
            queue_depths,
        }
    }

    /// Renders the snapshot as a single JSON object (the wire format of
    /// the `STATS` op).
    pub fn to_json(&self) -> String {
        let depths: Vec<String> = self.queue_depths.iter().map(|d| d.to_string()).collect();
        format!(
            "{{\"parses_ok\": {}, \"parses_err\": {}, \"sessions_opened\": {}, \
             \"sessions_closed\": {}, \"sessions_evicted\": {}, \"live_sessions\": {}, \
             \"bytes_in\": {}, \"steps\": {}, \"suspends\": {}, \"steals\": {}, \
             \"elapsed_s\": {:.3}, \"parses_per_s\": {:.1}, \"bytes_per_s\": {:.0}, \
             \"queue_depths\": [{}]}}",
            self.parses_ok,
            self.parses_err,
            self.sessions_opened,
            self.sessions_closed,
            self.sessions_evicted,
            self.live_sessions,
            self.bytes_in,
            self.steps,
            self.suspends,
            self.steals,
            self.elapsed_s,
            self.parses_per_s,
            self.bytes_per_s,
            depths.join(", ")
        )
    }
}
