//! The central metrics registry: every counter the service maintains —
//! request ledger, parse/session telemetry, reload/quarantine counts,
//! artifact-cache totals, latency histogram, queue depths — registered
//! once under a stable name and exposed in Prometheus text format
//! (version 0.0.4).
//!
//! Three registration shapes cover every producer in the tree:
//!
//! * **owned handles** ([`Registry::counter`], [`Registry::gauge`]) —
//!   new metrics created by the registry itself (the trace subsystem
//!   uses these);
//! * **shared atomics** ([`Registry::register_counter_shared`]) — an
//!   existing `Arc<AtomicU64>` maintained elsewhere (e.g.
//!   [`ipg_core::ipgc::Cache`] counters) is registered without moving
//!   ownership, so the producer's hot path is untouched;
//! * **closures** ([`Registry::counter_fn`] / [`Registry::gauge_fn`] /
//!   [`Registry::histogram_fn`] / [`Registry::gauge_vec_fn`]) — values
//!   computed at scrape time from state the registry cannot own (the
//!   pool's [`crate::stats::Counters`], per-worker queue depths, the
//!   in-flight derivation `submitted − completed − shed − failed`).
//!
//! Scraping never takes a producer-side lock: counters are relaxed
//! atomic loads and the histogram is copied bucket-by-bucket, so a
//! scrape under full traffic observes a consistent-enough snapshot
//! without stalling a single request. The admission-ledger identity is
//! checked *at scrape time* by [`Registry::gather`]'s callers: the
//! exported `ipg_requests_in_flight` gauge is exactly the reconciliation
//! gap, so `submitted == completed + shed + failed + in_flight` holds on
//! every scrape, not just at quiescence.

use crate::histo::{self, BUCKET_COUNT};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotone counter handle. Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (relaxed; the scrape is observational).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A set-to-current-value gauge handle. Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Where one family's sample values come from at scrape time.
enum Source {
    Counter(Arc<AtomicU64>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    Gauge(Arc<AtomicU64>),
    GaugeFn(Box<dyn Fn() -> u64 + Send + Sync>),
    /// Bucket counts (exclusive log₂ upper bounds per [`crate::histo`])
    /// plus the running sum of observed values.
    HistogramFn(Box<dyn Fn() -> ([u64; BUCKET_COUNT], u64) + Send + Sync>),
    /// One gauge sample per label value (e.g. per-worker queue depth).
    GaugeVecFn {
        label: &'static str,
        read: Box<dyn Fn() -> Vec<(String, u64)> + Send + Sync>,
    },
}

impl Source {
    fn type_name(&self) -> &'static str {
        match self {
            Source::Counter(_) | Source::CounterFn(_) => "counter",
            Source::Gauge(_) | Source::GaugeFn(_) | Source::GaugeVecFn { .. } => "gauge",
            Source::HistogramFn(_) => "histogram",
        }
    }
}

struct Family {
    name: String,
    help: String,
    source: Source,
}

/// The registry: a set of named metric families gathered into one
/// Prometheus text document. Registration happens at server startup;
/// duplicate names are a programming error and panic immediately rather
/// than producing an invalid exposition later.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

/// `true` for a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, source: Source) {
        assert!(valid_name(name), "invalid metric name `{name}`");
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!families.iter().any(|f| f.name == name), "metric `{name}` registered twice");
        families.push(Family { name: name.to_owned(), help: help.to_owned(), source });
    }

    /// Creates and registers a new counter, returning its handle.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let cell = Arc::new(AtomicU64::new(0));
        self.register(name, help, Source::Counter(Arc::clone(&cell)));
        Counter(cell)
    }

    /// Registers an existing shared atomic as a counter — the producer
    /// keeps incrementing it exactly as before; the registry only reads.
    pub fn register_counter_shared(&self, name: &str, help: &str, cell: Arc<AtomicU64>) {
        self.register(name, help, Source::Counter(cell));
    }

    /// Registers a counter whose value is computed at scrape time.
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, Source::CounterFn(Box::new(read)));
    }

    /// Creates and registers a new gauge, returning its handle.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let cell = Arc::new(AtomicU64::new(0));
        self.register(name, help, Source::Gauge(Arc::clone(&cell)));
        Gauge(cell)
    }

    /// Registers a gauge whose value is computed at scrape time.
    pub fn gauge_fn(&self, name: &str, help: &str, read: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register(name, help, Source::GaugeFn(Box::new(read)));
    }

    /// Registers a labeled gauge family: `read` returns one
    /// `(label_value, sample)` pair per series, re-evaluated every
    /// scrape.
    pub fn gauge_vec_fn(
        &self,
        name: &str,
        help: &str,
        label: &'static str,
        read: impl Fn() -> Vec<(String, u64)> + Send + Sync + 'static,
    ) {
        self.register(name, help, Source::GaugeVecFn { label, read: Box::new(read) });
    }

    /// Registers a histogram over the shared log₂ buckets
    /// ([`crate::histo`]): `read` returns the bucket counts and the
    /// running sum, typically copied from a
    /// [`crate::histo::LogHistogram`].
    pub fn histogram_fn(
        &self,
        name: &str,
        help: &str,
        read: impl Fn() -> ([u64; BUCKET_COUNT], u64) + Send + Sync + 'static,
    ) {
        self.register(name, help, Source::HistogramFn(Box::new(read)));
    }

    /// Renders every family as Prometheus text format 0.0.4: `# HELP` /
    /// `# TYPE` headers followed by the samples, histograms as
    /// cumulative `_bucket{le="..."}` series plus `_sum` / `_count`.
    pub fn gather(&self) -> String {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for f in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.source.type_name());
            match &f.source {
                Source::Counter(cell) | Source::Gauge(cell) => {
                    let _ = writeln!(out, "{} {}", f.name, cell.load(Ordering::Relaxed));
                }
                Source::CounterFn(read) | Source::GaugeFn(read) => {
                    let _ = writeln!(out, "{} {}", f.name, read());
                }
                Source::GaugeVecFn { label, read } => {
                    for (value, sample) in read() {
                        let _ = writeln!(out, "{}{{{}=\"{}\"}} {}", f.name, label, value, sample);
                    }
                }
                Source::HistogramFn(read) => {
                    let (counts, sum) = read();
                    let mut cumulative = 0u64;
                    for (i, n) in counts.iter().enumerate() {
                        cumulative += n;
                        // `le` is the bucket's upper bound; the shared
                        // buckets are half-open `[2^i, 2^(i+1))`, so the
                        // exported bound is `2^(i+1) - 1` to keep the
                        // cumulative counts exact under Prometheus's
                        // inclusive-`le` convention.
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {}",
                            f.name,
                            histo::bucket_hi(i) - 1,
                            cumulative
                        );
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", f.name, cumulative);
                    let _ = writeln!(out, "{}_sum {}", f.name, sum);
                    let _ = writeln!(out, "{}_count {}", f.name, cumulative);
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("Registry").field("families", &families.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histo::LogHistogram;

    #[test]
    fn counters_and_gauges_render_with_headers() {
        let r = Registry::new();
        let c = r.counter("t_requests_total", "Requests seen.");
        c.add(3);
        let g = r.gauge("t_depth", "Current depth.");
        g.set(7);
        let text = r.gather();
        assert!(text.contains("# HELP t_requests_total Requests seen.\n"));
        assert!(text.contains("# TYPE t_requests_total counter\n"));
        assert!(
            text.contains("\nt_requests_total 3\n") || text.starts_with("t_requests_total 3\n")
        );
        assert!(text.contains("# TYPE t_depth gauge\n"));
        assert!(text.contains("t_depth 7\n"));
    }

    #[test]
    fn shared_and_fn_sources_read_live_values() {
        let r = Registry::new();
        let cell = Arc::new(AtomicU64::new(0));
        r.register_counter_shared("t_shared_total", "Shared cell.", Arc::clone(&cell));
        r.counter_fn("t_derived_total", "Derived.", || 42);
        cell.fetch_add(5, Ordering::Relaxed);
        let text = r.gather();
        assert!(text.contains("t_shared_total 5\n"));
        assert!(text.contains("t_derived_total 42\n"));
        // A later scrape observes later increments: the registry reads,
        // never snapshots at registration.
        cell.fetch_add(1, Ordering::Relaxed);
        assert!(r.gather().contains("t_shared_total 6\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_and_count() {
        let r = Registry::new();
        let h = Arc::new(LogHistogram::default());
        let hh = Arc::clone(&h);
        r.histogram_fn("t_latency_us", "Latency.", move || (hh.counts(), hh.sum_us()));
        h.record_us(1); // bucket 0 (le="1")
        h.record_us(3); // bucket 1 (le="3")
        h.record_us(100); // bucket 6 (le="127")
        let text = r.gather();
        assert!(text.contains("# TYPE t_latency_us histogram\n"));
        assert!(text.contains("t_latency_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("t_latency_us_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("t_latency_us_bucket{le=\"127\"} 3\n"));
        assert!(text.contains("t_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("t_latency_us_sum 104\n"));
        assert!(text.contains("t_latency_us_count 3\n"));
    }

    #[test]
    fn gauge_vec_emits_one_series_per_label_value() {
        let r = Registry::new();
        r.gauge_vec_fn("t_queue_depth", "Depth per worker.", "worker", || {
            vec![("0".into(), 4), ("1".into(), 9)]
        });
        let text = r.gather();
        assert!(text.contains("t_queue_depth{worker=\"0\"} 4\n"));
        assert!(text.contains("t_queue_depth{worker=\"1\"} 9\n"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let r = Registry::new();
        r.counter("t_dup_total", "First.");
        r.counter("t_dup_total", "Second.");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        let r = Registry::new();
        r.counter("0starts_with_digit", "Bad.");
    }
}
