//! The sharded worker pool: one queue per worker, work stealing for
//! one-shot jobs, pinned delivery for streaming-session jobs, and
//! deadline-based eviction so a stalled or hostile stream cannot pin a
//! worker's memory forever.
//!
//! Sharding follows the zero-copy request-processing playbook: each
//! worker owns its sessions outright (no cross-worker locking on the hot
//! path), jobs carry owned buffers, and only the queue handoff takes a
//! lock. Stealing moves work, never sessions: a `Feed` for session `id`
//! must reach the worker holding that session's frame stack, so pinned
//! jobs are not stealable.

use crate::stats::Counters;
use crate::{ParseSummary, Response};
use ipg_core::interp::vm::{Outcome, Session, VmParser};
use ipg_core::Error;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long an idle worker sleeps between queue checks; also bounds how
/// stale a deadline eviction can be.
const IDLE_WAIT: Duration = Duration::from_millis(20);

/// One unit of work. `reply` is a rendezvous channel: every job sends
/// exactly one [`Response`].
pub(crate) enum Job {
    /// Parse `input` in one shot.
    Parse { vm: &'static VmParser<'static>, input: Vec<u8>, reply: Sender<Response> },
    /// Open a streaming session under `id` (pre-routed to the owner).
    Open { id: u64, vm: &'static VmParser<'static>, reply: Sender<Response> },
    /// Append a chunk to session `id`.
    Feed { id: u64, bytes: Vec<u8>, reply: Sender<Response> },
    /// Signal end-of-input to session `id`.
    Finish { id: u64, reply: Sender<Response> },
}

/// A worker's two queues: `pinned` (session jobs, owner-only) and
/// `shared` (one-shot jobs, stealable from the back).
#[derive(Default)]
struct ShardQueues {
    pinned: VecDeque<Job>,
    shared: VecDeque<Job>,
}

pub(crate) struct Shard {
    queues: Mutex<ShardQueues>,
    ready: Condvar,
}

impl Shard {
    pub(crate) fn new() -> Self {
        Shard { queues: Mutex::new(ShardQueues::default()), ready: Condvar::new() }
    }

    pub(crate) fn push(&self, job: Job, pinned: bool) {
        let mut q = self.queues.lock().expect("shard lock");
        if pinned {
            q.pinned.push_back(job);
        } else {
            q.shared.push_back(job);
        }
        drop(q);
        self.ready.notify_one();
    }

    /// Total backlog (pinned + shared) — the stats gauge.
    pub(crate) fn depth(&self) -> usize {
        let q = self.queues.lock().expect("shard lock");
        q.pinned.len() + q.shared.len()
    }

    /// Stealable (shared-queue-only) backlog — the number a thief cares
    /// about; pinned session jobs cannot move.
    fn steal_depth(&self) -> usize {
        let q = self.queues.lock().expect("shard lock");
        q.shared.len()
    }

    pub(crate) fn notify(&self) {
        self.ready.notify_all();
    }

    /// Pops the next local job, preferring pinned work (a stalled `Feed`
    /// blocks a remote caller; batch jobs have no one waiting on latency).
    fn pop_local(&self) -> Option<Job> {
        let mut q = self.queues.lock().expect("shard lock");
        q.pinned.pop_front().or_else(|| q.shared.pop_front())
    }

    /// Steals one one-shot job from the back of the shared queue.
    fn steal(&self) -> Option<Job> {
        let mut q = self.queues.lock().expect("shard lock");
        q.shared.pop_back()
    }

    fn wait_brief(&self) {
        let q = self.queues.lock().expect("shard lock");
        if q.pinned.is_empty() && q.shared.is_empty() {
            let _ = self.ready.wait_timeout(q, IDLE_WAIT).expect("shard lock");
        }
    }

    fn is_empty(&self) -> bool {
        let q = self.queues.lock().expect("shard lock");
        q.pinned.is_empty() && q.shared.is_empty()
    }
}

/// State shared by the server handle and every worker.
pub(crate) struct Shared {
    pub(crate) shards: Vec<Shard>,
    pub(crate) counters: Counters,
    pub(crate) shutdown: AtomicBool,
    pub(crate) next_session: AtomicU64,
    pub(crate) max_steps: u64,
    pub(crate) max_bytes: usize,
    pub(crate) session_deadline: Duration,
}

impl Shared {
    /// The worker owning session `id` (ids are dealt round-robin).
    pub(crate) fn owner_of(&self, id: u64) -> usize {
        (id % self.shards.len() as u64) as usize
    }
}

/// A live streaming session pinned to one worker.
struct Active {
    session: Session<'static>,
    deadline: Instant,
}

/// The worker body: drain local work, steal when idle, evict expired
/// sessions, exit on shutdown once the queues are dry.
pub(crate) fn worker_loop(me: usize, shared: Arc<Shared>) {
    let mut sessions: HashMap<u64, Active> = HashMap::new();
    loop {
        let job = shared.shards[me].pop_local().or_else(|| {
            // Idle: steal a batch job from the sibling with the deepest
            // *stealable* backlog (pinned session jobs cannot move, so
            // they must not influence victim selection).
            let victim = (0..shared.shards.len())
                .filter(|w| *w != me)
                .map(|w| (shared.shards[w].steal_depth(), w))
                .max();
            let stolen = match victim {
                Some((depth, w)) if depth > 0 => shared.shards[w].steal(),
                _ => None,
            };
            if stolen.is_some() {
                Counters::add(&shared.counters.steals, 1);
            }
            stolen
        });
        match job {
            Some(job) => run_job(job, &shared, &mut sessions),
            None => {
                evict_expired(&shared, &mut sessions);
                if shared.shutdown.load(Ordering::Acquire) && shared.shards[me].is_empty() {
                    // Dropped sessions count as evictions: the host chose
                    // to stop serving them.
                    Counters::add(&shared.counters.sessions_evicted, sessions.len() as u64);
                    Counters::add(
                        &shared.counters.live_sessions,
                        (sessions.len() as u64).wrapping_neg(),
                    );
                    return;
                }
                shared.shards[me].wait_brief();
            }
        }
        evict_expired(&shared, &mut sessions);
    }
}

fn evict_expired(shared: &Arc<Shared>, sessions: &mut HashMap<u64, Active>) {
    if sessions.is_empty() {
        return;
    }
    let now = Instant::now();
    sessions.retain(|_, a| {
        let keep = a.deadline > now;
        if !keep {
            Counters::add(&shared.counters.sessions_evicted, 1);
            Counters::add(&shared.counters.live_sessions, 1u64.wrapping_neg());
        }
        keep
    });
}

fn run_job(job: Job, shared: &Arc<Shared>, sessions: &mut HashMap<u64, Active>) {
    let c = &shared.counters;
    match job {
        Job::Parse { vm, input, reply } => {
            Counters::add(&c.bytes_in, input.len() as u64);
            let (result, stats) = vm.parse_bounded(&input, shared.max_steps);
            let resp = match result {
                Ok(tree) => {
                    Counters::add(&c.parses_ok, 1);
                    Counters::add(&c.steps, stats.steps);
                    Response::Done(ParseSummary {
                        steps: stats.steps,
                        suspends: 0,
                        nodes: tree.arena().len(),
                        bytes: input.len(),
                    })
                }
                Err(e) => {
                    Counters::add(&c.parses_err, 1);
                    Counters::add(&c.steps, stats.steps);
                    Response::Error(e)
                }
            };
            let _ = reply.send(resp);
        }
        Job::Open { id, vm, reply } => {
            let session = vm.streaming().max_steps(shared.max_steps).max_bytes(shared.max_bytes);
            let deadline = Instant::now() + shared.session_deadline;
            sessions.insert(id, Active { session, deadline });
            Counters::add(&c.sessions_opened, 1);
            Counters::add(&c.live_sessions, 1);
            let _ = reply.send(Response::Opened { id });
        }
        Job::Feed { id, bytes, reply } => {
            let Some(active) = sessions.get_mut(&id) else {
                let _ = reply.send(Response::Error(unknown_session(id)));
                return;
            };
            Counters::add(&c.bytes_in, bytes.len() as u64);
            active.deadline = Instant::now() + shared.session_deadline;
            let resp = match active.session.feed(&bytes) {
                Outcome::NeedInput { hint } => Response::NeedInput { hint },
                Outcome::Error(e) => {
                    close_session(shared, sessions, id, false);
                    Response::Error(e)
                }
                Outcome::Done(_) => unreachable!("feed never completes a session"),
            };
            let _ = reply.send(resp);
        }
        Job::Finish { id, reply } => {
            let Some(active) = sessions.get_mut(&id) else {
                let _ = reply.send(Response::Error(unknown_session(id)));
                return;
            };
            let outcome = active.session.finish();
            let stats = active.session.stats();
            let suspends = active.session.suspends();
            let bytes = active.session.buffered();
            Counters::add(&c.steps, stats.steps);
            Counters::add(&c.suspends, suspends);
            let resp = match outcome {
                Outcome::Done(tree) => {
                    close_session(shared, sessions, id, true);
                    Response::Done(ParseSummary {
                        steps: stats.steps,
                        suspends,
                        nodes: tree.arena().len(),
                        bytes,
                    })
                }
                Outcome::Error(e) => {
                    close_session(shared, sessions, id, false);
                    Response::Error(e)
                }
                Outcome::NeedInput { .. } => unreachable!("finish never needs input"),
            };
            let _ = reply.send(resp);
        }
    }
}

fn close_session(shared: &Arc<Shared>, sessions: &mut HashMap<u64, Active>, id: u64, ok: bool) {
    sessions.remove(&id);
    let c = &shared.counters;
    Counters::add(&c.sessions_closed, 1);
    Counters::add(&c.live_sessions, 1u64.wrapping_neg());
    Counters::add(if ok { &c.parses_ok } else { &c.parses_err }, 1);
}

fn unknown_session(id: u64) -> Error {
    Error::Session(format!("unknown session {id} (never opened, finished, or evicted)"))
}
