//! The sharded worker pool: one queue per worker, work stealing for
//! one-shot jobs, pinned delivery for streaming-session jobs, and
//! deadline-based eviction so a stalled or hostile stream cannot pin a
//! worker's memory forever.
//!
//! Sharding follows the zero-copy request-processing playbook: each
//! worker owns its sessions outright (no cross-worker locking on the hot
//! path), jobs carry owned buffers, and only the queue handoff takes a
//! lock. Stealing moves work, never sessions: a `Feed` for session `id`
//! must reach the worker holding that session's frame stack, so pinned
//! jobs are not stealable.
//!
//! Fault tolerance:
//!
//! * **Panic isolation** — every job body runs under `catch_unwind`; a
//!   panicking parse (or an injected fault) costs exactly that job, which
//!   is answered with a typed [`Error::WorkerPanic`], and the worker
//!   keeps serving. Shard locks are poison-recovered, so even a panic in
//!   an unexpected place can never wedge the queue handoff.
//! * **Admission control** — the shared (one-shot) queue is bounded; jobs
//!   over the bound are shed at submission with `BUSY` instead of queued.
//!   Pinned session queues stay unbounded by design: session traffic is
//!   self-clocking (one outstanding request per handle/connection), so
//!   its depth is bounded by the number of live sessions, and letting it
//!   through last honors "pinned traffic degrades last".
//! * **Drain** — once [`Shared::draining`] is set, queued one-shot jobs
//!   still execute (flush), but session jobs are answered `GOAWAY` and
//!   their sessions sealed; workers seal any remaining sessions before
//!   exiting instead of silently dropping them.

use crate::fault::{Fault, FaultPlan};
use crate::stats::Counters;
use crate::{ParseSummary, Response};
use ipg_core::interp::vm::{Outcome, Session};
use ipg_core::Error;
use ipg_formats::Compiled;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How long an idle worker sleeps between queue checks; also bounds how
/// stale a deadline eviction can be.
const IDLE_WAIT: Duration = Duration::from_millis(20);

/// What one job asks for. Owned buffers only: jobs cross threads. Jobs
/// that execute a grammar carry a pinned [`Compiled`] generation — the
/// handle the admission path resolved — so a concurrent hot reload can
/// never pull a program out from under queued or running work.
pub(crate) enum JobKind {
    /// Parse `input` in one shot.
    Parse { vm: Arc<Compiled>, input: Vec<u8> },
    /// Open a streaming session under `id` (pre-routed to the owner).
    Open { id: u64, vm: Arc<Compiled> },
    /// Append a chunk to session `id`.
    Feed { id: u64, bytes: Vec<u8> },
    /// Signal end-of-input to session `id`.
    Finish { id: u64 },
}

impl JobKind {
    /// The session this job touches, if any — the state a caught panic
    /// may have corrupted and must therefore be discarded.
    fn session_id(&self) -> Option<u64> {
        match self {
            JobKind::Parse { .. } => None,
            JobKind::Open { id, .. } | JobKind::Feed { id, .. } | JobKind::Finish { id } => {
                Some(*id)
            }
        }
    }

    fn is_session_job(&self) -> bool {
        self.session_id().is_some()
    }
}

/// One unit of work. `reply` is a rendezvous channel: every job sends
/// exactly one [`Response`]. `accepted` timestamps admission so the
/// latency histogram covers queueing, not just execution; `span` is the
/// trace id assigned at admission, threading the request's events
/// (admit → dispatch → done) through the structured trace log.
pub(crate) struct Job {
    pub(crate) kind: JobKind,
    pub(crate) reply: Sender<Response>,
    pub(crate) accepted: Instant,
    pub(crate) span: u64,
}

impl Job {
    pub(crate) fn new(kind: JobKind, reply: Sender<Response>) -> Job {
        Job { kind, reply, accepted: Instant::now(), span: crate::trace::next_span() }
    }
}

/// A worker's two queues: `pinned` (session jobs, owner-only) and
/// `shared` (one-shot jobs, stealable from the back).
#[derive(Default)]
struct ShardQueues {
    pinned: VecDeque<Job>,
    shared: VecDeque<Job>,
}

pub(crate) struct Shard {
    queues: Mutex<ShardQueues>,
    ready: Condvar,
}

impl Shard {
    pub(crate) fn new() -> Self {
        Shard { queues: Mutex::new(ShardQueues::default()), ready: Condvar::new() }
    }

    /// Locks the queues, recovering from poison: a worker that panicked
    /// while holding the lock left plain queue data (two `VecDeque`s, no
    /// invariants between them), which the next user can safely adopt.
    /// `.expect` here would turn one caught panic into a pool-wide wedge.
    fn lock(&self) -> MutexGuard<'_, ShardQueues> {
        self.queues.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queues a pinned (session) job. Never shed: see the module docs.
    pub(crate) fn push_pinned(&self, job: Job) {
        let mut q = self.lock();
        q.pinned.push_back(job);
        drop(q);
        self.ready.notify_one();
    }

    /// Queues a one-shot job unless the shared queue is at `bound`;
    /// returns the rejected job so the caller can answer `BUSY` on its
    /// reply channel. The check-and-insert is atomic under the shard
    /// lock, so the bound is exact, not advisory.
    pub(crate) fn try_push_shared(&self, job: Job, bound: usize) -> Result<(), Job> {
        let mut q = self.lock();
        if q.shared.len() >= bound {
            return Err(job);
        }
        q.shared.push_back(job);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Total backlog (pinned + shared) — the stats gauge.
    pub(crate) fn depth(&self) -> usize {
        let q = self.lock();
        q.pinned.len() + q.shared.len()
    }

    /// Stealable (shared-queue-only) backlog — the number a thief cares
    /// about; pinned session jobs cannot move.
    fn steal_depth(&self) -> usize {
        self.lock().shared.len()
    }

    pub(crate) fn notify(&self) {
        self.ready.notify_all();
    }

    /// Pops the next local job, preferring pinned work (a stalled `Feed`
    /// blocks a remote caller; batch jobs have no one waiting on latency).
    fn pop_local(&self) -> Option<Job> {
        let mut q = self.lock();
        q.pinned.pop_front().or_else(|| q.shared.pop_front())
    }

    /// Steals one one-shot job from the back of the shared queue.
    fn steal(&self) -> Option<Job> {
        self.lock().shared.pop_back()
    }

    fn wait_brief(&self) {
        let q = self.lock();
        if q.pinned.is_empty() && q.shared.is_empty() {
            let _ = self.ready.wait_timeout(q, IDLE_WAIT).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn is_empty(&self) -> bool {
        let q = self.lock();
        q.pinned.is_empty() && q.shared.is_empty()
    }

    /// Drains every queued job (drain epilogue: workers have exited, so
    /// whatever raced in would otherwise never be answered).
    pub(crate) fn drain_all(&self) -> Vec<Job> {
        let mut q = self.lock();
        let mut jobs: Vec<Job> = q.pinned.drain(..).collect();
        jobs.extend(q.shared.drain(..));
        jobs
    }
}

/// State shared by the server handle and every worker.
pub(crate) struct Shared {
    pub(crate) shards: Vec<Shard>,
    pub(crate) counters: Counters,
    pub(crate) shutdown: AtomicBool,
    /// Graceful-drain mode: new work is refused with GOAWAY, queued
    /// one-shot work flushes, sessions are sealed.
    pub(crate) draining: AtomicBool,
    pub(crate) next_session: AtomicU64,
    pub(crate) max_steps: u64,
    pub(crate) max_bytes: usize,
    pub(crate) session_deadline: Duration,
    /// Shared-queue bound per shard; beyond it one-shot jobs are shed.
    pub(crate) max_queue: usize,
    /// Retry hint carried in BUSY responses.
    pub(crate) retry_after_ms: u64,
    /// How long a caller waits for its reply before giving up with a
    /// typed deadline error (the job still completes and is accounted
    /// server-side).
    pub(crate) request_deadline: Duration,
    /// Frame payload cap for the wire front end.
    pub(crate) max_frame: usize,
    /// Per-read inactivity timeout and whole-frame deadline on the wire
    /// (the slow-loris guard).
    pub(crate) io_timeout: Duration,
    /// Fault-injection schedule (chaos harness); `None` in production.
    pub(crate) faults: Option<Arc<FaultPlan>>,
    /// Structured trace ring (`ipg serve --trace-log`); `None` disables
    /// event emission entirely (one branch per event site).
    pub(crate) trace: Option<Arc<crate::trace::TraceLog>>,
}

impl Shared {
    /// The worker owning session `id` (ids are dealt round-robin).
    pub(crate) fn owner_of(&self, id: u64) -> usize {
        (id % self.shards.len() as u64) as usize
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Classifies a terminal response into the request-level ledger and
    /// records its admission→reply latency. Every admitted request must
    /// pass through here exactly once — that is what makes
    /// `submitted == completed + shed + failed` an invariant rather than
    /// an aspiration.
    pub(crate) fn classify(&self, resp: &Response, accepted: Instant) {
        let c = &self.counters;
        match resp {
            Response::Done(_) | Response::Opened { .. } | Response::NeedInput { .. } => {
                Counters::add(&c.requests_completed, 1);
            }
            Response::Busy { .. } | Response::GoAway => Counters::add(&c.requests_shed, 1),
            Response::Error(_) => Counters::add(&c.requests_failed, 1),
        }
        c.latency.record(accepted.elapsed());
    }
}

/// The trace-log name of a terminal response.
pub(crate) fn outcome_name(resp: &Response) -> &'static str {
    match resp {
        Response::Done(_) => "done",
        Response::Opened { .. } => "opened",
        Response::NeedInput { .. } => "need_input",
        Response::Error(_) => "error",
        Response::Busy { .. } => "busy",
        Response::GoAway => "goaway",
    }
}

/// A live streaming session pinned to one worker. The session borrows
/// the generation's parser, so the generation handle rides along:
/// `session` is declared first and therefore drops first, and the pin
/// keeps the old generation alive across hot reloads until the session
/// ends.
struct Active {
    session: Session<'static>,
    /// Pins the [`Compiled`] generation `session` borrows from.
    _generation: Arc<Compiled>,
    deadline: Instant,
}

/// The worker body: drain local work, steal when idle, evict expired
/// sessions, exit on shutdown once the queues are dry.
pub(crate) fn worker_loop(me: usize, shared: Arc<Shared>) {
    let mut sessions: HashMap<u64, Active> = HashMap::new();
    loop {
        let job = shared.shards[me].pop_local().or_else(|| {
            // Idle: steal a batch job from the sibling with the deepest
            // *stealable* backlog (pinned session jobs cannot move, so
            // they must not influence victim selection).
            let victim = (0..shared.shards.len())
                .filter(|w| *w != me)
                .map(|w| (shared.shards[w].steal_depth(), w))
                .max();
            let stolen = match victim {
                Some((depth, w)) if depth > 0 => shared.shards[w].steal(),
                _ => None,
            };
            if stolen.is_some() {
                Counters::add(&shared.counters.steals, 1);
            }
            stolen
        });
        match job {
            Some(job) => run_job(me, job, &shared, &mut sessions),
            None => {
                evict_expired(&shared, &mut sessions);
                if shared.shutdown.load(Ordering::Acquire) && shared.shards[me].is_empty() {
                    let draining = shared.is_draining();
                    for _ in 0..sessions.len() {
                        if draining {
                            // Sealed, not dropped: the host drained and
                            // each session's owner was (or will be) told
                            // GOAWAY by its front end.
                            Counters::add(&shared.counters.sessions_sealed, 1);
                            Counters::add(&shared.counters.sessions_closed, 1);
                        } else {
                            // Abandoned by an abrupt shutdown: the host
                            // chose to stop serving them.
                            Counters::add(&shared.counters.sessions_evicted, 1);
                        }
                        Counters::add(&shared.counters.live_sessions, 1u64.wrapping_neg());
                    }
                    return;
                }
                shared.shards[me].wait_brief();
            }
        }
        evict_expired(&shared, &mut sessions);
    }
}

fn evict_expired(shared: &Arc<Shared>, sessions: &mut HashMap<u64, Active>) {
    if sessions.is_empty() {
        return;
    }
    let now = Instant::now();
    sessions.retain(|_, a| {
        let keep = a.deadline > now;
        if !keep {
            Counters::add(&shared.counters.sessions_evicted, 1);
            Counters::add(&shared.counters.live_sessions, 1u64.wrapping_neg());
        }
        keep
    });
}

/// Renders a caught panic payload for the typed reply.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

fn run_job(me: usize, job: Job, shared: &Arc<Shared>, sessions: &mut HashMap<u64, Active>) {
    let Job { kind, reply, accepted, span } = job;
    if let Some(t) = &shared.trace {
        t.dispatch(span, me);
    }

    // Drain: one-shot jobs queued before the drain began still flush,
    // but session work is refused — the session is sealed and its owner
    // told GOAWAY so it can tear down cleanly instead of timing out.
    if shared.is_draining() && kind.is_session_job() {
        if let Some(id) = kind.session_id() {
            if sessions.remove(&id).is_some() {
                let c = &shared.counters;
                Counters::add(&c.sessions_sealed, 1);
                Counters::add(&c.sessions_closed, 1);
                Counters::add(&c.live_sessions, 1u64.wrapping_neg());
            }
        }
        send_reply(shared, &reply, accepted, span, Response::GoAway);
        return;
    }

    // Fault injection (chaos harness): decided before execution so a
    // `Panic` exercises exactly the same recovery path a real VM or
    // session panic would take.
    let fault = shared.faults.as_ref().map_or(Fault::None, |plan| plan.next_job_fault());
    match (&shared.trace, fault) {
        (Some(t), Fault::Panic) => t.fault(span, "panic"),
        (Some(t), Fault::Stall(_)) => t.fault(span, "stall"),
        _ => {}
    }
    if let Fault::Stall(d) = fault {
        std::thread::sleep(d);
    }
    let inject_panic = fault == Fault::Panic;

    let touched = kind.session_id();
    // AssertUnwindSafe: on Err we discard every value the closure could
    // have left half-mutated — the job itself is consumed, and `touched`
    // names the one session whose state may be torn, which is removed
    // below rather than reused.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected fault: worker panic");
        }
        execute(kind, shared, sessions)
    }));
    match outcome {
        Ok(resp) => send_reply(shared, &reply, accepted, span, resp),
        Err(payload) => {
            let c = &shared.counters;
            Counters::add(&c.panics_recovered, 1);
            Counters::add(&c.parses_err, 1);
            if let Some(id) = touched {
                if sessions.remove(&id).is_some() {
                    Counters::add(&c.sessions_closed, 1);
                    Counters::add(&c.live_sessions, 1u64.wrapping_neg());
                }
            }
            let msg = panic_message(payload.as_ref());
            send_reply(shared, &reply, accepted, span, Response::Error(Error::WorkerPanic(msg)));
        }
    }
}

/// Classifies and delivers the single reply every job owes, closing the
/// job's trace span. A vanished caller (dropped receiver) is not an
/// error: the work is still accounted.
pub(crate) fn send_reply(
    shared: &Shared,
    reply: &Sender<Response>,
    accepted: Instant,
    span: u64,
    resp: Response,
) {
    shared.classify(&resp, accepted);
    if let Some(t) = &shared.trace {
        t.done(span, outcome_name(&resp), accepted.elapsed());
    }
    let _ = reply.send(resp);
}

/// The actual job bodies. Runs under `catch_unwind`; must not send the
/// reply itself (the caller owns delivery so a panic here still answers).
fn execute(kind: JobKind, shared: &Arc<Shared>, sessions: &mut HashMap<u64, Active>) -> Response {
    let c = &shared.counters;
    match kind {
        JobKind::Parse { vm, input } => {
            Counters::add(&c.bytes_in, input.len() as u64);
            let (result, stats) = vm.vm().parse_bounded(&input, shared.max_steps);
            Counters::add(&c.steps, stats.steps);
            match result {
                Ok(tree) => {
                    Counters::add(&c.parses_ok, 1);
                    Response::Done(ParseSummary {
                        steps: stats.steps,
                        suspends: 0,
                        nodes: tree.arena().len(),
                        bytes: input.len(),
                    })
                }
                Err(e) => {
                    Counters::add(&c.parses_err, 1);
                    Response::Error(e)
                }
            }
        }
        JobKind::Open { id, vm } => {
            // SAFETY: `vm_pinned` erases the generation's lifetime; the
            // `Active` below stores the same `Arc` alongside the session
            // (dropping session-first), so the borrow outlives its use.
            let parser = unsafe { Compiled::vm_pinned(&vm) };
            let session =
                parser.streaming().max_steps(shared.max_steps).max_bytes(shared.max_bytes);
            let deadline = Instant::now() + shared.session_deadline;
            sessions.insert(id, Active { session, _generation: vm, deadline });
            Counters::add(&c.sessions_opened, 1);
            Counters::add(&c.live_sessions, 1);
            Response::Opened { id }
        }
        JobKind::Feed { id, bytes } => {
            let Some(active) = sessions.get_mut(&id) else {
                return Response::Error(unknown_session(id));
            };
            Counters::add(&c.bytes_in, bytes.len() as u64);
            active.deadline = Instant::now() + shared.session_deadline;
            match active.session.feed(&bytes) {
                Outcome::NeedInput { hint } => Response::NeedInput { hint },
                Outcome::Error(e) => {
                    close_session(shared, sessions, id, false);
                    Response::Error(e)
                }
                Outcome::Done(_) => unreachable!("feed never completes a session"),
            }
        }
        JobKind::Finish { id } => {
            let Some(active) = sessions.get_mut(&id) else {
                return Response::Error(unknown_session(id));
            };
            let outcome = active.session.finish();
            let stats = active.session.stats();
            let suspends = active.session.suspends();
            let bytes = active.session.buffered();
            Counters::add(&c.steps, stats.steps);
            Counters::add(&c.suspends, suspends);
            match outcome {
                Outcome::Done(tree) => {
                    close_session(shared, sessions, id, true);
                    Response::Done(ParseSummary {
                        steps: stats.steps,
                        suspends,
                        nodes: tree.arena().len(),
                        bytes,
                    })
                }
                Outcome::Error(e) => {
                    close_session(shared, sessions, id, false);
                    Response::Error(e)
                }
                Outcome::NeedInput { .. } => unreachable!("finish never needs input"),
            }
        }
    }
}

fn close_session(shared: &Arc<Shared>, sessions: &mut HashMap<u64, Active>, id: u64, ok: bool) {
    sessions.remove(&id);
    let c = &shared.counters;
    Counters::add(&c.sessions_closed, 1);
    Counters::add(&c.live_sessions, 1u64.wrapping_neg());
    Counters::add(if ok { &c.parses_ok } else { &c.parses_err }, 1);
}

fn unknown_session(id: u64) -> Error {
    Error::Session(format!("unknown session {id} (never opened, finished, or evicted)"))
}
