//! The length-framed wire protocol and the Unix-socket front end.
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by the payload (capped at [`MAX_FRAME`]). Requests start with
//! an op byte, responses with a status byte:
//!
//! | op | request payload | reply |
//! |---|---|---|
//! | `0x01 PARSE`  | `name_len:u8, name, input…`  | `DONE` / `ERROR` |
//! | `0x02 OPEN`   | `name_len:u8, name`          | `OPENED` / `ERROR` |
//! | `0x03 FEED`   | `id:u64le, chunk…`           | `NEED_INPUT` / `ERROR` |
//! | `0x04 FINISH` | `id:u64le`                   | `DONE` / `ERROR` |
//! | `0x05 STATS`  | —                            | `STATS` |
//!
//! | status | response payload |
//! |---|---|
//! | `0x00 DONE`       | `steps:u64le, suspends:u64le, nodes:u32le, bytes:u64le` |
//! | `0x01 NEED_INPUT` | `kind:u8 (0 = bytes, 1 = until_end), n:u64le` |
//! | `0x02 ERROR`      | UTF-8 message |
//! | `0x03 OPENED`     | `id:u64le` |
//! | `0x04 STATS`      | UTF-8 JSON ([`crate::stats::StatsSnapshot::to_json`]) |
//!
//! The same [`Server`] backs both front ends, so a session opened over
//! the socket is serviced by the same pinned worker as an in-process one.

use crate::{Response, Server};
use ipg_core::interp::vm::Hint;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on a frame payload (a hostile client cannot make the server
/// buffer more than this per message).
pub const MAX_FRAME: usize = 64 << 20;

/// Request ops.
pub const OP_PARSE: u8 = 0x01;
/// Open a streaming session.
pub const OP_OPEN: u8 = 0x02;
/// Feed a chunk to a session.
pub const OP_FEED: u8 = 0x03;
/// Finish a session.
pub const OP_FINISH: u8 = 0x04;
/// Stats snapshot.
pub const OP_STATS: u8 = 0x05;

/// Response statuses.
pub const ST_DONE: u8 = 0x00;
/// More input needed.
pub const ST_NEED_INPUT: u8 = 0x01;
/// Error (payload is the message).
pub const ST_ERROR: u8 = 0x02;
/// Session opened (payload is the id).
pub const ST_OPENED: u8 = 0x03;
/// Stats JSON.
pub const ST_STATS: u8 = 0x04;

/// Writes one length-framed payload.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-framed payload; `Ok(None)` on clean EOF before the
/// length prefix.
///
/// # Errors
///
/// Propagates the underlying I/O error; oversized frames are
/// `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn bad_request(msg: &str) -> Vec<u8> {
    let mut out = vec![ST_ERROR];
    out.extend_from_slice(msg.as_bytes());
    out
}

fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Done(s) => {
            let mut out = vec![ST_DONE];
            out.extend_from_slice(&s.steps.to_le_bytes());
            out.extend_from_slice(&s.suspends.to_le_bytes());
            out.extend_from_slice(&(s.nodes as u32).to_le_bytes());
            out.extend_from_slice(&(s.bytes as u64).to_le_bytes());
            out
        }
        Response::Opened { id } => {
            let mut out = vec![ST_OPENED];
            out.extend_from_slice(&id.to_le_bytes());
            out
        }
        Response::NeedInput { hint } => {
            let (kind, n) = match hint {
                Hint::Bytes(n) => (0u8, *n as u64),
                Hint::UntilEnd => (1u8, 0u64),
            };
            let mut out = vec![ST_NEED_INPUT, kind];
            out.extend_from_slice(&n.to_le_bytes());
            out
        }
        Response::Error(e) => bad_request(&e.to_string()),
    }
}

/// Per-connection protocol state. Session ids are global and sequential,
/// so without an ownership check any client could `FEED`/`FINISH` (and
/// thereby corrupt or kill) another client's session just by guessing
/// ids; each connection may only touch sessions it opened itself.
#[derive(Default)]
pub struct ConnState {
    owned: std::collections::HashSet<u64>,
}

/// Executes one request payload against `server` for one connection and
/// returns the response payload. Shared by the Unix-socket front end and
/// any future transport (the framing stays at the edges; `conn` carries
/// the transport's per-client session ownership).
pub fn handle_request(server: &Server, conn: &mut ConnState, payload: &[u8]) -> Vec<u8> {
    let Some((&op, body)) = payload.split_first() else {
        return bad_request("empty frame");
    };
    match op {
        OP_PARSE => {
            let Some((name, input)) = split_name(body) else {
                return bad_request("malformed PARSE frame");
            };
            match server.parse(name, input.to_vec()) {
                Ok(s) => encode_response(&Response::Done(s)),
                Err(e) => bad_request(&e.to_string()),
            }
        }
        OP_OPEN => {
            let Some((name, rest)) = split_name(body) else {
                return bad_request("malformed OPEN frame");
            };
            if !rest.is_empty() {
                return bad_request("trailing bytes in OPEN frame");
            }
            match server.open(name) {
                Ok(handle) => {
                    conn.owned.insert(handle.id());
                    encode_response(&Response::Opened { id: handle.id() })
                }
                Err(e) => bad_request(&e.to_string()),
            }
        }
        OP_FEED => {
            let Some((id, chunk)) = split_id(body) else {
                return bad_request("malformed FEED frame");
            };
            if !conn.owned.contains(&id) {
                return bad_request(&foreign_session(id));
            }
            let resp = server.session_request(id, |tx| crate::pool::Job::Feed {
                id,
                bytes: chunk.to_vec(),
                reply: tx,
            });
            encode_response(&resp)
        }
        OP_FINISH => {
            let Some((id, rest)) = split_id(body) else {
                return bad_request("malformed FINISH frame");
            };
            if !rest.is_empty() {
                return bad_request("trailing bytes in FINISH frame");
            }
            if !conn.owned.remove(&id) {
                return bad_request(&foreign_session(id));
            }
            let resp = server.session_request(id, |tx| crate::pool::Job::Finish { id, reply: tx });
            encode_response(&resp)
        }
        OP_STATS => {
            let mut out = vec![ST_STATS];
            out.extend_from_slice(server.stats().to_json().as_bytes());
            out
        }
        other => bad_request(&format!("unknown op 0x{other:02x}")),
    }
}

fn foreign_session(id: u64) -> String {
    format!("session {id} was not opened on this connection")
}

fn split_name(body: &[u8]) -> Option<(&str, &[u8])> {
    let (&n, rest) = body.split_first()?;
    if rest.len() < n as usize {
        return None;
    }
    let (name, rest) = rest.split_at(n as usize);
    Some((std::str::from_utf8(name).ok()?, rest))
}

fn split_id(body: &[u8]) -> Option<(u64, &[u8])> {
    if body.len() < 8 {
        return None;
    }
    let (id, rest) = body.split_at(8);
    Some((u64::from_le_bytes(id.try_into().ok()?), rest))
}

/// A running Unix-socket front end; dropping it stops the acceptor and
/// removes the socket file. In-flight connections finish at their next
/// EOF.
pub struct UnixFront {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Serves the framed protocol on a Unix socket at `path`. The server
    /// handle must be shared (`Arc`) because connections are handled on
    /// their own threads.
    ///
    /// # Errors
    ///
    /// Propagates socket-binding failures.
    pub fn serve_unix(self: &Arc<Self>, path: impl AsRef<Path>) -> io::Result<UnixFront> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let server = self.clone();
        let acceptor =
            std::thread::Builder::new().name("ipg-serve-accept".into()).spawn(move || {
                while !accept_stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let server = server.clone();
                            let _ = std::thread::Builder::new()
                                .name("ipg-serve-conn".into())
                                .spawn(move || serve_connection(&server, stream));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(UnixFront { path, stop, acceptor: Some(acceptor) })
    }
}

/// Sessions orphaned by a disconnect (ownership is per-connection, so a
/// reconnecting client cannot resume them) are reclaimed by the workers'
/// deadline eviction.
fn serve_connection(server: &Server, mut stream: UnixStream) {
    let mut conn = ConnState::default();
    loop {
        match read_frame(&mut stream) {
            Ok(Some(payload)) => {
                let resp = handle_request(server, &mut conn, &payload);
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
            _ => return,
        }
    }
}

impl Drop for UnixFront {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A decoded wire response (client side).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Wire {
    /// `ST_DONE`.
    Done {
        /// VM steps executed.
        steps: u64,
        /// Session suspensions.
        suspends: u64,
        /// Tree records allocated.
        nodes: u32,
        /// Input bytes consumed.
        bytes: u64,
    },
    /// `ST_OPENED`.
    Opened {
        /// Session id.
        id: u64,
    },
    /// `ST_NEED_INPUT`.
    NeedInput {
        /// 0 = a byte shortfall, 1 = until end-of-input.
        kind: u8,
        /// The shortfall for kind 0.
        n: u64,
    },
    /// `ST_ERROR`.
    Error(String),
    /// `ST_STATS` (JSON).
    Stats(String),
}

/// A blocking protocol client over a Unix stream (tests and the
/// benchmark's chunked-wire lane).
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a [`UnixFront`] socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client { stream: UnixStream::connect(path)? })
    }

    fn round_trip(&mut self, payload: &[u8]) -> io::Result<Wire> {
        write_frame(&mut self.stream, payload)?;
        let resp = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        decode_wire(&resp)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response"))
    }

    /// The wire encodes grammar names with a one-byte length; reject
    /// longer names here instead of letting `as u8` truncate them into a
    /// baffling server-side error.
    fn name_len(grammar: &str) -> io::Result<u8> {
        u8::try_from(grammar.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "grammar name exceeds 255 bytes")
        })
    }

    /// One-shot parse.
    ///
    /// # Errors
    ///
    /// I/O errors only; parse failures come back as [`Wire::Error`].
    pub fn parse(&mut self, grammar: &str, input: &[u8]) -> io::Result<Wire> {
        let mut p = vec![OP_PARSE, Self::name_len(grammar)?];
        p.extend_from_slice(grammar.as_bytes());
        p.extend_from_slice(input);
        self.round_trip(&p)
    }

    /// Opens a streaming session.
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn open(&mut self, grammar: &str) -> io::Result<Wire> {
        let mut p = vec![OP_OPEN, Self::name_len(grammar)?];
        p.extend_from_slice(grammar.as_bytes());
        self.round_trip(&p)
    }

    /// Feeds a chunk to session `id`.
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn feed(&mut self, id: u64, chunk: &[u8]) -> io::Result<Wire> {
        let mut p = vec![OP_FEED];
        p.extend_from_slice(&id.to_le_bytes());
        p.extend_from_slice(chunk);
        self.round_trip(&p)
    }

    /// Finishes session `id`.
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn finish(&mut self, id: u64) -> io::Result<Wire> {
        let mut p = vec![OP_FINISH];
        p.extend_from_slice(&id.to_le_bytes());
        self.round_trip(&p)
    }

    /// Fetches a stats snapshot (JSON).
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn stats(&mut self) -> io::Result<Wire> {
        self.round_trip(&[OP_STATS])
    }
}

fn decode_wire(payload: &[u8]) -> Option<Wire> {
    let (&st, body) = payload.split_first()?;
    Some(match st {
        ST_DONE => {
            if body.len() != 28 {
                return None;
            }
            Wire::Done {
                steps: u64::from_le_bytes(body[0..8].try_into().ok()?),
                suspends: u64::from_le_bytes(body[8..16].try_into().ok()?),
                nodes: u32::from_le_bytes(body[16..20].try_into().ok()?),
                bytes: u64::from_le_bytes(body[20..28].try_into().ok()?),
            }
        }
        ST_OPENED => Wire::Opened { id: u64::from_le_bytes(body.try_into().ok()?) },
        ST_NEED_INPUT => {
            if body.len() != 9 {
                return None;
            }
            Wire::NeedInput { kind: body[0], n: u64::from_le_bytes(body[1..9].try_into().ok()?) }
        }
        ST_ERROR => Wire::Error(String::from_utf8_lossy(body).into_owned()),
        ST_STATS => Wire::Stats(String::from_utf8_lossy(body).into_owned()),
        _ => return None,
    })
}
