//! The length-framed wire protocol and the Unix-socket front end.
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by the payload (capped at the server's configured max frame,
//! [`MAX_FRAME`] by default). Requests start with an op byte, responses
//! with a status byte:
//!
//! | op | request payload | reply |
//! |---|---|---|
//! | `0x01 PARSE`  | `name_len:u8, name, input…`  | `DONE` / `ERROR` / `BUSY` / `GOAWAY` |
//! | `0x02 OPEN`   | `name_len:u8, name`          | `OPENED` / `ERROR` / `GOAWAY` |
//! | `0x03 FEED`   | `id:u64le, chunk…`           | `NEED_INPUT` / `ERROR` / `GOAWAY` |
//! | `0x04 FINISH` | `id:u64le`                   | `DONE` / `ERROR` / `GOAWAY` |
//! | `0x05 STATS`  | —                            | `STATS` |
//! | `0x06 METRICS` | —                           | `METRICS` |
//!
//! | status | response payload |
//! |---|---|
//! | `0x00 DONE`       | `steps:u64le, suspends:u64le, nodes:u32le, bytes:u64le` |
//! | `0x01 NEED_INPUT` | `kind:u8 (0 = bytes, 1 = until_end), n:u64le` |
//! | `0x02 ERROR`      | UTF-8 message |
//! | `0x03 OPENED`     | `id:u64le` |
//! | `0x04 STATS`      | UTF-8 JSON ([`crate::stats::StatsSnapshot::to_json`]) |
//! | `0x05 BUSY`       | `retry_after_ms:u64le` — shed at admission, retry later |
//! | `0x06 GOAWAY`     | — server draining; session (if any) sealed |
//! | `0x07 METRICS`    | UTF-8 Prometheus text ([`crate::metrics::Registry::gather`]) |
//!
//! Robustness contract: every malformed, truncated, oversized, or
//! out-of-order frame is answered with a *typed* `ERROR` frame — never a
//! panic, never a silent hangup. Oversized length prefixes are rejected
//! against the configured cap before any allocation; a connection that
//! stalls mid-frame past the io timeout (a slow-loris feed) gets a typed
//! error and a close; a draining server seals idle connections with an
//! unsolicited `GOAWAY` frame, so no client ever observes a torn frame.
//!
//! The same [`Server`] backs both front ends, so a session opened over
//! the socket is serviced by the same pinned worker as an in-process one.

use crate::fault::splitmix64;
use crate::pool::JobKind;
use crate::{Response, Server};
use ipg_core::interp::vm::Hint;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default hard cap on a frame payload (a hostile client cannot make the
/// server buffer more than this per message); tune per server with
/// [`crate::Config::max_frame`].
pub const MAX_FRAME: usize = 64 << 20;

/// How often a connection thread wakes from a blocked read to check the
/// drain flag and the slow-loris deadline.
const POLL: Duration = Duration::from_millis(25);

/// Request ops.
pub const OP_PARSE: u8 = 0x01;
/// Open a streaming session.
pub const OP_OPEN: u8 = 0x02;
/// Feed a chunk to a session.
pub const OP_FEED: u8 = 0x03;
/// Finish a session.
pub const OP_FINISH: u8 = 0x04;
/// Stats snapshot.
pub const OP_STATS: u8 = 0x05;
/// Prometheus metrics scrape.
pub const OP_METRICS: u8 = 0x06;

/// Response statuses.
pub const ST_DONE: u8 = 0x00;
/// More input needed.
pub const ST_NEED_INPUT: u8 = 0x01;
/// Error (payload is the message).
pub const ST_ERROR: u8 = 0x02;
/// Session opened (payload is the id).
pub const ST_OPENED: u8 = 0x03;
/// Stats JSON.
pub const ST_STATS: u8 = 0x04;
/// Shed at admission (payload is `retry_after_ms:u64le`).
pub const ST_BUSY: u8 = 0x05;
/// Server draining; no new work, sessions sealed.
pub const ST_GOAWAY: u8 = 0x06;
/// Prometheus metrics text.
pub const ST_METRICS: u8 = 0x07;

/// Writes one length-framed payload.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-framed payload; `Ok(None)` on clean EOF before the
/// length prefix. This is the blocking client-side reader; the server
/// uses [`read_request`]'s polled, deadline-guarded variant.
///
/// # Errors
///
/// Propagates the underlying I/O error; oversized frames are
/// `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn bad_request(msg: &str) -> Vec<u8> {
    let mut out = vec![ST_ERROR];
    out.extend_from_slice(msg.as_bytes());
    out
}

fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Done(s) => {
            let mut out = vec![ST_DONE];
            out.extend_from_slice(&s.steps.to_le_bytes());
            out.extend_from_slice(&s.suspends.to_le_bytes());
            out.extend_from_slice(&(s.nodes as u32).to_le_bytes());
            out.extend_from_slice(&(s.bytes as u64).to_le_bytes());
            out
        }
        Response::Opened { id } => {
            let mut out = vec![ST_OPENED];
            out.extend_from_slice(&id.to_le_bytes());
            out
        }
        Response::NeedInput { hint } => {
            let (kind, n) = match hint {
                Hint::Bytes(n) => (0u8, *n as u64),
                Hint::UntilEnd => (1u8, 0u64),
            };
            let mut out = vec![ST_NEED_INPUT, kind];
            out.extend_from_slice(&n.to_le_bytes());
            out
        }
        Response::Error(e) => bad_request(&e.to_string()),
        Response::Busy { retry_after_ms } => {
            let mut out = vec![ST_BUSY];
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
            out
        }
        Response::GoAway => vec![ST_GOAWAY],
    }
}

/// Per-connection protocol state. Session ids are global and sequential,
/// so without an ownership check any client could `FEED`/`FINISH` (and
/// thereby corrupt or kill) another client's session just by guessing
/// ids; each connection may only touch sessions it opened itself.
#[derive(Default)]
pub struct ConnState {
    owned: std::collections::HashSet<u64>,
}

/// Executes one request payload against `server` for one connection and
/// returns the response payload. Shared by the Unix-socket front end and
/// any future transport (the framing stays at the edges; `conn` carries
/// the transport's per-client session ownership). Every malformed
/// request body maps to a typed error frame.
pub fn handle_request(server: &Server, conn: &mut ConnState, payload: &[u8]) -> Vec<u8> {
    let Some((&op, body)) = payload.split_first() else {
        return bad_request("empty frame");
    };
    match op {
        OP_PARSE => {
            let Some((name, input)) = split_name(body) else {
                return bad_request("malformed PARSE frame");
            };
            encode_response(&server.parse_response(name, input.to_vec()))
        }
        OP_OPEN => {
            let Some((name, rest)) = split_name(body) else {
                return bad_request("malformed OPEN frame");
            };
            if !rest.is_empty() {
                return bad_request("trailing bytes in OPEN frame");
            }
            let resp = server.open_response(name);
            if let Response::Opened { id } = resp {
                conn.owned.insert(id);
            }
            encode_response(&resp)
        }
        OP_FEED => {
            let Some((id, chunk)) = split_id(body) else {
                return bad_request("malformed FEED frame");
            };
            if !conn.owned.contains(&id) {
                return bad_request(&foreign_session(id));
            }
            encode_response(
                &server.session_request(id, JobKind::Feed { id, bytes: chunk.to_vec() }),
            )
        }
        OP_FINISH => {
            let Some((id, rest)) = split_id(body) else {
                return bad_request("malformed FINISH frame");
            };
            if !rest.is_empty() {
                return bad_request("trailing bytes in FINISH frame");
            }
            if !conn.owned.remove(&id) {
                return bad_request(&foreign_session(id));
            }
            encode_response(&server.session_request(id, JobKind::Finish { id }))
        }
        OP_STATS => {
            let mut out = vec![ST_STATS];
            out.extend_from_slice(server.stats().to_json().as_bytes());
            out
        }
        OP_METRICS => {
            let mut out = vec![ST_METRICS];
            out.extend_from_slice(server.metrics_text().as_bytes());
            out
        }
        other => bad_request(&format!("unknown op 0x{other:02x}")),
    }
}

fn foreign_session(id: u64) -> String {
    format!("session {id} was not opened on this connection")
}

fn split_name(body: &[u8]) -> Option<(&str, &[u8])> {
    let (&n, rest) = body.split_first()?;
    if rest.len() < n as usize {
        return None;
    }
    let (name, rest) = rest.split_at(n as usize);
    Some((std::str::from_utf8(name).ok()?, rest))
}

fn split_id(body: &[u8]) -> Option<(u64, &[u8])> {
    if body.len() < 8 {
        return None;
    }
    let (id, rest) = body.split_at(8);
    Some((u64::from_le_bytes(id.try_into().ok()?), rest))
}

/// A running Unix-socket front end; dropping it stops the acceptor and
/// removes the socket file. In-flight connections finish at their next
/// EOF (or GOAWAY, if the server is draining).
pub struct UnixFront {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl UnixFront {
    /// Stops accepting new connections without tearing down live ones —
    /// the first step of a graceful drain (existing connections learn
    /// about the drain through GOAWAY frames).
    pub fn stop_accepting(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = &self.acceptor {
            h.thread().unpark();
        }
    }
}

impl Server {
    /// Serves the framed protocol on a Unix socket at `path`. The server
    /// handle must be shared (`Arc`) because connections are handled on
    /// their own threads.
    ///
    /// # Errors
    ///
    /// Propagates socket-binding failures.
    pub fn serve_unix(self: &Arc<Self>, path: impl AsRef<Path>) -> io::Result<UnixFront> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let server = self.clone();
        let acceptor =
            std::thread::Builder::new().name("ipg-serve-accept".into()).spawn(move || {
                while !accept_stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let server = server.clone();
                            let _ = std::thread::Builder::new()
                                .name("ipg-serve-conn".into())
                                .spawn(move || serve_connection(&server, stream));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::park_timeout(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(UnixFront { path, stop, acceptor: Some(acceptor) })
    }
}

/// What one polled frame-read attempt produced.
enum Req {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean close (EOF before a length prefix, or torn by the client).
    Closed,
    /// The server began draining while the connection sat idle between
    /// frames — time to seal it with GOAWAY.
    DrainIdle,
    /// The length prefix exceeds the configured cap (rejected before any
    /// allocation).
    Oversized(u64),
    /// The frame stalled past the io timeout (slow-loris guard).
    Stalled,
    /// Hard I/O failure; nothing sensible left to say.
    IoError,
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Reads one frame with a short poll timeout so the connection thread
/// stays responsive to drain, and a whole-frame deadline so a client
/// dripping bytes (slow loris) cannot hold the thread hostage: once the
/// first byte of a frame arrives, the rest must follow within
/// `io_timeout` total.
fn read_request(
    stream: &mut UnixStream,
    cap: usize,
    io_timeout: Duration,
    draining: impl Fn() -> bool,
) -> Req {
    let mut len = [0u8; 4];
    let mut got = 0usize;
    let mut frame_start: Option<Instant> = None;
    while got < 4 {
        match stream.read(&mut len[got..]) {
            Ok(0) => return Req::Closed,
            Ok(n) => {
                let start = *frame_start.get_or_insert_with(Instant::now);
                got += n;
                if got < 4 && start.elapsed() >= io_timeout {
                    return Req::Stalled;
                }
            }
            Err(e) if is_timeout(&e) => match frame_start {
                None if draining() => return Req::DrainIdle,
                None => {}
                Some(start) if start.elapsed() >= io_timeout => return Req::Stalled,
                Some(_) => {}
            },
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Req::IoError,
        }
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > cap {
        return Req::Oversized(n as u64);
    }
    let start = frame_start.unwrap_or_else(Instant::now);
    let mut payload = vec![0u8; n];
    let mut got = 0usize;
    while got < n {
        if start.elapsed() >= io_timeout {
            return Req::Stalled;
        }
        match stream.read(&mut payload[got..]) {
            Ok(0) => return Req::Closed,
            Ok(k) => got += k,
            Err(e) if is_timeout(&e) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Req::IoError,
        }
    }
    Req::Frame(payload)
}

/// Deterministically corrupts a reply payload in place (chaos harness:
/// exercises client-side frame validation). The length prefix is left
/// intact so framing — and therefore every *subsequent* exchange — stays
/// parseable; only this one payload is garbage.
fn corrupt_payload(payload: &mut [u8]) {
    if let Some(first) = payload.first_mut() {
        *first ^= 0xA5;
    }
    let mid = payload.len() / 2;
    if mid > 0 {
        payload[mid] ^= 0x5A;
    }
}

/// Sessions orphaned by a disconnect (ownership is per-connection, so a
/// reconnecting client cannot resume them) are reclaimed by the workers'
/// deadline eviction. Framing violations are answered with typed error
/// frames before the connection closes; a drain seals the connection
/// with GOAWAY.
fn serve_connection(server: &Server, mut stream: UnixStream) {
    let shared = &server.shared;
    if stream.set_read_timeout(Some(POLL)).is_err()
        || stream.set_write_timeout(Some(shared.io_timeout)).is_err()
    {
        return;
    }
    let mut conn = ConnState::default();
    loop {
        let req =
            read_request(&mut stream, shared.max_frame, shared.io_timeout, || shared.is_draining());
        match req {
            Req::Frame(payload) => {
                let mut resp = handle_request(server, &mut conn, &payload);
                if let Some(plan) = &shared.faults {
                    if plan.corrupt_next_reply() {
                        corrupt_payload(&mut resp);
                    }
                }
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Req::DrainIdle => {
                let _ = write_frame(&mut stream, &[ST_GOAWAY]);
                return;
            }
            Req::Oversized(n) => {
                let _ = write_frame(
                    &mut stream,
                    &bad_request(&format!(
                        "frame length {n} exceeds the {}-byte max frame",
                        shared.max_frame
                    )),
                );
                return;
            }
            Req::Stalled => {
                let _ = write_frame(
                    &mut stream,
                    &bad_request(&format!(
                        "frame stalled past the {:?} io timeout (slow-loris guard)",
                        shared.io_timeout
                    )),
                );
                return;
            }
            Req::Closed | Req::IoError => return,
        }
    }
}

impl Drop for UnixFront {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            h.thread().unpark();
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A decoded wire response (client side).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Wire {
    /// `ST_DONE`.
    Done {
        /// VM steps executed.
        steps: u64,
        /// Session suspensions.
        suspends: u64,
        /// Tree records allocated.
        nodes: u32,
        /// Input bytes consumed.
        bytes: u64,
    },
    /// `ST_OPENED`.
    Opened {
        /// Session id.
        id: u64,
    },
    /// `ST_NEED_INPUT`.
    NeedInput {
        /// 0 = a byte shortfall, 1 = until end-of-input.
        kind: u8,
        /// The shortfall for kind 0.
        n: u64,
    },
    /// `ST_ERROR`.
    Error(String),
    /// `ST_STATS` (JSON).
    Stats(String),
    /// `ST_METRICS` (Prometheus text format).
    Metrics(String),
    /// `ST_BUSY` — shed at admission; retry after the hinted delay.
    Busy {
        /// Suggested backoff before retrying.
        retry_after_ms: u64,
    },
    /// `ST_GOAWAY` — the server is draining; tear down and reconnect
    /// elsewhere/later.
    GoAway,
}

/// Client-side retry discipline for `BUSY` sheds and connect failures:
/// bounded attempts, exponential backoff, deterministic jitter (seeded,
/// so a failing run reproduces) that spreads synchronized clients over
/// 50–100% of each backoff window.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt.
    pub attempts: u32,
    /// First backoff window.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter stream seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based), decorrelated by
    /// `salt` (e.g. a per-client id) so identical policies don't stampede
    /// in lockstep.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let base_ms = (self.base.as_millis() as u64).max(1);
        let cap_ms = (self.cap.as_millis() as u64).max(1);
        let window = base_ms.saturating_mul(1u64 << attempt.min(16)).min(cap_ms);
        let jitter = splitmix64(self.seed ^ salt.rotate_left(17) ^ u64::from(attempt));
        Duration::from_millis(window - jitter % (window / 2 + 1))
    }
}

/// A blocking protocol client over a Unix stream (tests and the
/// benchmark's chunked-wire lane).
pub struct Client {
    stream: UnixStream,
    retries: u64,
}

impl Client {
    /// Connects to a [`UnixFront`] socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client { stream: UnixStream::connect(path)?, retries: 0 })
    }

    /// Connects with bounded, jittered retry — rides out a server that is
    /// still binding its socket or briefly restarting.
    ///
    /// # Errors
    ///
    /// The final connection failure once every attempt is exhausted.
    pub fn connect_with_retry(path: impl AsRef<Path>, policy: &RetryPolicy) -> io::Result<Client> {
        let path = path.as_ref();
        let mut attempt = 0u32;
        loop {
            match Client::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) if attempt < policy.attempts => {
                    std::thread::sleep(policy.backoff(attempt, 0));
                    attempt += 1;
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Bounds how long any reply read may block (useful against a server
    /// under chaos testing).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_reply_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// BUSY retries performed by [`Client::parse_with_retry`] so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reads one server-initiated frame without sending a request — how a
    /// client observes the unsolicited `GOAWAY` a draining server sends
    /// to connections that sit idle between frames. `Ok(None)` on EOF.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` for an undecodable frame.
    pub fn recv(&mut self) -> io::Result<Option<Wire>> {
        match read_frame(&mut self.stream)? {
            None => Ok(None),
            Some(p) => decode_wire(&p)
                .map(Some)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response")),
        }
    }

    fn round_trip(&mut self, payload: &[u8]) -> io::Result<Wire> {
        write_frame(&mut self.stream, payload)?;
        let resp = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        decode_wire(&resp)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response"))
    }

    /// The wire encodes grammar names with a one-byte length; reject
    /// longer names here instead of letting `as u8` truncate them into a
    /// baffling server-side error.
    fn name_len(grammar: &str) -> io::Result<u8> {
        u8::try_from(grammar.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "grammar name exceeds 255 bytes")
        })
    }

    /// One-shot parse.
    ///
    /// # Errors
    ///
    /// I/O errors only; parse failures come back as [`Wire::Error`].
    pub fn parse(&mut self, grammar: &str, input: &[u8]) -> io::Result<Wire> {
        let mut p = vec![OP_PARSE, Self::name_len(grammar)?];
        p.extend_from_slice(grammar.as_bytes());
        p.extend_from_slice(input);
        self.round_trip(&p)
    }

    /// One-shot parse that rides out `BUSY` sheds with the policy's
    /// backoff; any other reply (including `GOAWAY`) is returned as-is.
    ///
    /// # Errors
    ///
    /// I/O errors only; parse failures come back as [`Wire::Error`].
    pub fn parse_with_retry(
        &mut self,
        grammar: &str,
        input: &[u8],
        policy: &RetryPolicy,
    ) -> io::Result<Wire> {
        let salt = splitmix64(self.retries ^ input.len() as u64);
        let mut attempt = 0u32;
        loop {
            match self.parse(grammar, input)? {
                Wire::Busy { retry_after_ms } if attempt < policy.attempts => {
                    let backoff = policy.backoff(attempt, salt);
                    std::thread::sleep(backoff.max(Duration::from_millis(retry_after_ms)));
                    self.retries += 1;
                    attempt += 1;
                }
                wire => return Ok(wire),
            }
        }
    }

    /// Opens a streaming session.
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn open(&mut self, grammar: &str) -> io::Result<Wire> {
        let mut p = vec![OP_OPEN, Self::name_len(grammar)?];
        p.extend_from_slice(grammar.as_bytes());
        self.round_trip(&p)
    }

    /// Feeds a chunk to session `id`.
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn feed(&mut self, id: u64, chunk: &[u8]) -> io::Result<Wire> {
        let mut p = vec![OP_FEED];
        p.extend_from_slice(&id.to_le_bytes());
        p.extend_from_slice(chunk);
        self.round_trip(&p)
    }

    /// Finishes session `id`.
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn finish(&mut self, id: u64) -> io::Result<Wire> {
        let mut p = vec![OP_FINISH];
        p.extend_from_slice(&id.to_le_bytes());
        self.round_trip(&p)
    }

    /// Fetches a stats snapshot (JSON).
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn stats(&mut self) -> io::Result<Wire> {
        self.round_trip(&[OP_STATS])
    }

    /// Fetches a Prometheus metrics scrape over the framed protocol (the
    /// same text `--metrics-addr` serves over HTTP).
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn metrics(&mut self) -> io::Result<Wire> {
        self.round_trip(&[OP_METRICS])
    }
}

/// Decodes a response payload into a [`Wire`]; `None` for frames that
/// are not well-formed responses (unknown status byte, wrong payload
/// size) — the detection edge the chaos harness's corrupt-reply
/// injection exercises.
pub fn decode_wire(payload: &[u8]) -> Option<Wire> {
    let (&st, body) = payload.split_first()?;
    Some(match st {
        ST_DONE => {
            if body.len() != 28 {
                return None;
            }
            Wire::Done {
                steps: u64::from_le_bytes(body[0..8].try_into().ok()?),
                suspends: u64::from_le_bytes(body[8..16].try_into().ok()?),
                nodes: u32::from_le_bytes(body[16..20].try_into().ok()?),
                bytes: u64::from_le_bytes(body[20..28].try_into().ok()?),
            }
        }
        ST_OPENED => Wire::Opened { id: u64::from_le_bytes(body.try_into().ok()?) },
        ST_NEED_INPUT => {
            if body.len() != 9 {
                return None;
            }
            Wire::NeedInput { kind: body[0], n: u64::from_le_bytes(body[1..9].try_into().ok()?) }
        }
        ST_ERROR => Wire::Error(String::from_utf8_lossy(body).into_owned()),
        ST_STATS => Wire::Stats(String::from_utf8_lossy(body).into_owned()),
        ST_METRICS => Wire::Metrics(String::from_utf8_lossy(body).into_owned()),
        ST_BUSY => Wire::Busy { retry_after_ms: u64::from_le_bytes(body.try_into().ok()?) },
        ST_GOAWAY => {
            if !body.is_empty() {
                return None;
            }
            Wire::GoAway
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy::default();
        let d0 = p.backoff(0, 1);
        let d5 = p.backoff(5, 1);
        assert!(d0 <= Duration::from_millis(5));
        assert!(d5 <= p.cap, "backoff must respect the cap");
        assert!(d5 >= d0, "later attempts back off at least as long");
        assert_eq!(p.backoff(3, 7), p.backoff(3, 7), "same seed+salt reproduce");
        // Jitter stays inside the 50–100% band of the window.
        for attempt in 0..8 {
            let window = (p.base.as_millis() as u64) << attempt.min(16);
            let window = window.min(p.cap.as_millis() as u64);
            let d = p.backoff(attempt, 99).as_millis() as u64;
            assert!(d >= window - window / 2 && d <= window, "attempt {attempt}: {d} vs {window}");
        }
    }

    #[test]
    fn busy_and_goaway_round_trip_the_wire_codec() {
        let busy = encode_response(&Response::Busy { retry_after_ms: 40 });
        assert_eq!(decode_wire(&busy), Some(Wire::Busy { retry_after_ms: 40 }));
        let goaway = encode_response(&Response::GoAway);
        assert_eq!(decode_wire(&goaway), Some(Wire::GoAway));
        assert_eq!(decode_wire(&[ST_GOAWAY, 0xff]), None, "GOAWAY carries no payload");
    }

    #[test]
    fn corrupt_payload_keeps_length_but_breaks_decode() {
        let mut frame = encode_response(&Response::GoAway);
        let before = frame.len();
        corrupt_payload(&mut frame);
        assert_eq!(frame.len(), before, "framing must stay intact");
        assert_eq!(decode_wire(&frame), None, "corruption must be detectable");
    }
}
