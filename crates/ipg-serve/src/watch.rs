//! The grammar-directory watcher: polls a directory of `.ipg` sources
//! and `.ipgc` artifacts and drives [`Registry`] hot reloads under live
//! traffic.
//!
//! No filesystem-notification dependency is available offline, so the
//! watcher polls: each tick it stats every grammar file in the watched
//! directory and compares `(mtime, len)` against what it last saw. A
//! change is *confirmed* by content hash before any reload runs —
//! editors and atomic-rename writers touch mtimes without necessarily
//! changing bytes, and a reload that swaps a generation invalidates
//! in-flight pins for no reason.
//!
//! Failure policy (the self-healing contract):
//!
//! * a changed file that loads and validates swaps its generation in
//!   atomically (`reloads_ok`); in-flight sessions keep the generation
//!   they pinned at admission;
//! * a `.ipg` source that no longer compiles is refused
//!   (`reloads_rejected`) and the previous generation stays current;
//! * a `.ipgc` artifact that fails structural, version, provenance, or
//!   digest checks is **quarantined** — renamed to `*.bad` so the next
//!   scan cannot trip over it (`artifacts_quarantined`) — and if a
//!   sibling `.ipg` source exists the grammar is rebuilt from source
//!   instead (counted as a successful reload);
//! * a vanished file keeps its last good generation: the watcher only
//!   ever adds or replaces, never removes, so a half-finished
//!   atomic-rename window cannot unload a grammar.
//!
//! The watcher thread seals itself when the server shuts down or starts
//! draining; [`crate::Server::drain`] joins it before returning, so no
//! reload can race the drain epilogue.

use crate::pool::Shared;
use crate::stats::Counters;
use crate::Registry;
use ipg_core::error::{Error, Result};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

/// How often the watcher polls the directory between change sweeps.
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(50);

/// What the watcher last observed about one grammar file.
#[derive(Clone, PartialEq, Eq)]
struct Observed {
    mtime: Option<SystemTime>,
    len: u64,
    /// FNV-1a over the file contents — the confirmation step: a reload
    /// fires only when the bytes actually changed.
    content: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Is this a file the watcher manages? Quarantined `*.bad` files and
/// temporaries are deliberately outside the set.
fn is_grammar_file(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "ipg" || e == "ipgc")
}

fn is_artifact(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "ipgc")
}

/// Renames an invalid artifact to `<name>.bad` so subsequent scans skip
/// it; best-effort (the file may have vanished mid-rename).
fn quarantine(path: &Path) -> bool {
    let mut bad = path.as_os_str().to_owned();
    bad.push(".bad");
    std::fs::rename(path, &bad).is_ok()
}

/// One watcher pass over `dir`: detect confirmed changes, reload them,
/// count the outcomes. Returns the per-path errors of this pass (the
/// initial synchronous scan surfaces them; the background thread only
/// counts).
fn sweep(
    registry: &Registry,
    shared: &Shared,
    dir: &Path,
    seen: &mut HashMap<PathBuf, Observed>,
) -> Vec<(PathBuf, Error)> {
    let mut failures = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        // A transiently unreadable directory (or one removed mid-run) is
        // not fatal: keep serving the generations we have.
        Err(_) => return failures,
    };
    for path in entries.flatten().map(|e| e.path()).filter(|p| is_grammar_file(p)) {
        let Ok(meta) = std::fs::metadata(&path) else { continue };
        let (mtime, len) = (meta.modified().ok(), meta.len());
        let cheap_same =
            seen.get(&path).is_some_and(|o| o.mtime == mtime && o.mtime.is_some() && o.len == len);
        // "Racily clean" guard (same idea as git's index): a rewrite
        // within the filesystem's timestamp granularity can leave
        // `(mtime, len)` unchanged, so a recently-modified file is
        // content-hashed even when the cheap fingerprint matches.
        let suspect = match mtime.and_then(|m| SystemTime::now().duration_since(m).ok()) {
            Some(age) => age < Duration::from_secs(2),
            None => true,
        };
        if cheap_same && !suspect {
            continue;
        }
        // The cheap fingerprint moved (or the file is new): confirm with
        // a content hash before reloading.
        let Ok(bytes) = std::fs::read(&path) else { continue };
        let observed = Observed { mtime, len, content: fnv1a(&bytes) };
        if seen.get(&path).is_some_and(|o| o.content == observed.content) {
            seen.insert(path, observed);
            continue;
        }
        match registry.load_path(&path) {
            Ok(_) => {
                Counters::add(&shared.counters.reloads_ok, 1);
                seen.insert(path, observed);
            }
            Err(e) if is_artifact(&path) => {
                // A bad artifact is quarantined so it cannot be retried
                // (or served) forever; a sibling `.ipg` source, if
                // present, heals the grammar from source.
                if quarantine(&path) {
                    Counters::add(&shared.counters.artifacts_quarantined, 1);
                }
                seen.remove(&path);
                let sibling = path.with_extension("ipg");
                let healed = sibling.is_file() && registry.load_path(&sibling).is_ok();
                if healed {
                    Counters::add(&shared.counters.reloads_ok, 1);
                } else {
                    Counters::add(&shared.counters.reloads_rejected, 1);
                    failures.push((path, e));
                }
            }
            Err(e) => {
                Counters::add(&shared.counters.reloads_rejected, 1);
                // Remember the bad content so an unchanged broken file is
                // not re-rejected (and re-counted) every tick.
                seen.insert(path.clone(), observed);
                failures.push((path, e));
            }
        }
    }
    failures
}

/// A running directory watcher; joined by [`Watcher::seal`].
pub(crate) struct Watcher {
    thread: JoinHandle<()>,
}

impl Watcher {
    /// Performs the initial synchronous scan of `dir` (so the server
    /// starts with every grammar the directory holds) and spawns the
    /// polling thread.
    ///
    /// # Errors
    ///
    /// [`Error::Grammar`] when `dir` is not a readable directory. Per-file
    /// load failures in the initial scan are *not* fatal — they are
    /// counted and the files quarantined exactly as for a live change —
    /// matching the self-healing contract: one corrupt artifact must not
    /// keep the service down.
    pub(crate) fn spawn(
        registry: Registry,
        shared: Arc<Shared>,
        dir: PathBuf,
        interval: Duration,
    ) -> Result<Watcher> {
        std::fs::read_dir(&dir)
            .map_err(|e| Error::Grammar(format!("cannot watch {}: {e}", dir.display())))?;
        let mut seen = HashMap::new();
        sweep(&registry, &shared, &dir, &mut seen);
        let thread = std::thread::Builder::new()
            .name("ipg-serve-watch".into())
            .spawn(move || {
                while !shared.shutdown.load(Ordering::Acquire) && !shared.is_draining() {
                    std::thread::sleep(interval);
                    sweep(&registry, &shared, &dir, &mut seen);
                }
            })
            .map_err(|e| Error::Grammar(format!("cannot spawn watcher thread: {e}")))?;
        Ok(Watcher { thread })
    }

    /// Joins the watcher thread. Callers set the shutdown or draining
    /// flag first; the thread observes it within one poll interval.
    pub(crate) fn seal(self) {
        let _ = self.thread.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn grammar_file_filter_skips_quarantined_and_foreign_files() {
        assert!(is_grammar_file(Path::new("/x/a.ipg")));
        assert!(is_grammar_file(Path::new("/x/a.ipgc")));
        assert!(!is_grammar_file(Path::new("/x/a.ipgc.bad")));
        assert!(!is_grammar_file(Path::new("/x/a.tmp")));
        assert!(!is_grammar_file(Path::new("/x/README.md")));
    }
}
