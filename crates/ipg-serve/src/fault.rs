//! Deterministic fault injection for the chaos harness.
//!
//! A [`FaultPlan`] is a seeded, rate-based schedule of failures the
//! service must survive: worker panics (exercising the `catch_unwind`
//! job boundary), artificial stalls (exercising queue bounds, deadlines,
//! and shedding), and corrupt reply frames (exercising client-side frame
//! validation). Each injection decision is a pure function of
//! `(seed, draw-counter)` — a SplitMix64 stream — so a given plan injects
//! the *same multiset of faults* for a given number of draws regardless
//! of how worker threads interleave, and a failing soak reproduces from
//! its seed alone.
//!
//! The plan is wired into [`crate::Config::faults`]; production servers
//! run with `None` and pay a single `Option` check per job. Tests and the
//! chaos soak build plans with [`FaultPlan::new`] + rate setters, or from
//! the environment via [`FaultPlan::from_env`] (`IPG_FAULT_SEED`,
//! `IPG_FAULT_PANIC_PM`, `IPG_FAULT_STALL_PM`, `IPG_FAULT_CORRUPT_PM`,
//! all rates in per-mille).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What to inject before executing one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Execute normally.
    None,
    /// Panic inside the job (must be caught, typed, and survived).
    Panic,
    /// Sleep for the given duration first (queue pressure / latency).
    Stall(Duration),
}

/// A seeded fault schedule. Rates are per-mille (0–1000) per draw; the
/// worker draws once per job, the transport draws once per reply frame.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    panic_pm: u32,
    stall_pm: u32,
    stall_max_ms: u64,
    corrupt_pm: u32,
    draws: AtomicU64,
    panics: AtomicU64,
    stalls: AtomicU64,
    corruptions: AtomicU64,
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan that injects nothing until rates are set.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_pm: 0,
            stall_pm: 0,
            stall_max_ms: 5,
            corrupt_pm: 0,
            draws: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
        }
    }

    /// Per-mille rate of injected worker panics.
    #[must_use]
    pub fn panic_per_mille(mut self, pm: u32) -> Self {
        self.panic_pm = pm.min(1000);
        self
    }

    /// Per-mille rate of injected stalls, each up to `max_ms` long.
    #[must_use]
    pub fn stall_per_mille(mut self, pm: u32, max_ms: u64) -> Self {
        self.stall_pm = pm.min(1000);
        self.stall_max_ms = max_ms.max(1);
        self
    }

    /// Per-mille rate of corrupted reply frames on the wire.
    #[must_use]
    pub fn corrupt_per_mille(mut self, pm: u32) -> Self {
        self.corrupt_pm = pm.min(1000);
        self
    }

    /// Builds a plan from `IPG_FAULT_*` environment variables; `None`
    /// when no variable is set (the production default).
    pub fn from_env() -> Option<FaultPlan> {
        fn var(name: &str) -> Option<u64> {
            std::env::var(name).ok()?.parse().ok()
        }
        let seed = var("IPG_FAULT_SEED");
        let panic_pm = var("IPG_FAULT_PANIC_PM");
        let stall_pm = var("IPG_FAULT_STALL_PM");
        let corrupt_pm = var("IPG_FAULT_CORRUPT_PM");
        if seed.is_none() && panic_pm.is_none() && stall_pm.is_none() && corrupt_pm.is_none() {
            return None;
        }
        let mut plan = FaultPlan::new(seed.unwrap_or(0xC4A05));
        if let Some(pm) = panic_pm {
            plan = plan.panic_per_mille(pm as u32);
        }
        if let Some(pm) = stall_pm {
            plan = plan.stall_per_mille(pm as u32, 5);
        }
        if let Some(pm) = corrupt_pm {
            plan = plan.corrupt_per_mille(pm as u32);
        }
        Some(plan)
    }

    /// One random draw: deterministic in the draw counter.
    fn draw(&self) -> u64 {
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.seed ^ splitmix64(n))
    }

    /// The worker-side decision for the next job.
    pub fn next_job_fault(&self) -> Fault {
        let r = self.draw();
        let roll = (r % 1000) as u32;
        if roll < self.panic_pm {
            self.panics.fetch_add(1, Ordering::Relaxed);
            return Fault::Panic;
        }
        if roll < self.panic_pm + self.stall_pm {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            let ms = (r >> 10) % self.stall_max_ms + 1;
            return Fault::Stall(Duration::from_millis(ms));
        }
        Fault::None
    }

    /// The transport-side decision for the next reply frame.
    pub fn corrupt_next_reply(&self) -> bool {
        let corrupt = (self.draw() % 1000) as u32 >= 1000 - self.corrupt_pm;
        if corrupt {
            self.corruptions.fetch_add(1, Ordering::Relaxed);
        }
        corrupt
    }

    /// Panics injected so far.
    pub fn panics_injected(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Stalls injected so far.
    pub fn stalls_injected(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Reply frames corrupted so far.
    pub fn corruptions_injected(&self) -> u64 {
        self.corruptions.load(Ordering::Relaxed)
    }

    /// Total faults injected so far (panics + stalls + corruptions).
    pub fn injected(&self) -> u64 {
        self.panics_injected() + self.stalls_injected() + self.corruptions_injected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_counts_are_deterministic_per_seed_and_draws() {
        let counts = |seed: u64| {
            let plan = FaultPlan::new(seed).panic_per_mille(100).stall_per_mille(100, 3);
            for _ in 0..2000 {
                let _ = plan.next_job_fault();
            }
            (plan.panics_injected(), plan.stalls_injected())
        };
        assert_eq!(counts(42), counts(42), "same seed, same schedule");
        let (p, s) = counts(42);
        // ~10% each over 2000 draws; a wide band that only a broken
        // stream could escape.
        assert!((100..=320).contains(&p), "panic count {p} out of band");
        assert!((100..=320).contains(&s), "stall count {s} out of band");
        assert_ne!(counts(42), counts(43), "different seeds differ");
    }

    #[test]
    fn zero_rate_plan_injects_nothing() {
        let plan = FaultPlan::new(7);
        for _ in 0..500 {
            assert_eq!(plan.next_job_fault(), Fault::None);
            assert!(!plan.corrupt_next_reply());
        }
        assert_eq!(plan.injected(), 0);
    }
}
