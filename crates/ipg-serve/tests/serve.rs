//! Integration tests for the parse service: batch jobs, streaming
//! sessions, isolation (fuel, byte budgets, deadlines), the Unix-socket
//! front end, and pool mechanics under load.

use ipg_serve::proto::Wire;
use ipg_serve::{Config, Registry, Response, Server};
use std::sync::Arc;
use std::time::Duration;

fn corpus_input(name: &str) -> Vec<u8> {
    match name {
        "zip" | "zip_inflate" => ipg_corpus::zip::generate(&Default::default()).bytes,
        "dns" => ipg_corpus::dns::generate(&Default::default()).bytes,
        "png" => ipg_corpus::png::generate(&Default::default()).bytes,
        "gif" => ipg_corpus::gif::generate(&Default::default()).bytes,
        "elf" => ipg_corpus::elf::generate(&Default::default()).bytes,
        "ipv4udp" => ipg_corpus::ipv4udp::generate(&Default::default()).bytes,
        "pe" => ipg_corpus::pe::generate(&Default::default()).bytes,
        "pdf" => ipg_corpus::pdf::generate(&Default::default()).bytes,
        other => panic!("no corpus generator for {other}"),
    }
}

#[test]
fn batch_parse_matches_the_direct_vm() {
    let server = Server::start(Config { workers: 2, ..Config::default() });
    for entry in ipg_formats::Registry::corpus().entries() {
        let (name, vm) = (entry.name.as_str(), entry.vm);
        let input = corpus_input(name);
        let (direct, stats) = vm.parse_with_stats(&input);
        let direct = direct.expect("corpus inputs parse");
        let summary = server.parse(name, input.clone()).expect("service parse succeeds");
        assert_eq!(summary.steps, stats.steps, "{name}: service must do identical work");
        assert_eq!(summary.nodes, direct.arena().len(), "{name}: identical tree size");
        assert_eq!(summary.bytes, input.len());
    }
    let stats = server.stats();
    assert_eq!(stats.parses_ok, 9);
    assert_eq!(stats.parses_err, 0);
    server.shutdown();
}

#[test]
fn streaming_session_matches_one_shot() {
    let server = Server::start(Config { workers: 2, ..Config::default() });
    let input = corpus_input("dns");
    let (_, one_shot) = ipg_formats::dns::vm().parse_with_stats(&input);

    let mut stream = server.open("dns").expect("open session");
    for chunk in input.chunks(3) {
        match stream.feed(chunk) {
            Response::NeedInput { .. } => {}
            other => panic!("unexpected mid-stream response: {other:?}"),
        }
    }
    match stream.finish() {
        Response::Done(summary) => {
            assert_eq!(summary.steps, one_shot.steps, "streamed work must equal one-shot");
            assert_eq!(summary.bytes, input.len());
        }
        other => panic!("expected Done, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.sessions_closed, 1);
    assert!(stats.suspends > 0, "chunked feeding must have suspended");
    server.shutdown();
}

#[test]
fn rejections_and_unknown_grammars_are_clean_errors() {
    let server = Server::start(Config { workers: 1, ..Config::default() });
    assert!(server.parse("nope", vec![1, 2, 3]).is_err());
    assert!(server.parse("zip", b"not a zip at all".to_vec()).is_err());
    // The worker survives failures and keeps serving.
    assert!(server.parse("dns", corpus_input("dns")).is_ok());
    server.shutdown();
}

#[test]
fn step_fuel_kills_hostile_work_without_killing_the_worker() {
    let server = Server::start(Config { workers: 1, max_steps: 10, ..Config::default() });
    let err = server.parse("zip", corpus_input("zip")).expect_err("10 steps is not enough");
    assert!(err.to_string().contains("step limit"), "unexpected error: {err}");
    // Same pool, normal work still impossible under the tiny global fuel,
    // but the worker is alive and answering.
    assert!(server.parse("zip", corpus_input("zip")).is_err());
    server.shutdown();
}

#[test]
fn session_byte_budget_is_enforced() {
    let server = Server::start(Config { workers: 1, max_bytes: 16, ..Config::default() });
    let mut stream = server.open("dns").expect("open");
    let resp = stream.feed(&[0u8; 64]);
    match resp {
        Response::Error(e) => {
            assert!(e.to_string().contains("byte budget"), "unexpected error: {e}")
        }
        other => panic!("expected a byte-budget error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn deadline_eviction_reclaims_stalled_sessions() {
    let server = Server::start(Config {
        workers: 1,
        session_deadline: Duration::from_millis(30),
        ..Config::default()
    });
    let mut stream = server.open("dns").expect("open");
    let _ = stream.feed(&[0x12]);
    // Stall past the deadline; the worker's idle sweep evicts the session.
    std::thread::sleep(Duration::from_millis(200));
    match stream.feed(&[0x34]) {
        Response::Error(e) => {
            assert!(e.to_string().contains("session"), "unexpected error: {e}")
        }
        other => panic!("expected an eviction error, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.sessions_evicted, 1);
    assert_eq!(stats.live_sessions, 0);
    server.shutdown();
}

#[test]
fn many_batch_jobs_complete_across_workers() {
    let server = Server::start(Config { workers: 4, ..Config::default() });
    let input = corpus_input("gif");
    let pending: Vec<_> =
        (0..64).map(|_| server.parse_async("gif", input.clone()).expect("submit")).collect();
    let mut ok = 0;
    for rx in pending {
        match rx.recv().expect("worker answers") {
            Response::Done(_) => ok += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(ok, 64);
    let stats = server.stats();
    assert_eq!(stats.parses_ok, 64);
    assert!(stats.queue_depths.iter().all(|&d| d == 0), "queues drained");
    server.shutdown();
}

#[test]
fn unix_socket_front_end_round_trips() {
    let server = Arc::new(Server::start(Config { workers: 2, ..Config::default() }));
    let path = std::env::temp_dir().join(format!("ipg-serve-test-{}.sock", std::process::id()));
    let front = server.serve_unix(&path).expect("bind socket");
    let mut client = ipg_serve::proto::Client::connect(&path).expect("connect");

    // One-shot parse over the wire.
    let input = corpus_input("pe");
    let (_, stats) = ipg_formats::pe::vm().parse_with_stats(&input);
    match client.parse("pe", &input).expect("io") {
        Wire::Done { steps, bytes, .. } => {
            assert_eq!(steps, stats.steps);
            assert_eq!(bytes, input.len() as u64);
        }
        other => panic!("expected Done, got {other:?}"),
    }

    // Streaming session over the wire.
    let input = corpus_input("dns");
    let Wire::Opened { id } = client.open("dns").expect("io") else { panic!("expected Opened") };
    for chunk in input.chunks(7) {
        match client.feed(id, chunk).expect("io") {
            Wire::NeedInput { .. } => {}
            other => panic!("unexpected mid-stream wire response: {other:?}"),
        }
    }
    match client.finish(id).expect("io") {
        Wire::Done { bytes, .. } => assert_eq!(bytes, input.len() as u64),
        other => panic!("expected Done, got {other:?}"),
    }

    // Errors stay on the wire as errors, not hangups.
    match client.parse("nope", b"x").expect("io") {
        Wire::Error(msg) => assert!(msg.contains("unknown grammar")),
        other => panic!("expected Error, got {other:?}"),
    }
    match client.finish(id).expect("io") {
        Wire::Error(msg) => assert!(msg.contains("session"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }

    // Stats are live JSON.
    match client.stats().expect("io") {
        Wire::Stats(json) => {
            assert!(json.contains("\"parses_ok\": 2"), "unexpected stats: {json}")
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    // Session ownership is per-connection: a second client cannot feed or
    // finish (i.e. corrupt or kill) a session it did not open.
    let Wire::Opened { id: mine } = client.open("dns").expect("io") else {
        panic!("expected Opened")
    };
    let mut intruder = ipg_serve::proto::Client::connect(&path).expect("connect");
    for wire in [intruder.feed(mine, b"\x00").expect("io"), intruder.finish(mine).expect("io")] {
        match wire {
            Wire::Error(msg) => {
                assert!(msg.contains("not opened on this connection"), "{msg}")
            }
            other => panic!("expected an ownership error, got {other:?}"),
        }
    }
    // The rightful owner still holds a live session.
    match client.feed(mine, &corpus_input("dns")).expect("io") {
        Wire::NeedInput { .. } => {}
        other => panic!("owner's session was disturbed: {other:?}"),
    }
    match client.finish(mine).expect("io") {
        Wire::Done { .. } => {}
        other => panic!("expected Done, got {other:?}"),
    }
    drop(intruder);

    // Close the client first: its connection thread exits on EOF and
    // releases its server handle.
    drop(client);
    drop(front);
    let _ = std::fs::remove_file(&path);
    let mut server = server;
    for _ in 0..200 {
        match Arc::try_unwrap(server) {
            Ok(s) => {
                s.shutdown();
                return;
            }
            Err(still_shared) => {
                server = still_shared;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    panic!("connection thread did not release the server handle");
}

#[test]
fn custom_registry_rejects_everything_else() {
    let mut registry = Registry::new();
    registry.register("only-dns", ipg_formats::dns::grammar(), ipg_formats::dns::vm());
    let server = Server::with_registry(Config { workers: 1, ..Config::default() }, registry);
    assert!(server.parse("zip", corpus_input("zip")).is_err());
    assert!(server.parse("only-dns", corpus_input("dns")).is_ok());
    assert_eq!(server.registry().names(), vec!["only-dns"]);
    server.shutdown();
}

#[test]
fn workers_run_programs_loaded_from_the_artifact_cache() {
    // Warm the cache in a scratch directory, then verify a second
    // process-like load round-trips through `.ipgc` artifacts: every
    // corpus entry reports a cache hit and its VM still parses.
    let dir = std::env::temp_dir().join(format!("ipg-serve-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ipg_core::ipgc::Cache::at(&dir);
    for d in ipg_formats::registry::corpus_descriptors() {
        let (_, outcome) = cache.load_or_compile(d.name, d.spec, (d.blackboxes)()).unwrap();
        assert!(matches!(outcome, ipg_core::ipgc::CacheOutcome::Miss(_)), "{}", d.name);
    }
    let mut registry = Registry::new();
    for d in ipg_formats::registry::corpus_descriptors() {
        let (cached, outcome) = cache.load_or_compile(d.name, d.spec, (d.blackboxes)()).unwrap();
        assert_eq!(outcome, ipg_core::ipgc::CacheOutcome::Hit, "{}: warm load must hit", d.name);
        drop(cached);
        registry.load_spec(d.name, d.spec, (d.blackboxes)()).unwrap();
    }
    let server = Server::with_registry(Config { workers: 2, ..Config::default() }, registry);
    for name in ["zip", "zip_inflate", "dns", "png", "gif", "elf", "ipv4udp", "pe", "pdf"] {
        let summary = server.parse(name, corpus_input(name)).expect("artifact-loaded VM parses");
        assert!(summary.nodes > 0, "{name}");
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
