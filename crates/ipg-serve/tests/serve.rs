//! Integration tests for the parse service: batch jobs, streaming
//! sessions, isolation (fuel, byte budgets, deadlines), the Unix-socket
//! front end, pool mechanics under load, and the fault-tolerance layer
//! (panic isolation, BUSY shedding, graceful drain).

use ipg_core::Error;
use ipg_serve::fault::FaultPlan;
use ipg_serve::proto::Wire;
use ipg_serve::{Config, Registry, Response, Server};
use std::sync::Arc;
use std::time::Duration;

fn corpus_input(name: &str) -> Vec<u8> {
    match name {
        "zip" | "zip_inflate" => ipg_corpus::zip::generate(&Default::default()).bytes,
        "dns" => ipg_corpus::dns::generate(&Default::default()).bytes,
        "png" => ipg_corpus::png::generate(&Default::default()).bytes,
        "gif" => ipg_corpus::gif::generate(&Default::default()).bytes,
        "elf" => ipg_corpus::elf::generate(&Default::default()).bytes,
        "ipv4udp" => ipg_corpus::ipv4udp::generate(&Default::default()).bytes,
        "pe" => ipg_corpus::pe::generate(&Default::default()).bytes,
        "pdf" => ipg_corpus::pdf::generate(&Default::default()).bytes,
        other => panic!("no corpus generator for {other}"),
    }
}

#[test]
fn batch_parse_matches_the_direct_vm() {
    let server = Server::start(Config { workers: 2, ..Config::default() });
    for entry in ipg_formats::Registry::corpus().entries() {
        let (name, vm) = (entry.name.as_str(), entry.vm());
        let input = corpus_input(name);
        let (direct, stats) = vm.parse_with_stats(&input);
        let direct = direct.expect("corpus inputs parse");
        let summary = server.parse(name, input.clone()).expect("service parse succeeds");
        assert_eq!(summary.steps, stats.steps, "{name}: service must do identical work");
        assert_eq!(summary.nodes, direct.arena().len(), "{name}: identical tree size");
        assert_eq!(summary.bytes, input.len());
    }
    let stats = server.stats();
    assert_eq!(stats.parses_ok, 9);
    assert_eq!(stats.parses_err, 0);
    server.shutdown();
}

#[test]
fn streaming_session_matches_one_shot() {
    let server = Server::start(Config { workers: 2, ..Config::default() });
    let input = corpus_input("dns");
    let (_, one_shot) = ipg_formats::dns::vm().parse_with_stats(&input);

    let mut stream = server.open("dns").expect("open session");
    for chunk in input.chunks(3) {
        match stream.feed(chunk) {
            Response::NeedInput { .. } => {}
            other => panic!("unexpected mid-stream response: {other:?}"),
        }
    }
    match stream.finish() {
        Response::Done(summary) => {
            assert_eq!(summary.steps, one_shot.steps, "streamed work must equal one-shot");
            assert_eq!(summary.bytes, input.len());
        }
        other => panic!("expected Done, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.sessions_closed, 1);
    assert!(stats.suspends > 0, "chunked feeding must have suspended");
    server.shutdown();
}

#[test]
fn rejections_and_unknown_grammars_are_clean_errors() {
    let server = Server::start(Config { workers: 1, ..Config::default() });
    assert!(server.parse("nope", vec![1, 2, 3]).is_err());
    assert!(server.parse("zip", b"not a zip at all".to_vec()).is_err());
    // The worker survives failures and keeps serving.
    assert!(server.parse("dns", corpus_input("dns")).is_ok());
    server.shutdown();
}

#[test]
fn step_fuel_kills_hostile_work_without_killing_the_worker() {
    let server = Server::start(Config { workers: 1, max_steps: 10, ..Config::default() });
    let err = server.parse("zip", corpus_input("zip")).expect_err("10 steps is not enough");
    assert!(err.to_string().contains("step limit"), "unexpected error: {err}");
    // Same pool, normal work still impossible under the tiny global fuel,
    // but the worker is alive and answering.
    assert!(server.parse("zip", corpus_input("zip")).is_err());
    server.shutdown();
}

#[test]
fn session_byte_budget_is_enforced() {
    let server = Server::start(Config { workers: 1, max_bytes: 16, ..Config::default() });
    let mut stream = server.open("dns").expect("open");
    let resp = stream.feed(&[0u8; 64]);
    match resp {
        Response::Error(e) => {
            assert!(e.to_string().contains("byte budget"), "unexpected error: {e}")
        }
        other => panic!("expected a byte-budget error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn deadline_eviction_reclaims_stalled_sessions() {
    let server = Server::start(Config {
        workers: 1,
        session_deadline: Duration::from_millis(30),
        ..Config::default()
    });
    let mut stream = server.open("dns").expect("open");
    let _ = stream.feed(&[0x12]);
    // Stall past the deadline; the worker's idle sweep evicts the session.
    std::thread::sleep(Duration::from_millis(200));
    match stream.feed(&[0x34]) {
        Response::Error(e) => {
            assert!(e.to_string().contains("session"), "unexpected error: {e}")
        }
        other => panic!("expected an eviction error, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.sessions_evicted, 1);
    assert_eq!(stats.live_sessions, 0);
    server.shutdown();
}

#[test]
fn many_batch_jobs_complete_across_workers() {
    let server = Server::start(Config { workers: 4, ..Config::default() });
    let input = corpus_input("gif");
    let pending: Vec<_> =
        (0..64).map(|_| server.parse_async("gif", input.clone()).expect("submit")).collect();
    let mut ok = 0;
    for rx in pending {
        match rx.recv().expect("worker answers") {
            Response::Done(_) => ok += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(ok, 64);
    let stats = server.stats();
    assert_eq!(stats.parses_ok, 64);
    assert!(stats.queue_depths.iter().all(|&d| d == 0), "queues drained");
    server.shutdown();
}

#[test]
fn unix_socket_front_end_round_trips() {
    let server = Arc::new(Server::start(Config { workers: 2, ..Config::default() }));
    let path = std::env::temp_dir().join(format!("ipg-serve-test-{}.sock", std::process::id()));
    let front = server.serve_unix(&path).expect("bind socket");
    let mut client = ipg_serve::proto::Client::connect(&path).expect("connect");

    // One-shot parse over the wire.
    let input = corpus_input("pe");
    let (_, stats) = ipg_formats::pe::vm().parse_with_stats(&input);
    match client.parse("pe", &input).expect("io") {
        Wire::Done { steps, bytes, .. } => {
            assert_eq!(steps, stats.steps);
            assert_eq!(bytes, input.len() as u64);
        }
        other => panic!("expected Done, got {other:?}"),
    }

    // Streaming session over the wire.
    let input = corpus_input("dns");
    let Wire::Opened { id } = client.open("dns").expect("io") else { panic!("expected Opened") };
    for chunk in input.chunks(7) {
        match client.feed(id, chunk).expect("io") {
            Wire::NeedInput { .. } => {}
            other => panic!("unexpected mid-stream wire response: {other:?}"),
        }
    }
    match client.finish(id).expect("io") {
        Wire::Done { bytes, .. } => assert_eq!(bytes, input.len() as u64),
        other => panic!("expected Done, got {other:?}"),
    }

    // Errors stay on the wire as errors, not hangups.
    match client.parse("nope", b"x").expect("io") {
        Wire::Error(msg) => assert!(msg.contains("unknown grammar")),
        other => panic!("expected Error, got {other:?}"),
    }
    match client.finish(id).expect("io") {
        Wire::Error(msg) => assert!(msg.contains("session"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }

    // Stats are live JSON.
    match client.stats().expect("io") {
        Wire::Stats(json) => {
            assert!(json.contains("\"parses_ok\": 2"), "unexpected stats: {json}")
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    // Session ownership is per-connection: a second client cannot feed or
    // finish (i.e. corrupt or kill) a session it did not open.
    let Wire::Opened { id: mine } = client.open("dns").expect("io") else {
        panic!("expected Opened")
    };
    let mut intruder = ipg_serve::proto::Client::connect(&path).expect("connect");
    for wire in [intruder.feed(mine, b"\x00").expect("io"), intruder.finish(mine).expect("io")] {
        match wire {
            Wire::Error(msg) => {
                assert!(msg.contains("not opened on this connection"), "{msg}")
            }
            other => panic!("expected an ownership error, got {other:?}"),
        }
    }
    // The rightful owner still holds a live session.
    match client.feed(mine, &corpus_input("dns")).expect("io") {
        Wire::NeedInput { .. } => {}
        other => panic!("owner's session was disturbed: {other:?}"),
    }
    match client.finish(mine).expect("io") {
        Wire::Done { .. } => {}
        other => panic!("expected Done, got {other:?}"),
    }
    drop(intruder);

    // Close the client first: its connection thread exits on EOF and
    // releases its server handle.
    drop(client);
    drop(front);
    let _ = std::fs::remove_file(&path);
    let mut server = server;
    for _ in 0..200 {
        match Arc::try_unwrap(server) {
            Ok(s) => {
                s.shutdown();
                return;
            }
            Err(still_shared) => {
                server = still_shared;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    panic!("connection thread did not release the server handle");
}

#[test]
fn worker_panics_are_isolated_and_typed() {
    // Every job panics (injected at the catch_unwind boundary); each one
    // must come back as a typed WorkerPanic reply and the worker must
    // keep serving afterwards.
    let plan = Arc::new(FaultPlan::new(0xBAD).panic_per_mille(1000));
    let server =
        Server::start(Config { workers: 1, faults: Some(plan.clone()), ..Config::default() });
    for _ in 0..3 {
        let err = server.parse("dns", corpus_input("dns")).expect_err("injected panic");
        assert!(matches!(err, Error::WorkerPanic(_)), "expected WorkerPanic, got {err:?}");
        assert!(err.to_string().contains("worker panicked"), "unexpected message: {err}");
    }
    let stats = server.stats();
    assert_eq!(stats.panics_recovered, 3);
    assert_eq!(stats.panics_recovered, plan.panics_injected());
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.failed, 3);
    assert!(stats.reconciles(), "ledger must balance: {stats:?}");
    server.shutdown();
}

#[test]
fn panicking_jobs_do_not_starve_healthy_ones() {
    // A fractional panic rate: some of the 40 parses die, the rest
    // complete on the same (surviving) workers, and the ledger still
    // reconciles exactly.
    let plan = Arc::new(FaultPlan::new(0x5EED).panic_per_mille(300));
    let server =
        Server::start(Config { workers: 2, faults: Some(plan.clone()), ..Config::default() });
    let input = corpus_input("dns");
    let mut ok = 0u64;
    let mut panicked = 0u64;
    for _ in 0..40 {
        match server.parse("dns", input.clone()) {
            Ok(_) => ok += 1,
            Err(Error::WorkerPanic(_)) => panicked += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(ok > 0, "healthy jobs must still complete");
    assert!(panicked > 0, "the plan must have injected panics");
    assert_eq!(ok + panicked, 40);
    let stats = server.stats();
    assert_eq!(stats.panics_recovered, plan.panics_injected());
    assert_eq!(stats.panics_recovered, panicked);
    assert_eq!(stats.completed, ok);
    assert_eq!(stats.failed, panicked);
    assert!(stats.reconciles(), "ledger must balance: {stats:?}");
    server.shutdown();
}

#[test]
fn over_bound_jobs_are_shed_with_busy() {
    // One worker, every job stalled 1–20ms, a 2-deep one-shot queue: a
    // burst of 16 must see at least one BUSY shed and at least one
    // completion, with the ledger reconciling to exactly 16.
    let plan = Arc::new(FaultPlan::new(0xB0B).stall_per_mille(1000, 20));
    let server = Server::start(Config {
        workers: 1,
        max_queue: 2,
        retry_after: Duration::from_millis(7),
        faults: Some(plan),
        ..Config::default()
    });
    let input = corpus_input("gif");
    let pending: Vec<_> =
        (0..16).map(|_| server.parse_async("gif", input.clone()).expect("submit")).collect();
    let mut done = 0u64;
    let mut busy = 0u64;
    for rx in pending {
        match rx.recv_timeout(Duration::from_secs(30)).expect("every job gets one reply") {
            Response::Done(_) => done += 1,
            Response::Busy { retry_after_ms } => {
                assert_eq!(retry_after_ms, 7, "BUSY must carry the configured hint");
                busy += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(busy > 0, "a 2-deep queue under a 16-burst must shed");
    assert!(done > 0, "admitted jobs must still complete");
    assert_eq!(done + busy, 16);
    let stats = server.stats();
    assert_eq!(stats.submitted, 16);
    assert_eq!(stats.shed, busy);
    assert_eq!(stats.completed, done);
    assert!(stats.reconciles(), "ledger must balance: {stats:?}");
    assert!(stats.latency_p50_us > 0, "completed work must have recorded latency");
    // Admission recovers once the burst clears.
    assert!(server.parse("gif", input).is_ok());
    server.shutdown();
}

#[test]
fn drain_refuses_new_work_and_seals_sessions() {
    let server = Server::start(Config { workers: 2, ..Config::default() });
    let mut stream = server.open("dns").expect("open");
    assert!(matches!(stream.feed(&[0x12]), Response::NeedInput { .. }));

    server.drain();

    // New one-shot work is refused with GOAWAY, typed all the way up.
    let err = server.parse("dns", corpus_input("dns")).expect_err("draining");
    assert!(err.to_string().contains("GOAWAY"), "unexpected error: {err}");
    assert!(server.open("dns").is_err(), "no new sessions while draining");
    // The sealed session answers GOAWAY instead of hanging.
    assert!(matches!(stream.feed(&[0x34]), Response::GoAway));

    let stats = server.stats();
    assert_eq!(stats.sessions_sealed, 1, "the open session must be sealed, not dropped");
    assert_eq!(stats.live_sessions, 0);
    assert!(stats.reconciles(), "ledger must balance: {stats:?}");

    // Drain is idempotent.
    server.drain();
    server.shutdown();
}

#[test]
fn drain_sends_goaway_over_the_wire() {
    let server = Arc::new(Server::start(Config { workers: 2, ..Config::default() }));
    let path = std::env::temp_dir().join(format!("ipg-serve-drain-{}.sock", std::process::id()));
    let front = server.serve_unix(&path).expect("bind socket");

    let mut client = ipg_serve::proto::Client::connect(&path).expect("connect");
    let Wire::Opened { id } = client.open("dns").expect("io") else { panic!("expected Opened") };
    assert!(matches!(client.feed(id, &[0x12]).expect("io"), Wire::NeedInput { .. }));
    // A second connection sits idle between frames throughout the drain.
    // One STATS round trip first, so it is accepted (off the listener
    // backlog) before the acceptor stops.
    let mut idle = std::os::unix::net::UnixStream::connect(&path).expect("connect idle");
    idle.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    ipg_serve::proto::write_frame(&mut idle, &[ipg_serve::proto::OP_STATS]).expect("io");
    let reply = ipg_serve::proto::read_frame(&mut idle).expect("io").expect("stats reply");
    assert_eq!(reply.first(), Some(&ipg_serve::proto::ST_STATS));

    front.stop_accepting();
    server.drain();

    // Both connections sit idle between frames, so each is sealed with an
    // unsolicited GOAWAY and a clean EOF — never a torn frame, never a
    // silent hangup (the session holder included: its session was sealed
    // server-side at worker exit).
    assert_eq!(client.recv().expect("io"), Some(Wire::GoAway));
    assert_eq!(client.recv().expect("io"), None, "clean EOF after GOAWAY");
    let frame = ipg_serve::proto::read_frame(&mut idle).expect("io").expect("sealed, not torn");
    assert_eq!(frame, vec![ipg_serve::proto::ST_GOAWAY]);
    assert_eq!(ipg_serve::proto::read_frame(&mut idle).expect("io"), None, "clean EOF");

    let stats = server.stats();
    assert!(stats.sessions_sealed >= 1, "stats: {stats:?}");
    assert!(stats.reconciles(), "ledger must balance: {stats:?}");
    drop(client);
    drop(front);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn custom_registry_rejects_everything_else() {
    let registry = Registry::new();
    registry.register("only-dns", ipg_formats::registry::corpus_entry("dns").handle());
    let server = Server::with_registry(Config { workers: 1, ..Config::default() }, registry);
    assert!(server.parse("zip", corpus_input("zip")).is_err());
    assert!(server.parse("only-dns", corpus_input("dns")).is_ok());
    assert_eq!(server.registry().names(), vec!["only-dns"]);
    server.shutdown();
}

#[test]
fn watch_dir_hot_reloads_grammars_without_tearing_live_sessions() {
    let dir = std::env::temp_dir().join(format!("ipg-serve-watch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("tiny.ipg"), r#"S -> "a"[0, 1];"#).unwrap();

    let server = Server::with_registry(Config { workers: 2, ..Config::default() }, Registry::new());
    server.watch_dir(&dir, Duration::from_millis(5)).expect("watch");
    // The initial scan is synchronous: the grammar serves immediately.
    assert!(server.parse("tiny", b"a".to_vec()).is_ok());

    // Pin a live session to the current generation, then swap the
    // grammar on disk underneath it.
    let mut stream = server.open("tiny").expect("open");
    std::fs::write(dir.join("tiny.ipg"), r#"S -> "b"[0, 1];"#).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.parse("tiny", b"b".to_vec()).is_err() {
        assert!(std::time::Instant::now() < deadline, "watcher never swapped the grammar");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(server.parse("tiny", b"a".to_vec()).is_err(), "new generation rejects old input");

    // The session opened before the swap still speaks the old grammar:
    // its generation was pinned at admission.
    assert!(matches!(stream.feed(b"a"), Response::NeedInput { .. }));
    assert!(matches!(stream.finish(), Response::Done(_)), "pinned generation must survive");

    // A source that no longer compiles is rejected; the last good
    // generation keeps serving.
    std::fs::write(dir.join("tiny.ipg"), "THIS IS NOT A GRAMMAR ->").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().reloads_rejected == 0 {
        assert!(std::time::Instant::now() < deadline, "watcher never saw the broken source");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(server.parse("tiny", b"b".to_vec()).is_ok(), "rollback keeps the previous grammar");

    let stats = server.stats();
    assert!(stats.reloads_ok >= 2, "initial load plus one swap: {stats:?}");
    assert_eq!(stats.artifacts_quarantined, 0);
    assert!(stats.reconciles(), "ledger must balance: {stats:?}");
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watcher_quarantines_corrupt_artifacts_and_heals_from_source() {
    let dir = std::env::temp_dir().join(format!("ipg-serve-heal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("tiny.ipg"), r#"S -> "a"[0, 1];"#).unwrap();
    std::fs::write(dir.join("tiny.ipgc"), b"IPGC this is not a valid artifact").unwrap();

    let server = Server::with_registry(Config { workers: 1, ..Config::default() }, Registry::new());
    server.watch_dir(&dir, Duration::from_millis(5)).expect("watch");

    // The initial scan already quarantined the bad artifact and healed
    // the grammar from its sibling source.
    assert!(!dir.join("tiny.ipgc").exists(), "bad artifact must be renamed away");
    assert!(dir.join("tiny.ipgc.bad").exists(), "quarantine keeps the evidence");
    assert!(server.parse("tiny", b"a".to_vec()).is_ok(), "healed from sibling source");

    let stats = server.stats();
    assert_eq!(stats.artifacts_quarantined, 1, "{stats:?}");
    assert_eq!(stats.reloads_rejected, 0, "healing is not a rejection: {stats:?}");
    assert!(stats.reloads_ok >= 1, "{stats:?}");

    // One watcher per server.
    let err = server.watch_dir(&dir, Duration::from_millis(5)).expect_err("second watcher");
    assert!(err.to_string().contains("already running"), "{err}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workers_run_programs_loaded_from_the_artifact_cache() {
    // Warm the cache in a scratch directory, then verify a second
    // process-like load round-trips through `.ipgc` artifacts: every
    // corpus entry reports a cache hit and its VM still parses.
    let dir = std::env::temp_dir().join(format!("ipg-serve-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ipg_core::ipgc::Cache::at(&dir);
    for d in ipg_formats::registry::corpus_descriptors() {
        let (_, outcome) = cache.load_or_compile(d.name, d.spec, (d.blackboxes)()).unwrap();
        assert!(matches!(outcome, ipg_core::ipgc::CacheOutcome::Miss(_)), "{}", d.name);
    }
    let registry = Registry::new();
    for d in ipg_formats::registry::corpus_descriptors() {
        let (cached, outcome) = cache.load_or_compile(d.name, d.spec, (d.blackboxes)()).unwrap();
        assert_eq!(outcome, ipg_core::ipgc::CacheOutcome::Hit, "{}: warm load must hit", d.name);
        drop(cached);
        registry.load_spec(d.name, d.spec, (d.blackboxes)()).unwrap();
    }
    let server = Server::with_registry(Config { workers: 2, ..Config::default() }, registry);
    for name in ["zip", "zip_inflate", "dns", "png", "gif", "elf", "ipv4udp", "pe", "pdf"] {
        let summary = server.parse(name, corpus_input(name)).expect("artifact-loaded VM parses");
        assert!(summary.nodes > 0, "{name}");
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
