//! Transport-robustness fuzzing: truncated, bit-flipped, oversized, and
//! out-of-order frames thrown at the Unix-socket front end. The contract
//! under test ([`ipg_serve::proto`] module docs): every framing or
//! protocol violation draws a *typed* `ERROR` frame — never a server
//! panic, never a silent hangup, never a torn frame. Request mutation
//! reuses the ipg-gen mutators, the same machinery the cross-engine
//! conformance fuzzer drives grammars with.

use ipg_serve::proto::{
    self, decode_wire, read_frame, write_frame, Wire, OP_FEED, OP_FINISH, OP_OPEN, OP_PARSE,
    OP_STATS, ST_ERROR,
};
use ipg_serve::{Config, Server};
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// A server with a deliberately small frame cap and a short io timeout,
/// so the oversized and slow-loris edges are cheap to reach.
fn start(tag: &str) -> (Arc<Server>, proto::UnixFront, std::path::PathBuf) {
    let server = Arc::new(Server::start(Config {
        workers: 1,
        max_frame: 4096,
        io_timeout: Duration::from_millis(400),
        ..Config::default()
    }));
    let path =
        std::env::temp_dir().join(format!("ipg-serve-fuzz-{tag}-{}.sock", std::process::id()));
    let front = server.serve_unix(&path).expect("bind socket");
    (server, front, path)
}

fn connect(path: &std::path::Path) -> UnixStream {
    let s = UnixStream::connect(path).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    s
}

fn dns_input() -> Vec<u8> {
    ipg_corpus::dns::generate(&Default::default()).bytes
}

#[test]
fn mutated_request_frames_get_typed_replies_and_never_kill_the_server() {
    let (server, front, path) = start("mutate");
    let dns = dns_input();

    // Seed payloads covering every op, then bit-flip/splice/truncate them
    // with the ipg-gen mutators.
    let mut seeds: Vec<Vec<u8>> = Vec::new();
    let mut parse = vec![OP_PARSE, 3];
    parse.extend_from_slice(b"dns");
    parse.extend_from_slice(&dns);
    seeds.push(parse);
    let mut open = vec![OP_OPEN, 3];
    open.extend_from_slice(b"dns");
    seeds.push(open);
    let mut feed = vec![OP_FEED];
    feed.extend_from_slice(&0u64.to_le_bytes());
    feed.extend_from_slice(&[1, 2, 3]);
    seeds.push(feed);
    let mut finish = vec![OP_FINISH];
    finish.extend_from_slice(&0u64.to_le_bytes());
    seeds.push(finish);
    seeds.push(vec![OP_STATS]);
    seeds.push(Vec::new());

    let mut stream = connect(&path);
    let mut replies = 0u64;
    for index in 0..200u64 {
        let mut payload = seeds[index as usize % seeds.len()].clone();
        ipg_gen::mutate::mutate(&mut payload, 0xF00D, index);
        payload.truncate(4096); // stay under the frame cap in this lane
        write_frame(&mut stream, &payload).expect("write");
        let reply = read_frame(&mut stream).expect("io").expect("typed reply, not a hangup");
        assert!(
            decode_wire(&reply).is_some(),
            "reply to mutant #{index} must stay decodable: {reply:?}"
        );
        replies += 1;
    }
    assert_eq!(replies, 200);

    // The same connection — and the server — still do real work.
    let mut client = proto::Client::connect(&path).expect("connect");
    assert!(matches!(client.parse("dns", &dns).expect("io"), Wire::Done { .. }));
    let stats = server.stats();
    assert_eq!(stats.panics_recovered, 0, "no mutant may reach a panic");
    assert!(stats.reconciles(), "ledger must balance: {stats:?}");
    drop((stream, client, front));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let (_server, front, path) = start("oversized");
    let mut stream = connect(&path);
    // Claim a 1 GiB frame against the 4 KiB cap; the server must answer
    // with a typed error naming the cap, then close — without ever
    // buffering the claimed length.
    stream.write_all(&(1u32 << 30).to_le_bytes()).expect("write");
    let reply = read_frame(&mut stream).expect("io").expect("typed reply, not a hangup");
    assert_eq!(reply.first(), Some(&ST_ERROR));
    let msg = String::from_utf8_lossy(&reply[1..]).into_owned();
    assert!(msg.contains("exceeds") && msg.contains("4096"), "unexpected error: {msg}");
    assert_eq!(read_frame(&mut stream).expect("io"), None, "clean EOF after the rejection");
    drop(front);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_frame_then_close_is_survived() {
    let (server, front, path) = start("truncated");
    {
        let mut stream = connect(&path);
        // Promise 100 bytes, deliver 10, vanish.
        stream.write_all(&100u32.to_le_bytes()).expect("write");
        stream.write_all(&[0xAB; 10]).expect("write");
    }
    // The connection thread must have moved on without poisoning anything.
    let mut client = proto::Client::connect(&path).expect("connect");
    assert!(matches!(client.parse("dns", &dns_input()).expect("io"), Wire::Done { .. }));
    assert_eq!(server.stats().panics_recovered, 0);
    drop(front);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn midframe_stall_draws_the_slow_loris_guard() {
    let (_server, front, path) = start("stall");
    let mut stream = connect(&path);
    // Start a frame, then stall past the 400ms io timeout.
    stream.write_all(&50u32.to_le_bytes()).expect("write");
    stream.write_all(&[1, 2, 3, 4, 5]).expect("write");
    std::thread::sleep(Duration::from_millis(700));
    let reply = read_frame(&mut stream).expect("io").expect("typed reply, not a hangup");
    assert_eq!(reply.first(), Some(&ST_ERROR));
    let msg = String::from_utf8_lossy(&reply[1..]).into_owned();
    assert!(msg.contains("slow-loris"), "unexpected error: {msg}");
    assert_eq!(read_frame(&mut stream).expect("io"), None, "clean EOF after the guard fires");
    drop(front);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn raw_garbage_never_crashes_the_server() {
    let (server, front, path) = start("garbage");
    let mut state = 0x6A77u64;
    for round in 0..8 {
        let mut stream = connect(&path);
        // Unframed noise: whatever the length prefix happens to decode to,
        // the connection must end in typed errors or a clean close.
        let mut noise = Vec::with_capacity(64);
        for _ in 0..64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(round);
            noise.push((state >> 33) as u8);
        }
        let _ = stream.write_all(&noise);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        // Drain whatever the server says until EOF; every frame (if any)
        // must be a well-formed response frame.
        while let Ok(Some(reply)) = read_frame(&mut stream) {
            assert!(decode_wire(&reply).is_some(), "torn reply frame: {reply:?}");
        }
    }
    let mut client = proto::Client::connect(&path).expect("connect");
    assert!(matches!(client.parse("dns", &dns_input()).expect("io"), Wire::Done { .. }));
    assert_eq!(server.stats().panics_recovered, 0);
    drop(front);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn out_of_order_session_ops_are_typed_errors() {
    let (server, front, path) = start("order");
    let mut client = proto::Client::connect(&path).expect("connect");
    // Feed and finish before any open.
    for wire in [client.feed(99, b"x").expect("io"), client.finish(99).expect("io")] {
        assert!(matches!(wire, Wire::Error(_)), "expected a typed error, got {wire:?}");
    }
    // Double-finish an actual session.
    let Wire::Opened { id } = client.open("dns").expect("io") else { panic!("expected Opened") };
    let dns = dns_input();
    for chunk in dns.chunks(9) {
        assert!(matches!(client.feed(id, chunk).expect("io"), Wire::NeedInput { .. }));
    }
    assert!(matches!(client.finish(id).expect("io"), Wire::Done { .. }));
    assert!(matches!(client.finish(id).expect("io"), Wire::Error(_)));
    // Feeding the finished session is also a typed error, and the
    // connection survives it all.
    assert!(matches!(client.feed(id, b"x").expect("io"), Wire::Error(_)));
    assert!(matches!(client.parse("dns", &dns).expect("io"), Wire::Done { .. }));
    let stats = server.stats();
    assert_eq!(stats.panics_recovered, 0);
    assert!(stats.reconciles(), "ledger must balance: {stats:?}");
    drop(front);
    let _ = std::fs::remove_file(&path);
}
