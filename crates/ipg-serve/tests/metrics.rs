//! Observability integration tests: a strict Prometheus text-format
//! parser round-trips every metric the server exposes (names, labels,
//! `_bucket`/`_sum`/`_count` triplets, duplicate-series rejection), the
//! scrape reconciles the admission ledger, the `METRICS` protocol frame
//! and the HTTP endpoint agree with the in-process gather, and the trace
//! log captures admit → dispatch → done spans for real traffic.

use ipg_serve::proto::Wire;
use ipg_serve::trace::TraceLog;
use ipg_serve::{Config, Server};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

fn dns_input() -> Vec<u8> {
    ipg_corpus::dns::generate(&Default::default()).bytes
}

/// One parsed sample: metric name, sorted label pairs, value.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

/// A strictly parsed exposition: families (`# TYPE`) and samples.
struct Exposition {
    types: BTreeMap<String, String>,
    helps: BTreeMap<String, String>,
    samples: Vec<Sample>,
}

fn is_name(s: &str) -> bool {
    let mut cs = s.chars();
    matches!(cs.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && cs.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses one `name{label="value",...} value` sample line, panicking
/// with a precise message on any deviation from the text format.
fn parse_sample(line: &str) -> Sample {
    let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
    let value: f64 = if value == "+Inf" {
        f64::INFINITY
    } else {
        value.parse().unwrap_or_else(|_| panic!("bad value in: {line}"))
    };
    let (name, labels) = match series.split_once('{') {
        None => (series.to_string(), BTreeMap::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').unwrap_or_else(|| panic!("unclosed labels: {line}"));
            let mut labels = BTreeMap::new();
            for pair in body.split(',') {
                let (k, v) = pair.split_once('=').unwrap_or_else(|| panic!("bad label: {line}"));
                assert!(is_name(k), "bad label name `{k}` in: {line}");
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .unwrap_or_else(|| panic!("unquoted label value in: {line}"));
                assert!(
                    labels.insert(k.to_string(), v.to_string()).is_none(),
                    "duplicate label `{k}` in: {line}"
                );
            }
            (name.to_string(), labels)
        }
    };
    assert!(is_name(&name), "invalid metric name `{name}` in: {line}");
    Sample { name, labels, value }
}

/// Strict parse of a whole exposition. Rejects: samples without a
/// preceding TYPE/HELP for their family, unknown TYPE values, duplicate
/// TYPE/HELP lines, and duplicate series (same name + same label set).
fn parse_exposition(text: &str) -> Exposition {
    let mut types = BTreeMap::new();
    let mut helps = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    for line in text.lines() {
        assert_eq!(line.trim_end(), line, "trailing whitespace: {line:?}");
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP without text");
            assert!(is_name(name), "bad HELP name {name}");
            assert!(!help.is_empty());
            assert!(helps.insert(name.to_string(), help.to_string()).is_none(), "dup HELP {name}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ').expect("TYPE without kind");
            assert!(is_name(name), "bad TYPE name {name}");
            assert!(
                matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped"),
                "unknown TYPE `{ty}` for {name}"
            );
            assert!(types.insert(name.to_string(), ty.to_string()).is_none(), "dup TYPE {name}");
        } else if line.starts_with('#') {
            panic!("unknown comment form: {line}");
        } else {
            let s = parse_sample(line);
            // The family is the sample name with histogram suffixes
            // stripped; every sample must belong to a declared family.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| s.name.strip_suffix(suf).filter(|f| types.contains_key(*f)))
                .unwrap_or(&s.name)
                .to_string();
            assert!(types.contains_key(&family), "sample without TYPE: {line}");
            let key = format!("{}{:?}", s.name, s.labels);
            assert!(seen_series.insert(key), "duplicate series: {line}");
            samples.push(s);
        }
    }
    assert_eq!(types.len(), helps.len(), "every family needs both HELP and TYPE");
    Exposition { types, helps, samples }
}

impl Exposition {
    fn value(&self, name: &str) -> f64 {
        let matches: Vec<&Sample> = self.samples.iter().filter(|s| s.name == name).collect();
        assert_eq!(matches.len(), 1, "expected exactly one `{name}` sample");
        matches[0].value
    }

    /// Checks one histogram family's triplet: cumulative monotone
    /// buckets ending in `+Inf`, with `_count` equal to the `+Inf`
    /// bucket and a `_sum` sample present.
    fn check_histogram(&self, name: &str) {
        assert_eq!(self.types.get(name).map(String::as_str), Some("histogram"));
        let buckets: Vec<&Sample> =
            self.samples.iter().filter(|s| s.name == format!("{name}_bucket")).collect();
        assert!(!buckets.is_empty(), "{name} has no buckets");
        let mut prev = 0.0;
        for b in &buckets {
            let le = b.labels.get("le").unwrap_or_else(|| panic!("{name} bucket without le"));
            if le != "+Inf" {
                le.parse::<f64>().unwrap_or_else(|_| panic!("bad le `{le}`"));
            }
            assert!(b.value >= prev, "{name} buckets must be cumulative");
            prev = b.value;
        }
        let last = buckets.last().unwrap();
        assert_eq!(last.labels.get("le").map(String::as_str), Some("+Inf"));
        assert_eq!(last.value, self.value(&format!("{name}_count")), "{name}: +Inf != _count");
        self.value(&format!("{name}_sum"));
    }
}

/// Every stats counter must surface in the scrape under its metric name
/// — the exhaustive list that keeps the exposition honest as counters
/// are added.
const EXPECTED: &[&str] = &[
    "ipg_parses_ok_total",
    "ipg_parses_err_total",
    "ipg_sessions_opened_total",
    "ipg_sessions_closed_total",
    "ipg_sessions_evicted_total",
    "ipg_sessions_sealed_total",
    "ipg_live_sessions",
    "ipg_bytes_in_total",
    "ipg_vm_steps_total",
    "ipg_suspends_total",
    "ipg_steals_total",
    "ipg_requests_submitted_total",
    "ipg_requests_completed_total",
    "ipg_requests_shed_total",
    "ipg_requests_failed_total",
    "ipg_requests_in_flight",
    "ipg_panics_recovered_total",
    "ipg_reloads_ok_total",
    "ipg_reloads_rejected_total",
    "ipg_artifacts_quarantined_total",
    "ipg_cache_hits_total",
    "ipg_cache_misses_total",
    "ipg_cache_quarantined_total",
];

#[test]
fn scrape_round_trips_every_metric_and_reconciles() {
    let server = Server::start(Config { workers: 2, ..Config::default() });
    let input = dns_input();
    for _ in 0..10 {
        server.parse("dns", input.clone()).expect("dns parses");
    }
    server.parse("zip", b"junk".to_vec()).expect_err("junk fails");

    let exp = parse_exposition(&server.metrics_text());
    for name in EXPECTED {
        assert!(
            exp.types.contains_key(*name),
            "metric `{name}` missing from the scrape (families: {:?})",
            exp.types.keys().collect::<Vec<_>>()
        );
        assert!(exp.helps.contains_key(*name), "metric `{name}` has no HELP text");
    }
    exp.check_histogram("ipg_request_latency_us");
    // Per-worker queue depth: one labeled series per worker.
    let depths: Vec<&Sample> = exp.samples.iter().filter(|s| s.name == "ipg_queue_depth").collect();
    assert_eq!(depths.len(), 2, "one queue-depth series per worker");
    for (w, d) in depths.iter().enumerate() {
        assert_eq!(d.labels.get("worker").map(String::as_str), Some(w.to_string().as_str()));
    }
    // Scrape-time ledger: the identity holds on every scrape because
    // in_flight is defined as the gap.
    assert_eq!(
        exp.value("ipg_requests_submitted_total"),
        exp.value("ipg_requests_completed_total")
            + exp.value("ipg_requests_shed_total")
            + exp.value("ipg_requests_failed_total")
            + exp.value("ipg_requests_in_flight"),
        "ledger must reconcile at scrape time"
    );
    assert_eq!(exp.value("ipg_parses_ok_total"), 10.0);
    assert_eq!(exp.value("ipg_parses_err_total"), 1.0);
    assert_eq!(
        exp.value("ipg_request_latency_us_count"),
        exp.value("ipg_requests_submitted_total"),
        "every classified request records exactly one latency observation"
    );
    server.shutdown();
}

#[test]
fn metrics_protocol_frame_matches_in_process_gather() {
    let server = Arc::new(Server::start(Config { workers: 1, ..Config::default() }));
    let dir = std::env::temp_dir().join(format!("ipg-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("metrics.sock");
    let front = server.serve_unix(&sock).expect("bind socket");
    let mut client =
        ipg_serve::proto::Client::connect_with_retry(&sock, &Default::default()).expect("connect");
    match client.parse("dns", &dns_input()).expect("io") {
        Wire::Done { .. } => {}
        other => panic!("expected Done, got {other:?}"),
    }
    let text = match client.metrics().expect("io") {
        Wire::Metrics(text) => text,
        other => panic!("expected Metrics, got {other:?}"),
    };
    let exp = parse_exposition(&text);
    assert_eq!(exp.value("ipg_parses_ok_total"), 1.0);
    exp.check_histogram("ipg_request_latency_us");
    drop(front);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn http_endpoint_serves_a_parseable_scrape() {
    use std::io::{Read, Write};
    let server = Server::start(Config { workers: 1, ..Config::default() });
    server.parse("dns", dns_input()).expect("dns parses");
    let addr = server.serve_metrics("127.0.0.1:0").expect("bind metrics");
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("http head/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    let exp = parse_exposition(body);
    assert_eq!(exp.value("ipg_parses_ok_total"), 1.0);
    exp.check_histogram("ipg_request_latency_us");
    server.shutdown();
}

#[test]
fn duplicate_series_are_rejected_by_the_strict_parser() {
    let text = "# HELP x_total X.\n# TYPE x_total counter\nx_total 1\nx_total 2\n";
    let caught = std::panic::catch_unwind(|| parse_exposition(text));
    assert!(caught.is_err(), "duplicate series must be rejected");
    let labeled = "# HELP y Y.\n# TYPE y gauge\ny{a=\"1\"} 1\ny{a=\"1\"} 2\n";
    let caught = std::panic::catch_unwind(|| parse_exposition(labeled));
    assert!(caught.is_err(), "duplicate labeled series must be rejected");
    // Distinct label values are distinct series — accepted.
    let ok = "# HELP y Y.\n# TYPE y gauge\ny{a=\"1\"} 1\ny{a=\"2\"} 2\n";
    assert_eq!(parse_exposition(ok).samples.len(), 2);
}

#[test]
fn trace_log_threads_spans_from_admission_to_completion() {
    let trace = Arc::new(TraceLog::new(4096));
    let server =
        Server::start(Config { workers: 2, trace: Some(Arc::clone(&trace)), ..Config::default() });
    server.parse("dns", dns_input()).expect("dns parses");
    server.parse("zip", b"junk".to_vec()).expect_err("junk fails");
    let lines = trace.drain();
    // Each of the two requests produced admit + dispatch + done.
    assert_eq!(lines.len(), 6, "{lines:?}");
    let admits: Vec<&String> = lines.iter().filter(|l| l.contains("\"event\":\"admit\"")).collect();
    assert_eq!(admits.len(), 2);
    // Every admit's span also has a dispatch and a terminal done.
    for admit in admits {
        let span_field =
            admit.split("\"span\":").nth(1).and_then(|r| r.split(',').next()).expect("span field");
        let span = format!("\"span\":{span_field}");
        assert!(
            lines.iter().any(|l| l.contains(&span) && l.contains("\"event\":\"dispatch\"")),
            "span {span_field} never dispatched: {lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains(&span) && l.contains("\"event\":\"done\"")),
            "span {span_field} never completed: {lines:?}"
        );
    }
    // The failed parse is classified `error` in its done event.
    assert!(lines.iter().any(|l| l.contains("\"outcome\":\"error\"")));
    assert!(lines.iter().any(|l| l.contains("\"outcome\":\"done\"")));
    // Trace counters surface in the scrape when tracing is enabled.
    let text = server.metrics_text();
    assert!(text.contains("ipg_trace_events_total"), "trace metrics registered");
    server.shutdown();
}
