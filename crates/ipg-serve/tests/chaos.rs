//! The chaos-injection soak: a deterministic fault schedule — worker
//! panics, stalls, and corrupt reply frames ([`ipg_serve::fault`]) —
//! driven under mixed traffic (in-process bursts of valid and mutated
//! inputs, wire clients with retry, streaming sessions, a slow-but-legal
//! dribbling client). The acceptance bar:
//!
//! * ≥ 100 faults injected over the run,
//! * zero crashes and zero lost replies (every request gets exactly one
//!   typed answer: success, error, or BUSY),
//! * the admission ledger reconciles exactly:
//!   `submitted = completed + shed + failed`,
//! * every injected panic is recovered (`panics_recovered` matches the
//!   plan), and every injected reply corruption is detected client-side,
//! * every corrupt `.ipgc` artifact dropped into the watched grammar
//!   directory mid-run is quarantined exactly once, healed from its
//!   sibling source, and never costs a reply.
//!
//! `IPG_CHAOS_QUICK=1` shrinks the round count for CI smoke; the fault
//! schedule stays seeded either way, so a failure reproduces.

use ipg_core::Error;
use ipg_serve::fault::FaultPlan;
use ipg_serve::proto::{self, Client, RetryPolicy, Wire};
use ipg_serve::{Config, Response, Server};
use std::io::{ErrorKind, Write};
use std::sync::Arc;
use std::time::Duration;

const GRAMMARS: [&str; 9] =
    ["zip", "zip_inflate", "dns", "png", "gif", "elf", "ipv4udp", "pe", "pdf"];

fn corpus_input(name: &str) -> Vec<u8> {
    match name {
        "zip" | "zip_inflate" => ipg_corpus::zip::generate(&Default::default()).bytes,
        "dns" => ipg_corpus::dns::generate(&Default::default()).bytes,
        "png" => ipg_corpus::png::generate(&Default::default()).bytes,
        "gif" => ipg_corpus::gif::generate(&Default::default()).bytes,
        "elf" => ipg_corpus::elf::generate(&Default::default()).bytes,
        "ipv4udp" => ipg_corpus::ipv4udp::generate(&Default::default()).bytes,
        "pe" => ipg_corpus::pe::generate(&Default::default()).bytes,
        "pdf" => ipg_corpus::pdf::generate(&Default::default()).bytes,
        other => panic!("no corpus generator for {other}"),
    }
}

#[test]
fn chaos_soak_survives_injected_faults_with_exact_reconciliation() {
    let rounds = if std::env::var("IPG_CHAOS_QUICK").is_ok() { 22 } else { 40 };
    let plan = Arc::new(
        FaultPlan::new(0xC4A0_5EED)
            .panic_per_mille(100)
            .stall_per_mille(100, 3)
            .corrupt_per_mille(80),
    );
    let server = Arc::new(Server::start(Config {
        workers: 2,
        max_queue: 8,
        retry_after: Duration::from_millis(2),
        request_deadline: Duration::from_secs(60),
        io_timeout: Duration::from_secs(2),
        faults: Some(plan.clone()),
        ..Config::default()
    }));
    let path = std::env::temp_dir().join(format!("ipg-serve-chaos-{}.sock", std::process::id()));
    let front = server.serve_unix(&path).expect("bind socket");

    // Lane E setup: a watched grammar directory under hot reload. The
    // soak drops corrupt artifacts into it mid-run; each must be
    // quarantined exactly once and healed from the sibling source while
    // traffic keeps flowing.
    let watch_dir =
        std::env::temp_dir().join(format!("ipg-serve-chaos-watch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&watch_dir);
    std::fs::create_dir_all(&watch_dir).expect("mkdir watch dir");
    std::fs::write(watch_dir.join("hot.ipg"), r#"S -> "h"[0, 1];"#).expect("write hot.ipg");
    server.watch_dir(&watch_dir, Duration::from_millis(5)).expect("watch");
    let mut corrupt_dropped = 0u64;

    let inputs: Vec<(&str, Vec<u8>)> = GRAMMARS.iter().map(|g| (*g, corpus_input(g))).collect();
    let dns = inputs.iter().find(|(n, _)| *n == "dns").expect("dns input").1.clone();
    let policy = RetryPolicy {
        attempts: 8,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        seed: 7,
    };

    // Client-side tallies (the server's ledger is asserted separately).
    let mut done = 0u64;
    let mut busy = 0u64;
    let mut failed = 0u64;
    let mut panics_seen = 0u64;
    let mut corrupt_seen = 0u64;
    let mut retries = 0u64;

    for round in 0..rounds {
        // Lane A (submit only): an in-process burst of one valid and one
        // mutated input per grammar — 18 jobs against a 2×8 queue bound,
        // so shedding is part of normal life. Replies are collected after
        // the wire lanes, keeping the queues full while they run.
        let mut pending = Vec::new();
        for (i, (name, input)) in inputs.iter().enumerate() {
            pending.push(server.parse_async(name, input.clone()).expect("known grammar"));
            let mut mutant = input.clone();
            ipg_gen::mutate::mutate(&mut mutant, 0xFEED ^ round as u64, i as u64);
            pending.push(server.parse_async(name, mutant).expect("known grammar"));
        }

        // Lane B: a wire client that rides out BUSY sheds with jittered
        // backoff and detects corrupted reply frames.
        let mut client = Client::connect_with_retry(&path, &policy).expect("connect");
        client.set_reply_timeout(Some(Duration::from_secs(30))).expect("timeout");
        for (name, input) in inputs.iter().take(3) {
            match client.parse_with_retry(name, input, &policy) {
                Ok(Wire::Done { .. }) => done += 1,
                Ok(Wire::Busy { .. }) => busy += 1,
                Ok(Wire::Error(_)) => failed += 1,
                Ok(other) => panic!("unexpected wire reply: {other:?}"),
                Err(e) if e.kind() == ErrorKind::InvalidData => corrupt_seen += 1,
                Err(e) => panic!("wire I/O failure: {e}"),
            }
        }

        // Lane C: a wire streaming session under fire. An injected panic
        // may kill the session mid-stream; every subsequent request must
        // still draw a typed reply, never a hang or a torn frame.
        match client.open("dns") {
            Ok(Wire::Opened { id }) => {
                for chunk in dns.chunks(16) {
                    match client.feed(id, chunk) {
                        Ok(Wire::NeedInput { .. }) => {}
                        Ok(Wire::Error(_)) => break,
                        Ok(other) => panic!("unexpected feed reply: {other:?}"),
                        Err(e) if e.kind() == ErrorKind::InvalidData => corrupt_seen += 1,
                        Err(e) => panic!("wire I/O failure: {e}"),
                    }
                }
                match client.finish(id) {
                    Ok(Wire::Done { .. } | Wire::Error(_)) => {}
                    Ok(other) => panic!("unexpected finish reply: {other:?}"),
                    Err(e) if e.kind() == ErrorKind::InvalidData => corrupt_seen += 1,
                    Err(e) => panic!("wire I/O failure: {e}"),
                }
            }
            Ok(Wire::Error(_)) => failed += 1,
            Ok(other) => panic!("unexpected open reply: {other:?}"),
            Err(e) if e.kind() == ErrorKind::InvalidData => corrupt_seen += 1,
            Err(e) => panic!("wire I/O failure: {e}"),
        }
        retries += client.retries();

        // Lane D: a slow-but-legal client dribbles its frame in pieces
        // well inside the io timeout — it must be served, not shot by the
        // slow-loris guard.
        let mut slow = std::os::unix::net::UnixStream::connect(&path).expect("connect slow");
        slow.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        let mut payload = vec![proto::OP_PARSE, 3];
        payload.extend_from_slice(b"dns");
        payload.extend_from_slice(&dns);
        let mut framed = u32::try_from(payload.len()).unwrap().to_le_bytes().to_vec();
        framed.extend_from_slice(&payload);
        for piece in framed.chunks(16) {
            slow.write_all(piece).expect("write");
            std::thread::sleep(Duration::from_millis(1));
        }
        let reply =
            proto::read_frame(&mut slow).expect("io").expect("slow-but-legal clients are served");
        match proto::decode_wire(&reply) {
            Some(Wire::Done { .. }) => done += 1,
            Some(Wire::Busy { .. }) => busy += 1,
            Some(Wire::Error(_)) => failed += 1,
            Some(other) => panic!("unexpected slow-lane reply: {other:?}"),
            None => corrupt_seen += 1,
        }

        // Lane E: every fourth round, drop a corrupt artifact into the
        // watched directory and wait for the watcher to quarantine it
        // (rename to `.bad`) and heal the grammar from source. The
        // hot-reloaded grammar must answer a parse right through it.
        if round % 4 == 0 {
            let mut bad = b"IPGC chaos corrupt artifact ".to_vec();
            bad.extend_from_slice(&(round as u64).to_le_bytes());
            std::fs::write(watch_dir.join("hot.ipgc"), &bad).expect("drop corrupt artifact");
            corrupt_dropped += 1;
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            while server.stats().artifacts_quarantined < corrupt_dropped {
                assert!(
                    std::time::Instant::now() < deadline,
                    "corrupt artifact {corrupt_dropped} never quarantined"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            match server.parse_response("hot", b"h".to_vec()) {
                Response::Done(_) => done += 1,
                Response::Busy { .. } => busy += 1,
                Response::Error(Error::WorkerPanic(_)) => {
                    failed += 1;
                    panics_seen += 1;
                }
                Response::Error(e) => panic!("hot grammar must survive quarantine: {e}"),
                other => panic!("unexpected hot-lane reply: {other:?}"),
            }
        }

        // Lane A (collect): every burst job owes exactly one reply.
        for rx in pending {
            match rx.recv_timeout(Duration::from_secs(30)).expect("no reply may be lost") {
                Response::Done(_) => done += 1,
                Response::Busy { .. } => busy += 1,
                Response::Error(Error::WorkerPanic(_)) => {
                    failed += 1;
                    panics_seen += 1;
                }
                Response::Error(_) => failed += 1,
                other => panic!("unexpected burst reply: {other:?}"),
            }
        }
    }

    // Leave one session open across the drain: it must be sealed with
    // GOAWAY, not dropped. Opening itself may eat an injected panic, so
    // retry a few times (each attempt is ledgered like any request).
    let mut held = None;
    for _ in 0..32 {
        match server.open("dns") {
            Ok(h) => {
                held = Some(h);
                break;
            }
            Err(Error::WorkerPanic(_)) => failed += 1,
            Err(e) => panic!("unexpected open error: {e}"),
        }
    }
    let mut held = held.expect("open survives within 32 attempts");
    front.stop_accepting();
    server.drain();
    assert!(matches!(held.feed(&[0]), Response::GoAway), "sealed sessions answer GOAWAY");

    let stats = server.stats();
    eprintln!(
        "chaos soak: {} rounds; injected {} (panics {}, stalls {}, corruptions {}); \
         ledger {} = {} + {} + {}; client saw done {done}, busy {busy}, failed {failed}, \
         panics {panics_seen}, corrupt {corrupt_seen}, retries {retries}",
        rounds,
        plan.injected(),
        plan.panics_injected(),
        plan.stalls_injected(),
        plan.corruptions_injected(),
        stats.submitted,
        stats.completed,
        stats.shed,
        stats.failed,
    );

    assert!(plan.injected() >= 100, "need ≥100 injected faults, got {}", plan.injected());
    assert!(
        stats.reconciles(),
        "ledger must reconcile exactly: {} != {} + {} + {}",
        stats.submitted,
        stats.completed,
        stats.shed,
        stats.failed
    );
    assert_eq!(
        stats.panics_recovered,
        plan.panics_injected(),
        "every injected panic must be recovered — and nothing else may have panicked"
    );
    assert!(stats.panics_recovered > 0, "the plan must have injected panics");
    assert!(panics_seen > 0, "typed WorkerPanic replies must reach callers");
    assert_eq!(
        corrupt_seen,
        plan.corruptions_injected(),
        "every corrupted reply frame must be detected client-side"
    );
    assert!(stats.shed > 0, "the queue bound must have shed under burst");
    assert!(busy > 0, "BUSY replies must reach callers");
    assert!(stats.completed > 0 && stats.failed > 0, "mixed outcomes expected: {stats:?}");
    assert!(stats.sessions_sealed >= 1, "the held session must be sealed: {stats:?}");
    assert_eq!(
        stats.artifacts_quarantined, corrupt_dropped,
        "every corrupt artifact must be quarantined exactly once"
    );
    assert!(corrupt_dropped > 0, "the soak must have dropped corrupt artifacts");
    assert!(
        watch_dir.join("hot.ipgc.bad").exists(),
        "quarantine must leave the renamed evidence on disk"
    );
    assert!(
        stats.reloads_ok > corrupt_dropped,
        "initial load plus one heal per quarantine: {stats:?}"
    );
    assert_eq!(stats.reloads_rejected, 0, "every quarantine had a sibling source: {stats:?}");
    assert!(
        stats.latency_p50_us > 0 && stats.latency_p99_us >= stats.latency_p50_us,
        "latency percentiles must be recorded and ordered: {stats:?}"
    );

    drop(front);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&watch_dir);
}
