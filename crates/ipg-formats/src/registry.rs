//! The one grammar registry every consumer shares.
//!
//! The differential test suites, the conformance fuzzing harness, the
//! bench binaries, `ipg-serve`, and the `ipg` CLI all resolve grammars
//! through a [`Registry`]: a name → (checked grammar, compiled VM) table
//! whose entries are loaded through the [`ipg_core::ipgc`] artifact
//! pipeline. The built-in corpus ([`Registry::corpus`]) is materialized
//! once per process — each grammar is fetched from the on-disk `.ipgc`
//! cache (or compiled and persisted on a miss) — and user-supplied
//! grammars (`.ipg` sources or `.ipgc` artifacts named on a command line)
//! flow through [`Registry::load_ipg_path`] / [`Registry::load_artifact_path`]
//! into the exact same table, so "built-in" and "user-supplied" are
//! indistinguishable downstream.
//!
//! ## Generations, not leaks
//!
//! Each loaded grammar lives in an [`Arc`]-counted [`Compiled`]
//! *generation*: the checked grammar and the bytecode parser borrowing
//! it, packaged as one refcounted unit. [`Registry::reload`] and
//! [`Registry::reload_dir`] swap a name to a new generation atomically —
//! holders of the old [`Arc`] (in-flight parse sessions, pinned entries)
//! keep using the generation they started with until they drop it, new
//! lookups observe the new one, and a failed load leaves the table
//! untouched (rollback is the absence of a swap, never a half-updated
//! entry). A registry handle is cheap to clone and *shared*: clones see
//! each other's reloads, which is what lets a filesystem watcher thread
//! feed a live server.
//!
//! The per-process corpus table ([`pinned_corpus`]) is still pinned for
//! the process lifetime — that one intentional, bounded promotion gives
//! the format modules their `grammar()`/`vm()` statics — but repeated
//! loads no longer leak: everything dynamic is reference-counted.

use ipg_core::blackbox::Blackbox;
use ipg_core::check::Grammar;
use ipg_core::error::{Error, Result};
use ipg_core::interp::vm::VmParser;
use ipg_core::interp::Parser;
use ipg_core::ipgc::{Cache, CacheOutcome, CachedProgram, MissReason};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// How a registry entry's compiled program was obtained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Origin {
    /// Deserialized from a fresh `.ipgc` artifact in the cache directory.
    CacheHit,
    /// Compiled from source; the cache artifact was (re)written. The
    /// reason records whether the artifact was absent or invalid
    /// (version skew, corruption, grammar mismatch) — and whether the
    /// invalid file was quarantined.
    CacheMiss(MissReason),
    /// Compiled in memory with the cache disabled (`IPG_NO_CACHE`), or
    /// registered directly from a pre-built generation.
    Memory,
    /// Loaded from an explicit `.ipgc` file path (no cache involved).
    ArtifactFile,
}

impl Origin {
    fn from_outcome(outcome: CacheOutcome) -> Origin {
        match outcome {
            CacheOutcome::Hit => Origin::CacheHit,
            CacheOutcome::Miss(reason) => Origin::CacheMiss(reason),
        }
    }

    /// Whether the entry's program was deserialized rather than compiled.
    pub fn is_cache_hit(&self) -> bool {
        matches!(self, Origin::CacheHit)
    }
}

/// One compiled grammar generation: the checked [`Grammar`] and the
/// [`VmParser`] compiled against it, owned together so the pair can be
/// handed out behind a single [`Arc`].
///
/// The parser borrows the grammar, so the struct is self-referential:
/// the grammar is boxed (stable heap address), the parser's lifetime is
/// erased internally, and the public accessors re-tie every borrow to
/// `&self` — safe Rust callers can never observe the erased lifetime.
pub struct Compiled {
    // Declared before `grammar`: struct fields drop in declaration
    // order, and the parser must drop before the grammar it borrows.
    vm: VmParser<'static>,
    grammar: Box<Grammar>,
    source_hash: u64,
}

// SAFETY: the erased-lifetime reference inside `vm` points into
// `grammar`, which is owned by the same struct; the pair is as
// Send/Sync as its components (Grammar and VmParser are both Sync).
unsafe impl Send for Compiled {}
unsafe impl Sync for Compiled {}

impl Compiled {
    /// Packages a cache-loaded (or freshly compiled) program as one
    /// refcounted generation.
    pub fn from_cached(cached: CachedProgram) -> Arc<Compiled> {
        let CachedProgram { grammar, program, anchor, hints, source_hash } = cached;
        let grammar = Box::new(grammar);
        // SAFETY: the Box's heap allocation never moves, `Compiled` is
        // never dismantled (no fields are taken out), and field order
        // guarantees `vm` drops first — so the reference outlives every
        // use. The 'static lifetime is a private fiction; accessors
        // shrink it back to the lifetime of `&self`.
        let g: &'static Grammar = unsafe { &*(&*grammar as *const Grammar) };
        let vm = VmParser::from_compiled(g, program, anchor, hints);
        Arc::new(Compiled { vm, grammar, source_hash })
    }

    /// The checked grammar (tree-walking interpreter side).
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The compiled bytecode parser (fuel-free; bound work per parse with
    /// [`ipg_core::interp::vm::Session::max_steps`] or a fueled wrapper).
    pub fn vm(&self) -> &VmParser<'_> {
        // Covariance shrinks the erased 'static to the borrow of self.
        &self.vm
    }

    /// The artifact cache key this generation was built from.
    pub fn source_hash(&self) -> u64 {
        self.source_hash
    }

    /// The parser with the generation's lifetime erased, for holders
    /// that pin the generation alongside the borrow (serve sessions).
    ///
    /// # Safety
    ///
    /// The caller must keep (a clone of) `this` alive for as long as the
    /// returned reference — or anything derived from it, such as a
    /// streaming session — is used.
    pub unsafe fn vm_pinned(this: &Arc<Compiled>) -> &'static VmParser<'static> {
        unsafe { &*(&this.vm as *const VmParser<'static>) }
    }
}

impl std::fmt::Debug for Compiled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compiled")
            .field("start", &self.grammar.start_nt_name())
            .field("source_hash", &format_args!("{:016x}", self.source_hash))
            .finish_non_exhaustive()
    }
}

/// Monotone generation ids, process-wide: every swap observably advances.
fn next_generation() -> u64 {
    static GENERATION: AtomicU64 = AtomicU64::new(1);
    GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// One registered grammar: a name bound to a [`Compiled`] generation,
/// plus how the program was obtained. Cloning an entry clones the
/// *handle* — the generation itself is shared and stays alive as long as
/// any clone does.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Registry name (corpus module name, or a file stem for loaded paths).
    pub name: String,
    /// Where the compiled program came from.
    pub origin: Origin,
    /// The generation id: strictly increasing across reloads, so a
    /// changed id is proof a swap happened.
    pub generation: u64,
    handle: Arc<Compiled>,
}

impl Entry {
    fn new(name: String, origin: Origin, handle: Arc<Compiled>) -> Entry {
        Entry { name, origin, generation: next_generation(), handle }
    }

    /// The checked grammar of this entry's generation.
    pub fn grammar(&self) -> &Grammar {
        self.handle.grammar()
    }

    /// The compiled bytecode parser of this entry's generation.
    pub fn vm(&self) -> &VmParser<'_> {
        self.handle.vm()
    }

    /// The generation handle itself (pin it to keep the grammar alive
    /// independent of the registry).
    pub fn handle(&self) -> Arc<Compiled> {
        Arc::clone(&self.handle)
    }
}

/// How to rebuild a registered grammar for [`Registry::reload`].
#[derive(Clone)]
enum ReloadSource {
    /// Recompile from an in-memory spec (corpus grammars and
    /// [`Registry::load_spec`] registrations).
    Spec { spec: String, blackboxes: Vec<Blackbox> },
    /// Re-read a file path (`.ipg` source or `.ipgc` artifact).
    Path(PathBuf),
}

struct Slot {
    entry: Entry,
    reload: Option<ReloadSource>,
}

/// A name → compiled-grammar table behind a shared, atomically-swappable
/// core. Cloning a `Registry` clones the *handle*: clones observe each
/// other's registrations and reloads (a watcher thread and a server can
/// share one table). See the module docs.
#[derive(Clone, Default)]
pub struct Registry {
    slots: Arc<RwLock<Vec<Slot>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("names", &self.names()).finish()
    }
}

/// An embedded corpus format: everything needed to (re)compile it —
/// name, spec source, and a constructor for its blackbox bindings
/// (blackboxes are runtime function pointers, so artifacts store only
/// their declarations and the registry re-binds them by name on load).
#[derive(Clone, Copy)]
pub struct FormatDescriptor {
    /// Registry name (`ipg-formats` module name).
    pub name: &'static str,
    /// The embedded `.ipg` source.
    pub spec: &'static str,
    /// Constructs the blackbox bindings this grammar requires.
    pub blackboxes: fn() -> Vec<Blackbox>,
}

fn no_blackboxes() -> Vec<Blackbox> {
    Vec::new()
}

/// The nine-grammar corpus under cross-engine test, in registry order.
/// Adding a format here is what puts it under test: the differential
/// suites, the conformance harness, the bench binaries, `ipg-serve`, and
/// the CLI corpus listing all sweep exactly this table.
pub fn corpus_descriptors() -> [FormatDescriptor; 9] {
    [
        FormatDescriptor { name: "zip", spec: crate::zip::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor {
            name: "zip_inflate",
            spec: crate::zip::SPEC_INFLATE,
            blackboxes: crate::zip::inflate_blackboxes,
        },
        FormatDescriptor { name: "dns", spec: crate::dns::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "png", spec: crate::png::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "gif", spec: crate::gif::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "elf", spec: crate::elf::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "ipv4udp", spec: crate::ipv4udp::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "pe", spec: crate::pe::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "pdf", spec: crate::pdf::SPEC, blackboxes: no_blackboxes },
    ]
}

/// Loads one spec through the environment's cache (or compiles in memory
/// when the cache is disabled).
fn load_entry(name: &str, spec: &str, blackboxes: Vec<Blackbox>) -> Result<Entry> {
    let (cached, origin) = match Cache::from_env() {
        Some(cache) => {
            let (cached, outcome) = cache.load_or_compile(name, spec, blackboxes)?;
            (cached, Origin::from_outcome(outcome))
        }
        None => (CachedProgram::compile(spec, blackboxes)?, Origin::Memory),
    };
    Ok(Entry::new(name.to_owned(), origin, Compiled::from_cached(cached)))
}

/// Loads a `.ipgc` artifact file into an entry (no cache lookup). The
/// embedded source is re-checked and verified against the artifact
/// before the program is accepted; `IPG_ARTIFACT_KEY` governs the
/// provenance policy as in [`ipg_core::ipgc::decode`].
fn load_artifact_entry(path: &Path) -> Result<Entry> {
    let name = stem_of(path)?;
    let bytes = std::fs::read(path)
        .map_err(|e| Error::Artifact(format!("cannot read {}: {e}", path.display())))?;
    let artifact = ipg_core::ipgc::decode(&bytes)?;
    let grammar = artifact.reconstruct_grammar(Vec::new())?;
    artifact.validate_against(&grammar)?;
    let cached = CachedProgram {
        grammar,
        program: artifact.program,
        anchor: artifact.anchor,
        hints: artifact.hints,
        source_hash: artifact.source_hash,
    };
    Ok(Entry::new(name, Origin::ArtifactFile, Compiled::from_cached(cached)))
}

/// Loads a `.ipg` source file into an entry, through the environment's
/// cache.
fn load_ipg_entry(path: &Path) -> Result<Entry> {
    let name = stem_of(path)?;
    let spec = std::fs::read_to_string(path)
        .map_err(|e| Error::Grammar(format!("cannot read {}: {e}", path.display())))?;
    load_entry(&name, &spec, Vec::new())
}

/// Path dispatch shared by [`Registry::load_path`] and reloads: `.ipgc`
/// means artifact, anything else means source.
fn load_path_entry(path: &Path) -> Result<Entry> {
    if path.extension().is_some_and(|e| e == "ipgc") {
        load_artifact_entry(path)
    } else {
        load_ipg_entry(path)
    }
}

/// The per-process corpus table, loaded once through the artifact cache
/// and pinned for the process lifetime (this is what backs the format
/// modules' `grammar()`/`vm()` statics — one bounded promotion, not a
/// per-load leak).
pub fn pinned_corpus() -> &'static [Entry] {
    static ENTRIES: OnceLock<Vec<Entry>> = OnceLock::new();
    ENTRIES.get_or_init(|| {
        corpus_descriptors()
            .into_iter()
            .map(|d| {
                load_entry(d.name, d.spec, (d.blackboxes)())
                    .unwrap_or_else(|e| panic!("corpus grammar `{}` failed to load: {e}", d.name))
            })
            .collect()
    })
}

/// The shared corpus entry for a format module's `grammar()`/`vm()`
/// statics. Panics for names outside [`corpus_descriptors`].
pub fn corpus_entry(name: &str) -> &'static Entry {
    pinned_corpus()
        .iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("`{name}` is not a corpus grammar"))
}

/// One [`Registry::reload_dir`] pass: what swapped and what was refused.
#[derive(Debug, Default)]
pub struct DirReload {
    /// Entries that loaded, validated, and swapped in, in path order.
    pub loaded: Vec<Entry>,
    /// Files that failed to load; the table keeps the previous
    /// generation for these names.
    pub failed: Vec<(PathBuf, Error)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A fresh registry pre-populated with the nine-grammar corpus. The
    /// underlying generations are shared with [`pinned_corpus`] (loaded
    /// through the `.ipgc` cache once per process); each call returns an
    /// independent table, so mutations and reloads stay local to it.
    pub fn corpus() -> Registry {
        let slots = pinned_corpus()
            .iter()
            .zip(corpus_descriptors())
            .map(|(entry, d)| Slot {
                entry: entry.clone(),
                reload: Some(ReloadSource::Spec {
                    spec: d.spec.to_owned(),
                    blackboxes: (d.blackboxes)(),
                }),
            })
            .collect();
        Registry { slots: Arc::new(RwLock::new(slots)) }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Vec<Slot>> {
        self.slots.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Slot>> {
        self.slots.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshots the registered entries, in registration order. The
    /// returned entries pin their generations: they stay valid across
    /// concurrent reloads.
    pub fn entries(&self) -> Vec<Entry> {
        self.read().iter().map(|s| s.entry.clone()).collect()
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.read().iter().map(|s| s.entry.name.clone()).collect()
    }

    /// Looks up an entry by name (a pinned snapshot, see [`entries`]).
    ///
    /// [`entries`]: Registry::entries
    pub fn get(&self, name: &str) -> Option<Entry> {
        self.read().iter().find(|s| s.entry.name == name).map(|s| s.entry.clone())
    }

    /// Pins the current generation for `name`: the cheapest lookup on
    /// the serve admission path, returning just the refcounted handle.
    pub fn pin(&self, name: &str) -> Option<Arc<Compiled>> {
        self.read().iter().find(|s| s.entry.name == name).map(|s| s.entry.handle())
    }

    /// Registers a pre-built generation under `name`, replacing any
    /// existing entry with that name. Entries registered this way have
    /// no reload source: [`Registry::reload`] reports a typed error for
    /// them.
    pub fn register(&self, name: &str, handle: Arc<Compiled>) -> Entry {
        self.insert(Entry::new(name.to_owned(), Origin::Memory, handle), None)
    }

    /// Loads `.ipg` source under `name` through the environment's cache
    /// (compiling and persisting on a miss) and registers it.
    ///
    /// # Errors
    ///
    /// Frontend/check errors when the spec is invalid. Cache problems
    /// degrade to in-memory compilation, not errors.
    pub fn load_spec(&self, name: &str, spec: &str, blackboxes: Vec<Blackbox>) -> Result<Entry> {
        let entry = load_entry(name, spec, blackboxes.clone())?;
        let source = ReloadSource::Spec { spec: spec.to_owned(), blackboxes };
        Ok(self.insert(entry, Some(source)))
    }

    /// Loads a user-supplied grammar from a `.ipg` source file, registered
    /// under the file stem. Flows through the same cache pipeline as the
    /// corpus.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file (as [`Error::Grammar`]) and
    /// frontend/check errors in the spec.
    pub fn load_ipg_path(&self, path: &Path) -> Result<Entry> {
        let entry = load_ipg_entry(path)?;
        Ok(self.insert(entry, Some(ReloadSource::Path(path.to_owned()))))
    }

    /// Loads a persisted `.ipgc` artifact from an explicit path (no cache
    /// lookup), registered under the file stem. The embedded source is
    /// re-checked and verified against the artifact before the program is
    /// accepted.
    ///
    /// # Errors
    ///
    /// [`Error::Artifact`] on corrupt/truncated/version-skewed bytes, a
    /// provenance violation under `IPG_ARTIFACT_KEY`, or an
    /// artifact/grammar mismatch; I/O errors as [`Error::Artifact`].
    pub fn load_artifact_path(&self, path: &Path) -> Result<Entry> {
        let entry = load_artifact_entry(path)?;
        Ok(self.insert(entry, Some(ReloadSource::Path(path.to_owned()))))
    }

    /// Loads a grammar from a path, dispatching on the `.ipgc` extension
    /// (artifact) versus anything else (`.ipg` source).
    pub fn load_path(&self, path: &Path) -> Result<Entry> {
        let entry = load_path_entry(path)?;
        Ok(self.insert(entry, Some(ReloadSource::Path(path.to_owned()))))
    }

    /// Rebuilds `name` from its recorded source (embedded spec or file
    /// path) and atomically swaps the new generation in.
    ///
    /// The load, validation, and compilation all happen *outside* the
    /// table lock; the table is only touched on success. On any error
    /// the previous generation remains current — a failed reload can
    /// never leave the registry half-swapped or empty.
    ///
    /// # Errors
    ///
    /// [`Error::Grammar`] when `name` is not registered or has no reload
    /// source; load/validation errors as for the original load.
    pub fn reload(&self, name: &str) -> Result<Entry> {
        let source = {
            let slots = self.read();
            let slot = slots
                .iter()
                .find(|s| s.entry.name == name)
                .ok_or_else(|| Error::Grammar(format!("`{name}` is not registered")))?;
            slot.reload.clone().ok_or_else(|| {
                Error::Grammar(format!(
                    "`{name}` was registered from a pre-built generation and has no reload source"
                ))
            })?
        };
        let entry = match &source {
            ReloadSource::Spec { spec, blackboxes } => load_entry(name, spec, blackboxes.clone())?,
            ReloadSource::Path(path) => {
                let entry = load_path_entry(path)?;
                if entry.name != name {
                    return Err(Error::Grammar(format!(
                        "reload of `{name}` resolved to `{}` — path renamed?",
                        entry.name
                    )));
                }
                entry
            }
        };
        Ok(self.insert(entry, Some(source)))
    }

    /// Loads every `*.ipg` / `*.ipgc` file in `dir` (sorted by file
    /// name), swapping in each grammar that validates and keeping the
    /// previous generation for each one that does not. Per-file failures
    /// are reported, not fatal.
    ///
    /// # Errors
    ///
    /// Only on failing to read the directory itself.
    pub fn reload_dir(&self, dir: &Path) -> Result<DirReload> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| Error::Grammar(format!("cannot read {}: {e}", dir.display())))?;
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "ipg" || e == "ipgc"))
            .collect();
        paths.sort();
        let mut report = DirReload::default();
        for path in paths {
            match self.load_path(&path) {
                Ok(entry) => report.loaded.push(entry),
                Err(e) => report.failed.push((path, e)),
            }
        }
        Ok(report)
    }

    fn insert(&self, entry: Entry, reload: Option<ReloadSource>) -> Entry {
        let mut slots = self.write();
        let out = entry.clone();
        let slot = Slot { entry, reload };
        if let Some(i) = slots.iter().position(|s| s.entry.name == slot.entry.name) {
            slots[i] = slot;
        } else {
            slots.push(slot);
        }
        out
    }

    /// The cross-engine agreement contract, shared by the assert-style
    /// test helper and the report-style `bench_conform` gate: identical
    /// step counts, identical trees on acceptance (via `TreeRef::to_tree`,
    /// which covers shape, attribute environments including
    /// `start`/`end`, spans, chosen alternatives, and blackbox payloads),
    /// identical deepest errors on rejection. Returns `Ok(accepted)` or a
    /// divergence description.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first divergence found.
    pub fn compare_engines(
        parser: &Parser<'_>,
        vm: &VmParser<'_>,
        input: &[u8],
    ) -> std::result::Result<bool, String> {
        let (ri, si) = parser.parse_with_stats(input);
        let (rv, sv) = vm.parse_with_stats(input);
        if si.steps != sv.steps {
            return Err(format!("step counts differ: {} vs {}", si.steps, sv.steps));
        }
        match (ri, rv) {
            (Ok(reference), Ok(tree)) => {
                if tree.root().to_tree() != reference {
                    Err("engines accept but build different trees".into())
                } else {
                    Ok(true)
                }
            }
            (Err(ei), Err(ev)) => {
                if ei != ev {
                    Err(format!("engines reject with different errors: {ei:?} vs {ev:?}"))
                } else {
                    Ok(false)
                }
            }
            (Ok(_), Err(e)) => Err(format!("interpreter accepts, VM rejects: {e}")),
            (Err(e), Ok(_)) => Err(format!("VM accepts, interpreter rejects: {e}")),
        }
    }
}

fn stem_of(path: &Path) -> Result<String> {
    path.file_stem().and_then(|s| s.to_str()).map(str::to_owned).ok_or_else(|| {
        Error::Grammar(format!("cannot derive a grammar name from {}", path.display()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_all_nine_grammars_in_order() {
        let reg = Registry::corpus();
        assert_eq!(
            reg.names(),
            ["zip", "zip_inflate", "dns", "png", "gif", "elf", "ipv4udp", "pe", "pdf"]
        );
    }

    #[test]
    fn register_replaces_by_name() {
        let reg = Registry::new();
        let entry = corpus_entry("dns");
        reg.register("only", entry.handle());
        reg.register("only", entry.handle());
        assert_eq!(reg.entries().len(), 1);
        assert!(reg.pin("only").is_some());
        assert!(reg.pin("dns").is_none());
    }

    #[test]
    fn corpus_entries_come_from_the_artifact_pipeline() {
        // With the cache enabled the origin is Hit or Miss; with
        // IPG_NO_CACHE it is Memory. Either way it is never ArtifactFile,
        // and every entry's VM parses its own corpus input elsewhere in
        // the suite.
        for e in Registry::corpus().entries() {
            assert_ne!(e.origin, Origin::ArtifactFile, "{}", e.name);
        }
    }

    #[test]
    fn clones_share_one_table() {
        let a = Registry::new();
        let b = a.clone();
        a.register("shared", corpus_entry("dns").handle());
        assert!(b.pin("shared").is_some(), "clones must observe each other's registrations");
    }

    #[test]
    fn reload_swaps_generation_and_pins_survive() {
        let reg = Registry::corpus();
        let before = reg.get("dns").unwrap();
        let pinned = reg.pin("dns").unwrap();
        let after = reg.reload("dns").unwrap();
        assert!(after.generation > before.generation, "reload must advance the generation");
        assert!(
            !Arc::ptr_eq(&pinned, &reg.pin("dns").unwrap()),
            "the table must hand out the new generation"
        );
        // The pinned old generation still parses: in-flight work is
        // unaffected by the swap.
        let input = ipg_corpus::dns::generate(&Default::default()).bytes;
        pinned.vm().parse(&input).expect("old generation stays usable");
        reg.get("dns").unwrap().vm().parse(&input).expect("new generation parses");
    }

    #[test]
    fn reload_of_prebuilt_registration_is_a_typed_error() {
        let reg = Registry::new();
        reg.register("pinned", corpus_entry("dns").handle());
        match reg.reload("pinned") {
            Err(Error::Grammar(m)) => assert!(m.contains("no reload source"), "{m}"),
            other => panic!("expected Grammar error, got {other:?}"),
        }
        assert!(reg.reload("absent").is_err());
    }

    #[test]
    fn failed_reload_rolls_back_to_the_previous_generation() {
        let dir = std::env::temp_dir().join(format!("ipg-reload-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.ipg");
        std::fs::write(&path, r#"S -> "a"[0, 1];"#).unwrap();

        let reg = Registry::new();
        let first = reg.load_path(&path).unwrap();
        first.vm().parse(b"a").expect("initial grammar parses");

        // Break the file on disk: the reload must fail and the table
        // must keep serving the old generation.
        std::fs::write(&path, "THIS IS NOT A GRAMMAR ->").unwrap();
        assert!(reg.reload("tiny").is_err());
        let current = reg.get("tiny").unwrap();
        assert_eq!(current.generation, first.generation, "failed reload must not swap");
        current.vm().parse(b"a").expect("previous generation still current");

        // Fix the file: now the swap happens and behavior changes.
        std::fs::write(&path, r#"S -> "b"[0, 1];"#).unwrap();
        let swapped = reg.reload("tiny").unwrap();
        assert!(swapped.generation > first.generation);
        swapped.vm().parse(b"b").expect("new grammar parses the new input");
        assert!(swapped.vm().parse(b"a").is_err(), "old input now rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_dir_reports_per_file_outcomes() {
        let dir = std::env::temp_dir().join(format!("ipg-reloaddir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("good.ipg"), r#"S -> "g"[0, 1];"#).unwrap();
        std::fs::write(dir.join("bad.ipg"), "NOT A GRAMMAR ->").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a grammar file").unwrap();

        let reg = Registry::new();
        let report = reg.reload_dir(&dir).unwrap();
        assert_eq!(report.loaded.len(), 1);
        assert_eq!(report.loaded[0].name, "good");
        assert_eq!(report.failed.len(), 1);
        assert!(report.failed[0].0.ends_with("bad.ipg"));
        assert!(reg.get("good").is_some());
        assert!(reg.get("bad").is_none(), "failed file must not register");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
