//! The one grammar registry every consumer shares.
//!
//! The differential test suites, the conformance fuzzing harness, the
//! bench binaries, `ipg-serve`, and the `ipg` CLI all resolve grammars
//! through a [`Registry`]: a name → (checked grammar, compiled VM) table
//! whose entries are loaded through the [`ipg_core::ipgc`] artifact
//! pipeline. The built-in corpus ([`Registry::corpus`]) is materialized
//! once per process — each grammar is fetched from the on-disk `.ipgc`
//! cache (or compiled and persisted on a miss) — and user-supplied
//! grammars (`.ipg` sources or `.ipgc` artifacts named on a command line)
//! flow through [`Registry::load_ipg_path`] / [`Registry::load_artifact_path`]
//! into the exact same table, so "built-in" and "user-supplied" are
//! indistinguishable downstream.
//!
//! Entries borrow process-lifetime (`'static`, intentionally leaked)
//! grammars and parsers: a registry is a cheap, clonable view, and
//! sessions/workers borrow the shared compiled programs.

use ipg_core::blackbox::Blackbox;
use ipg_core::check::Grammar;
use ipg_core::error::{Error, Result};
use ipg_core::interp::vm::VmParser;
use ipg_core::interp::Parser;
use ipg_core::ipgc::{Cache, CacheOutcome, CachedProgram, MissReason};
use std::path::Path;
use std::sync::OnceLock;

/// How a registry entry's compiled program was obtained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Origin {
    /// Deserialized from a fresh `.ipgc` artifact in the cache directory.
    CacheHit,
    /// Compiled from source; the cache artifact was (re)written. The
    /// reason records whether the artifact was absent or invalid
    /// (version skew, corruption, grammar mismatch).
    CacheMiss(MissReason),
    /// Compiled in memory with the cache disabled (`IPG_NO_CACHE`), or
    /// registered directly from pre-built statics.
    Memory,
    /// Loaded from an explicit `.ipgc` file path (no cache involved).
    ArtifactFile,
}

impl Origin {
    fn from_outcome(outcome: CacheOutcome) -> Origin {
        match outcome {
            CacheOutcome::Hit => Origin::CacheHit,
            CacheOutcome::Miss(reason) => Origin::CacheMiss(reason),
        }
    }

    /// Whether the entry's program was deserialized rather than compiled.
    pub fn is_cache_hit(&self) -> bool {
        matches!(self, Origin::CacheHit)
    }
}

/// One registered grammar: the interpreter-side checked grammar, the
/// compiled bytecode parser, and how the program was obtained.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Registry name (corpus module name, or a file stem for loaded paths).
    pub name: String,
    /// The checked grammar (tree-walking interpreter side).
    pub grammar: &'static Grammar,
    /// The compiled bytecode parser (fuel-free; bound work per parse with
    /// [`ipg_core::interp::vm::Session::max_steps`] or a fueled wrapper).
    pub vm: &'static VmParser<'static>,
    /// Where the compiled program came from.
    pub origin: Origin,
}

/// A name → compiled-grammar table. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    entries: Vec<Entry>,
}

/// An embedded corpus format: everything needed to (re)compile it —
/// name, spec source, and a constructor for its blackbox bindings
/// (blackboxes are runtime function pointers, so artifacts store only
/// their declarations and the registry re-binds them by name on load).
#[derive(Clone, Copy)]
pub struct FormatDescriptor {
    /// Registry name (`ipg-formats` module name).
    pub name: &'static str,
    /// The embedded `.ipg` source.
    pub spec: &'static str,
    /// Constructs the blackbox bindings this grammar requires.
    pub blackboxes: fn() -> Vec<Blackbox>,
}

fn no_blackboxes() -> Vec<Blackbox> {
    Vec::new()
}

/// The nine-grammar corpus under cross-engine test, in registry order.
/// Adding a format here is what puts it under test: the differential
/// suites, the conformance harness, the bench binaries, `ipg-serve`, and
/// the CLI corpus listing all sweep exactly this table.
pub fn corpus_descriptors() -> [FormatDescriptor; 9] {
    [
        FormatDescriptor { name: "zip", spec: crate::zip::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor {
            name: "zip_inflate",
            spec: crate::zip::SPEC_INFLATE,
            blackboxes: crate::zip::inflate_blackboxes,
        },
        FormatDescriptor { name: "dns", spec: crate::dns::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "png", spec: crate::png::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "gif", spec: crate::gif::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "elf", spec: crate::elf::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "ipv4udp", spec: crate::ipv4udp::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "pe", spec: crate::pe::SPEC, blackboxes: no_blackboxes },
        FormatDescriptor { name: "pdf", spec: crate::pdf::SPEC, blackboxes: no_blackboxes },
    ]
}

/// Promotes a cached program to process lifetime: the grammar and the
/// wrapping parser are leaked once and borrowed by every consumer.
fn leak(cached: CachedProgram) -> (&'static Grammar, &'static VmParser<'static>) {
    let CachedProgram { grammar, program, anchor, hints, .. } = cached;
    let grammar: &'static Grammar = Box::leak(Box::new(grammar));
    let vm = VmParser::from_compiled(grammar, program, anchor, hints);
    (grammar, Box::leak(Box::new(vm)))
}

/// Loads one spec through the environment's cache (or compiles in memory
/// when the cache is disabled).
fn load_entry(name: &str, spec: &str, blackboxes: Vec<Blackbox>) -> Result<Entry> {
    let (cached, origin) = match Cache::from_env() {
        Some(cache) => {
            let (cached, outcome) = cache.load_or_compile(name, spec, blackboxes)?;
            (cached, Origin::from_outcome(outcome))
        }
        None => (CachedProgram::compile(spec, blackboxes)?, Origin::Memory),
    };
    let (grammar, vm) = leak(cached);
    Ok(Entry { name: name.to_owned(), grammar, vm, origin })
}

/// The per-process corpus table, loaded once through the artifact cache.
fn corpus_entries() -> &'static [Entry] {
    static ENTRIES: OnceLock<Vec<Entry>> = OnceLock::new();
    ENTRIES.get_or_init(|| {
        corpus_descriptors()
            .into_iter()
            .map(|d| {
                load_entry(d.name, d.spec, (d.blackboxes)())
                    .unwrap_or_else(|e| panic!("corpus grammar `{}` failed to load: {e}", d.name))
            })
            .collect()
    })
}

/// The shared corpus entry for a format module's `grammar()`/`vm()`
/// statics. Panics for names outside [`corpus_descriptors`].
pub(crate) fn corpus_entry(name: &str) -> &'static Entry {
    corpus_entries()
        .iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("`{name}` is not a corpus grammar"))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The nine-grammar corpus view (shared per-process entries; the
    /// underlying programs are loaded through the `.ipgc` cache once).
    pub fn corpus() -> Registry {
        Registry { entries: corpus_entries().to_vec() }
    }

    /// The registered entries, in registration order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Looks up a compiled parser by name.
    pub fn vm(&self, name: &str) -> Option<&'static VmParser<'static>> {
        self.get(name).map(|e| e.vm)
    }

    /// Looks up a checked grammar by name.
    pub fn grammar(&self, name: &str) -> Option<&'static Grammar> {
        self.get(name).map(|e| e.grammar)
    }

    /// Registers a pre-built entry under `name`, replacing any existing
    /// entry with that name.
    pub fn register(
        &mut self,
        name: &str,
        grammar: &'static Grammar,
        vm: &'static VmParser<'static>,
    ) {
        self.insert(Entry { name: name.to_owned(), grammar, vm, origin: Origin::Memory });
    }

    /// Loads `.ipg` source under `name` through the environment's cache
    /// (compiling and persisting on a miss) and registers it.
    ///
    /// # Errors
    ///
    /// Frontend/check errors when the spec is invalid. Cache problems
    /// degrade to in-memory compilation, not errors.
    pub fn load_spec(
        &mut self,
        name: &str,
        spec: &str,
        blackboxes: Vec<Blackbox>,
    ) -> Result<&Entry> {
        let entry = load_entry(name, spec, blackboxes)?;
        Ok(self.insert(entry))
    }

    /// Loads a user-supplied grammar from a `.ipg` source file, registered
    /// under the file stem. Flows through the same cache pipeline as the
    /// corpus.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file (as [`Error::Grammar`]) and
    /// frontend/check errors in the spec.
    pub fn load_ipg_path(&mut self, path: &Path) -> Result<&Entry> {
        let name = stem_of(path)?;
        let spec = std::fs::read_to_string(path)
            .map_err(|e| Error::Grammar(format!("cannot read {}: {e}", path.display())))?;
        let entry = load_entry(&name, &spec, Vec::new())?;
        Ok(self.insert(entry))
    }

    /// Loads a persisted `.ipgc` artifact from an explicit path (no cache
    /// lookup), registered under the file stem. The embedded source is
    /// re-checked and verified against the artifact before the program is
    /// accepted.
    ///
    /// # Errors
    ///
    /// [`Error::Artifact`] on corrupt/truncated/version-skewed bytes or an
    /// artifact/grammar mismatch; I/O errors as [`Error::Artifact`].
    pub fn load_artifact_path(&mut self, path: &Path) -> Result<&Entry> {
        let name = stem_of(path)?;
        let bytes = std::fs::read(path)
            .map_err(|e| Error::Artifact(format!("cannot read {}: {e}", path.display())))?;
        let artifact = ipg_core::ipgc::decode(&bytes)?;
        let grammar = artifact.reconstruct_grammar(Vec::new())?;
        artifact.validate_against(&grammar)?;
        let cached = CachedProgram {
            grammar,
            program: artifact.program,
            anchor: artifact.anchor,
            hints: artifact.hints,
            source_hash: artifact.source_hash,
        };
        let (grammar, vm) = leak(cached);
        Ok(self.insert(Entry { name, grammar, vm, origin: Origin::ArtifactFile }))
    }

    /// Loads a grammar from a path, dispatching on the `.ipgc` extension
    /// (artifact) versus anything else (`.ipg` source).
    pub fn load_path(&mut self, path: &Path) -> Result<&Entry> {
        if path.extension().is_some_and(|e| e == "ipgc") {
            self.load_artifact_path(path)
        } else {
            self.load_ipg_path(path)
        }
    }

    fn insert(&mut self, entry: Entry) -> &Entry {
        if let Some(i) = self.entries.iter().position(|e| e.name == entry.name) {
            self.entries[i] = entry;
            &self.entries[i]
        } else {
            self.entries.push(entry);
            self.entries.last().expect("just pushed")
        }
    }

    /// The cross-engine agreement contract, shared by the assert-style
    /// test helper and the report-style `bench_conform` gate: identical
    /// step counts, identical trees on acceptance (via `TreeRef::to_tree`,
    /// which covers shape, attribute environments including
    /// `start`/`end`, spans, chosen alternatives, and blackbox payloads),
    /// identical deepest errors on rejection. Returns `Ok(accepted)` or a
    /// divergence description.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first divergence found.
    pub fn compare_engines(
        parser: &Parser<'_>,
        vm: &VmParser<'_>,
        input: &[u8],
    ) -> std::result::Result<bool, String> {
        let (ri, si) = parser.parse_with_stats(input);
        let (rv, sv) = vm.parse_with_stats(input);
        if si.steps != sv.steps {
            return Err(format!("step counts differ: {} vs {}", si.steps, sv.steps));
        }
        match (ri, rv) {
            (Ok(reference), Ok(tree)) => {
                if tree.root().to_tree() != reference {
                    Err("engines accept but build different trees".into())
                } else {
                    Ok(true)
                }
            }
            (Err(ei), Err(ev)) => {
                if ei != ev {
                    Err(format!("engines reject with different errors: {ei:?} vs {ev:?}"))
                } else {
                    Ok(false)
                }
            }
            (Ok(_), Err(e)) => Err(format!("interpreter accepts, VM rejects: {e}")),
            (Err(e), Ok(_)) => Err(format!("VM accepts, interpreter rejects: {e}")),
        }
    }
}

fn stem_of(path: &Path) -> Result<String> {
    path.file_stem().and_then(|s| s.to_str()).map(str::to_owned).ok_or_else(|| {
        Error::Grammar(format!("cannot derive a grammar name from {}", path.display()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_all_nine_grammars_in_order() {
        let reg = Registry::corpus();
        assert_eq!(
            reg.names(),
            ["zip", "zip_inflate", "dns", "png", "gif", "elf", "ipv4udp", "pe", "pdf"]
        );
    }

    #[test]
    fn register_replaces_by_name() {
        let mut reg = Registry::new();
        let dns = Registry::corpus();
        let entry = dns.get("dns").unwrap();
        reg.register("only", entry.grammar, entry.vm);
        reg.register("only", entry.grammar, entry.vm);
        assert_eq!(reg.entries().len(), 1);
        assert!(reg.vm("only").is_some());
        assert!(reg.vm("dns").is_none());
    }

    #[test]
    fn corpus_entries_come_from_the_artifact_pipeline() {
        // With the cache enabled the origin is Hit or Miss; with
        // IPG_NO_CACHE it is Memory. Either way it is never ArtifactFile,
        // and every entry's VM parses its own corpus input elsewhere in
        // the suite.
        for e in Registry::corpus().entries() {
            assert_ne!(e.origin, Origin::ArtifactFile, "{}", e.name);
        }
    }
}
