//! IPv4+UDP: grammar access and typed extraction.

use crate::{need, nt_of};
use ipg_core::check::Grammar;
use ipg_core::error::{Error, Result};
use ipg_core::interp::vm::VmParser;

/// The embedded `.ipg` specification.
pub const SPEC: &str = include_str!("../specs/ipv4udp.ipg");

/// The checked IPv4+UDP grammar.
pub fn grammar() -> &'static Grammar {
    crate::registry::corpus_entry("ipv4udp").grammar()
}

/// The compiled bytecode parser.
pub fn vm() -> &'static VmParser<'static> {
    crate::registry::corpus_entry("ipv4udp").vm()
}

/// A parsed datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ipv4UdpPacket {
    /// IPv4 header length in bytes.
    pub ihl: usize,
    /// IPv4 total length.
    pub total_len: u16,
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
    /// UDP source port.
    pub sport: u16,
    /// UDP destination port.
    pub dport: u16,
    /// UDP length field.
    pub udp_len: u16,
    /// Absolute span of the UDP payload.
    pub payload: (usize, usize),
}

/// Parses a datagram with the IPG grammar and extracts a typed view.
///
/// # Errors
///
/// [`Error::Parse`] when the input is not an IPv4+UDP datagram per the
/// grammar (wrong version, non-UDP protocol, inconsistent lengths).
pub fn parse(input: &[u8]) -> Result<Ipv4UdpPacket> {
    let g = grammar();
    let tree = vm().parse(input)?;
    let root = tree.root().as_node().expect("root is a node");
    let udp = root
        .child_node_nt(nt_of(g, "UDP")?)
        .ok_or_else(|| Error::Grammar("extractor: missing UDP header".into()))?;
    let payload = udp
        .child_node_nt(nt_of(g, "Payload")?)
        .ok_or_else(|| Error::Grammar("extractor: missing payload".into()))?;
    let src_node = root
        .child_node_nt(nt_of(g, "Src")?)
        .ok_or_else(|| Error::Grammar("extractor: missing source address".into()))?;
    let dst_node = root
        .child_node_nt(nt_of(g, "Dst")?)
        .ok_or_else(|| Error::Grammar("extractor: missing destination address".into()))?;
    let src: [u8; 4] = input[src_node.span().0..src_node.span().1].try_into().expect("4 bytes");
    let dst: [u8; 4] = input[dst_node.span().0..dst_node.span().1].try_into().expect("4 bytes");
    Ok(Ipv4UdpPacket {
        ihl: need(g, root, "ihl")? as usize,
        total_len: need(g, root, "tot")? as u16,
        src,
        dst,
        sport: need(g, udp, "sport")? as u16,
        dport: need(g, udp, "dport")? as u16,
        udp_len: need(g, udp, "len")? as u16,
        payload: payload.span(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_corpus::ipv4udp as gen;

    #[test]
    fn parses_default_packet() {
        let p = gen::generate(&gen::Config::default());
        let parsed = parse(&p.bytes).unwrap();
        assert_eq!(parsed.ihl, p.summary.ihl_bytes);
        assert_eq!(parsed.total_len, p.summary.total_len);
        assert_eq!(parsed.src, p.summary.src);
        assert_eq!(parsed.dst, p.summary.dst);
        assert_eq!(parsed.sport, p.summary.sport);
        assert_eq!(parsed.dport, p.summary.dport);
        assert_eq!(parsed.payload.1 - parsed.payload.0, p.summary.payload_len);
    }

    #[test]
    fn options_shift_the_udp_header() {
        let p = gen::generate(&gen::Config { options_words: 4, ..Default::default() });
        let parsed = parse(&p.bytes).unwrap();
        assert_eq!(parsed.ihl, 20 + 16);
    }

    #[test]
    fn non_udp_protocol_rejected() {
        let mut p = gen::generate(&gen::Config::default()).bytes;
        p[9] = 6; // TCP
        assert!(parse(&p).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut p = gen::generate(&gen::Config::default()).bytes;
        p[0] = 0x65; // version 6
        assert!(parse(&p).is_err());
    }

    #[test]
    fn truncated_packet_rejected() {
        let p = gen::generate(&gen::Config::default());
        assert!(parse(&p.bytes[..20]).is_err());
    }
}
