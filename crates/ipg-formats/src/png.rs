//! PNG: grammar access and typed extraction. An extra chunk-based case
//! study (the paper names PNG alongside GIF in §4) whose chunk list uses
//! the `star` repetition extension instead of the recursive list idiom.

use crate::{need, nt_of};
use ipg_core::check::Grammar;
use ipg_core::error::{Error, Result};
use ipg_core::interp::vm::VmParser;

/// The embedded `.ipg` specification.
pub const SPEC: &str = include_str!("../specs/png.ipg");

/// The checked PNG grammar.
pub fn grammar() -> &'static Grammar {
    crate::registry::corpus_entry("png").grammar()
}

/// The compiled bytecode parser.
pub fn vm() -> &'static VmParser<'static> {
    crate::registry::corpus_entry("png").vm()
}

/// A parsed image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PngImage {
    /// IHDR width.
    pub width: u32,
    /// IHDR height.
    pub height: u32,
    /// IHDR bit depth.
    pub bit_depth: u8,
    /// Chunks between IHDR and IEND: `(type fourcc, data span)`.
    pub chunks: Vec<(String, (usize, usize))>,
}

/// Parses a PNG with the IPG grammar and extracts a typed view.
///
/// # Errors
///
/// [`Error::Parse`] when the input is not valid PNG per the grammar.
pub fn parse(input: &[u8]) -> Result<PngImage> {
    let g = grammar();
    let tree = vm().parse(input)?;
    let root = tree.root();
    let ihdr = root
        .child_node_nt(nt_of(g, "IHDR")?)
        .ok_or_else(|| Error::Grammar("extractor: missing IHDR".into()))?;

    let mut chunks = Vec::new();
    if let Some(arr) = root.child_array_nt(nt_of(g, "Chunk")?) {
        let (nt_type, nt_data) = (nt_of(g, "Type")?, nt_of(g, "Data")?);
        for chunk in arr.nodes() {
            let ty = chunk
                .child_node_nt(nt_type)
                .ok_or_else(|| Error::Grammar("extractor: chunk without type".into()))?;
            let fourcc = String::from_utf8_lossy(&input[ty.span().0..ty.span().1]).into_owned();
            let data = chunk
                .child_node_nt(nt_data)
                .ok_or_else(|| Error::Grammar("extractor: chunk without data".into()))?;
            chunks.push((fourcc, data.span()));
        }
    }

    Ok(PngImage {
        width: need(g, ihdr, "w")? as u32,
        height: need(g, ihdr, "h")? as u32,
        bit_depth: need(g, ihdr, "depth")? as u8,
        chunks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_corpus::png as gen;

    #[test]
    fn parses_default_corpus_image() {
        let f = gen::generate(&gen::Config::default());
        let parsed = parse(&f.bytes).unwrap();
        assert_eq!(parsed.width, f.summary.width);
        assert_eq!(parsed.height, f.summary.height);
        assert_eq!(parsed.bit_depth, 8);
        // Chunks exclude IHDR and IEND.
        let expected: Vec<&String> =
            f.summary.chunk_types.iter().filter(|t| *t != "IHDR" && *t != "IEND").collect();
        let got: Vec<&String> = parsed.chunks.iter().map(|(t, _)| t).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn chunk_data_spans_match_lengths() {
        let f = gen::generate(&gen::Config { n_idat: 2, idat_len: 333, ..Default::default() });
        let parsed = parse(&f.bytes).unwrap();
        for (ty, (lo, hi)) in &parsed.chunks {
            if ty == "IDAT" {
                assert_eq!(hi - lo, 333);
            }
        }
    }

    #[test]
    fn minimal_image_without_middle_chunks() {
        let f = gen::generate(&gen::Config { n_idat: 0, with_text: false, ..Default::default() });
        let parsed = parse(&f.bytes).unwrap();
        assert!(parsed.chunks.is_empty());
    }

    #[test]
    fn corrupt_signature_rejected() {
        let mut f = gen::generate(&gen::Config::default()).bytes;
        f[1] = b'Q';
        assert!(parse(&f).is_err());
    }

    #[test]
    fn missing_iend_rejected() {
        let f = gen::generate(&gen::Config::default());
        assert!(parse(&f.bytes[..f.bytes.len() - 12]).is_err());
    }

    #[test]
    fn grammar_passes_termination_checking() {
        let report = ipg_core::termination::check_termination(grammar());
        assert!(report.ok, "{report:?}");
    }
}
