//! Case studies written against the *interval parser combinator* library
//! (the paper's appendix A.2 states "we have implemented all case studies
//! in section 4 through our parser combinator library"). This module
//! reproduces that claim for two representatives — the packet format
//! (IPv4+UDP) and the chunk format (GIF's block structure) — and the
//! workspace tests cross-validate them against the grammar-driven parsers.

use ipg_core::combinators::{eoi, fix, guard, uint_be, uint_le, P};

/// The facts the combinator IPv4+UDP parser extracts (mirrors
/// [`crate::ipv4udp::Ipv4UdpPacket`] minus the spans, which combinators
/// return as owned data).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CombPacket {
    /// IPv4 header length in bytes.
    pub ihl: usize,
    /// Total length field.
    pub total_len: u16,
    /// UDP source port.
    pub sport: u16,
    /// UDP destination port.
    pub dport: u16,
    /// UDP payload length.
    pub payload_len: usize,
}

/// IPv4+UDP via combinators: the `%`-style [`P::local`] confinement plays
/// the role of every interval in `ipv4udp.ipg`.
pub fn ipv4_udp() -> P<CombPacket> {
    uint_be(1)
        .local(0, 1)
        .and_then(|vihl| {
            guard(vihl >> 4 == 4 && (vihl & 15) * 4 >= 20).map(move |_| (vihl & 15) * 4)
        })
        .and_then(|ihl| {
            eoi().and_then(move |len| {
                uint_be(2).local(2, 4).and_then(move |tot| {
                    guard(tot <= len && tot >= ihl + 8).and_then(move |_| {
                        uint_be(1).local(9, 10).and_then(move |proto| {
                            guard(proto == 17).and_then(move |_| {
                                // The UDP header, confined to [ihl, tot].
                                uint_be(2)
                                    .pair(uint_be(2))
                                    .pair(uint_be(2))
                                    .and_then(move |((sport, dport), udp_len)| {
                                        eoi().and_then(move |udp_eoi| {
                                            guard(udp_len == udp_eoi).map(move |_| CombPacket {
                                                ihl: ihl as usize,
                                                total_len: tot as u16,
                                                sport: sport as u16,
                                                dport: dport as u16,
                                                payload_len: (udp_len - 8) as usize,
                                            })
                                        })
                                    })
                                    .local_dyn(move |_| (ihl, tot))
                            })
                        })
                    })
                })
            })
        })
}

/// GIF block summary from the combinator parser: `(introducer, data
/// bytes)` per top-level block — comparable with
/// [`crate::gif::GifBlock`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CombGif {
    /// Logical screen width.
    pub width: u16,
    /// Logical screen height.
    pub height: u16,
    /// `(introducer, total sub-block data length)` per block.
    pub blocks: Vec<(u8, usize)>,
}

fn sub_blocks() -> P<usize> {
    fix(|rest| {
        uint_le(1).and_then(move |n| {
            let rest = rest.clone();
            if_zero_end(n, rest)
        })
    })
}

fn if_zero_end(n: i64, rest: P<usize>) -> P<usize> {
    use ipg_core::combinators::{any_byte, count, ret};
    if n == 0 {
        ret(0usize)
    } else {
        count(n as usize, any_byte())
            .and_then(move |_| rest.clone().map(move |tail| n as usize + tail))
    }
}

/// GIF structure via combinators (signature, LSD + optional color table,
/// block list, trailer).
pub fn gif() -> P<CombGif> {
    use ipg_core::combinators::{any_byte, byte, count, literal, many};
    literal(b"GIF89a")
        .or(literal(b"GIF87a"))
        .then(uint_le(2))
        .pair(uint_le(2))
        .pair(uint_le(1))
        .and_then(|((w, h), flags)| {
            // bg + aspect, then the optional global color table.
            let gct = if flags & 0x80 != 0 { 3 * (2usize << (flags & 7)) } else { 0 };
            count(2 + gct, any_byte()).map(move |_| (w as u16, h as u16))
        })
        .and_then(|(w, h)| {
            let block = uint_le(1).and_then(|introducer| match introducer {
                0x21 => uint_le(1).then(sub_blocks()).map(|len| (0x21u8, len)),
                0x2c => count(8, any_byte()).then(uint_le(1)).and_then(|iflags| {
                    let lct = if iflags & 0x80 != 0 { 3 * (2usize << (iflags & 7)) } else { 0 };
                    count(lct + 1, any_byte()) // LCT + LZW min code size
                        .then(sub_blocks())
                        .map(|len| (0x2cu8, len))
                }),
                _ => ipg_core::combinators::fail(),
            });
            many(block).and_then(move |blocks| {
                byte(0x3b).map(move |_| CombGif { width: w, height: h, blocks: blocks.clone() })
            })
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinator_ipv4udp_agrees_with_the_grammar_parser() {
        for (payload, options) in [(0usize, 0usize), (128, 0), (700, 4)] {
            let p = ipg_corpus::ipv4udp::generate(&ipg_corpus::ipv4udp::Config {
                payload_len: payload,
                options_words: options,
                seed: 3,
            });
            let comb = ipv4_udp().run(&p.bytes).expect("combinator parser accepts");
            let gram = crate::ipv4udp::parse(&p.bytes).expect("grammar parser accepts");
            assert_eq!(comb.ihl, gram.ihl);
            assert_eq!(comb.total_len, gram.total_len);
            assert_eq!(comb.sport, gram.sport);
            assert_eq!(comb.dport, gram.dport);
            assert_eq!(comb.payload_len, gram.payload.1 - gram.payload.0);
        }
    }

    #[test]
    fn combinator_ipv4udp_rejects_what_the_grammar_rejects() {
        let p = ipg_corpus::ipv4udp::generate(&ipg_corpus::ipv4udp::Config::default());
        let mut tcp = p.bytes.clone();
        tcp[9] = 6;
        assert!(ipv4_udp().run(&tcp).is_none());
        assert!(crate::ipv4udp::parse(&tcp).is_err());
        let mut v6 = p.bytes.clone();
        v6[0] = 0x65;
        assert!(ipv4_udp().run(&v6).is_none());
        assert!(ipv4_udp().run(&p.bytes[..20]).is_none());
    }

    #[test]
    fn combinator_gif_agrees_with_the_grammar_parser() {
        for frames in [1usize, 4] {
            let img = ipg_corpus::gif::generate(&ipg_corpus::gif::Config {
                n_frames: frames,
                data_per_frame: 600,
                seed: frames as u64,
                ..Default::default()
            });
            let comb = gif().run(&img.bytes).expect("combinator parser accepts");
            let gram = crate::gif::parse(&img.bytes).expect("grammar parser accepts");
            assert_eq!(comb.width, gram.width);
            assert_eq!(comb.height, gram.height);
            assert_eq!(comb.blocks.len(), gram.blocks.len());
            for (c, g) in comb.blocks.iter().zip(&gram.blocks) {
                match g {
                    crate::gif::GifBlock::Extension { data_len, .. } => {
                        assert_eq!(c.0, 0x21);
                        assert_eq!(c.1, *data_len);
                    }
                    crate::gif::GifBlock::Image { data_len, .. } => {
                        assert_eq!(c.0, 0x2c);
                        assert_eq!(c.1, *data_len);
                    }
                }
            }
        }
    }

    #[test]
    fn combinator_gif_rejects_corruption() {
        let img = ipg_corpus::gif::generate(&ipg_corpus::gif::Config::default());
        assert!(gif().run(&img.bytes[..img.bytes.len() - 1]).is_none());
        let mut bad = img.bytes.clone();
        bad[0] = b'J';
        assert!(gif().run(&bad).is_none());
    }
}
