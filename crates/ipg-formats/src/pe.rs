//! PE: grammar access and typed extraction.

use crate::{need, nt_of};
use ipg_core::check::Grammar;
use ipg_core::error::{Error, Result};
use ipg_core::interp::vm::VmParser;

/// The embedded `.ipg` specification.
pub const SPEC: &str = include_str!("../specs/pe.ipg");

/// The checked PE grammar.
pub fn grammar() -> &'static Grammar {
    crate::registry::corpus_entry("pe").grammar()
}

/// The compiled bytecode parser.
pub fn vm() -> &'static VmParser<'static> {
    crate::registry::corpus_entry("pe").vm()
}

/// A parsed PE file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeFile {
    /// Offset of the PE signature (`e_lfanew`).
    pub pe_offset: u32,
    /// COFF machine id.
    pub machine: u16,
    /// Optional header magic (0x20b for PE32+).
    pub opt_magic: u16,
    /// Sections: `(virtual address, raw offset, raw size)`.
    pub sections: Vec<(u32, u32, u32)>,
}

/// Parses a PE file with the IPG grammar and extracts a typed view.
///
/// # Errors
///
/// [`Error::Parse`] when the input is not valid PE per the grammar.
pub fn parse(input: &[u8]) -> Result<PeFile> {
    let g = grammar();
    let tree = vm().parse(input)?;
    let root = tree.root();
    let dos = root
        .child_node_nt(nt_of(g, "DOS")?)
        .ok_or_else(|| Error::Grammar("extractor: missing DOS header".into()))?;
    let coff = root
        .child_node_nt(nt_of(g, "COFF")?)
        .ok_or_else(|| Error::Grammar("extractor: missing COFF header".into()))?;
    let opt = root
        .child_node_nt(nt_of(g, "OPT")?)
        .ok_or_else(|| Error::Grammar("extractor: missing optional header".into()))?;
    let hdrs = root
        .child_array_nt(nt_of(g, "SecHdr")?)
        .ok_or_else(|| Error::Grammar("extractor: missing section table".into()))?;
    let sections = hdrs
        .nodes()
        .map(|h| {
            Ok((
                need(g, h, "vaddr")? as u32,
                need(g, h, "rawptr")? as u32,
                need(g, h, "rawsize")? as u32,
            ))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(PeFile {
        pe_offset: need(g, dos, "lfanew")? as u32,
        machine: need(g, coff, "machine")? as u16,
        opt_magic: need(g, opt, "magic")? as u16,
        sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_corpus::pe as gen;

    #[test]
    fn parses_default_corpus_file() {
        let f = gen::generate(&gen::Config::default());
        let parsed = parse(&f.bytes).unwrap();
        assert_eq!(parsed.pe_offset, f.summary.pe_offset);
        assert_eq!(parsed.machine, 0x8664);
        assert_eq!(parsed.opt_magic, 0x20b);
        assert_eq!(parsed.sections.len(), f.summary.n_sections as usize);
    }

    #[test]
    fn section_pointers_match_ground_truth() {
        let f = gen::generate(&gen::Config { n_sections: 6, ..Default::default() });
        let parsed = parse(&f.bytes).unwrap();
        for (p, (_, ptr, size)) in parsed.sections.iter().zip(&f.summary.sections) {
            assert_eq!(p.1, *ptr);
            assert_eq!(p.2, *size);
        }
    }

    #[test]
    fn missing_mz_rejected() {
        let mut f = gen::generate(&gen::Config::default()).bytes;
        f[0] = b'N';
        assert!(parse(&f).is_err());
    }

    #[test]
    fn bad_optional_magic_rejected() {
        let mut f = gen::generate(&gen::Config::default()).bytes;
        let opt = gen::PE_SIG_OFFSET as usize + 4 + gen::COFF_SIZE;
        f[opt] = 0x0c; // 0x20c is neither PE32 nor PE32+
        assert!(parse(&f).is_err());
    }

    #[test]
    fn truncated_section_data_rejected() {
        let f = gen::generate(&gen::Config::default());
        assert!(parse(&f.bytes[..f.bytes.len() - 100]).is_err());
    }
}
