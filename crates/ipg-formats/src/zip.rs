//! ZIP: grammar access, typed extraction, and blackbox-driven extraction
//! (the paper's zlib-as-blackbox pattern, §3.4/§7).

use crate::{flatten_chain, need, nt_of};
use ipg_core::blackbox::{Blackbox, BlackboxResult};
use ipg_core::check::Grammar;
use ipg_core::error::{Error, Result};
use ipg_core::interp::vm::VmParser;

/// The zero-copy ZIP specification (entry bodies stay raw byte spans).
pub const SPEC: &str = include_str!("../specs/zip.ipg");

/// The decompressing variant: bodies go through a DEFLATE blackbox.
pub const SPEC_INFLATE: &str = include_str!("../specs/zip_inflate.ipg");

/// The blackbox bindings of the decompressing grammar: `ipg-flate` as the
/// `inflate` blackbox. Blackboxes are runtime function pointers, so
/// `.ipgc` artifacts persist only their declarations and the registry
/// re-binds the implementations through this constructor on every load.
pub fn inflate_blackboxes() -> Vec<Blackbox> {
    vec![Blackbox::new("inflate", |input| {
        let (data, consumed) =
            ipg_flate::inflate_with_limit(input, 1 << 30).map_err(|e| e.to_string())?;
        Ok(BlackboxResult { consumed, data, attr_values: vec![] })
    })]
}

/// The checked zero-copy grammar (shared corpus registry entry).
pub fn grammar() -> &'static Grammar {
    crate::registry::corpus_entry("zip").grammar()
}

/// The checked decompressing grammar, with `ipg-flate` registered as the
/// `inflate` blackbox (shared corpus registry entry).
pub fn grammar_inflate() -> &'static Grammar {
    crate::registry::corpus_entry("zip_inflate").grammar()
}

/// The compiled bytecode parser for the zero-copy grammar.
pub fn vm() -> &'static VmParser<'static> {
    crate::registry::corpus_entry("zip").vm()
}

/// The compiled bytecode parser for the decompressing grammar.
pub fn vm_inflate() -> &'static VmParser<'static> {
    crate::registry::corpus_entry("zip_inflate").vm()
}

/// A parsed archive (zero-copy: bodies are spans into the input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZipArchive {
    /// Entries in local-file-header order.
    pub entries: Vec<ZipEntry>,
    /// Central directory offset (from the end record).
    pub cd_offset: u32,
    /// Entry count (from the end record).
    pub entry_count: u16,
}

/// One archive entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZipEntry {
    /// Stored file name.
    pub name: String,
    /// Compression method (0 stored, 8 DEFLATE).
    pub method: u16,
    /// CRC-32 of the uncompressed data.
    pub crc32: u32,
    /// Compressed size.
    pub compressed_size: u32,
    /// Uncompressed size.
    pub uncompressed_size: u32,
    /// Absolute span of the (compressed) body in the input.
    pub body: (usize, usize),
}

/// Parses an archive zero-copy.
///
/// # Errors
///
/// [`Error::Parse`] when the input is not a valid archive per the grammar.
pub fn parse(input: &[u8]) -> Result<ZipArchive> {
    let g = grammar();
    let tree = vm().parse(input)?;
    let root = tree.root();
    let eocd = root
        .child_node_nt(nt_of(g, "EOCD")?)
        .ok_or_else(|| Error::Grammar("extractor: missing end record".into()))?;
    let cd_offset = need(g, eocd, "cdofs")? as u32;
    let entry_count = need(g, eocd, "n")? as u16;
    let (nt_name, nt_body) = (nt_of(g, "Name")?, nt_of(g, "Body")?);

    let mut entries = Vec::new();
    if let Some(lfhs) = root.child_node_nt(nt_of(g, "LFHs")?) {
        for lfh in flatten_chain(lfhs, nt_of(g, "LFHs")?, nt_of(g, "LFH")?) {
            let name_node = lfh
                .child_node_nt(nt_name)
                .ok_or_else(|| Error::Grammar("extractor: missing entry name".into()))?;
            let name = String::from_utf8_lossy(&input[name_node.span().0..name_node.span().1])
                .into_owned();
            let body = lfh
                .child_node_nt(nt_body)
                .ok_or_else(|| Error::Grammar("extractor: missing entry body".into()))?;
            entries.push(ZipEntry {
                name,
                method: need(g, lfh, "method")? as u16,
                crc32: need(g, lfh, "crc")? as u32,
                compressed_size: need(g, lfh, "csize")? as u32,
                uncompressed_size: need(g, lfh, "usize")? as u32,
                body: body.span(),
            });
        }
    }
    Ok(ZipArchive { entries, cd_offset, entry_count })
}

/// Extracts all entries, decompressing DEFLATE bodies through the
/// blackbox grammar — the `unzip` replacement of Fig. 12a/b.
///
/// # Errors
///
/// [`Error::Parse`] on malformed archives; [`Error::Blackbox`] when a
/// body fails to decompress; [`Error::Grammar`] on CRC mismatch.
pub fn extract(input: &[u8]) -> Result<Vec<(String, Vec<u8>)>> {
    let g = grammar_inflate();
    let tree = vm_inflate().parse(input)?;
    let root = tree.root();
    let (nt_name, nt_deflated, nt_stored) =
        (nt_of(g, "Name")?, nt_of(g, "Deflated")?, nt_of(g, "Stored")?);
    let mut out = Vec::new();
    if let Some(lfhs) = root.child_node_nt(nt_of(g, "LFHs")?) {
        for lfh in flatten_chain(lfhs, nt_of(g, "LFHs")?, nt_of(g, "LFH")?) {
            let name_node = lfh
                .child_node_nt(nt_name)
                .ok_or_else(|| Error::Grammar("extractor: missing entry name".into()))?;
            let name = String::from_utf8_lossy(&input[name_node.span().0..name_node.span().1])
                .into_owned();
            let data: Vec<u8> = if let Some(bb) = lfh.child_blackbox_nt(nt_deflated) {
                bb.data().to_vec()
            } else if let Some(stored) = lfh.child_node_nt(nt_stored) {
                let (lo, hi) = stored.span();
                input[lo..hi].to_vec()
            } else {
                return Err(Error::Grammar("extractor: entry has no body".into()));
            };
            let expected = need(g, lfh, "crc")? as u32;
            if ipg_flate::crc32(&data) != expected {
                return Err(Error::Grammar(format!("crc mismatch for `{name}`")));
            }
            out.push((name, data));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_corpus::zip as gen;

    #[test]
    fn parses_deflated_archive() {
        let a = gen::generate(&gen::Config::default());
        let parsed = parse(&a.bytes).unwrap();
        assert_eq!(parsed.entries.len(), a.entries.len());
        assert_eq!(parsed.cd_offset, a.cd_offset);
        for (p, e) in parsed.entries.iter().zip(&a.entries) {
            assert_eq!(p.name, e.name);
            assert_eq!(p.crc32, e.crc32);
            assert_eq!(p.compressed_size, e.compressed_size);
            assert_eq!(p.uncompressed_size, e.uncompressed_size);
            assert_eq!(p.method, 8);
        }
    }

    #[test]
    fn body_spans_are_zero_copy_and_correct() {
        let a = gen::generate(&gen::Config { n_entries: 3, ..Default::default() });
        let parsed = parse(&a.bytes).unwrap();
        for p in &parsed.entries {
            let body = &a.bytes[p.body.0..p.body.1];
            assert_eq!(ipg_flate::inflate(body).unwrap(), a.payload);
        }
    }

    #[test]
    fn extract_decompresses_and_checks_crc() {
        let a = gen::generate(&gen::Config { n_entries: 2, ..Default::default() });
        let files = extract(&a.bytes).unwrap();
        assert_eq!(files.len(), 2);
        for (name, data) in &files {
            assert!(name.starts_with("file_"));
            assert_eq!(data, &a.payload);
        }
    }

    #[test]
    fn extract_handles_stored_entries() {
        let a = gen::generate(&gen::Config {
            method: gen::Method::Stored,
            n_entries: 2,
            ..Default::default()
        });
        let files = extract(&a.bytes).unwrap();
        assert_eq!(files[0].1, a.payload);
    }

    #[test]
    fn corrupted_body_fails_crc() {
        let mut a = gen::generate(&gen::Config {
            method: gen::Method::Stored,
            n_entries: 1,
            payload_len: 64,
            ..Default::default()
        });
        // Flip a byte inside the stored body.
        let body_start = 30 + a.entries[0].name.len();
        a.bytes[body_start + 5] ^= 0xff;
        assert!(extract(&a.bytes).is_err());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse(b"this is not a zip file at all.........").is_err());
        assert!(parse(b"").is_err());
    }

    #[test]
    fn unsupported_method_fails_via_invalid_default_interval() {
        // The inflate grammar's switch default is `Unsupported[1, 0]` —
        // the paper's always-invalid-interval idiom. Patch an entry's
        // method to 99 (both LFH and CD copies) and extraction must fail
        // while the zero-copy grammar (which doesn't dispatch) still
        // parses.
        let mut a = gen::generate(&gen::Config {
            method: gen::Method::Stored,
            n_entries: 1,
            payload_len: 10,
            ..Default::default()
        });
        // LFH method at offset 8; CD method at cd_offset + 10.
        a.bytes[8] = 99;
        let cd = a.cd_offset as usize;
        a.bytes[cd + 10] = 99;
        assert!(parse(&a.bytes).is_ok(), "structure is still valid");
        assert!(extract(&a.bytes).is_err(), "method 99 must not extract");
    }

    #[test]
    fn crc_is_validated_for_deflated_entries_too() {
        let mut a = gen::generate(&gen::Config { n_entries: 1, ..Default::default() });
        // Corrupt the stored CRC in the local header (offset 14).
        a.bytes[14] ^= 0xff;
        assert!(extract(&a.bytes).is_err());
    }
}
