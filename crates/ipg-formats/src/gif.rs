//! GIF: grammar access and typed extraction (§4.2 case study).

use crate::{flatten_chain, need, nt_of};
use ipg_core::arena::NodeRef;
use ipg_core::check::{Grammar, NtId};
use ipg_core::error::{Error, Result};
use ipg_core::interp::vm::VmParser;

/// The embedded `.ipg` specification.
pub const SPEC: &str = include_str!("../specs/gif.ipg");

/// The checked GIF grammar.
pub fn grammar() -> &'static Grammar {
    crate::registry::corpus_entry("gif").grammar()
}

/// The compiled bytecode parser.
pub fn vm() -> &'static VmParser<'static> {
    crate::registry::corpus_entry("gif").vm()
}

/// A parsed image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GifImage {
    /// Logical screen width.
    pub width: u16,
    /// Logical screen height.
    pub height: u16,
    /// Whether a global color table is present.
    pub has_gct: bool,
    /// Global color table length in bytes (0 when absent).
    pub gct_len: usize,
    /// Top-level blocks, in order.
    pub blocks: Vec<GifBlock>,
}

impl GifImage {
    /// Number of image frames.
    pub fn n_frames(&self) -> usize {
        self.blocks.iter().filter(|b| matches!(b, GifBlock::Image { .. })).count()
    }
}

/// One top-level block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GifBlock {
    /// An extension block with its label and total data length.
    Extension {
        /// The extension label (0xf9 graphic control, 0xfe comment, …).
        label: u8,
        /// Total bytes across its data sub-blocks.
        data_len: usize,
    },
    /// An image descriptor.
    Image {
        /// Frame width.
        width: u16,
        /// Frame height.
        height: u16,
        /// Total bytes of LZW-coded data across sub-blocks.
        data_len: usize,
    },
}

/// Parses a GIF with the IPG grammar and extracts a typed view.
///
/// # Errors
///
/// [`Error::Parse`] when the input is not valid GIF per the grammar.
pub fn parse(input: &[u8]) -> Result<GifImage> {
    let g = grammar();
    let tree = vm().parse(input)?;
    let root = tree.root();
    let lsd = root
        .child_node_nt(nt_of(g, "LSD")?)
        .ok_or_else(|| Error::Grammar("extractor: missing LSD".into()))?;
    let width = need(g, lsd, "w")? as u16;
    let height = need(g, lsd, "h")? as u16;
    let has_gct = need(g, lsd, "gctflag")? == 1;
    let gct_len = if has_gct { need(g, lsd, "gctsize")? as usize } else { 0 };

    let mut blocks = Vec::new();
    if let Some(chain) = root.child_node_nt(nt_of(g, "Blocks")?) {
        let (nt_ext, nt_img) = (nt_of(g, "Ext")?, nt_of(g, "Image")?);
        let (nt_subs, nt_sb) = (nt_of(g, "SubBlocks")?, nt_of(g, "SB")?);
        for block in flatten_chain(chain, nt_of(g, "Blocks")?, nt_of(g, "Block")?) {
            if let Some(ext) = block.child_node_nt(nt_ext) {
                blocks.push(GifBlock::Extension {
                    label: need(g, ext, "label")? as u8,
                    data_len: sub_blocks_len(g, nt_subs, nt_sb, ext)?,
                });
            } else if let Some(img) = block.child_node_nt(nt_img) {
                blocks.push(GifBlock::Image {
                    width: need(g, img, "w")? as u16,
                    height: need(g, img, "h")? as u16,
                    data_len: sub_blocks_len(g, nt_subs, nt_sb, img)?,
                });
            }
        }
    }
    Ok(GifImage { width, height, has_gct, gct_len, blocks })
}

/// Sums the data lengths over a `SubBlocks` chain (`nt_subs`/`nt_sb`
/// resolved once by the caller).
fn sub_blocks_len(g: &Grammar, nt_subs: NtId, nt_sb: NtId, parent: NodeRef<'_>) -> Result<usize> {
    let mut total = 0;
    if let Some(top) = parent.child_node_nt(nt_subs) {
        for sb in flatten_chain(top, nt_subs, nt_sb) {
            total += need(g, sb, "len")? as usize;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_corpus::gif as gen;

    #[test]
    fn parses_default_corpus_image() {
        let img = gen::generate(&gen::Config::default());
        let parsed = parse(&img.bytes).unwrap();
        assert_eq!(parsed.width, img.summary.width);
        assert_eq!(parsed.height, img.summary.height);
        assert_eq!(parsed.has_gct, img.summary.has_gct);
        assert_eq!(parsed.gct_len, img.summary.gct_len);
        assert_eq!(parsed.blocks.len(), img.summary.n_blocks);
        assert_eq!(parsed.n_frames(), img.summary.n_frames);
    }

    #[test]
    fn no_gct_image_parses() {
        let img = gen::generate(&gen::Config { gct_bits: None, ..Default::default() });
        let parsed = parse(&img.bytes).unwrap();
        assert!(!parsed.has_gct);
        assert_eq!(parsed.gct_len, 0);
    }

    #[test]
    fn zero_frame_image_parses_via_second_alternative() {
        let img = gen::generate(&gen::Config { n_frames: 0, ..Default::default() });
        let parsed = parse(&img.bytes).unwrap();
        assert_eq!(parsed.blocks.len(), 0);
    }

    #[test]
    fn frame_data_lengths_are_summed() {
        let img =
            gen::generate(&gen::Config { n_frames: 1, data_per_frame: 600, ..Default::default() });
        let parsed = parse(&img.bytes).unwrap();
        let GifBlock::Image { data_len, .. } = parsed.blocks[1] else {
            panic!("expected image block after GCE");
        };
        assert_eq!(data_len, 600);
    }

    #[test]
    fn truncated_image_is_rejected() {
        let img = gen::generate(&gen::Config::default());
        assert!(parse(&img.bytes[..img.bytes.len() - 1]).is_err());
        assert!(parse(b"GIF89a").is_err());
    }

    #[test]
    fn wrong_signature_is_rejected() {
        let mut img = gen::generate(&gen::Config::default()).bytes;
        img[0] = b'J';
        assert!(parse(&img).is_err());
    }
}
