//! DNS: grammar access and typed extraction. Compression pointers are
//! *recognized* by the grammar and *resolved* here — name decompression is
//! a semantic property, like the paper's post-parse validation passes.

use crate::{flatten_chain, need, nt_of};
use ipg_core::arena::NodeRef;
use ipg_core::check::{Grammar, NtId};
use ipg_core::error::{Error, Result};
use ipg_core::interp::vm::VmParser;

/// The embedded `.ipg` specification.
pub const SPEC: &str = include_str!("../specs/dns.ipg");

/// The checked DNS grammar.
pub fn grammar() -> &'static Grammar {
    crate::registry::corpus_entry("dns").grammar()
}

/// The compiled bytecode parser.
pub fn vm() -> &'static VmParser<'static> {
    crate::registry::corpus_entry("dns").vm()
}

/// A parsed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction id.
    pub id: u16,
    /// Header flags.
    pub flags: u16,
    /// Question section.
    pub questions: Vec<DnsQuestion>,
    /// Answer section.
    pub answers: Vec<DnsRecord>,
}

/// One question.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsQuestion {
    /// Dotted name (pointers resolved).
    pub name: String,
    /// QTYPE.
    pub qtype: u16,
    /// QCLASS.
    pub qclass: u16,
}

/// One resource record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsRecord {
    /// Dotted name (pointers resolved).
    pub name: String,
    /// TYPE.
    pub rtype: u16,
    /// TTL.
    pub ttl: u32,
    /// Absolute span of the RDATA.
    pub rdata: (usize, usize),
}

/// Parses a message with the IPG grammar and extracts a typed view.
///
/// # Errors
///
/// [`Error::Parse`] on malformed messages; [`Error::Grammar`] on
/// unresolvable compression pointers.
pub fn parse(input: &[u8]) -> Result<DnsMessage> {
    let g = grammar();
    let tree = vm().parse(input)?;
    let root = tree.root();
    let hdr = root
        .child_node_nt(nt_of(g, "Hdr")?)
        .ok_or_else(|| Error::Grammar("extractor: missing header".into()))?;
    let name_nts = NameNts::resolve(g)?;

    let mut questions = Vec::new();
    if let Some(qs) = root.child_node_nt(nt_of(g, "Qs")?) {
        for q in flatten_chain(qs, nt_of(g, "Qs")?, nt_of(g, "Q")?) {
            let name_node = q
                .child_node_nt(name_nts.name)
                .ok_or_else(|| Error::Grammar("extractor: question without name".into()))?;
            questions.push(DnsQuestion {
                name: resolve_name(g, &name_nts, input, name_node)?,
                qtype: need(g, q, "qtype")? as u16,
                qclass: need(g, q, "qclass")? as u16,
            });
        }
    }

    let mut answers = Vec::new();
    if let Some(asx) = root.child_node_nt(nt_of(g, "As")?) {
        let nt_rdata = nt_of(g, "RData")?;
        for a in flatten_chain(asx, nt_of(g, "As")?, nt_of(g, "A")?) {
            let name_node = a
                .child_node_nt(name_nts.name)
                .ok_or_else(|| Error::Grammar("extractor: answer without name".into()))?;
            let rdata = a
                .child_node_nt(nt_rdata)
                .ok_or_else(|| Error::Grammar("extractor: answer without rdata".into()))?;
            answers.push(DnsRecord {
                name: resolve_name(g, &name_nts, input, name_node)?,
                rtype: need(g, a, "atype")? as u16,
                ttl: need(g, a, "ttl")? as u32,
                rdata: rdata.span(),
            });
        }
    }

    Ok(DnsMessage {
        id: need(g, hdr, "id")? as u16,
        flags: need(g, hdr, "flags")? as u16,
        questions,
        answers,
    })
}

/// The `Name`-walk nonterminals, resolved once per parse instead of once
/// per record.
struct NameNts {
    ptr: NtId,
    label: NtId,
    text: NtId,
    name: NtId,
}

impl NameNts {
    fn resolve(g: &Grammar) -> Result<Self> {
        Ok(NameNts {
            ptr: nt_of(g, "Ptr")?,
            label: nt_of(g, "Label")?,
            text: nt_of(g, "Text")?,
            name: nt_of(g, "Name")?,
        })
    }
}

/// Resolves a parsed `Name` node to a dotted string, chasing compression
/// pointers through the raw message (with a hop limit against pointer
/// loops — the semantic check the grammar itself cannot express).
fn resolve_name(g: &Grammar, nts: &NameNts, input: &[u8], name: NodeRef<'_>) -> Result<String> {
    let mut labels: Vec<String> = Vec::new();
    // Walk the in-tree part: Label children chain until NUL or pointer.
    let mut cur = name;
    let pointer_target: Option<usize> = loop {
        if let Some(ptr) = cur.child_node_nt(nts.ptr) {
            break Some(need(g, ptr, "target")? as usize);
        }
        if let Some(label) = cur.child_node_nt(nts.label) {
            let text = label
                .child_node_nt(nts.text)
                .ok_or_else(|| Error::Grammar("extractor: label without text".into()))?;
            let (lo, hi) = text.span();
            labels.push(String::from_utf8_lossy(&input[lo..hi]).into_owned());
            match cur.child_node_nt(nts.name) {
                Some(next) => cur = next,
                None => break None,
            }
        } else {
            break None; // NUL terminator
        }
    };

    // Chase pointers in the raw message.
    if let Some(mut offset) = pointer_target {
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > 64 {
                return Err(Error::Grammar("compression pointer loop".into()));
            }
            let &len = input
                .get(offset)
                .ok_or_else(|| Error::Grammar("pointer past end of message".into()))?;
            if len == 0 {
                break;
            }
            if len & 0xc0 == 0xc0 {
                let lo = *input
                    .get(offset + 1)
                    .ok_or_else(|| Error::Grammar("truncated pointer".into()))?;
                offset = ((len as usize & 0x3f) << 8) | lo as usize;
                continue;
            }
            let end = offset + 1 + len as usize;
            let bytes = input
                .get(offset + 1..end)
                .ok_or_else(|| Error::Grammar("label past end of message".into()))?;
            labels.push(String::from_utf8_lossy(bytes).into_owned());
            offset = end;
        }
    }
    Ok(labels.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_corpus::dns as gen;

    #[test]
    fn parses_compressed_message() {
        let m = gen::generate(&gen::Config::default());
        let parsed = parse(&m.bytes).unwrap();
        assert_eq!(parsed.id, m.summary.id);
        assert_eq!(parsed.questions.len(), m.summary.questions.len());
        assert_eq!(parsed.answers.len(), m.summary.answers.len());
        for (q, expected) in parsed.questions.iter().zip(&m.summary.questions) {
            assert_eq!(&q.name, expected);
        }
        for (a, (name, _)) in parsed.answers.iter().zip(&m.summary.answers) {
            assert_eq!(&a.name, name, "pointer resolution");
        }
    }

    #[test]
    fn parses_uncompressed_message() {
        let m = gen::generate(&gen::Config { compress: false, ..Default::default() });
        let parsed = parse(&m.bytes).unwrap();
        for (a, (name, _)) in parsed.answers.iter().zip(&m.summary.answers) {
            assert_eq!(&a.name, name);
        }
    }

    #[test]
    fn rdata_spans_hold_the_addresses() {
        let m = gen::generate(&gen::Config::default());
        let parsed = parse(&m.bytes).unwrap();
        for (a, (_, ip)) in parsed.answers.iter().zip(&m.summary.answers) {
            assert_eq!(&m.bytes[a.rdata.0..a.rdata.1], ip);
        }
    }

    #[test]
    fn multiple_questions() {
        let m = gen::generate(&gen::Config { n_questions: 3, n_answers: 2, ..Default::default() });
        let parsed = parse(&m.bytes).unwrap();
        assert_eq!(parsed.questions.len(), 3);
        assert_eq!(parsed.answers.len(), 2);
    }

    #[test]
    fn wrong_counts_are_rejected() {
        let mut m = gen::generate(&gen::Config::default()).bytes;
        m[5] = 9; // claim 9 questions
        assert!(parse(&m).is_err());
    }

    #[test]
    fn truncated_message_rejected() {
        let m = gen::generate(&gen::Config::default());
        assert!(parse(&m.bytes[..m.bytes.len() - 3]).is_err());
    }
}
