//! ELF: grammar access and typed extraction (§4.1 case study).

use crate::{cstr_at, need, nt_of};
use ipg_core::arena::{ArrayRef, NodeRef};
use ipg_core::check::{Grammar, NtId};
use ipg_core::error::{Error, Result};
use ipg_core::interp::vm::VmParser;

/// The embedded `.ipg` specification.
pub const SPEC: &str = include_str!("../specs/elf.ipg");

/// The checked ELF grammar.
pub fn grammar() -> &'static Grammar {
    crate::registry::corpus_entry("elf").grammar()
}

/// The compiled bytecode parser.
pub fn vm() -> &'static VmParser<'static> {
    crate::registry::corpus_entry("elf").vm()
}

/// A parsed ELF file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElfFile {
    /// Section header table offset (`e_shoff`).
    pub shoff: u64,
    /// Number of section headers.
    pub shnum: u64,
    /// Index of the section-name string table.
    pub shstrndx: u64,
    /// All sections, in section-header-table order (index 0 is the null
    /// section).
    pub sections: Vec<ElfSection>,
}

/// One section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElfSection {
    /// Name, resolved through `.shstrtab`.
    pub name: Option<String>,
    /// `sh_type`.
    pub sh_type: u32,
    /// `sh_offset`.
    pub offset: u64,
    /// `sh_size`.
    pub size: u64,
    /// `sh_link`.
    pub link: u32,
    /// Typed content.
    pub kind: SectionKind,
}

/// Typed section content, per the grammar's switch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SectionKind {
    /// The null section (index 0).
    Null,
    /// `.dynamic` entries `(d_tag, d_val)`.
    Dynamic(Vec<(u64, u64)>),
    /// Symbol table entries.
    Symbols(Vec<ElfSymbol>),
    /// A string table's strings, in order.
    Strings(Vec<String>),
    /// Anything else: raw byte span `(offset, len)` into the file.
    Other(u64, u64),
}

/// One symbol-table entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElfSymbol {
    /// Offset of the name in the linked string table.
    pub name_offset: u32,
    /// Resolved name (via the linked string table).
    pub name: Option<String>,
    /// `st_value`.
    pub value: u64,
    /// `st_size`.
    pub size: u64,
}

/// Parses an ELF file with the IPG grammar and extracts a typed view.
///
/// # Errors
///
/// [`Error::Parse`] when the input is not valid ELF per the grammar.
pub fn parse(input: &[u8]) -> Result<ElfFile> {
    let g = grammar();
    let tree = vm().parse(input)?;
    extract(g, input, tree.root().as_node().expect("root is a node"))
}

fn extract(g: &Grammar, input: &[u8], root: NodeRef<'_>) -> Result<ElfFile> {
    let h = root
        .child_node_nt(nt_of(g, "H")?)
        .ok_or_else(|| Error::Grammar("extractor: missing ELF header".into()))?;
    let shoff = need(g, h, "shoff")? as u64;
    let shnum = need(g, h, "shnum")? as u64;
    let shstrndx = need(g, h, "shstrndx")? as u64;

    let sh = root
        .child_array_nt(nt_of(g, "SH")?)
        .ok_or_else(|| Error::Grammar("extractor: missing section header table".into()))?;
    let secs = root
        .child_array_nt(nt_of(g, "Sec")?)
        .ok_or_else(|| Error::Grammar("extractor: missing sections".into()))?;

    // Locate .shstrtab to resolve section names.
    let shstr = sh
        .node(shstrndx as usize)
        .map(|n| (need(g, n, "ofs").unwrap_or(0) as usize, need(g, n, "sz").unwrap_or(0) as usize));

    let sec_nts = SectionNts::resolve(g)?;
    let mut sections = Vec::with_capacity(sh.len());
    for (i, hdr) in sh.nodes().enumerate() {
        let sh_type = need(g, hdr, "type")? as u32;
        let offset = need(g, hdr, "ofs")? as u64;
        let size = need(g, hdr, "sz")? as u64;
        let link = need(g, hdr, "link")? as u32;
        let name_off = need(g, hdr, "name")? as usize;
        let name =
            shstr.and_then(
                |(ofs, sz)| {
                    if name_off < sz {
                        cstr_at(input, ofs + name_off)
                    } else {
                        None
                    }
                },
            );
        // Sec array index i-1 corresponds to SH index i (the grammar skips
        // the null section).
        let kind = if i == 0 {
            SectionKind::Null
        } else {
            let sec = secs.node(i - 1).ok_or_else(|| {
                Error::Grammar(format!("extractor: missing Sec node for section {i}"))
            })?;
            extract_section_kind(g, &sec_nts, input, sh, sec, link, offset, size)?
        };
        sections.push(ElfSection { name, sh_type, offset, size, link, kind });
    }

    Ok(ElfFile { shoff, shnum, shstrndx, sections })
}

/// The section-content nonterminals, resolved once per parse instead of
/// once per section.
struct SectionNts {
    dyn_sec: NtId,
    dyn_entry: NtId,
    sym_sec: NtId,
    sym: NtId,
    str_sec: NtId,
    strings: NtId,
    str_: NtId,
}

impl SectionNts {
    fn resolve(g: &Grammar) -> Result<Self> {
        Ok(SectionNts {
            dyn_sec: nt_of(g, "DynSec")?,
            dyn_entry: nt_of(g, "DynEntry")?,
            sym_sec: nt_of(g, "SymSec")?,
            sym: nt_of(g, "Sym")?,
            str_sec: nt_of(g, "StrSec")?,
            strings: nt_of(g, "Strings")?,
            str_: nt_of(g, "Str")?,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn extract_section_kind(
    g: &Grammar,
    nts: &SectionNts,
    input: &[u8],
    sh: ArrayRef<'_>,
    sec: NodeRef<'_>,
    link: u32,
    offset: u64,
    size: u64,
) -> Result<SectionKind> {
    if let Some(dyn_sec) = sec.child_node_nt(nts.dyn_sec) {
        let entries = dyn_sec
            .child_array_nt(nts.dyn_entry)
            .map(|arr| {
                arr.nodes()
                    .map(|e| {
                        (
                            need(g, e, "tag").unwrap_or(0) as u64,
                            need(g, e, "value").unwrap_or(0) as u64,
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        return Ok(SectionKind::Dynamic(entries));
    }
    if let Some(sym_sec) = sec.child_node_nt(nts.sym_sec) {
        // The linked string table resolves symbol names.
        let strtab = sh.node(link as usize).map(|n| {
            (need(g, n, "ofs").unwrap_or(0) as usize, need(g, n, "sz").unwrap_or(0) as usize)
        });
        let symbols = sym_sec
            .child_array_nt(nts.sym)
            .map(|arr| {
                arr.nodes()
                    .map(|s| {
                        let name_offset = need(g, s, "name").unwrap_or(0) as u32;
                        let name = strtab.and_then(|(ofs, sz)| {
                            if (name_offset as usize) < sz {
                                cstr_at(input, ofs + name_offset as usize)
                            } else {
                                None
                            }
                        });
                        ElfSymbol {
                            name_offset,
                            name,
                            value: need(g, s, "value").unwrap_or(0) as u64,
                            size: need(g, s, "size").unwrap_or(0) as u64,
                        }
                    })
                    .collect()
            })
            .unwrap_or_default();
        return Ok(SectionKind::Symbols(symbols));
    }
    if let Some(str_sec) = sec.child_node_nt(nts.str_sec) {
        // Collect Str nodes from the recursive Strings chain.
        let mut strings = Vec::new();
        if let Some(top) = str_sec.child_node_nt(nts.strings) {
            for s in crate::flatten_chain(top, nts.strings, nts.str_) {
                let (lo, _) = s.span();
                let len = need(g, s, "len")? as usize;
                strings.push(String::from_utf8_lossy(&input[lo..lo + len]).into_owned());
            }
        }
        return Ok(SectionKind::Strings(strings));
    }
    Ok(SectionKind::Other(offset, size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_corpus::elf as gen;

    #[test]
    fn parses_default_corpus_file() {
        let file = gen::generate(&gen::Config::default());
        let parsed = parse(&file.bytes).unwrap();
        assert_eq!(parsed.shoff, file.summary.shoff);
        assert_eq!(parsed.shnum, file.summary.shnum as u64);
        assert_eq!(parsed.shstrndx, file.summary.shstrndx as u64);
        assert_eq!(parsed.sections.len(), file.summary.sections.len());
    }

    #[test]
    fn section_types_offsets_sizes_match_ground_truth() {
        let file = gen::generate(&gen::Config::default());
        let parsed = parse(&file.bytes).unwrap();
        for (sec, &(ty, ofs, sz)) in parsed.sections.iter().zip(&file.summary.sections) {
            assert_eq!(sec.sh_type, ty);
            assert_eq!(sec.offset, ofs);
            assert_eq!(sec.size, sz);
        }
    }

    #[test]
    fn section_names_resolve_via_shstrtab() {
        let file = gen::generate(&gen::Config::default());
        let parsed = parse(&file.bytes).unwrap();
        let names: Vec<Option<String>> = parsed.sections.iter().map(|s| s.name.clone()).collect();
        for (i, expected) in file.summary.section_names.iter().enumerate().skip(1) {
            assert_eq!(names[i].as_deref(), Some(expected.as_str()), "section {i}");
        }
    }

    #[test]
    fn symbols_and_names_match() {
        let file = gen::generate(&gen::Config { n_symbols: 5, ..Default::default() });
        let parsed = parse(&file.bytes).unwrap();
        let syms = parsed
            .sections
            .iter()
            .find_map(|s| match &s.kind {
                SectionKind::Symbols(v) => Some(v),
                _ => None,
            })
            .expect("symtab present");
        assert_eq!(syms.len(), 5);
        for (sym, expected) in syms.iter().zip(&file.summary.symbol_names) {
            assert_eq!(sym.name.as_deref(), Some(expected.as_str()));
        }
    }

    #[test]
    fn dynamic_entries_match() {
        let file = gen::generate(&gen::Config { n_dyn: 6, ..Default::default() });
        let parsed = parse(&file.bytes).unwrap();
        let dynamic = parsed
            .sections
            .iter()
            .find_map(|s| match &s.kind {
                SectionKind::Dynamic(v) => Some(v),
                _ => None,
            })
            .expect("dynamic present");
        assert_eq!(dynamic.len(), 6);
        assert_eq!(dynamic[3].0, 3, "d_tag cycles 0..30 in the corpus");
    }

    #[test]
    fn string_table_contents_match() {
        let file = gen::generate(&gen::Config { n_symbols: 4, ..Default::default() });
        let parsed = parse(&file.bytes).unwrap();
        // .strtab: leading empty string then the four names.
        let strtabs: Vec<&Vec<String>> = parsed
            .sections
            .iter()
            .filter_map(|s| match &s.kind {
                SectionKind::Strings(v) => Some(v),
                _ => None,
            })
            .collect();
        assert!(strtabs
            .iter()
            .any(|strings| { file.summary.symbol_names.iter().all(|n| strings.contains(n)) }));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let file = gen::generate(&gen::Config::default());
        let cut = &file.bytes[..file.bytes.len() - 7];
        assert!(parse(cut).is_err());
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut file = gen::generate(&gen::Config::default()).bytes;
        file[1] = b'X';
        assert!(parse(&file).is_err());
    }
}
