//! IPG specifications and typed extractors for real file formats.
//!
//! One module per case-study format of the paper (§4, §7): [`elf`],
//! [`zip`], [`gif`], [`pe`], [`pdf`] (subset), [`dns`], [`ipv4udp`]. Each
//! module embeds its `.ipg` specification (the source lives under
//! `specs/`, where the Table 1 line counts come from), exposes the checked
//! grammar as a lazily-built static, and provides a `parse` function that
//! turns the raw parse tree into an idiomatic Rust struct.
//!
//! Extraction runs on the bytecode VM ([`ipg_core::interp::vm`]): each
//! module also exposes its compiled parser as a `vm()` static, and the
//! extractors read arena-backed [`NodeRef`] views with nonterminal ids
//! resolved once per parse instead of name-compared per child. The
//! tree-walking interpreter remains available through the `grammar()`
//! statics and is held to byte-identical behavior by the repository's
//! differential tests.
//!
//! All grammar resolution goes through [`registry::Registry`]: the
//! per-module `grammar()`/`vm()` statics are views of the shared corpus
//! registry, whose entries are loaded from the versioned `.ipgc` artifact
//! cache ([`ipg_core::ipgc`]) — or compiled and persisted on a miss — so
//! every consumer (tests, benches, `ipg-serve`, the `ipg` CLI) exercises
//! the same load-from-artifact pipeline as user-supplied grammars.
//!
//! ```
//! let file = ipg_corpus::elf::generate(&ipg_corpus::elf::Config::default());
//! let parsed = ipg_formats::elf::parse(&file.bytes)?;
//! assert_eq!(parsed.shnum, file.summary.shnum as u64);
//! # Ok::<(), ipg_core::Error>(())
//! ```

pub mod combinator_impls;
pub mod dns;
pub mod elf;
pub mod gif;
pub mod ipv4udp;
pub mod pdf;
pub mod pe;
pub mod png;
pub mod registry;
pub mod zip;

pub use registry::{
    corpus_descriptors, corpus_entry, pinned_corpus, Compiled, DirReload, Entry, FormatDescriptor,
    Origin, Registry,
};

use ipg_core::arena::NodeRef;
use ipg_core::check::{Grammar, NtId};
use ipg_core::error::{Error, Result};

/// All embedded specifications, as `(format name, spec source)` — the
/// input to the Table 1 and Table 2 harnesses. PNG is kept out of this
/// list because the paper's tables do not have a PNG row; it lives in
/// [`png`] as an extra chunk-based case study exercising the `star`
/// extension.
pub fn all_specs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("ZIP", zip::SPEC),
        ("GIF", gif::SPEC),
        ("PE", pe::SPEC),
        ("ELF", elf::SPEC),
        ("PDF", pdf::SPEC),
        ("IPv4+UDP", ipv4udp::SPEC),
        ("DNS", dns::SPEC),
    ]
}

/// Flattens the chunk-style recursion `List -> Item List / Item` into the
/// item nodes, in order. `list` is the outermost list node; `item_nt` is
/// the item nonterminal and `list_nt` the list's own (resolve both once
/// with [`nt_of`]).
pub(crate) fn flatten_chain(list: NodeRef<'_>, list_nt: NtId, item_nt: NtId) -> Vec<NodeRef<'_>> {
    let mut out = Vec::new();
    let mut cur = list;
    loop {
        if let Some(it) = cur.child_node_nt(item_nt) {
            out.push(it);
        }
        match cur.child_node_nt(list_nt) {
            Some(next) => cur = next,
            None => break,
        }
    }
    out
}

/// Reads a NUL-terminated string out of `bytes` starting at `offset`.
pub(crate) fn cstr_at(bytes: &[u8], offset: usize) -> Option<String> {
    let rest = bytes.get(offset..)?;
    let len = rest.iter().position(|&b| b == 0)?;
    Some(String::from_utf8_lossy(&rest[..len]).into_owned())
}

/// Fetches a required attribute from a node, reporting a structured error
/// when the tree does not have the expected shape (which would be a bug in
/// the spec or extractor, not in user input).
pub(crate) fn need(g: &Grammar, node: NodeRef<'_>, attr: &str) -> Result<i64> {
    node.attr(g, attr).ok_or_else(|| {
        Error::Grammar(format!("extractor: node `{}` lacks attribute `{attr}`", node.name()))
    })
}

/// Resolves a nonterminal the extractor depends on, reporting a structured
/// error if the spec no longer defines it.
pub(crate) fn nt_of(g: &Grammar, name: &str) -> Result<NtId> {
    g.nt_id(name)
        .ok_or_else(|| Error::Grammar(format!("extractor: grammar lacks nonterminal `{name}`")))
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_specs_parse_and_pass_termination_checking() {
        // The §7 claim: every format grammar passes termination checking
        // with at most a handful of elementary cycles.
        for (name, spec) in super::all_specs() {
            let g =
                ipg_core::frontend::parse_grammar(spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            let report = ipg_core::termination::check_termination(&g);
            assert!(report.ok, "{name} failed termination: {report:?}");
            assert!(
                report.cycle_count() <= 6,
                "{name}: unexpectedly many cycles ({})",
                report.cycle_count()
            );
        }
    }
}
