//! IPG specifications and typed extractors for real file formats.
//!
//! One module per case-study format of the paper (§4, §7): [`elf`],
//! [`zip`], [`gif`], [`pe`], [`pdf`] (subset), [`dns`], [`ipv4udp`]. Each
//! module embeds its `.ipg` specification (the source lives under
//! `specs/`, where the Table 1 line counts come from), exposes the checked
//! grammar as a lazily-built static, and provides a `parse` function that
//! turns the raw parse tree into an idiomatic Rust struct.
//!
//! Extraction runs on the bytecode VM ([`ipg_core::interp::vm`]): each
//! module also exposes its compiled parser as a `vm()` static, and the
//! extractors read arena-backed [`NodeRef`] views with nonterminal ids
//! resolved once per parse instead of name-compared per child. The
//! tree-walking interpreter remains available through the `grammar()`
//! statics and is held to byte-identical behavior by the repository's
//! differential tests.
//!
//! ```
//! let file = ipg_corpus::elf::generate(&ipg_corpus::elf::Config::default());
//! let parsed = ipg_formats::elf::parse(&file.bytes)?;
//! assert_eq!(parsed.shnum, file.summary.shnum as u64);
//! # Ok::<(), ipg_core::Error>(())
//! ```

pub mod combinator_impls;
pub mod dns;
pub mod elf;
pub mod gif;
pub mod ipv4udp;
pub mod pdf;
pub mod pe;
pub mod png;
pub mod zip;

use ipg_core::arena::NodeRef;
use ipg_core::check::{Grammar, NtId};
use ipg_core::error::{Error, Result};
use ipg_core::interp::vm::VmParser;
use ipg_core::interp::Parser;

/// All embedded specifications, as `(format name, spec source)` — the
/// input to the Table 1 and Table 2 harnesses. PNG is kept out of this
/// list because the paper's tables do not have a PNG row; it lives in
/// [`png`] as an extra chunk-based case study exercising the `star`
/// extension.
pub fn all_specs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("ZIP", zip::SPEC),
        ("GIF", gif::SPEC),
        ("PE", pe::SPEC),
        ("ELF", elf::SPEC),
        ("PDF", pdf::SPEC),
        ("IPv4+UDP", ipv4udp::SPEC),
        ("DNS", dns::SPEC),
    ]
}

/// The single registry of every corpus grammar under cross-engine test:
/// the differential suites, the conformance fuzzing harness, and the bench
/// binaries all sweep exactly this list. Adding a format here is what puts
/// it under test. (Callers build their own engines — typically
/// fuel-bounded — so this returns grammars, not the `vm()` statics.)
pub fn all_grammars() -> Vec<(&'static str, &'static Grammar)> {
    vec![
        ("zip", zip::grammar()),
        ("zip_inflate", zip::grammar_inflate()),
        ("dns", dns::grammar()),
        ("png", png::grammar()),
        ("gif", gif::grammar()),
        ("elf", elf::grammar()),
        ("ipv4udp", ipv4udp::grammar()),
        ("pe", pe::grammar()),
        ("pdf", pdf::grammar()),
    ]
}

/// The compiled-VM view of [`all_grammars`]: one shared, lazily-compiled
/// [`VmParser`] per corpus grammar. This is the per-grammar program cache
/// the parse service (`ipg-serve`) and the streaming benches hand out —
/// compilation happens once per process, sessions borrow the shared
/// program. Entries are fuel-free; bound work per parse with
/// [`ipg_core::interp::vm::Session::max_steps`] or a fueled wrapper.
pub fn all_vms() -> Vec<(&'static str, &'static VmParser<'static>)> {
    vec![
        ("zip", zip::vm()),
        ("zip_inflate", zip::vm_inflate()),
        ("dns", dns::vm()),
        ("png", png::vm()),
        ("gif", gif::vm()),
        ("elf", elf::vm()),
        ("ipv4udp", ipv4udp::vm()),
        ("pe", pe::vm()),
        ("pdf", pdf::vm()),
    ]
}

/// The cross-engine agreement contract, shared by the assert-style test
/// helper and the report-style `bench_conform` gate: identical step
/// counts, identical trees on acceptance (via `TreeRef::to_tree`, which
/// covers shape, attribute environments including `start`/`end`, spans,
/// chosen alternatives, and blackbox payloads), identical deepest errors
/// on rejection. Returns `Ok(accepted)` or a divergence description.
///
/// # Errors
///
/// A human-readable description of the first divergence found.
pub fn compare_engines(
    parser: &Parser<'_>,
    vm: &VmParser<'_>,
    input: &[u8],
) -> std::result::Result<bool, String> {
    let (ri, si) = parser.parse_with_stats(input);
    let (rv, sv) = vm.parse_with_stats(input);
    if si.steps != sv.steps {
        return Err(format!("step counts differ: {} vs {}", si.steps, sv.steps));
    }
    match (ri, rv) {
        (Ok(reference), Ok(tree)) => {
            if tree.root().to_tree() != reference {
                Err("engines accept but build different trees".into())
            } else {
                Ok(true)
            }
        }
        (Err(ei), Err(ev)) => {
            if ei != ev {
                Err(format!("engines reject with different errors: {ei:?} vs {ev:?}"))
            } else {
                Ok(false)
            }
        }
        (Ok(_), Err(e)) => Err(format!("interpreter accepts, VM rejects: {e}")),
        (Err(e), Ok(_)) => Err(format!("VM accepts, interpreter rejects: {e}")),
    }
}

/// Flattens the chunk-style recursion `List -> Item List / Item` into the
/// item nodes, in order. `list` is the outermost list node; `item_nt` is
/// the item nonterminal and `list_nt` the list's own (resolve both once
/// with [`nt_of`]).
pub(crate) fn flatten_chain(list: NodeRef<'_>, list_nt: NtId, item_nt: NtId) -> Vec<NodeRef<'_>> {
    let mut out = Vec::new();
    let mut cur = list;
    loop {
        if let Some(it) = cur.child_node_nt(item_nt) {
            out.push(it);
        }
        match cur.child_node_nt(list_nt) {
            Some(next) => cur = next,
            None => break,
        }
    }
    out
}

/// Reads a NUL-terminated string out of `bytes` starting at `offset`.
pub(crate) fn cstr_at(bytes: &[u8], offset: usize) -> Option<String> {
    let rest = bytes.get(offset..)?;
    let len = rest.iter().position(|&b| b == 0)?;
    Some(String::from_utf8_lossy(&rest[..len]).into_owned())
}

/// Fetches a required attribute from a node, reporting a structured error
/// when the tree does not have the expected shape (which would be a bug in
/// the spec or extractor, not in user input).
pub(crate) fn need(g: &Grammar, node: NodeRef<'_>, attr: &str) -> Result<i64> {
    node.attr(g, attr).ok_or_else(|| {
        Error::Grammar(format!("extractor: node `{}` lacks attribute `{attr}`", node.name()))
    })
}

/// Resolves a nonterminal the extractor depends on, reporting a structured
/// error if the spec no longer defines it.
pub(crate) fn nt_of(g: &Grammar, name: &str) -> Result<NtId> {
    g.nt_id(name)
        .ok_or_else(|| Error::Grammar(format!("extractor: grammar lacks nonterminal `{name}`")))
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_specs_parse_and_pass_termination_checking() {
        // The §7 claim: every format grammar passes termination checking
        // with at most a handful of elementary cycles.
        for (name, spec) in super::all_specs() {
            let g =
                ipg_core::frontend::parse_grammar(spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            let report = ipg_core::termination::check_termination(&g);
            assert!(report.ok, "{name} failed termination: {report:?}");
            assert!(
                report.cycle_count() <= 6,
                "{name}: unexpectedly many cycles ({})",
                report.cycle_count()
            );
        }
    }
}
