//! PDF subset: grammar access and typed extraction (§4.3 case study:
//! backward parsing + xref random access + /Length-driven streams).

use crate::{need, nt_of};
use ipg_core::check::Grammar;
use ipg_core::error::{Error, Result};
use ipg_core::interp::vm::VmParser;

/// The embedded `.ipg` specification.
pub const SPEC: &str = include_str!("../specs/pdf.ipg");

/// The checked PDF grammar.
pub fn grammar() -> &'static Grammar {
    crate::registry::corpus_entry("pdf").grammar()
}

/// The compiled bytecode parser.
pub fn vm() -> &'static VmParser<'static> {
    crate::registry::corpus_entry("pdf").vm()
}

/// A parsed document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PdfDocument {
    /// Offset of the xref table (parsed *backward* from the trailer).
    pub xref_offset: usize,
    /// Number of xref entries (including the free entry 0).
    pub xref_count: usize,
    /// The indirect objects.
    pub objects: Vec<PdfObject>,
}

/// One indirect object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PdfObject {
    /// Object id.
    pub id: usize,
    /// Absolute offset of the object header.
    pub offset: usize,
    /// Declared `/Length`.
    pub stream_len: usize,
    /// Absolute span of the stream payload.
    pub stream: (usize, usize),
}

/// Parses a document with the IPG grammar and extracts a typed view.
///
/// # Errors
///
/// [`Error::Parse`] when the input is not in the supported PDF subset.
pub fn parse(input: &[u8]) -> Result<PdfDocument> {
    let g = grammar();
    let tree = vm().parse(input)?;
    let root = tree.root().as_node().expect("root is a node");
    let xref_offset = need(g, root, "xref")? as usize;
    let xref_count = need(g, root, "n")? as usize;
    let objs = tree
        .root()
        .child_array_nt(nt_of(g, "Obj")?)
        .ok_or_else(|| Error::Grammar("extractor: missing objects".into()))?;
    let nt_stream = nt_of(g, "Stream")?;
    let objects = objs
        .nodes()
        .map(|o| {
            let stream = o
                .child_node_nt(nt_stream)
                .ok_or_else(|| Error::Grammar("extractor: object without stream".into()))?;
            Ok(PdfObject {
                id: need(g, o, "id")? as usize,
                offset: o.span().0,
                stream_len: need(g, o, "len")? as usize,
                stream: stream.span(),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(PdfDocument { xref_offset, xref_count, objects })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_corpus::pdf as gen;

    #[test]
    fn backward_parsing_finds_the_xref() {
        let f = gen::generate(&gen::Config::default());
        let parsed = parse(&f.bytes).unwrap();
        assert_eq!(parsed.xref_offset, f.summary.xref_offset);
        assert_eq!(parsed.xref_count, f.summary.objects.len() + 1);
    }

    #[test]
    fn objects_match_ground_truth() {
        let f = gen::generate(&gen::Config { n_objects: 5, stream_len: 99, ..Default::default() });
        let parsed = parse(&f.bytes).unwrap();
        assert_eq!(parsed.objects.len(), 5);
        for (p, &(id, offset, len)) in parsed.objects.iter().zip(&f.summary.objects) {
            assert_eq!(p.id, id);
            assert_eq!(p.offset, offset);
            assert_eq!(p.stream_len, len);
            assert_eq!(p.stream.1 - p.stream.0, len);
        }
    }

    #[test]
    fn single_object_document() {
        let f = gen::generate(&gen::Config { n_objects: 1, ..Default::default() });
        let parsed = parse(&f.bytes).unwrap();
        assert_eq!(parsed.objects.len(), 1);
    }

    #[test]
    fn corrupt_startxref_rejected() {
        let f = gen::generate(&gen::Config::default());
        let mut bytes = f.bytes.clone();
        // Overwrite the startxref digits with letters.
        let pos = bytes.len() - 7;
        bytes[pos] = b'q';
        assert!(parse(&bytes).is_err());
    }

    #[test]
    fn missing_eof_marker_rejected() {
        let f = gen::generate(&gen::Config::default());
        assert!(parse(&f.bytes[..f.bytes.len() - 1]).is_err());
    }
}
