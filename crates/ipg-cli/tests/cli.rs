//! End-to-end tests of the `ipg` binary: every subcommand runs against
//! the built executable (`CARGO_BIN_EXE_ipg`), deterministic outputs are
//! pinned as expect-files under `tests/expect/` (blessed with the same
//! `UPDATE_SNAPSHOTS=1` flow as the bytecode snapshots), and the
//! cold-then-warm cache behavior CI gates on is asserted here too.

#[path = "../../../tests/common/mod.rs"]
mod common;

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

fn ipg(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ipg"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn ipg")
}

fn ok_stdout(args: &[&str], env: &[(&str, &str)]) -> String {
    let out = ipg(args, env);
    assert!(
        out.status.success(),
        "ipg {args:?} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn expect_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/expect")
}

/// A per-test scratch directory (fresh on entry, removed on drop).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("ipg-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn str(&self) -> &str {
        self.0.to_str().expect("utf-8 scratch path")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn no_arguments_prints_usage_and_exits_2() {
    let out = ipg(&[], &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: ipg <command>"));
}

#[test]
fn unknown_grammars_are_usage_errors_that_list_the_corpus() {
    let out = ipg(&["disasm", "no-such-grammar"], &[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("neither a corpus grammar nor an existing file"), "{stderr}");
    assert!(stderr.contains("zip_inflate"), "should list the corpus: {stderr}");
}

#[test]
fn bench_info_lists_all_nine_corpus_grammars() {
    let stdout = ok_stdout(&["bench-info"], &[]);
    for name in ["zip", "zip_inflate", "dns", "png", "gif", "elf", "ipv4udp", "pe", "pdf"] {
        assert!(stdout.contains(name), "bench-info is missing `{name}`:\n{stdout}");
    }
    assert!(stdout.contains("artifact cache:"), "{stdout}");
}

#[test]
fn compile_reports_a_cold_miss_then_a_warm_hit() {
    let scratch = Scratch::new("cache");
    let env = [("IPG_CACHE_DIR", scratch.str())];
    let cold = ok_stdout(&["compile", "dns", "--cache-stats"], &env);
    assert!(cold.contains("cache: miss (absent)"), "first compile must miss:\n{cold}");
    let warm = ok_stdout(&["compile", "dns", "--cache-stats"], &env);
    assert!(warm.contains("cache: hit"), "second compile must hit:\n{warm}");
}

#[test]
fn disasm_matches_the_pinned_bytecode_snapshot() {
    // The same golden the `bytecode_snapshot` suite pins: the CLI listing
    // for a cache-loaded program must be byte-identical to it.
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/snapshots");
    let stdout = ok_stdout(&["disasm", "dns"], &[]);
    common::check_snapshot(&golden_dir, "dns.bc.txt", &stdout);
}

#[test]
fn disasm_of_a_written_artifact_is_identical_to_the_corpus_listing() {
    let scratch = Scratch::new("artifact");
    let artifact = scratch.path().join("gif.ipgc");
    let artifact = artifact.to_str().expect("utf-8 path");
    ok_stdout(&["compile", "gif", "-o", artifact], &[]);
    let from_file = ok_stdout(&["disasm", artifact], &[]);
    let from_corpus = ok_stdout(&["disasm", "gif"], &[]);
    assert_eq!(from_file, from_corpus, "artifact listing drifted from the corpus listing");
}

#[test]
fn corrupted_artifacts_are_reported_not_panics() {
    let scratch = Scratch::new("corrupt");
    let artifact = scratch.path().join("pe.ipgc");
    ok_stdout(&["compile", "pe", "-o", artifact.to_str().unwrap()], &[]);
    let mut bytes = std::fs::read(&artifact).expect("artifact written");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&artifact, &bytes).expect("rewrite");
    let out = ipg(&["disasm", artifact.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(1), "corruption must be an error, not a panic");
    assert!(String::from_utf8_lossy(&out.stderr).contains("artifact error"));
}

#[test]
fn parse_tree_dump_is_pinned() {
    // The self-generated DNS sample is deterministic, so the whole tree
    // dump is an expect-file.
    let stdout = ok_stdout(&["parse", "dns", "--depth", "3"], &[]);
    common::check_snapshot(&expect_dir(), "parse_dns.txt", &stdout);
}

#[test]
fn parse_extract_listing_is_pinned() {
    let stdout = ok_stdout(&["parse", "zip", "--extract"], &[]);
    common::check_snapshot(&expect_dir(), "extract_zip.txt", &stdout);
}

#[test]
fn parse_streams_stdin_through_a_session() {
    let archive = common::default_corpus_input("zip");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ipg"))
        .args(["parse", "zip", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ipg");
    cmd.stdin.take().expect("piped stdin").write_all(&archive).expect("write stdin");
    let out = cmd.wait_with_output().expect("wait for ipg");
    assert!(out.status.success(), "stderr:\n{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stdin (streamed)"), "{stdout}");
}

#[test]
fn parse_loads_user_grammars_from_ipg_sources() {
    let scratch = Scratch::new("usergrammar");
    let spec = scratch.path().join("pair.ipg");
    std::fs::write(&spec, "S -> A[0, 1] {x = A.val} B[1, 2] {y = B.val};\nA := u8;\nB := u8;\n")
        .expect("write spec");
    let input = scratch.path().join("input.bin");
    std::fs::write(&input, [7u8, 9]).expect("write input");
    let stdout = ok_stdout(&["parse", spec.to_str().unwrap(), input.to_str().unwrap()], &[]);
    assert!(stdout.contains("pair: parsed 2 bytes"), "{stdout}");
    assert!(stdout.contains("x=7") && stdout.contains("y=9"), "{stdout}");
}

#[test]
fn check_runs_the_full_toolchain_on_a_shipped_spec() {
    let spec = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../ipg-formats/specs/gif.ipg");
    let stdout = ok_stdout(&["check", spec.to_str().unwrap()], &[]);
    assert!(stdout.contains("attribute checking: ok"), "{stdout}");
    assert!(stdout.contains("termination: proved"), "{stdout}");
}

#[test]
fn serve_drains_gracefully_on_sigterm() {
    use ipg_serve::proto::{Client, RetryPolicy, Wire};
    use std::io::Read as _;
    use std::time::Duration;

    let scratch = Scratch::new("serve-drain");
    let sock = scratch.path().join("serve.sock");
    let mut child = Command::new(env!("CARGO_BIN_EXE_ipg"))
        .args(["serve", "--socket", sock.to_str().unwrap(), "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ipg serve");

    // Ride out startup (grammar loading) with a patient connect retry.
    let policy = RetryPolicy {
        attempts: 14,
        base: Duration::from_millis(5),
        cap: Duration::from_secs(2),
        ..RetryPolicy::default()
    };
    let mut client = Client::connect_with_retry(&sock, &policy).expect("connect to ipg serve");
    client.set_reply_timeout(Some(Duration::from_secs(10))).expect("timeout");

    // Real mid-traffic state: a completed parse plus an open session.
    let input = common::default_corpus_input("dns");
    assert!(matches!(client.parse("dns", &input).expect("io"), Wire::Done { .. }));
    let Wire::Opened { id } = client.open("dns").expect("io") else { panic!("expected Opened") };
    assert!(matches!(client.feed(id, &input[..2]).expect("io"), Wire::NeedInput { .. }));

    let kill =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("run kill");
    assert!(kill.success());

    // The drain seals the (now idle) connection with an unsolicited
    // GOAWAY and a clean EOF — never a torn frame, never a reset.
    assert_eq!(client.recv().expect("io"), Some(Wire::GoAway));
    assert_eq!(client.recv().expect("io"), None, "clean EOF after GOAWAY");

    let mut waited = 0u64;
    let status = loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            break st;
        }
        if waited >= 15_000 {
            let _ = child.kill();
            let _ = child.wait();
            panic!("ipg serve did not exit within 15s of SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(50));
        waited += 50;
    };
    assert!(status.success(), "graceful drain must exit 0, got {status:?}");
    let mut stdout = String::new();
    child.stdout.take().expect("piped stdout").read_to_string(&mut stdout).expect("read stdout");
    assert!(stdout.contains("draining"), "missing drain notice:\n{stdout}");
    assert!(stdout.contains("drained:"), "missing reconciliation line:\n{stdout}");
    assert!(stdout.contains("exiting 0"), "missing exit notice:\n{stdout}");
}

#[test]
fn verify_reports_each_failure_stage_with_its_stable_exit_code() {
    let scratch = Scratch::new("verify");
    let artifact = scratch.path().join("dns.ipgc");
    let path = artifact.to_str().unwrap();
    ok_stdout(&["compile", "dns", "-o", path], &[]);
    let pristine = std::fs::read(&artifact).expect("read artifact");

    // Exit 0: a fresh unsigned artifact verifies end to end.
    let valid = ok_stdout(&["verify", path], &[]);
    assert!(valid.contains("valid"), "{valid}");
    assert!(valid.contains("unsigned, digest verified"), "{valid}");

    // Exit 3: structurally broken (truncated mid-header).
    std::fs::write(&artifact, &pristine[..16]).expect("truncate");
    assert_eq!(ipg(&["verify", path], &[]).status.code(), Some(3), "structural failures exit 3");

    // Exit 4: format version skew (header version patched to 99).
    let mut skewed = pristine.clone();
    skewed[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&artifact, &skewed).expect("rewrite");
    let out = ipg(&["verify", path], &[]);
    assert_eq!(out.status.code(), Some(4), "version skew exits 4");
    assert!(String::from_utf8_lossy(&out.stderr).contains("version skew"));

    // Exit 5: provenance failure (payload bit flip breaks the digest).
    let mut corrupt = pristine.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xff;
    std::fs::write(&artifact, &corrupt).expect("rewrite");
    let out = ipg(&["verify", path], &[]);
    assert_eq!(out.status.code(), Some(5), "provenance failures exit 5");
    assert!(String::from_utf8_lossy(&out.stderr).contains("provenance"));
}

#[test]
fn compile_sign_embeds_a_mac_that_verify_checks_per_key() {
    let scratch = Scratch::new("sign");
    let artifact = scratch.path().join("gif.ipgc");
    let path = artifact.to_str().unwrap();
    let key = [("IPG_ARTIFACT_KEY", "e2e-signing-key")];

    // --sign without a key in the environment is a usage error.
    let out = ipg(&["compile", "gif", "--sign", "-o", path], &[]);
    assert_eq!(out.status.code(), Some(2));

    let stdout = ok_stdout(&["compile", "gif", "--sign", "-o", path], &key);
    assert!(stdout.contains("signed"), "{stdout}");

    // The right key verifies the MAC; no key still verifies the digest.
    let verified = ok_stdout(&["verify", path], &key);
    assert!(verified.contains("MAC verified"), "{verified}");
    let unchecked = ok_stdout(&["verify", path], &[]);
    assert!(unchecked.contains("MAC not checked"), "{unchecked}");

    // The wrong key is a provenance failure (exit 5), not a quiet pass.
    let out = ipg(&["verify", path], &[("IPG_ARTIFACT_KEY", "some-other-key")]);
    assert_eq!(out.status.code(), Some(5), "a wrong key must fail closed");
}

#[test]
fn cache_gc_reclaims_stale_artifacts_and_keeps_the_newest() {
    let scratch = Scratch::new("cache-gc");
    let env = [("IPG_CACHE_DIR", scratch.str())];
    ok_stdout(&["compile", "dns"], &env);
    ok_stdout(&["compile", "gif"], &env);
    // Junk the gc must sweep: a stale tmp file and a quarantined artifact.
    std::fs::write(scratch.path().join("dns-feedbeef.ipgc.tmp.99"), b"junk").unwrap();
    std::fs::write(scratch.path().join("old.ipgc.bad"), b"quarantined").unwrap();

    let stdout = ok_stdout(&["cache", "gc"], &env);
    assert!(stdout.contains("scanned 4"), "{stdout}");
    assert!(stdout.contains("removed 2"), "{stdout}");
    assert!(stdout.contains("kept 2"), "{stdout}");

    // Both live artifacts survived; a zero-byte budget evicts them all.
    let stdout = ok_stdout(&["cache", "gc", "--max-bytes", "0"], &env);
    assert!(stdout.contains("kept 0"), "{stdout}");
    let warm = ok_stdout(&["compile", "dns", "--cache-stats"], &env);
    assert!(warm.contains("cache: miss (absent)"), "gc must leave a recompilable cache:\n{warm}");
}

#[test]
fn gen_writes_vm_verified_inputs() {
    let scratch = Scratch::new("gen");
    let stdout = ok_stdout(&["gen", "png", "--count", "2", "--out", scratch.str()], &[]);
    assert!(stdout.contains("seed 0") && stdout.contains("seed 1"), "{stdout}");
    for seed in 0..2 {
        let path = scratch.path().join(format!("seed_{seed}.bin"));
        assert!(path.exists(), "missing {path:?}");
        // And the written bytes really parse as the grammar they were
        // generated from.
        let bytes = std::fs::read(&path).expect("read generated input");
        let parse = ok_stdout(&["parse", "png", path.to_str().unwrap()], &[]);
        assert!(parse.contains(&format!("parsed {} bytes", bytes.len())), "{parse}");
    }
}
