//! `ipg check` — the grammar toolchain driver: frontend, attribute
//! checking, the §5 termination checker, the streamability analysis, and
//! optionally the §7 Rust parser generator.

use crate::{CmdResult, Failure};
use ipg_core::frontend::{interval_stats, parse_grammar, parse_surface};
use ipg_core::termination::check_termination;

pub fn run(args: &[String]) -> CmdResult {
    let mut path = None;
    let mut emit_rust = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit-rust" => {
                emit_rust =
                    Some(it.next().cloned().unwrap_or_else(|| "generated_parser.rs".to_owned()));
            }
            other if path.is_none() => path = Some(other.to_owned()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let Some(path) = path else {
        return Err(Failure::usage("usage: ipg check <spec.ipg> [--emit-rust OUT.rs]"));
    };
    let src = std::fs::read_to_string(&path)
        .map_err(|e| Failure::runtime(format!("cannot read {path}: {e}")))?;

    let surface = parse_surface(&src).map_err(Failure::runtime)?;
    let stats = interval_stats(&surface);
    println!(
        "{path}: {} rules, {} intervals ({} fully inferred, {} length-only, {} explicit)",
        surface.rules.len(),
        stats.total,
        stats.fully_inferred,
        stats.length_only,
        stats.explicit()
    );

    let grammar = parse_grammar(&src).map_err(Failure::runtime)?;
    println!("attribute checking: ok (start nonterminal `{}`)", grammar.start_nt_name());

    let report = check_termination(&grammar);
    println!(
        "termination: {} — {} elementary cycle(s) in {:.2?}",
        if report.ok { "proved" } else { "NOT proved" },
        report.cycle_count(),
        report.elapsed
    );
    for cycle in &report.cycles {
        println!(
            "  cycle {}: {}",
            cycle.nonterminals.join(" → "),
            if cycle.decreasing { "decreasing" } else { "not refuted" }
        );
    }

    let stream = ipg_core::analysis::stream_analysis(&grammar);
    println!(
        "streamability: {}",
        if stream.streamable { "single-pass parser possible" } else { "needs random access" }
    );
    for rule in stream.rules.iter().filter(|r| !r.streamable).take(5) {
        println!("  {} blocked: {}", rule.name, rule.blockers.join("; "));
    }

    if let Some(out) = emit_rust {
        let code = ipg_core::codegen::generate_rust(&grammar).map_err(Failure::runtime)?;
        std::fs::write(&out, &code)
            .map_err(|e| Failure::runtime(format!("cannot write {out}: {e}")))?;
        println!(
            "wrote generated recursive-descent parser to {out} ({} lines)",
            code.lines().count()
        );
    }
    Ok(())
}
