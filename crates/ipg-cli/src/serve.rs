//! `ipg serve` — the batch/streaming parse service on a Unix socket,
//! with the corpus registry plus any extra grammars named on the command
//! line (all loaded through the same artifact pipeline).

use crate::{CmdResult, Failure};
use ipg_formats::Registry;
use ipg_serve::{Config, Server};
use std::path::Path;
use std::sync::Arc;

pub fn run(args: &[String]) -> CmdResult {
    let mut socket = None;
    let mut workers = None;
    let mut extra = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                socket = Some(
                    it.next().cloned().ok_or_else(|| Failure::usage("--socket needs a path"))?,
                );
            }
            "--workers" => {
                workers = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .ok_or_else(|| Failure::usage("--workers needs a number"))?,
                );
            }
            "--grammar" => {
                extra.push(
                    it.next().cloned().ok_or_else(|| Failure::usage("--grammar needs a path"))?,
                );
            }
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let Some(socket) = socket else {
        return Err(Failure::usage(
            "usage: ipg serve --socket PATH [--workers N] [--grammar PATH]...",
        ));
    };

    let mut registry = Registry::corpus();
    for path in &extra {
        let entry = registry.load_path(Path::new(path)).map_err(Failure::runtime)?;
        println!("loaded `{}` from {path}", entry.name);
    }

    let cfg = match workers {
        Some(workers) => Config { workers, ..Config::default() },
        None => Config::default(),
    };
    let server = Arc::new(Server::with_registry(cfg, registry));
    let front = server
        .serve_unix(&socket)
        .map_err(|e| Failure::runtime(format!("cannot bind {socket}: {e}")))?;
    println!(
        "serving {} grammars on {socket} with {} workers (ctrl-c to stop)",
        server.registry().entries().len(),
        server.workers()
    );
    // The acceptor runs on its own thread; park this one until killed.
    loop {
        std::thread::park();
        // Spurious unparks are allowed; keep the front end alive.
        let _ = &front;
    }
}
