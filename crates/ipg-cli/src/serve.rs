//! `ipg serve` — the batch/streaming parse service on a Unix socket,
//! with the corpus registry plus any extra grammars named on the command
//! line (all loaded through the same artifact pipeline).
//!
//! SIGTERM and ctrl-c (SIGINT) trigger a graceful drain instead of an
//! abrupt exit: the acceptor stops, queued one-shot jobs flush, open
//! sessions are sealed and their connections answered `GOAWAY`, and the
//! process exits 0 — so a rolling restart never tears a frame.

use crate::{CmdResult, Failure};
use ipg_formats::Registry;
use ipg_serve::fault::FaultPlan;
use ipg_serve::trace::{self, TraceLog, TraceWriter};
use ipg_serve::{Config, Server};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Minimal signal plumbing without a libc dependency: `signal(2)` is in
/// the C runtime every Rust binary already links. The handler does the
/// only async-signal-safe thing it can — set an atomic flag the serve
/// loop polls.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    type Handler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        // SAFETY: installing a handler that only performs an atomic
        // store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

pub fn run(args: &[String]) -> CmdResult {
    let mut socket = None;
    let mut workers = None;
    let mut max_queue = None;
    let mut watch = None;
    let mut metrics_addr = None;
    let mut trace_log = None;
    let mut extra = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                socket = Some(
                    it.next().cloned().ok_or_else(|| Failure::usage("--socket needs a path"))?,
                );
            }
            "--metrics-addr" => {
                metrics_addr = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| Failure::usage("--metrics-addr needs HOST:PORT"))?,
                );
            }
            "--trace-log" => {
                trace_log = Some(
                    it.next().cloned().ok_or_else(|| Failure::usage("--trace-log needs a path"))?,
                );
            }
            "--watch" => {
                watch = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| Failure::usage("--watch needs a directory"))?,
                );
            }
            "--workers" => {
                workers = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .ok_or_else(|| Failure::usage("--workers needs a number"))?,
                );
            }
            "--max-queue" => {
                max_queue = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .ok_or_else(|| Failure::usage("--max-queue needs a number"))?,
                );
            }
            "--grammar" => {
                extra.push(
                    it.next().cloned().ok_or_else(|| Failure::usage("--grammar needs a path"))?,
                );
            }
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let Some(socket) = socket else {
        return Err(Failure::usage(
            "usage: ipg serve --socket PATH [--workers N] [--max-queue N] [--watch DIR] \
             [--metrics-addr HOST:PORT] [--trace-log PATH] [--grammar PATH]...",
        ));
    };

    let registry = Registry::corpus();
    for path in &extra {
        let entry = registry.load_path(Path::new(path)).map_err(Failure::runtime)?;
        println!("loaded `{}` from {path}", entry.name);
    }

    let mut cfg = Config::default();
    if let Some(workers) = workers {
        cfg.workers = workers;
    }
    if let Some(bound) = max_queue {
        cfg.max_queue = bound;
    }
    // Chaos-mode escape hatch: IPG_FAULT_* env vars arm the deterministic
    // fault injector (used by the chaos-smoke CI lane; no-op otherwise).
    cfg.faults = FaultPlan::from_env().map(Arc::new);
    if cfg.faults.is_some() {
        println!("fault injection armed from IPG_FAULT_* environment");
    }
    // Structured tracing: the ring is shared between the server (which
    // emits events) and the writer thread (which flushes them to disk).
    let trace = trace_log.as_ref().map(|_| Arc::new(TraceLog::new(trace::DEFAULT_CAPACITY)));
    cfg.trace = trace.clone();

    sig::install();
    let server = Arc::new(Server::with_registry(cfg, registry));
    let writer = match (&trace, &trace_log) {
        (Some(log), Some(path)) => {
            let w = TraceWriter::spawn(Arc::clone(log), Path::new(path))
                .map_err(|e| Failure::runtime(format!("cannot open trace log {path}: {e}")))?;
            println!("tracing request spans to {path} (JSON lines, bounded ring)");
            Some(w)
        }
        _ => None,
    };
    if let Some(addr) = &metrics_addr {
        let bound = server
            .serve_metrics(addr)
            .map_err(|e| Failure::runtime(format!("cannot bind metrics on {addr}: {e}")))?;
        println!("exposing Prometheus metrics on http://{bound}/metrics");
    }
    if let Some(dir) = &watch {
        server
            .watch_dir(Path::new(dir), ipg_serve::watch::DEFAULT_POLL_INTERVAL)
            .map_err(|e| Failure::runtime(format!("cannot watch {dir}: {e}")))?;
        println!("hot reloading grammars from {dir} (invalid artifacts are quarantined)");
    }
    let front = server
        .serve_unix(&socket)
        .map_err(|e| Failure::runtime(format!("cannot bind {socket}: {e}")))?;
    println!(
        "serving {} grammars on {socket} with {} workers (SIGTERM/ctrl-c drains)",
        server.registry().entries().len(),
        server.workers()
    );
    // The acceptor runs on its own thread; poll for a shutdown signal.
    while !sig::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }

    // Graceful drain: stop accepting, refuse new work with GOAWAY, flush
    // queued jobs, seal open sessions, answer idle connections GOAWAY.
    println!("signal received; draining…");
    front.stop_accepting();
    server.drain();
    let stats = server.stats();
    if let Some(writer) = writer {
        let path = writer.path().display().to_string();
        let written = writer.finish();
        let dropped = trace.as_ref().map_or(0, |t| t.dropped());
        println!("trace: {written} events written to {path} ({dropped} dropped under pressure)");
    }
    // The drain summary *checks* the ledger, it does not just print it:
    // every admitted request must be classified (completed/shed/failed),
    // and the reload/quarantine counters must agree with themselves as a
    // snapshot (reconciles_reloads compares against the watcher-reported
    // totals — here the final snapshot is the ground truth the chaos
    // harness and CI greps assert against).
    let reconciled = stats.reconciles()
        && stats.reconciles_reloads(
            stats.reloads_ok,
            stats.reloads_rejected,
            stats.artifacts_quarantined,
        );
    if !reconciled {
        return Err(Failure::runtime(format!(
            "LEDGER MISMATCH after drain: {} submitted != {} completed + {} shed + {} failed \
             (reloads ok/rejected: {}/{}; artifacts quarantined: {})",
            stats.submitted,
            stats.completed,
            stats.shed,
            stats.failed,
            stats.reloads_ok,
            stats.reloads_rejected,
            stats.artifacts_quarantined
        )));
    }
    println!(
        "drained: {} submitted = {} completed + {} shed + {} failed [ledger reconciled] \
         (sessions sealed: {}; reloads ok/rejected: {}/{}; artifacts quarantined: {}); exiting 0",
        stats.submitted,
        stats.completed,
        stats.shed,
        stats.failed,
        stats.sessions_sealed,
        stats.reloads_ok,
        stats.reloads_rejected,
        stats.artifacts_quarantined
    );
    // Give connection threads a beat to deliver their GOAWAYs before the
    // socket file disappears with `front`.
    std::thread::sleep(Duration::from_millis(100));
    drop(front);
    Ok(())
}
