//! `ipg serve` — the batch/streaming parse service on a Unix socket,
//! with the corpus registry plus any extra grammars named on the command
//! line (all loaded through the same artifact pipeline).
//!
//! SIGTERM and ctrl-c (SIGINT) trigger a graceful drain instead of an
//! abrupt exit: the acceptor stops, queued one-shot jobs flush, open
//! sessions are sealed and their connections answered `GOAWAY`, and the
//! process exits 0 — so a rolling restart never tears a frame.

use crate::{CmdResult, Failure};
use ipg_formats::Registry;
use ipg_serve::fault::FaultPlan;
use ipg_serve::{Config, Server};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Minimal signal plumbing without a libc dependency: `signal(2)` is in
/// the C runtime every Rust binary already links. The handler does the
/// only async-signal-safe thing it can — set an atomic flag the serve
/// loop polls.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    type Handler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        // SAFETY: installing a handler that only performs an atomic
        // store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

pub fn run(args: &[String]) -> CmdResult {
    let mut socket = None;
    let mut workers = None;
    let mut max_queue = None;
    let mut watch = None;
    let mut extra = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                socket = Some(
                    it.next().cloned().ok_or_else(|| Failure::usage("--socket needs a path"))?,
                );
            }
            "--watch" => {
                watch = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| Failure::usage("--watch needs a directory"))?,
                );
            }
            "--workers" => {
                workers = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .ok_or_else(|| Failure::usage("--workers needs a number"))?,
                );
            }
            "--max-queue" => {
                max_queue = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .ok_or_else(|| Failure::usage("--max-queue needs a number"))?,
                );
            }
            "--grammar" => {
                extra.push(
                    it.next().cloned().ok_or_else(|| Failure::usage("--grammar needs a path"))?,
                );
            }
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let Some(socket) = socket else {
        return Err(Failure::usage(
            "usage: ipg serve --socket PATH [--workers N] [--max-queue N] [--watch DIR] \
             [--grammar PATH]...",
        ));
    };

    let registry = Registry::corpus();
    for path in &extra {
        let entry = registry.load_path(Path::new(path)).map_err(Failure::runtime)?;
        println!("loaded `{}` from {path}", entry.name);
    }

    let mut cfg = Config::default();
    if let Some(workers) = workers {
        cfg.workers = workers;
    }
    if let Some(bound) = max_queue {
        cfg.max_queue = bound;
    }
    // Chaos-mode escape hatch: IPG_FAULT_* env vars arm the deterministic
    // fault injector (used by the chaos-smoke CI lane; no-op otherwise).
    cfg.faults = FaultPlan::from_env().map(Arc::new);
    if cfg.faults.is_some() {
        println!("fault injection armed from IPG_FAULT_* environment");
    }

    sig::install();
    let server = Arc::new(Server::with_registry(cfg, registry));
    if let Some(dir) = &watch {
        server
            .watch_dir(Path::new(dir), ipg_serve::watch::DEFAULT_POLL_INTERVAL)
            .map_err(|e| Failure::runtime(format!("cannot watch {dir}: {e}")))?;
        println!("hot reloading grammars from {dir} (invalid artifacts are quarantined)");
    }
    let front = server
        .serve_unix(&socket)
        .map_err(|e| Failure::runtime(format!("cannot bind {socket}: {e}")))?;
    println!(
        "serving {} grammars on {socket} with {} workers (SIGTERM/ctrl-c drains)",
        server.registry().entries().len(),
        server.workers()
    );
    // The acceptor runs on its own thread; poll for a shutdown signal.
    while !sig::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }

    // Graceful drain: stop accepting, refuse new work with GOAWAY, flush
    // queued jobs, seal open sessions, answer idle connections GOAWAY.
    println!("signal received; draining…");
    front.stop_accepting();
    server.drain();
    let stats = server.stats();
    println!(
        "drained: {} submitted = {} completed + {} shed + {} failed \
         (sessions sealed: {}; reloads ok/rejected: {}/{}; artifacts quarantined: {}); exiting 0",
        stats.submitted,
        stats.completed,
        stats.shed,
        stats.failed,
        stats.sessions_sealed,
        stats.reloads_ok,
        stats.reloads_rejected,
        stats.artifacts_quarantined
    );
    // Give connection threads a beat to deliver their GOAWAYs before the
    // socket file disappears with `front`.
    std::thread::sleep(Duration::from_millis(100));
    drop(front);
    Ok(())
}
