//! `ipg parse` — parse a file (or stdin, streamed through a VM session)
//! with any registry grammar and dump the tree; `--extract` switches to
//! the typed extractor view for corpus formats.

use crate::{extract, resolve, CmdResult, Failure};
use ipg_core::check::Grammar;
use ipg_core::interp::vm::{Outcome, VmParser};
use ipg_core::tree::Tree;
use std::io::{Read, Write as _};
use std::rc::Rc;

const USAGE: &str = "usage: ipg parse <grammar> [FILE | -] [--depth N] [--extract [DIR]]";

pub fn run(args: &[String]) -> CmdResult {
    let mut grammar_arg = None;
    let mut input_arg = None;
    let mut depth = 4usize;
    let mut extract_to: Option<Option<String>> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--depth" => {
                depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| Failure::usage("--depth needs a number"))?;
            }
            "--extract" => {
                // An optional directory operand may follow (zip extraction).
                let dir = it.peek().filter(|v| !v.starts_with('-')).map(|v| (*v).clone());
                if dir.is_some() {
                    it.next();
                }
                extract_to = Some(dir);
            }
            other if grammar_arg.is_none() => grammar_arg = Some(other.to_owned()),
            other if input_arg.is_none() => input_arg = Some(other.to_owned()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let Some(grammar_arg) = grammar_arg else {
        return Err(Failure::usage(USAGE));
    };
    let entry = resolve::entry(&grammar_arg)?;

    // The typed lane: corpus extractors over a fully materialized input.
    if let Some(dir) = extract_to {
        let input = read_input(&entry.name, input_arg.as_deref())?;
        return extract::dump(&entry.name, &input, dir.as_deref());
    }

    // The tree lane: one-shot for files, a chunked streaming session for
    // stdin (exactly the parse a server runs as bytes arrive off the wire).
    let (tree, suspends, bytes, source) = match input_arg.as_deref() {
        Some("-") => {
            let (tree, suspends, bytes) = parse_stdin(entry.vm())?;
            (tree, suspends, bytes, "stdin (streamed)".to_owned())
        }
        Some(path) => {
            let input = std::fs::read(path)
                .map_err(|e| Failure::runtime(format!("cannot read {path}: {e}")))?;
            (one_shot(entry.vm(), &input)?, 0, input.len(), path.to_owned())
        }
        None => {
            let input = resolve::default_input(&entry.name).ok_or_else(|| {
                Failure::usage(format!(
                    "`{}` has no self-generated sample; pass FILE or -",
                    entry.name
                ))
            })?;
            (
                one_shot(entry.vm(), &input)?,
                0,
                input.len(),
                "self-generated corpus input".to_owned(),
            )
        }
    };

    // Write-based so a downstream `| head` closing the pipe ends the
    // dump quietly instead of panicking on EPIPE.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let dump = writeln!(
        out,
        "{}: parsed {bytes} bytes from {source} ({}, {suspends} suspensions)",
        entry.name,
        entry.vm().anchor()
    )
    .and_then(|()| print_tree(&mut out, &tree, entry.grammar(), 0, depth))
    .and_then(|()| out.flush());
    match dump {
        Err(e) if e.kind() != std::io::ErrorKind::BrokenPipe => {
            Err(Failure::runtime(format!("cannot write output: {e}")))
        }
        _ => Ok(()),
    }
}

/// Materializes the input for the typed-extractor lane (which needs the
/// full byte slice): file, buffered stdin, or the self-generated sample.
fn read_input(name: &str, input_arg: Option<&str>) -> Result<Vec<u8>, Failure> {
    match input_arg {
        Some("-") => {
            let mut buf = Vec::new();
            std::io::stdin()
                .lock()
                .read_to_end(&mut buf)
                .map_err(|e| Failure::runtime(format!("cannot read stdin: {e}")))?;
            Ok(buf)
        }
        Some(path) => {
            std::fs::read(path).map_err(|e| Failure::runtime(format!("cannot read {path}: {e}")))
        }
        None => resolve::default_input(name).ok_or_else(|| {
            Failure::usage(format!("`{name}` has no self-generated sample; pass FILE or -"))
        }),
    }
}

fn one_shot(vm: &VmParser<'_>, input: &[u8]) -> Result<Rc<Tree>, Failure> {
    match vm.parse(input) {
        Ok(tree) => Ok(tree.root().to_tree()),
        Err(e) => Err(Failure::runtime(format!("parse failed: {e}"))),
    }
}

/// Streams stdin through a [`ipg_core::interp::vm::Session`] in 4 KiB
/// chunks, reporting the suspension count the parse accumulated.
fn parse_stdin(vm: &VmParser<'_>) -> Result<(Rc<Tree>, u64, usize), Failure> {
    let mut session = vm.streaming();
    let mut stdin = std::io::stdin().lock();
    let mut buf = [0u8; 4096];
    loop {
        let n = stdin.read(&mut buf).map_err(|e| Failure::runtime(format!("read stdin: {e}")))?;
        if n == 0 {
            break;
        }
        if let Outcome::Error(e) = session.feed(&buf[..n]) {
            return Err(Failure::runtime(format!("parse failed mid-stream: {e}")));
        }
    }
    let buffered = session.buffered();
    let suspends = session.suspends();
    match session.finish() {
        Outcome::Done(tree) => Ok((tree.root().to_tree(), suspends, buffered)),
        Outcome::Error(e) => Err(Failure::runtime(format!("parse failed: {e}"))),
        Outcome::NeedInput { .. } => unreachable!("finish never needs input"),
    }
}

/// Depth- and width-limited tree dump: nonterminals with their user
/// attributes and spans, arrays summarized, leaves as byte spans.
fn print_tree(
    out: &mut impl std::io::Write,
    tree: &Tree,
    g: &Grammar,
    indent: usize,
    max_depth: usize,
) -> std::io::Result<()> {
    const MAX_CHILDREN: usize = 8;
    let pad = "  ".repeat(indent);
    if indent >= max_depth {
        return writeln!(out, "{pad}…");
    }
    match tree {
        Tree::Node(n) => {
            let attrs: Vec<String> = n
                .env
                .iter()
                .filter(|(sym, _)| g.attr_name(*sym) != "EOI")
                .map(|(sym, v)| format!("{}={v}", g.attr_name(sym)))
                .collect();
            writeln!(
                out,
                "{pad}{} [{}..{}] {{{}}}",
                n.name,
                n.base,
                n.base + n.input_len,
                attrs.join(", ")
            )?;
            for child in n.children.iter().take(MAX_CHILDREN) {
                print_tree(out, child, g, indent + 1, max_depth)?;
            }
            if n.children.len() > MAX_CHILDREN {
                writeln!(out, "{pad}  … {} more children", n.children.len() - MAX_CHILDREN)?;
            }
        }
        Tree::Array(a) => {
            writeln!(out, "{pad}{}[] ({} elements)", a.name, a.elems.len())?;
            for elem in a.elems.iter().take(MAX_CHILDREN) {
                print_tree(out, elem, g, indent + 1, max_depth)?;
            }
            if a.elems.len() > MAX_CHILDREN {
                writeln!(out, "{pad}  … {} more elements", a.elems.len() - MAX_CHILDREN)?;
            }
        }
        Tree::Leaf(l) => {
            writeln!(out, "{pad}\"…\" [{}..{}]", l.start, l.end)?;
        }
        Tree::Blackbox(b) => {
            writeln!(
                out,
                "{pad}{} (blackbox, {} bytes decoded) [{}..{}]",
                b.name,
                b.data.len(),
                b.base,
                b.base + b.input_len
            )?;
        }
    }
    Ok(())
}
