//! `ipg compile` — compile a grammar through the `.ipgc` artifact cache,
//! optionally writing a standalone artifact (signed with `--sign`) and
//! reporting the cache outcome (the `--cache-stats` flag CI uses to
//! assert warm-cache hits).

use crate::{resolve, CmdResult, Failure};
use ipg_core::ipgc::{
    artifact_key_from_env, encode, encode_signed, Cache, CacheOutcome, CachedProgram, MissReason,
};

pub fn run(args: &[String]) -> CmdResult {
    let mut grammar_arg = None;
    let mut out = None;
    let mut cache_stats = false;
    let mut sign = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--out" => {
                out = Some(
                    it.next().cloned().ok_or_else(|| Failure::usage("-o needs an output path"))?,
                );
            }
            "--cache-stats" => cache_stats = true,
            "--sign" => sign = true,
            other if grammar_arg.is_none() => grammar_arg = Some(other.to_owned()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let Some(grammar_arg) = grammar_arg else {
        return Err(Failure::usage(
            "usage: ipg compile <grammar> [-o OUT.ipgc] [--sign] [--cache-stats]",
        ));
    };
    let key = artifact_key_from_env();
    if sign && key.is_none() {
        return Err(Failure::usage("--sign needs IPG_ARTIFACT_KEY in the environment"));
    }
    let (name, spec, blackboxes) = resolve::source(&grammar_arg)?;

    let cache = Cache::from_env();
    let (cached, outcome) = match &cache {
        Some(cache) => {
            let (cached, outcome) =
                cache.load_or_compile(&name, &spec, blackboxes).map_err(Failure::runtime)?;
            (cached, Some(outcome))
        }
        None => (CachedProgram::compile(&spec, blackboxes).map_err(Failure::runtime)?, None),
    };

    println!(
        "{name}: compiled (source hash {:016x}, anchor {}, start `{}`)",
        cached.source_hash,
        cached.anchor,
        cached.grammar.start_nt_name()
    );
    if cache_stats {
        match (&cache, outcome) {
            (Some(cache), Some(outcome)) => {
                println!("cache dir: {}", cache.dir().display());
                println!("artifact: {}", cache.path_for(&name, cached.source_hash).display());
                println!(
                    "cache: {}",
                    match outcome {
                        CacheOutcome::Hit => "hit".to_owned(),
                        CacheOutcome::Miss(MissReason::Absent) => "miss (absent)".to_owned(),
                        CacheOutcome::Miss(MissReason::Invalid(why)) =>
                            format!("miss (invalid: {why})"),
                        CacheOutcome::Miss(MissReason::Quarantined(why)) =>
                            format!("miss (quarantined: {why})"),
                    }
                );
            }
            _ => println!("cache: disabled (IPG_NO_CACHE)"),
        }
    }

    if let Some(out) = out {
        let bytes = match (sign, &key) {
            (true, Some(key)) => encode_signed(
                &spec,
                &cached.grammar,
                &cached.program,
                cached.anchor,
                cached.hints,
                key,
            ),
            _ => encode(&spec, &cached.grammar, &cached.program, cached.anchor, cached.hints),
        };
        std::fs::write(&out, &bytes)
            .map_err(|e| Failure::runtime(format!("cannot write {out}: {e}")))?;
        println!("wrote {out} ({} bytes{})", bytes.len(), if sign { ", signed" } else { "" });
    }
    Ok(())
}
