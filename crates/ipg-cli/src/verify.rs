//! `ipg verify` — audit a `.ipgc` artifact end to end without loading it
//! into a registry: envelope and provenance trailer, structural payload
//! decode, and cross-validation against the grammar reconstructed from
//! the embedded source.
//!
//! The exit code is the interface — deploy scripts and CI gates branch
//! on it, so each failure stage has a stable number:
//!
//! | code | meaning                                         |
//! |------|-------------------------------------------------|
//! | 0    | valid                                           |
//! | 2    | usage error                                     |
//! | 3    | structural (bad magic, truncation, checksum)    |
//! | 4    | version skew (artifact outside supported range) |
//! | 5    | provenance (digest/MAC failure, unsigned+key)   |
//! | 6    | artifact/grammar mismatch                       |
//!
//! With `IPG_ARTIFACT_KEY` set the provenance policy is strict, exactly
//! as at load time: unsigned artifacts fail with code 5.

use crate::{CmdResult, Failure};
use ipg_core::ipgc::{artifact_key_from_env, verify, VerifyError};
use ipg_formats::corpus_descriptors;
use std::path::Path;

/// Maps each verification stage to its documented exit code.
fn exit_code(err: &VerifyError) -> u8 {
    match err {
        VerifyError::Structural(_) => 3,
        VerifyError::VersionSkew { .. } => 4,
        VerifyError::Provenance(_) => 5,
        VerifyError::Mismatch(_) => 6,
    }
}

/// Blackbox bindings for reconstruction: cache artifacts are named
/// `<grammar>-<hash>.ipgc`, so a corpus grammar's bindings can be
/// recovered from the file stem. Unknown stems get none (correct for
/// user grammars, which cannot name blackboxes we don't ship).
fn blackboxes_for(path: &Path) -> Vec<ipg_core::blackbox::Blackbox> {
    let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
        return Vec::new();
    };
    corpus_descriptors()
        .into_iter()
        .find(|d| stem == d.name || stem.strip_prefix(d.name).is_some_and(|r| r.starts_with('-')))
        .map_or_else(Vec::new, |d| (d.blackboxes)())
}

pub fn run(args: &[String]) -> CmdResult {
    let [artifact_arg] = args else {
        return Err(Failure::usage("usage: ipg verify <artifact.ipgc>"));
    };
    let path = Path::new(artifact_arg);
    let bytes = std::fs::read(path)
        .map_err(|e| Failure::runtime(format!("cannot read {artifact_arg}: {e}")))?;
    let key = artifact_key_from_env();
    match verify(&bytes, key.as_deref(), blackboxes_for(path)) {
        Ok(report) => {
            let provenance = match (report.signed, report.mac_checked) {
                (true, true) => "signed, MAC verified",
                (true, false) => "signed, MAC not checked (no key configured)",
                (false, _) => "unsigned, digest verified",
            };
            println!(
                "{artifact_arg}: valid (v{}, source hash {:016x}, {} payload bytes, \
                 {} rules, {} symbols; {provenance})",
                report.version,
                report.source_hash,
                report.payload_len,
                report.rules,
                report.symbols
            );
            Ok(())
        }
        Err(e) => Err(Failure::Coded(exit_code(&e), format!("{artifact_arg}: {e}"))),
    }
}
