//! `ipg gen` — grammar-driven input generation (the conformance
//! harness's generator as a standalone tool). Every emitted input is
//! VM-verified before it is reported or written.

use crate::{resolve, CmdResult, Failure};
use ipg_gen::Generator;

pub fn run(args: &[String]) -> CmdResult {
    let mut grammar_arg = None;
    let mut seed = 0u64;
    let mut count = 1u64;
    let mut out_dir = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| Failure::usage("--seed needs a number"))?;
            }
            "--count" => {
                count = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| Failure::usage("--count needs a number"))?;
            }
            "--out" => {
                out_dir = Some(
                    it.next().cloned().ok_or_else(|| Failure::usage("--out needs a directory"))?,
                );
            }
            other if grammar_arg.is_none() => grammar_arg = Some(other.to_owned()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let Some(grammar_arg) = grammar_arg else {
        return Err(Failure::usage("usage: ipg gen <grammar> [--seed N] [--count N] [--out DIR]"));
    };
    let entry = resolve::entry(&grammar_arg)?;
    let generator = Generator::new(entry.grammar());

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| Failure::runtime(format!("cannot create {dir}: {e}")))?;
    }
    let mut failures = 0u64;
    for s in seed..seed + count {
        match generator.generate_valid(s) {
            Some(bytes) => {
                entry.vm().parse(&bytes).map_err(|e| {
                    Failure::runtime(format!("seed {s}: generated input rejected by the VM: {e}"))
                })?;
                match &out_dir {
                    Some(dir) => {
                        let path = format!("{dir}/seed_{s}.bin");
                        std::fs::write(&path, &bytes)
                            .map_err(|e| Failure::runtime(format!("cannot write {path}: {e}")))?;
                        println!("seed {s}: wrote {path} ({} bytes)", bytes.len());
                    }
                    None => println!("seed {s}: {} bytes (VM-verified)", bytes.len()),
                }
            }
            None => {
                eprintln!("seed {s}: generation failed");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(Failure::runtime(format!("{failures}/{count} seeds failed to generate")));
    }
    Ok(())
}
