//! `ipg` — the unified command-line driver for the IPG toolchain.
//!
//! One binary fronts every workflow the repository's former examples
//! covered, routed through the shared [`ipg_formats::Registry`] so
//! built-in corpus grammars, user `.ipg` sources, and persisted `.ipgc`
//! artifacts are interchangeable everywhere a `<grammar>` is accepted:
//!
//! ```text
//! ipg check <spec.ipg> [--emit-rust OUT.rs]     # frontend + §5 termination
//! ipg compile <grammar> [-o OUT.ipgc] [--sign] [--cache-stats]
//! ipg verify <artifact.ipgc>                    # staged artifact audit
//! ipg disasm <grammar>                          # bytecode listing
//! ipg parse <grammar> [FILE | -] [--depth N] [--extract [DIR]]
//! ipg profile <grammar> [FILE | -] [--top N] [--folded]
//! ipg gen <grammar> [--seed N] [--count N] [--out DIR]
//! ipg serve --socket PATH [--workers N] [--watch DIR] [--metrics-addr HOST:PORT]
//!           [--trace-log PATH] [--grammar PATH]...
//! ipg cache gc [--max-bytes N] [--max-age-secs N]
//! ipg bench-info                                # corpus/artifact summary
//! ```
//!
//! `<grammar>` is a corpus name (`ipg bench-info` lists them), a path to
//! an `.ipg` source, or a path to an `.ipgc` artifact. Compiled programs
//! are persisted to and reloaded from the artifact cache (see
//! [`ipg_core::ipgc`]); `IPG_CACHE_DIR` overrides the location,
//! `IPG_NO_CACHE` disables it, and `IPG_ARTIFACT_KEY` arms artifact
//! signing and provenance enforcement.

mod bench_info;
mod cache;
mod check;
mod compile;
mod disasm;
mod extract;
mod gen;
mod parse;
mod profile;
mod resolve;
mod serve;
mod verify;

use std::process::ExitCode;

const USAGE: &str = "\
usage: ipg <command> [args]

commands:
  check <spec.ipg> [--emit-rust OUT.rs]
      Parse a grammar, run attribute checking, the termination checker,
      and the streamability analysis; optionally emit a Rust parser.
  compile <grammar> [-o OUT.ipgc] [--sign] [--cache-stats]
      Compile through the .ipgc artifact cache; -o also writes a
      standalone artifact (--sign adds the keyed provenance MAC, needs
      IPG_ARTIFACT_KEY), --cache-stats reports the cache outcome.
  verify <artifact.ipgc>
      Audit an artifact end to end. Exit codes are stable: 0 valid,
      3 structural, 4 version skew, 5 provenance, 6 grammar mismatch.
  disasm <grammar>
      Print the compiled bytecode listing.
  parse <grammar> [FILE | -] [--depth N] [--extract [DIR]]
      Parse a file (- streams stdin through a session) and dump the tree;
      --extract prints the typed extractor view for corpus formats
      (for zip, an extraction directory may follow).
  profile <grammar> [FILE | -] [--top N] [--folded]
      Run one instrumented parse and report per-rule time attribution
      (calls, memo hit/miss, self time); --folded emits flamegraph-ready
      stacks keyed by the grammar's static call graph.
  gen <grammar> [--seed N] [--count N] [--out DIR]
      Generate grammar-valid inputs (VM-verified); --out writes them.
  serve --socket PATH [--workers N] [--watch DIR] [--metrics-addr HOST:PORT]
        [--trace-log PATH] [--grammar PATH]...
      Serve the framed parse protocol on a Unix socket; --watch hot
      reloads grammars from DIR, quarantining invalid artifacts;
      --metrics-addr exposes a Prometheus scrape endpoint over HTTP;
      --trace-log streams per-request span events as JSON lines.
  cache gc [--max-bytes N] [--max-age-secs N]
      Garbage-collect the artifact cache: junk and superseded artifacts
      always go; bounds evict stale/oldest ones. Reports bytes reclaimed.
  bench-info
      Summarize the corpus registry and its artifact cache state.

<grammar> is a corpus name, a .ipg source path, or a .ipgc artifact path.
Environment: IPG_CACHE_DIR sets the artifact cache, IPG_NO_CACHE disables
it, IPG_ARTIFACT_KEY signs written artifacts and enforces provenance.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "check" => check::run(rest),
        "compile" => compile::run(rest),
        "verify" => verify::run(rest),
        "disasm" => disasm::run(rest),
        "parse" => parse::run(rest),
        "profile" => profile::run(rest),
        "gen" => gen::run(rest),
        "serve" => serve::run(rest),
        "cache" => cache::run(rest),
        "bench-info" => bench_info::run(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("ipg: unknown command `{other}`\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(Failure::Usage(msg)) => {
            eprintln!("ipg {cmd}: {msg}");
            ExitCode::from(2)
        }
        Err(Failure::Runtime(msg)) => {
            eprintln!("ipg {cmd}: {msg}");
            ExitCode::FAILURE
        }
        Err(Failure::Coded(code, msg)) => {
            eprintln!("ipg {cmd}: {msg}");
            ExitCode::from(code)
        }
    }
}

/// A command failure: usage errors exit 2, everything else exits 1 —
/// except commands with documented per-failure exit codes (`ipg verify`),
/// which carry theirs explicitly.
pub enum Failure {
    /// Bad invocation (wrong arguments); reported with exit code 2.
    Usage(String),
    /// The command ran and failed; reported with exit code 1.
    Runtime(String),
    /// The command ran and failed with a command-specific, stable exit
    /// code (scripts branch on these; see the command's usage text).
    Coded(u8, String),
}

impl Failure {
    fn usage(msg: impl Into<String>) -> Failure {
        Failure::Usage(msg.into())
    }

    fn runtime(msg: impl std::fmt::Display) -> Failure {
        Failure::Runtime(msg.to_string())
    }
}

type CmdResult = Result<(), Failure>;
