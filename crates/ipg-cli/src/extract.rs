//! `ipg parse --extract` — the typed extractor views the standalone
//! format examples used to provide (`unzip`, `dns_dump`, `elf_inspect`,
//! `gif_info`, `pdf_info`), now one flag on the unified driver.

use crate::{CmdResult, Failure};
use ipg_formats::elf::SectionKind;
use ipg_formats::gif::GifBlock;

/// Dumps the typed extractor view of `input` for the corpus format
/// `name`; `out_dir` (zip only) extracts file contents to a directory.
pub fn dump(name: &str, input: &[u8], out_dir: Option<&str>) -> CmdResult {
    if out_dir.is_some() && !matches!(name, "zip" | "zip_inflate") {
        return Err(Failure::usage("--extract DIR is only meaningful for zip archives"));
    }
    match name {
        "zip" | "zip_inflate" => zip(input, out_dir),
        "dns" => dns(input),
        "elf" => elf(input),
        "gif" => gif(input),
        "pdf" => pdf(input),
        "png" => png(input),
        "pe" => pe(input),
        "ipv4udp" => ipv4udp(input),
        other => Err(Failure::usage(format!(
            "`{other}` has no typed extractor; --extract works on corpus grammars"
        ))),
    }
}

/// `unzip -l` (and with `out_dir`, extraction) over the ZIP grammar with
/// the DEFLATE blackbox — the §3.4/§7 zlib-as-blackbox pattern.
fn zip(bytes: &[u8], out_dir: Option<&str>) -> CmdResult {
    let archive = ipg_formats::zip::parse(bytes).map_err(Failure::runtime)?;
    println!("{:>10} {:>10} {:>10}  name", "method", "packed", "size");
    for e in &archive.entries {
        println!(
            "{:>10} {:>10} {:>10}  {}",
            if e.method == 8 { "deflate" } else { "stored" },
            e.compressed_size,
            e.uncompressed_size,
            e.name
        );
    }

    // Then contents, through the blackbox grammar (CRC-checked).
    let files = ipg_formats::zip::extract(bytes).map_err(Failure::runtime)?;
    match out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(Failure::runtime)?;
            for (name, data) in &files {
                let path = std::path::Path::new(dir).join(name);
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent).map_err(Failure::runtime)?;
                }
                std::fs::write(&path, data).map_err(Failure::runtime)?;
                println!("extracted {} ({} bytes)", path.display(), data.len());
            }
        }
        None => {
            for (name, data) in &files {
                println!(
                    "{}: {} bytes, starts {:?}",
                    name,
                    data.len(),
                    String::from_utf8_lossy(&data[..data.len().min(24)])
                );
            }
        }
    }
    Ok(())
}

/// DNS message dump — counted sections (recursive local rules) and
/// compression-pointer handling.
fn dns(bytes: &[u8]) -> CmdResult {
    let msg = ipg_formats::dns::parse(bytes).map_err(Failure::runtime)?;
    println!("id {:#06x}, flags {:#06x}", msg.id, msg.flags);
    println!("questions:");
    for q in &msg.questions {
        println!("  {} (type {}, class {})", q.name, q.qtype, q.qclass);
    }
    println!("answers:");
    for a in &msg.answers {
        let rdata = &bytes[a.rdata.0..a.rdata.1];
        let value = if a.rtype == 1 && rdata.len() == 4 {
            format!("{}.{}.{}.{}", rdata[0], rdata[1], rdata[2], rdata[3])
        } else {
            format!("{rdata:02x?}")
        };
        println!("  {} → {} (ttl {})", a.name, value, a.ttl);
    }
    Ok(())
}

/// `readelf`-style dump over the ELF grammar (§4.1).
fn elf(bytes: &[u8]) -> CmdResult {
    let elf = ipg_formats::elf::parse(bytes).map_err(Failure::runtime)?;
    println!("Section header table at {:#x}, {} entries", elf.shoff, elf.shnum);
    println!("{:<4} {:<20} {:>6} {:>10} {:>8}", "idx", "name", "type", "offset", "size");
    for (i, s) in elf.sections.iter().enumerate() {
        println!(
            "{:<4} {:<20} {:>6} {:>10} {:>8}",
            i,
            s.name.as_deref().unwrap_or("<none>"),
            s.sh_type,
            s.offset,
            s.size
        );
    }
    for s in &elf.sections {
        match &s.kind {
            SectionKind::Symbols(symbols) => {
                println!("\nSymbol table `{}`:", s.name.as_deref().unwrap_or("?"));
                for sym in symbols {
                    println!(
                        "  {:#010x} {:>5} {}",
                        sym.value,
                        sym.size,
                        sym.name.as_deref().unwrap_or("<noname>")
                    );
                }
            }
            SectionKind::Dynamic(entries) => {
                println!("\nDynamic section `{}`:", s.name.as_deref().unwrap_or("?"));
                for (tag, value) in entries {
                    println!("  tag {tag:#06x} value {value:#x}");
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// GIF metadata dump over the GIF grammar (§4.2).
fn gif(bytes: &[u8]) -> CmdResult {
    let gif = ipg_formats::gif::parse(bytes).map_err(Failure::runtime)?;
    println!("logical screen: {}x{}", gif.width, gif.height);
    println!(
        "global color table: {}",
        if gif.has_gct { format!("{} bytes", gif.gct_len) } else { "none".into() }
    );
    println!("{} top-level blocks, {} frames:", gif.blocks.len(), gif.n_frames());
    for (i, block) in gif.blocks.iter().enumerate() {
        match block {
            GifBlock::Extension { label, data_len } => {
                let kind = match label {
                    0xf9 => "graphic control",
                    0xfe => "comment",
                    0x01 => "plain text",
                    0xff => "application",
                    _ => "unknown",
                };
                println!("  [{i}] extension {kind} (label {label:#04x}, {data_len} data bytes)");
            }
            GifBlock::Image { width, height, data_len } => {
                println!("  [{i}] image {width}x{height}, {data_len} bytes of LZW data");
            }
        }
    }
    Ok(())
}

/// PDF-subset dump (§4.3): backward `startxref` parsing and xref-driven
/// random access.
fn pdf(bytes: &[u8]) -> CmdResult {
    let doc = ipg_formats::pdf::parse(bytes).map_err(Failure::runtime)?;
    println!("xref table at offset {} (found by scanning backward from %%EOF)", doc.xref_offset);
    println!(
        "{} xref entries (incl. the free entry), {} objects:",
        doc.xref_count,
        doc.objects.len()
    );
    for obj in &doc.objects {
        println!(
            "  obj {:>3} at {:>6}: /Length {:>5}, stream at {}..{}",
            obj.id, obj.offset, obj.stream_len, obj.stream.0, obj.stream.1
        );
    }
    Ok(())
}

/// PNG chunk listing (`star` repetition over length-prefixed chunks).
fn png(bytes: &[u8]) -> CmdResult {
    let img = ipg_formats::png::parse(bytes).map_err(Failure::runtime)?;
    println!("{}x{}, bit depth {}", img.width, img.height, img.bit_depth);
    println!("{} chunks:", img.chunks.len());
    for (name, (start, end)) in &img.chunks {
        println!("  {name} data at {start}..{end} ({} bytes)", end - start);
    }
    Ok(())
}

/// PE header/section dump (directory random access, like ELF).
fn pe(bytes: &[u8]) -> CmdResult {
    let pe = ipg_formats::pe::parse(bytes).map_err(Failure::runtime)?;
    println!(
        "PE header at {:#x}, machine {:#06x}, optional-header magic {:#06x}",
        pe.pe_offset, pe.machine, pe.opt_magic
    );
    println!("{} sections (virtual size, raw size, raw offset):", pe.sections.len());
    for (i, (vsize, rsize, roff)) in pe.sections.iter().enumerate() {
        println!("  [{i}] vsize {vsize:>8} rsize {rsize:>8} at {roff:#x}");
    }
    Ok(())
}

/// IPv4+UDP header dump (the predicate-guarded grammar).
fn ipv4udp(bytes: &[u8]) -> CmdResult {
    let pkt = ipg_formats::ipv4udp::parse(bytes).map_err(Failure::runtime)?;
    println!(
        "IPv4 {}.{}.{}.{} → {}.{}.{}.{} (ihl {}, total {} bytes)",
        pkt.src[0],
        pkt.src[1],
        pkt.src[2],
        pkt.src[3],
        pkt.dst[0],
        pkt.dst[1],
        pkt.dst[2],
        pkt.dst[3],
        pkt.ihl,
        pkt.total_len
    );
    println!(
        "UDP {} → {} ({} bytes, payload at {}..{})",
        pkt.sport, pkt.dport, pkt.udp_len, pkt.payload.0, pkt.payload.1
    );
    Ok(())
}
