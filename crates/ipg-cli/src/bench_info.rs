//! `ipg bench-info` — the corpus registry and artifact-cache summary:
//! per grammar, how its program was obtained this process (cache hit,
//! miss, or in-memory), its streaming classification, and the sizes the
//! bench suite's workloads are built around.

use crate::{CmdResult, Failure};
use ipg_core::ipgc::{Cache, MissReason};
use ipg_formats::{Origin, Registry};

pub fn run(args: &[String]) -> CmdResult {
    if !args.is_empty() {
        return Err(Failure::usage("usage: ipg bench-info"));
    }
    match Cache::from_env() {
        Some(cache) => println!("artifact cache: {}", cache.dir().display()),
        None => println!("artifact cache: disabled (IPG_NO_CACHE)"),
    }
    let registry = Registry::corpus();
    println!("{:<12} {:>6} {:>9} {:<20} anchor", "grammar", "rules", "listing", "origin");
    for e in registry.entries() {
        let listing = e.vm().program().disassemble(e.grammar());
        let origin = match &e.origin {
            Origin::CacheHit => "cache hit".to_owned(),
            Origin::CacheMiss(MissReason::Absent) => "cache miss (absent)".to_owned(),
            Origin::CacheMiss(MissReason::Invalid(why)) => format!("cache miss (invalid: {why})"),
            Origin::CacheMiss(MissReason::Quarantined(why)) => {
                format!("cache miss (quarantined: {why})")
            }
            Origin::Memory => "memory".to_owned(),
            Origin::ArtifactFile => "artifact file".to_owned(),
        };
        println!(
            "{:<12} {:>6} {:>8}L {:<20} {}",
            e.name,
            e.grammar().rules().len(),
            listing.lines().count(),
            origin,
            e.vm().anchor()
        );
    }
    Ok(())
}
