//! `ipg disasm` — print the compiled bytecode listing for a grammar (the
//! same [`ipg_core::bytecode::Program::disassemble`] output the snapshot
//! suite pins, so a listing loaded from an `.ipgc` artifact is
//! byte-identical to one compiled from source).

use crate::{resolve, CmdResult};

pub fn run(args: &[String]) -> CmdResult {
    let [grammar_arg] = args else {
        return Err(crate::Failure::usage("usage: ipg disasm <grammar>"));
    };
    let entry = resolve::entry(grammar_arg)?;
    print!("{}", entry.vm().program().disassemble(entry.grammar()));
    Ok(())
}
