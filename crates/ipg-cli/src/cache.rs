//! `ipg cache` — artifact-cache maintenance. `gc` removes junk
//! (temporaries and quarantined `*.bad` files), superseded artifacts
//! (older cache keys for the same grammar name), and — under `--max-age-secs`
//! / `--max-bytes` bounds — stale or excess current artifacts, oldest
//! first. The newest artifact per grammar name survives an unbounded
//! pass, so a warmed cache stays warm.

use crate::{CmdResult, Failure};
use ipg_core::ipgc::Cache;
use std::time::Duration;

pub fn run(args: &[String]) -> CmdResult {
    let usage = "usage: ipg cache gc [--max-bytes N] [--max-age-secs N]";
    let Some((sub, rest)) = args.split_first() else {
        return Err(Failure::usage(usage));
    };
    if sub != "gc" {
        return Err(Failure::usage(format!("unknown cache subcommand `{sub}`\n{usage}")));
    }
    let mut max_bytes = None;
    let mut max_age = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-bytes" => {
                max_bytes = Some(
                    it.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| Failure::usage("--max-bytes needs a number"))?,
                );
            }
            "--max-age-secs" => {
                max_age = Some(Duration::from_secs(
                    it.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| Failure::usage("--max-age-secs needs a number"))?,
                ));
            }
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let Some(cache) = Cache::from_env() else {
        return Err(Failure::runtime("the artifact cache is disabled (IPG_NO_CACHE)"));
    };
    let report = cache
        .gc(max_bytes, max_age)
        .map_err(|e| Failure::runtime(format!("gc of {} failed: {e}", cache.dir().display())))?;
    println!(
        "{}: scanned {}, removed {}, kept {}, reclaimed {} bytes",
        cache.dir().display(),
        report.scanned,
        report.removed,
        report.kept,
        report.bytes_reclaimed
    );
    Ok(())
}
