//! Resolving a `<grammar>` argument to a [`Registry`] entry.
//!
//! Every subcommand accepts the same three spellings — a corpus name, an
//! `.ipg` source path, or an `.ipgc` artifact path — and all three land
//! in the one shared registry, so the rest of the CLI never distinguishes
//! built-in from user-supplied grammars.

use crate::Failure;
use ipg_formats::{corpus_descriptors, Entry, Registry};
use std::path::Path;

/// Resolves `arg` to a registry entry: a known corpus name is served from
/// the shared per-process corpus (artifact-cache backed); anything that
/// looks like a path is loaded through [`Registry::load_path`].
pub fn entry(arg: &str) -> Result<Entry, Failure> {
    let corpus = Registry::corpus();
    if let Some(e) = corpus.get(arg) {
        return Ok(e);
    }
    let path = Path::new(arg);
    if path.exists() {
        return corpus.load_path(path).map_err(Failure::runtime);
    }
    Err(Failure::usage(format!(
        "`{arg}` is neither a corpus grammar nor an existing file\ncorpus grammars: {}",
        corpus_names().join(", ")
    )))
}

/// The corpus grammar names, in registry order.
pub fn corpus_names() -> Vec<&'static str> {
    corpus_descriptors().iter().map(|d| d.name).collect()
}

/// The `.ipg` source and blackbox bindings behind `arg`: a corpus name
/// maps to its embedded descriptor, a path is read from disk (no
/// blackboxes — user sources cannot name ones we don't ship).
pub fn source(arg: &str) -> Result<(String, String, Vec<ipg_core::blackbox::Blackbox>), Failure> {
    if let Some(d) = corpus_descriptors().into_iter().find(|d| d.name == arg) {
        return Ok((d.name.to_owned(), d.spec.to_owned(), (d.blackboxes)()));
    }
    let path = Path::new(arg);
    if path.extension().is_some_and(|e| e == "ipgc") {
        return Err(Failure::usage(format!(
            "`{arg}` is already a compiled artifact; pass a corpus name or a .ipg source"
        )));
    }
    if path.exists() {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| Failure::usage(format!("cannot derive a grammar name from `{arg}`")))?
            .to_owned();
        let spec = std::fs::read_to_string(path)
            .map_err(|e| Failure::runtime(format!("cannot read {arg}: {e}")))?;
        return Ok((name, spec, Vec::new()));
    }
    Err(Failure::usage(format!(
        "`{arg}` is neither a corpus grammar nor an existing file\ncorpus grammars: {}",
        corpus_names().join(", ")
    )))
}

/// A small self-generated corpus input for the named format, so `ipg
/// parse <corpus-name>` runs standalone (mirrors the test suites'
/// default-input lane; `zip_inflate` shares the ZIP corpus).
pub fn default_input(name: &str) -> Option<Vec<u8>> {
    Some(match name {
        "zip" | "zip_inflate" => ipg_corpus::zip::generate(&Default::default()).bytes,
        "dns" => ipg_corpus::dns::generate(&Default::default()).bytes,
        "png" => ipg_corpus::png::generate(&Default::default()).bytes,
        "gif" => ipg_corpus::gif::generate(&Default::default()).bytes,
        "elf" => ipg_corpus::elf::generate(&Default::default()).bytes,
        "ipv4udp" => ipg_corpus::ipv4udp::generate(&Default::default()).bytes,
        "pe" => ipg_corpus::pe::generate(&Default::default()).bytes,
        "pdf" => ipg_corpus::pdf::generate(&Default::default()).bytes,
        _ => return None,
    })
}
