//! `ipg profile` — run one instrumented parse and report where the VM
//! spent its time: a per-rule table (calls, memo hit/miss, completions,
//! failures, self time) or `--folded` flamegraph-ready stacks keyed by
//! the grammar's static call graph.
//!
//! Only this command pays the profiler cost — the sink is a generic
//! parameter on the VM session, so `ipg parse` and the serve path
//! monomorphize with the no-op sink and stay uninstrumented.

use crate::{resolve, CmdResult, Failure};
use std::io::Write as _;

const USAGE: &str = "usage: ipg profile <grammar> [FILE | -] [--top N] [--folded]";

pub fn run(args: &[String]) -> CmdResult {
    let mut grammar_arg = None;
    let mut input_arg = None;
    let mut top = 0usize;
    let mut folded = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--folded" => folded = true,
            "--top" => {
                top = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| Failure::usage("--top needs a number"))?;
            }
            other if grammar_arg.is_none() => grammar_arg = Some(other.to_owned()),
            other if input_arg.is_none() => input_arg = Some(other.to_owned()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let Some(grammar_arg) = grammar_arg else {
        return Err(Failure::usage(USAGE));
    };
    let entry = resolve::entry(&grammar_arg)?;
    let input = read_input(&entry.name, input_arg.as_deref())?;

    let (result, stats, report) = entry.vm().parse_profiled(&input);
    // A failed parse still profiles — where time went before the error
    // is exactly what the user came for — but the failure is reported
    // (on stderr, so folded output stays pipeable) and exits nonzero.
    let failure = result.err().map(|e| Failure::runtime(format!("parse failed: {e}")));

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let dump = if folded {
        out.write_all(report.folded().as_bytes())
    } else {
        writeln!(
            out,
            "{}: {} bytes, {} steps, {} suspensions profiled",
            entry.name,
            input.len(),
            stats.steps,
            report.suspends(),
        )
        .and_then(|()| {
            let table = report.table();
            let rendered: String = if top > 0 {
                // Keep the header row plus the N hottest rules (the
                // table is already sorted by self time) and the footer.
                let lines: Vec<&str> = table.lines().collect();
                let body = lines.len().saturating_sub(2); // header + TOTAL
                let keep = top.min(body);
                let mut picked: Vec<&str> = Vec::with_capacity(keep + 2);
                picked.push(lines[0]);
                picked.extend(&lines[1..1 + keep]);
                picked.push(lines[lines.len() - 1]);
                picked.join("\n") + "\n"
            } else {
                table
            };
            out.write_all(rendered.as_bytes())
        })
    }
    .and_then(|()| out.flush());
    if let Err(e) = dump {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            return Err(Failure::runtime(format!("cannot write output: {e}")));
        }
    }
    match failure {
        Some(f) => Err(f),
        None => Ok(()),
    }
}

/// Materializes the profiled input: file, buffered stdin, or the
/// format's self-generated corpus sample.
fn read_input(name: &str, input_arg: Option<&str>) -> Result<Vec<u8>, Failure> {
    use std::io::Read as _;
    match input_arg {
        Some("-") => {
            let mut buf = Vec::new();
            std::io::stdin()
                .lock()
                .read_to_end(&mut buf)
                .map_err(|e| Failure::runtime(format!("cannot read stdin: {e}")))?;
            Ok(buf)
        }
        Some(path) => {
            std::fs::read(path).map_err(|e| Failure::runtime(format!("cannot read {path}: {e}")))
        }
        None => resolve::default_input(name).ok_or_else(|| {
            Failure::usage(format!("`{name}` has no self-generated sample; pass FILE or -"))
        }),
    }
}
