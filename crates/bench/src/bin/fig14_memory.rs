//! Fig. 14 — heap memory consumption for packet parsing (DNS and
//! IPv4+UDP), IPG vs the Nail-style baseline.
//!
//! The paper measures with Valgrind; here a counting global allocator
//! records allocation counts, total bytes, and peak live bytes per parse.
//! The reproduction target is the *ordering*: IPG parsers consume less
//! heap than Nail's arena parsers (which pre-size an arena from the input
//! length and copy all variable-size fields into it).

use ipg_baselines::alloc_meter::{measure, AllocStats, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn report(label: &str, stats: &AllocStats) {
    println!(
        "  {label:<24} allocs {:>6}  bytes {:>9}  peak {:>9}",
        stats.allocations, stats.bytes_allocated, stats.peak_bytes
    );
}

fn main() {
    // Warm the grammar statics outside the measured region.
    let _ = ipg_formats::dns::grammar();
    let _ = ipg_formats::ipv4udp::grammar();

    println!("Fig. 14a — DNS heap consumption per parse");
    for n in bench::DNS_ANSWERS {
        let msg = bench::dns_with_answers(n);
        println!("answers = {n} ({} bytes)", msg.len());
        let (_, ipg) = measure(|| ipg_formats::dns::parse(&msg).expect("valid message"));
        report("IPG", &ipg);
        let (_, nail) =
            measure(|| ipg_baselines::nail_style::parse_dns(&msg).expect("valid message"));
        report("Nail-style", &nail);
    }

    println!();
    println!("Fig. 14b — IPv4+UDP heap consumption per parse");
    for n in [64usize, 1024, 8192, 65_535 - 28] {
        let pkt = bench::udp_with_payload(n);
        println!("payload = {n} ({} bytes)", pkt.len());
        let (_, ipg) = measure(|| ipg_formats::ipv4udp::parse(&pkt).expect("valid packet"));
        report("IPG (interpreter)", &ipg);
        let (_, gen) = measure(|| bench::generated::ipv4udp::parse(&pkt).expect("valid packet"));
        report("IPG (generated)", &gen);
        let (_, nail) =
            measure(|| ipg_baselines::nail_style::parse_ipv4_udp(&pkt).expect("valid packet"));
        report("Nail-style", &nail);
    }

    println!();
    println!(
        "(paper: IPG parsers consume less heap than Nail parsers on both formats; \n\
         here the IPG side is a tree-building parser, so the shape holds only where \n\
         zero-copy dominates — large payloads — see EXPERIMENTS.md)"
    );
}
