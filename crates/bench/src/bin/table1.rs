//! Table 1 — lines of format specifications.
//!
//! Counts non-blank, non-comment lines of each embedded `.ipg` spec and
//! prints them next to the numbers the paper reports for its IPG, Kaitai
//! Struct, and Nail specifications. Absolute counts differ (our concrete
//! notation is not the authors'), but the claim under reproduction is the
//! *relative compactness*: IPG specs are severalfold smaller than Kaitai's.

fn spec_loc(spec: &str) -> usize {
    spec.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with("//")).count()
}

fn main() {
    // Paper Table 1 values: (IPG, Kaitai, Nail) — N/A encoded as None.
    let paper: &[(&str, usize, Option<usize>, Option<&str>)] = &[
        ("ZIP", 102, Some(256), None),
        ("GIF", 61, Some(163), None),
        ("PE", 109, Some(223), None),
        ("ELF", 96, Some(244), None),
        ("PDF", 108, None, None),
        ("IPv4+UDP", 22, Some(69), Some("26+29")),
        ("DNS", 34, Some(105), Some("39+60")),
    ];

    println!("Table 1: Lines of format specifications");
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>12}",
        "Format", "ours(IPG)", "paper(IPG)", "paper(Kaitai)", "paper(Nail)"
    );
    for (name, spec) in ipg_formats::all_specs() {
        let ours = spec_loc(spec);
        let row = paper.iter().find(|r| r.0 == name).expect("every format in the table");
        println!(
            "{:<10} {:>10} {:>12} {:>14} {:>12}",
            name,
            ours,
            row.1,
            row.2.map_or_else(|| "N/A".to_owned(), |v| v.to_string()),
            row.3.unwrap_or("N/A"),
        );
    }
    println!();
    println!("(non-blank, non-comment lines; paper numbers from Table 1 of the paper)");
}
