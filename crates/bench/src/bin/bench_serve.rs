//! Emits `BENCH_serve.json`: the streaming/service perf record — per
//! grammar, the overhead of chunked streaming sessions versus one-shot VM
//! parses, and the aggregate throughput scaling of the `ipg-serve` worker
//! pool from 1 to 4 workers on a mixed batch workload.
//!
//! Usage: `cargo run --release -p bench --bin bench_serve [-- --quick] [-- --out PATH]
//! [-- --chunk N]`
//!
//! * `--quick` — CI-smoke scale (smaller budgets and batches).
//! * `--out PATH` — report path (default `BENCH_serve.json`).
//! * `--chunk N` — streaming chunk size in bytes (default 4096,
//!   wire-realistic).
//!
//! Schema (`ipg-bench-serve/1`): one result per grammar with one-shot and
//! chunked MB/s plus the derived overhead percentage and suspension
//! counts, then the batch-scaling block. Gates (full mode only, warnings
//! in quick mode):
//!
//! * bytes-weighted *aggregate* streaming overhead ≤ 25% versus the
//!   one-shot VM (per-grammar rows are recorded but not individually
//!   gated — µs-scale parses carry a fixed per-session cost that
//!   dominates their individual ratios);
//! * ≥ 3x aggregate throughput from 1 to 4 workers — enforced only when
//!   the machine has enough cores to make that physically possible
//!   (recorded in the `scaling_enforced` field either way).

use bench::harness::{measure_best, Cli, Report};
use ipg_core::interp::vm::{Outcome, VmParser};
use ipg_serve::{Config, Response, Server};
use std::time::Instant;

struct GrammarRow {
    grammar: &'static str,
    inputs: usize,
    bytes: usize,
    oneshot_mb_per_s: f64,
    chunked_mb_per_s: f64,
    overhead_pct: f64,
    suspends_per_parse: f64,
}

/// Streams every input through a fresh session in `chunk`-byte pieces.
fn parse_chunked(vm: &VmParser<'_>, input: &[u8], chunk: usize) -> u64 {
    let mut session = vm.streaming();
    for piece in input.chunks(chunk.max(1)) {
        match session.feed(piece) {
            Outcome::NeedInput { .. } => {}
            Outcome::Error(e) => panic!("benchmark input rejected mid-stream: {e}"),
            Outcome::Done(_) => unreachable!("feed never completes"),
        }
    }
    match session.finish() {
        Outcome::Done(tree) => {
            std::hint::black_box(&tree);
            session.suspends()
        }
        Outcome::Error(e) => panic!("benchmark input rejected: {e}"),
        Outcome::NeedInput { .. } => unreachable!("finish never needs input"),
    }
}

/// Wall-clock seconds to complete `jobs` batch parses on a pool with
/// `workers` workers, plus the final stats snapshot (latency percentiles
/// and the admission ledger).
fn batch_run(
    workers: usize,
    jobs: &[(&'static str, Vec<u8>)],
) -> (f64, ipg_serve::stats::StatsSnapshot) {
    let server = Server::start(Config { workers, ..Config::default() });
    // Warm: one pass primes queues, caches, and thread startup.
    for (name, input) in jobs.iter().take(workers.max(4)) {
        server.parse(name, input.clone()).expect("warmup parse");
    }
    let start = Instant::now();
    let pending: Vec<_> = jobs
        .iter()
        .map(|(name, input)| server.parse_async(name, input.clone()).expect("submit"))
        .collect();
    for rx in pending {
        match rx.recv().expect("worker answers") {
            Response::Done(_) => {}
            other => panic!("batch job failed: {other:?}"),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    (elapsed, stats)
}

/// A fault-injected soak over the pool (the chaos-smoke record): valid
/// and mutated inputs under injected panics and stalls against a small
/// queue bound. Exits non-zero unless the admission ledger reconciles
/// exactly and every injected panic was recovered — that is a
/// correctness gate, enforced in quick mode too.
fn chaos_run(quick: bool, workloads: &[(&'static str, Vec<u8>)]) -> String {
    use ipg_serve::fault::FaultPlan;
    use std::sync::Arc;
    use std::time::Duration;

    let plan = Arc::new(FaultPlan::new(0xBE7C).panic_per_mille(60).stall_per_mille(60, 2));
    let server = Server::start(Config {
        workers: 2,
        max_queue: 8,
        retry_after: Duration::from_millis(2),
        faults: Some(plan.clone()),
        ..Config::default()
    });
    let rounds = if quick { 6 } else { 16 };
    for round in 0..rounds {
        let pending: Vec<_> = workloads
            .iter()
            .enumerate()
            .flat_map(|(i, (name, input))| {
                let valid = server.parse_async(name, input.clone()).expect("submit");
                let mut mutant = input.clone();
                ipg_gen::mutate::mutate(&mut mutant, 0xBE7C ^ round as u64, i as u64);
                let mutated = server.parse_async(name, mutant).expect("submit");
                [valid, mutated]
            })
            .collect();
        for rx in pending {
            match rx.recv_timeout(Duration::from_secs(60)).expect("no reply may be lost") {
                Response::Done(_) | Response::Busy { .. } | Response::Error(_) => {}
                other => panic!("unexpected chaos reply: {other:?}"),
            }
        }
    }
    let stats = server.stats();
    server.shutdown();
    // Full reconciliation: the admission ledger, every injected panic
    // recovered, AND the watcher counters — no watcher runs here, so any
    // nonzero reload/quarantine count means a counter leaked.
    let reconciled = stats.reconciles()
        && stats.panics_recovered == plan.panics_injected()
        && stats.reconciles_reloads(0, 0, 0);
    println!(
        "chaos x{rounds}: {} submitted = {} completed + {} shed + {} failed; \
         {} panics recovered, {} faults injected, reloads ok/rejected {}/{}, \
         quarantined {}, reconciled: {reconciled}",
        stats.submitted,
        stats.completed,
        stats.shed,
        stats.failed,
        stats.panics_recovered,
        plan.injected(),
        stats.reloads_ok,
        stats.reloads_rejected,
        stats.artifacts_quarantined,
    );
    if !reconciled {
        eprintln!(
            "ERROR: chaos ledger failed to reconcile \
             ({} != {} + {} + {}, panics {} vs injected {}, \
             reloads {}/{}, quarantined {})",
            stats.submitted,
            stats.completed,
            stats.shed,
            stats.failed,
            stats.panics_recovered,
            plan.panics_injected(),
            stats.reloads_ok,
            stats.reloads_rejected,
            stats.artifacts_quarantined,
        );
        std::process::exit(1);
    }
    format!(
        "{{\"submitted\": {}, \"completed\": {}, \"shed\": {}, \"failed\": {}, \
         \"panics_recovered\": {}, \"faults_injected\": {}, \"reloads_ok\": {}, \
         \"reloads_rejected\": {}, \"artifacts_quarantined\": {}, \"reconciled\": {}}}",
        stats.submitted,
        stats.completed,
        stats.shed,
        stats.failed,
        stats.panics_recovered,
        plan.injected(),
        stats.reloads_ok,
        stats.reloads_rejected,
        stats.artifacts_quarantined,
        reconciled,
    )
}

/// The observability soak: the same batch workload run bare and then
/// with the full observability surface armed (trace ring + a Prometheus
/// scrape taken mid-traffic), recording what instrumentation costs and
/// asserting the scrape itself reconciles. Reconciliation is a
/// correctness gate (quick mode included); the overhead number is
/// recorded, not gated — shared runners are too noisy.
fn obs_run(quick: bool, workloads: &[(&'static str, Vec<u8>)]) -> String {
    use ipg_serve::trace::TraceLog;
    use std::sync::Arc;

    let reps = if quick { 4 } else { 16 };
    let jobs: Vec<(&'static str, Vec<u8>)> = workloads
        .iter()
        .flat_map(|(name, input)| (0..reps).map(|_| (*name, input.clone())))
        .collect();
    let (t_bare, _) = batch_run(2, &jobs);

    let trace = Arc::new(TraceLog::new(ipg_serve::trace::DEFAULT_CAPACITY));
    let server =
        Server::start(Config { workers: 2, trace: Some(Arc::clone(&trace)), ..Config::default() });
    for (name, input) in jobs.iter().take(4) {
        server.parse(name, input.clone()).expect("warmup parse");
    }
    let start = Instant::now();
    let pending: Vec<_> = jobs
        .iter()
        .map(|(name, input)| server.parse_async(name, input.clone()).expect("submit"))
        .collect();
    // Scrape mid-traffic: the exposition must be parseable and its
    // ledger must reconcile while requests are still in flight.
    let scrape = server.metrics_text();
    for rx in pending {
        match rx.recv().expect("worker answers") {
            Response::Done(_) => {}
            other => panic!("obs job failed: {other:?}"),
        }
    }
    let t_obs = start.elapsed().as_secs_f64();
    server.shutdown();

    let value = |name: &str| -> u64 {
        scrape
            .lines()
            .find_map(|l| l.strip_prefix(name).and_then(|r| r.trim().parse::<f64>().ok()))
            .unwrap_or_else(|| panic!("metric `{name}` missing from the mid-traffic scrape"))
            as u64
    };
    let (submitted, completed, shed, failed, in_flight) = (
        value("ipg_requests_submitted_total "),
        value("ipg_requests_completed_total "),
        value("ipg_requests_shed_total "),
        value("ipg_requests_failed_total "),
        value("ipg_requests_in_flight "),
    );
    if submitted != completed + shed + failed + in_flight {
        eprintln!(
            "ERROR: mid-traffic scrape failed to reconcile \
             ({submitted} != {completed} + {shed} + {failed} + {in_flight})"
        );
        std::process::exit(1);
    }
    let obs_overhead_pct = (t_obs / t_bare - 1.0) * 100.0;
    println!(
        "obs x{}: bare {:.3}s, traced+scraped {:.3}s ({:+.2}%); \
         scrape reconciled mid-traffic; {} trace events, {} dropped",
        jobs.len(),
        t_bare,
        t_obs,
        obs_overhead_pct,
        trace.emitted(),
        trace.dropped(),
    );
    format!(
        "{{\"jobs\": {}, \"obs_overhead_pct\": {:.2}, \"scrape_reconciled\": true, \
         \"trace_events\": {}, \"trace_dropped\": {}}}",
        jobs.len(),
        obs_overhead_pct,
        trace.emitted(),
        trace.dropped(),
    )
}

fn main() {
    let cli = Cli::parse("BENCH_serve.json", &["--chunk"]);
    let chunk: usize = cli.value("--chunk").map_or(4096, |s| s.parse().expect("chunk usize"));
    let budget = cli.budget(40, 500);

    // Built once: the corpus generators behind these fixtures are
    // startup cost, not measurement.
    let workloads = bench::grammar_workloads();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Per-grammar streaming overhead: the heavy shared workload plus
    // generated inputs, all parsed one-shot and in chunked sessions.
    let n_gen: u64 = if cli.quick { 2 } else { 6 };
    let mut rows = Vec::new();
    let mut worst_overhead = f64::MIN;
    let mut total_oneshot_s = 0.0f64;
    let mut total_chunked_s = 0.0f64;
    for (name, workload) in &workloads {
        let name = *name;
        let entry = ipg_formats::corpus_entry(name);
        let (vm, grammar) = (entry.vm(), entry.grammar());
        let mut inputs: Vec<Vec<u8>> = vec![workload.clone()];
        let generator = ipg_gen::Generator::new(grammar);
        for seed in 0..n_gen {
            inputs.push(
                generator
                    .generate_valid(seed)
                    .unwrap_or_else(|| panic!("{name}: generation failed for seed {seed}")),
            );
        }
        let bytes: usize = inputs.iter().map(Vec::len).sum();

        // Best-of-3: the overhead ratio of two µs-scale means is noise on
        // a shared box; minima compare true costs.
        let rounds = 3;
        let t_oneshot = measure_best(rounds, budget, || {
            for input in &inputs {
                std::hint::black_box(vm.parse(std::hint::black_box(input)).expect("valid input"));
            }
        });
        let mut suspends = 0u64;
        let t_chunked = measure_best(rounds, budget, || {
            suspends = 0;
            for input in &inputs {
                suspends += parse_chunked(vm, std::hint::black_box(input), chunk);
            }
        });
        let overhead_pct = (t_chunked / t_oneshot - 1.0) * 100.0;
        worst_overhead = worst_overhead.max(overhead_pct);
        total_oneshot_s += t_oneshot;
        total_chunked_s += t_chunked;
        let row = GrammarRow {
            grammar: name,
            inputs: inputs.len(),
            bytes,
            oneshot_mb_per_s: bytes as f64 / t_oneshot / 1e6,
            chunked_mb_per_s: bytes as f64 / t_chunked / 1e6,
            overhead_pct,
            suspends_per_parse: suspends as f64 / inputs.len() as f64,
        };
        println!(
            "{name:<12} one-shot {:>8.1} MB/s  chunked({chunk}B) {:>8.1} MB/s  \
             overhead {:>6.2}%  suspends/parse {:>5.1}",
            row.oneshot_mb_per_s, row.chunked_mb_per_s, row.overhead_pct, row.suspends_per_parse
        );
        rows.push(row);
    }

    // Pool scaling: a mixed batch of every grammar's heavy workload,
    // repeated until the batch is long enough to saturate four workers.
    let reps = if cli.quick { 4 } else { 16 };
    let jobs: Vec<(&'static str, Vec<u8>)> = workloads
        .iter()
        .flat_map(|(name, input)| (0..reps).map(|_| (*name, input.clone())))
        .collect();
    let (t1, _) = batch_run(1, &jobs);
    let (t4, stats4) = batch_run(4, &jobs);
    let jobs_per_s_1 = jobs.len() as f64 / t1;
    let jobs_per_s_4 = jobs.len() as f64 / t4;
    let scaling = t1 / t4;
    // 4 workers plus the submitting thread need 5 hardware threads to
    // show real scaling; below that the number measures the machine, not
    // the pool.
    let scaling_enforced = !cli.quick && cores >= 5;
    println!(
        "batch x{}: 1 worker {:>7.1} jobs/s, 4 workers {:>7.1} jobs/s, scaling {:.2}x \
         ({} cores{})",
        jobs.len(),
        jobs_per_s_1,
        jobs_per_s_4,
        scaling,
        cores,
        if scaling_enforced { "" } else { ", scaling gate not enforced" }
    );

    let mut report = Report::new("ipg-bench-serve/1", cli.quick);
    report.field("chunk_bytes", chunk);
    report.field("cores", cores);
    report.results(rows.iter().map(|r| {
        format!(
            "{{\"grammar\": \"{}\", \"inputs\": {}, \"bytes\": {}, \
             \"oneshot_mb_per_s\": {:.2}, \"chunked_mb_per_s\": {:.2}, \
             \"overhead_pct\": {:.2}, \"suspends_per_parse\": {:.1}}}",
            r.grammar,
            r.inputs,
            r.bytes,
            r.oneshot_mb_per_s,
            r.chunked_mb_per_s,
            r.overhead_pct,
            r.suspends_per_parse,
        )
    }));
    report.field(
        "batch",
        format!(
            "{{\"jobs\": {}, \"workers_1_jobs_per_s\": {:.1}, \"workers_4_jobs_per_s\": {:.1}, \
             \"scaling_x\": {:.2}, \"latency_p50_us\": {}, \"latency_p99_us\": {}, \
             \"shed\": {}, \"panics_recovered\": {}}}",
            jobs.len(),
            jobs_per_s_1,
            jobs_per_s_4,
            scaling,
            stats4.latency_p50_us,
            stats4.latency_p99_us,
            stats4.shed,
            stats4.panics_recovered,
        ),
    );
    report.field("chaos", chaos_run(cli.quick, &workloads));
    report.field("observability", obs_run(cli.quick, &workloads));
    let aggregate_overhead = (total_chunked_s / total_oneshot_s - 1.0) * 100.0;
    report.field("worst_overhead_pct", format!("{worst_overhead:.2}"));
    report.field("aggregate_overhead_pct", format!("{aggregate_overhead:.2}"));
    report.field("scaling_enforced", scaling_enforced);
    report.write(&cli.out);

    let mut failed = false;
    if aggregate_overhead > 25.0 {
        eprintln!(
            "WARNING: aggregate streaming overhead {aggregate_overhead:.2}% exceeds the 25% budget"
        );
        failed = !cli.quick;
    }
    if scaling < 3.0 {
        eprintln!("WARNING: 1→4 worker scaling {scaling:.2}x is below the 3x target");
        failed = failed || scaling_enforced;
    }
    if failed {
        std::process::exit(1);
    }
}
