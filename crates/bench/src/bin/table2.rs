//! Table 2 — number of intervals and implicit intervals per specification.
//!
//! Runs the frontend's auto-completion over every embedded spec and counts
//! how many intervals were (a) fully inferred, (b) written as a length
//! only, (c) written out explicitly — the measurement behind the paper's
//! "27.0% fully eliminated, 52.9% length-only" claim.

use ipg_core::frontend::{interval_stats, parse_surface};

fn main() {
    println!("Table 2: Number of intervals and implicit intervals");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>10} {:>18}",
        "Format", "intervals", "inferred", "length-only", "explicit", "paper (a+b of N)"
    );
    // Paper values: total intervals and "a+b" (fully eliminated + length
    // only).
    let paper: &[(&str, usize, &str)] = &[
        ("ZIP", 87, "14+55"),
        ("GIF", 55, "20+26"),
        ("PE", 97, "4+81"),
        ("ELF", 82, "5+48"),
        ("PDF", 241, "116+83"),
        ("IPv4+UDP", 17, "1+14"),
        ("DNS", 28, "4+14"),
    ];

    let mut total = 0usize;
    let mut inferred = 0usize;
    let mut length_only = 0usize;
    for (name, spec) in ipg_formats::all_specs() {
        let g = parse_surface(spec).expect("embedded specs are valid");
        let stats = interval_stats(&g);
        let row = paper.iter().find(|r| r.0 == name).expect("every format in the table");
        println!(
            "{:<10} {:>10} {:>10} {:>12} {:>10} {:>12} of {:>3}",
            name,
            stats.total,
            stats.fully_inferred,
            stats.length_only,
            stats.explicit(),
            row.2,
            row.1,
        );
        total += stats.total;
        inferred += stats.fully_inferred;
        length_only += stats.length_only;
    }
    println!();
    println!(
        "ours: {:.1}% fully inferred, {:.1}% length-only (paper: 27.0% and 52.9%)",
        100.0 * inferred as f64 / total as f64,
        100.0 * length_only as f64 / total as f64,
    );
}
