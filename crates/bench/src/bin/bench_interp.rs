//! Emits `BENCH_interp.json`: steps/s and MB/s for the tree-walking
//! interpreter and the bytecode VM over every corpus grammar, measured
//! fresh each run so VM-vs-interpreter ratios always come from the same
//! machine and build.
//!
//! Usage: `cargo run --release -p bench --bin bench_interp [-- --quick] [-- --out PATH]
//! [-- --profile]`
//!
//! * `--quick` — CI-smoke timings (tens of milliseconds per measurement).
//! * `--out PATH` — where to write the JSON (default `BENCH_interp.json`
//!   in the current directory).
//! * `--profile` — additionally run each grammar once under the VM
//!   profiler and attach its top-3 hottest rules (plus the measured
//!   instrumentation overhead, `profiler_overhead_pct`) to the row. The
//!   headline ≥3x speedup gate always comes from *uninstrumented*
//!   timings — instrumented and uninstrumented numbers are never mixed.
//!
//! Schema (`ipg-bench-interp/1`): one result per grammar with both
//! engines' steps/s and MB/s plus the derived speedup. The `zip_inflate`
//! row is the headline perf gate: the VM must be ≥3x the interpreter's
//! steps/s (enforced in full runs; quick mode only warns, as shared CI
//! runners time too noisily to gate on).
//!
//! Both engines report tick-for-tick identical step counts (asserted here
//! and in the differential test suite), so the steps/s ratio is exactly
//! the wall-clock ratio on the same work.

use bench::harness::{measure, Cli, Report};
use ipg_core::interp::vm::VmParser;
use ipg_core::interp::Parser;

struct Row {
    grammar: &'static str,
    steps: u64,
    bytes: usize,
    interp_steps_per_s: f64,
    interp_mb_per_s: f64,
    vm_steps_per_s: f64,
    vm_mb_per_s: f64,
    speedup: f64,
    /// `--profile` only: top-3 hot rules as pre-rendered JSON objects,
    /// and the measured instrumented-vs-plain overhead.
    profile: Option<(Vec<String>, f64)>,
}

fn main() {
    let cli = Cli::parse_with_switches("BENCH_interp.json", &[], &["--profile"]);
    let budget = cli.budget(40, 700);
    let profiling = cli.switch("--profile");

    // The shared engine-bound workload per corpus grammar (see
    // `bench::grammar_workloads`); `zip_inflate` uses the
    // many-small-entries archive, where per entry the grammar walks
    // headers, chains, and attribute arithmetic while the DEFLATE
    // blackbox adds a small fixed cost.
    let workloads: Vec<(&'static str, Vec<u8>)> = bench::grammar_workloads();

    let mut rows: Vec<Row> = Vec::new();
    for (name, input) in &workloads {
        let g = ipg_formats::corpus_entry(name).grammar();
        let interp = Parser::new(g);
        let vm = VmParser::new(g);
        let (ri, si) = interp.parse_with_stats(input);
        ri.unwrap_or_else(|e| panic!("{name}: interpreter rejects its workload: {e}"));
        let (rv, sv) = vm.parse_with_stats(input);
        rv.unwrap_or_else(|e| panic!("{name}: VM rejects its workload: {e}"));
        assert_eq!(si.steps, sv.steps, "{name}: engines must count identical steps");

        let ti = measure(budget, || {
            std::hint::black_box(interp.parse(std::hint::black_box(input)).expect("valid input"));
        });
        let tv = measure(budget, || {
            std::hint::black_box(vm.parse(std::hint::black_box(input)).expect("valid input"));
        });
        // The profiled lane is measured separately and never feeds the
        // speedup/gate numbers above — it only reports where the VM's
        // time goes and what the instrumentation itself costs.
        let profile = profiling.then(|| {
            let (r, _, report) = vm.parse_profiled(input);
            r.expect("valid input");
            let tp = measure(budget, || {
                let (r, _, _) = vm.parse_profiled(std::hint::black_box(input));
                std::hint::black_box(r.expect("valid input"));
            });
            let top: Vec<String> = report
                .top(3)
                .iter()
                .map(|r| {
                    format!(
                        "{{\"rule\": \"{}\", \"calls\": {}, \"memo_hits\": {}, \
                         \"memo_misses\": {}, \"self_us\": {:.1}, \"self_pct\": {:.1}}}",
                        r.name,
                        r.counters.calls,
                        r.counters.memo_hits,
                        r.counters.memo_misses,
                        r.counters.self_ns as f64 / 1000.0,
                        r.self_pct,
                    )
                })
                .collect();
            (top, (tp / tv - 1.0) * 100.0)
        });
        let row = Row {
            grammar: name,
            steps: si.steps,
            bytes: input.len(),
            interp_steps_per_s: si.steps as f64 / ti,
            interp_mb_per_s: input.len() as f64 / ti / 1e6,
            vm_steps_per_s: si.steps as f64 / tv,
            vm_mb_per_s: input.len() as f64 / tv / 1e6,
            speedup: ti / tv,
            profile,
        };
        println!(
            "{name:<12} steps={:<6} interp {:>6.2}M steps/s  vm {:>6.2}M steps/s  {:>5.2}x",
            row.steps,
            row.interp_steps_per_s / 1e6,
            row.vm_steps_per_s / 1e6,
            row.speedup
        );
        rows.push(row);
    }

    let zip_inflate_speedup =
        rows.iter().find(|r| r.grammar == "zip_inflate").expect("zip_inflate row").speedup;

    let mut report = Report::new("ipg-bench-interp/1", cli.quick);
    report.results(rows.iter().map(|r| {
        let profile_block = match &r.profile {
            Some((top, overhead_pct)) => format!(
                ", \"profile\": {{\"hot_rules\": [{}], \"profiler_overhead_pct\": {:.1}}}",
                top.join(", "),
                overhead_pct,
            ),
            None => String::new(),
        };
        format!(
            "{{\"grammar\": \"{}\", \"steps\": {}, \"bytes\": {}, \
             \"interp\": {{\"steps_per_s\": {:.0}, \"mb_per_s\": {:.2}}}, \
             \"vm\": {{\"steps_per_s\": {:.0}, \"mb_per_s\": {:.2}}}, \
             \"speedup\": {:.2}{profile_block}}}",
            r.grammar,
            r.steps,
            r.bytes,
            r.interp_steps_per_s,
            r.interp_mb_per_s,
            r.vm_steps_per_s,
            r.vm_mb_per_s,
            r.speedup,
        )
    }));
    report.field("zip_inflate_speedup", format!("{zip_inflate_speedup:.2}"));
    report.field("profiled", if profiling { "true" } else { "false" }.to_owned());
    report.write(&cli.out);

    if zip_inflate_speedup < 3.0 {
        eprintln!(
            "WARNING: zip_inflate VM speedup {zip_inflate_speedup:.2}x is below the 3x target"
        );
        // Only full runs enforce the target; quick mode is a smoke test
        // and shared CI runners time too noisily to gate on.
        if !cli.quick {
            std::process::exit(1);
        }
    }
}
