//! Emits `BENCH_interp.json`: steps/s and MB/s for the tree-walking
//! interpreter and the bytecode VM over every corpus grammar, measured
//! fresh each run so VM-vs-interpreter ratios always come from the same
//! machine and build.
//!
//! Usage: `cargo run --release -p bench --bin bench_interp [-- --quick] [-- --out PATH]`
//!
//! * `--quick` — CI-smoke timings (tens of milliseconds per measurement).
//! * `--out PATH` — where to write the JSON (default `BENCH_interp.json`
//!   in the current directory).
//!
//! Schema (`ipg-bench-interp/1`): one result per grammar with both
//! engines' steps/s and MB/s plus the derived speedup. The `zip_inflate`
//! row is the headline perf gate: the VM must be ≥3x the interpreter's
//! steps/s (enforced in full runs; quick mode only warns, as shared CI
//! runners time too noisily to gate on).
//!
//! Both engines report tick-for-tick identical step counts (asserted here
//! and in the differential test suite), so the steps/s ratio is exactly
//! the wall-clock ratio on the same work.

use ipg_core::check::Grammar;
use ipg_core::interp::vm::VmParser;
use ipg_core::interp::Parser;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Args {
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, out: "BENCH_interp.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown flag `{other}` (expected --quick / --out PATH)");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Mean seconds per call: warm up, then batch until the budget elapses.
fn measure<F: FnMut()>(budget: Duration, mut f: F) -> f64 {
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < budget / 4 || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget {
        f();
        iters += 1;
    }
    start.elapsed().as_secs_f64() / iters as f64
}

struct Row {
    grammar: &'static str,
    steps: u64,
    bytes: usize,
    interp_steps_per_s: f64,
    interp_mb_per_s: f64,
    vm_steps_per_s: f64,
    vm_mb_per_s: f64,
    speedup: f64,
}

fn main() {
    let args = parse_args();
    let budget = if args.quick { Duration::from_millis(40) } else { Duration::from_millis(700) };

    // One workload per corpus grammar, sized so grammar evaluation (not
    // fixture setup) dominates. `zip_inflate` uses the many-small-entries
    // archive: per entry the grammar walks headers, chains, and attribute
    // arithmetic, while the DEFLATE blackbox adds a small fixed cost.
    let workloads: Vec<(&'static str, &'static Grammar, Vec<u8>)> = vec![
        ("zip", ipg_formats::zip::grammar(), bench::zip_with_entries(16)),
        ("dns", ipg_formats::dns::grammar(), bench::dns_with_answers(16)),
        ("png", ipg_formats::png::grammar(), bench::png_with_chunks(16)),
        ("gif", ipg_formats::gif::grammar(), bench::gif_with_frames(8)),
        ("elf", ipg_formats::elf::grammar(), bench::elf_with_sections(8)),
        ("ipv4udp", ipg_formats::ipv4udp::grammar(), bench::udp_with_payload(1024)),
        ("pe", ipg_formats::pe::grammar(), bench::pe_with_sections(8)),
        ("pdf", ipg_formats::pdf::grammar(), bench::pdf_with_objects(8)),
        ("zip_inflate", ipg_formats::zip::grammar_inflate(), bench::zip_many_small_entries(64)),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, g, input) in &workloads {
        let interp = Parser::new(g);
        let vm = VmParser::new(g);
        let (ri, si) = interp.parse_with_stats(input);
        ri.unwrap_or_else(|e| panic!("{name}: interpreter rejects its workload: {e}"));
        let (rv, sv) = vm.parse_with_stats(input);
        rv.unwrap_or_else(|e| panic!("{name}: VM rejects its workload: {e}"));
        assert_eq!(si.steps, sv.steps, "{name}: engines must count identical steps");

        let ti = measure(budget, || {
            std::hint::black_box(interp.parse(std::hint::black_box(input)).expect("valid input"));
        });
        let tv = measure(budget, || {
            std::hint::black_box(vm.parse(std::hint::black_box(input)).expect("valid input"));
        });
        let row = Row {
            grammar: name,
            steps: si.steps,
            bytes: input.len(),
            interp_steps_per_s: si.steps as f64 / ti,
            interp_mb_per_s: input.len() as f64 / ti / 1e6,
            vm_steps_per_s: si.steps as f64 / tv,
            vm_mb_per_s: input.len() as f64 / tv / 1e6,
            speedup: ti / tv,
        };
        println!(
            "{name:<12} steps={:<6} interp {:>6.2}M steps/s  vm {:>6.2}M steps/s  {:>5.2}x",
            row.steps,
            row.interp_steps_per_s / 1e6,
            row.vm_steps_per_s / 1e6,
            row.speedup
        );
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"ipg-bench-interp/1\",");
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"grammar\": \"{}\", \"steps\": {}, \"bytes\": {}, \
             \"interp\": {{\"steps_per_s\": {:.0}, \"mb_per_s\": {:.2}}}, \
             \"vm\": {{\"steps_per_s\": {:.0}, \"mb_per_s\": {:.2}}}, \
             \"speedup\": {:.2}}}{}",
            r.grammar,
            r.steps,
            r.bytes,
            r.interp_steps_per_s,
            r.interp_mb_per_s,
            r.vm_steps_per_s,
            r.vm_mb_per_s,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let zi = rows.iter().find(|r| r.grammar == "zip_inflate").expect("zip_inflate row");
    let _ = writeln!(json, "  \"zip_inflate_speedup\": {:.2}", zi.speedup);
    json.push_str("}\n");

    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);

    if zi.speedup < 3.0 {
        eprintln!("WARNING: zip_inflate VM speedup {:.2}x is below the 3x target", zi.speedup);
        // Only full runs enforce the target; quick mode is a smoke test
        // and shared CI runners time too noisily to gate on.
        if !args.quick {
            std::process::exit(1);
        }
    }
}
