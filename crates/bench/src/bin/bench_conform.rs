//! The conformance-fuzzing harness as a binary: grammar-driven generation,
//! cross-engine agreement, mutation sweep, and the baseline probe matrix,
//! reported as `BENCH_conform.json`.
//!
//! Usage: `cargo run --release -p bench --bin bench_conform [-- --quick]
//! [-- --out PATH] [-- --corpus-dir DIR] [-- --seed N]`
//!
//! * `--quick` — CI-smoke scale (fewer generations/mutants per grammar).
//! * `--out PATH` — JSON report path (default `BENCH_conform.json`).
//! * `--corpus-dir DIR` — also write every generated input to
//!   `DIR/<grammar>/seed_<n>.bin` (the CI job uploads this directory when
//!   the harness finds a divergence).
//! * `--seed N` — base seed of the sweep (default 0), so nightly runs can
//!   explore fresh regions.
//!
//! Exit status is non-zero when any generation fails, any engine pair
//! disagrees (tree, step count, or error), or a baseline panics — i.e. the
//! binary is itself the conformance gate. Throughput (generations/s,
//! mutants/s) is informational.

use bench::harness::{Cli, Report};
use ipg_core::interp::vm::VmParser;
use ipg_core::interp::Parser;
use ipg_gen::{mutate::mutate, GenConfig, Generator};
use std::time::Instant;

#[derive(Default)]
struct Row {
    grammar: String,
    generations: u64,
    gen_failures: u64,
    mutants: u64,
    mutants_accepted: u64,
    divergences: u64,
    baseline_probes: u64,
    baseline_accepts: u64,
    avg_len: f64,
    gens_per_s: f64,
    mutants_per_s: f64,
}

/// Step fuel: a pathological loop becomes a clean reported divergence
/// instead of a hung CI job.
const FUEL: u64 = 50_000_000;

fn main() {
    let cli = Cli::parse("BENCH_conform.json", &["--corpus-dir", "--seed"]);
    let base_seed: u64 = cli.value("--seed").map_or(0, |s| s.parse().expect("seed u64"));
    let corpus_dir = cli.value("--corpus-dir").map(str::to_owned);
    // Full mode sweeps twice the mutants of `tests/conformance.rs` (whose
    // 64 x 4 exactly meets the acceptance floor): the binary is the deeper,
    // seed-steerable gate; the test is the fast always-on one.
    let (n_gens, n_mutants) = if cli.quick { (12u64, 4u64) } else { (64, 8) };

    let mut rows: Vec<Row> = Vec::new();
    let mut failed = false;
    for entry in ipg_formats::pinned_corpus() {
        let (name, g) = (entry.name.as_str(), entry.grammar());
        let parser = Parser::new(g).max_steps(FUEL);
        let vm = VmParser::new(g).max_steps(FUEL);
        let generator = Generator::new(g).with_config(GenConfig::default());
        let mut row = Row { grammar: name.to_owned(), ..Default::default() };
        let mut total_len = 0usize;
        let t_gen = Instant::now();
        let mut inputs = Vec::with_capacity(n_gens as usize);
        for i in 0..n_gens {
            let seed = base_seed + i;
            match generator.generate_valid(seed) {
                Some(bytes) => {
                    if let Some(dir) = &corpus_dir {
                        let d = format!("{dir}/{name}");
                        let _ = std::fs::create_dir_all(&d);
                        let _ = std::fs::write(format!("{d}/seed_{seed}.bin"), &bytes);
                    }
                    total_len += bytes.len();
                    row.generations += 1;
                    inputs.push((seed, bytes));
                }
                None => {
                    eprintln!("{name}: generation FAILED for seed {seed}");
                    row.gen_failures += 1;
                }
            }
        }
        let gen_elapsed = t_gen.elapsed().as_secs_f64();

        let t_check = Instant::now();
        for (seed, bytes) in &inputs {
            match ipg_formats::Registry::compare_engines(&parser, &vm, bytes) {
                Ok(true) => {}
                Ok(false) => {
                    eprintln!("{name}: seed {seed}: generated input rejected by both engines");
                    row.divergences += 1;
                }
                Err(msg) => {
                    eprintln!("{name}: seed {seed}: DIVERGENCE on generated input: {msg}");
                    row.divergences += 1;
                }
            }
            for o in ipg_baselines::probe::run(name, bytes) {
                row.baseline_probes += 1;
                row.baseline_accepts += o.accepted as u64;
            }
            for m in 0..n_mutants {
                let mut mutant = bytes.clone();
                mutate(&mut mutant, *seed, m);
                row.mutants += 1;
                match ipg_formats::Registry::compare_engines(&parser, &vm, &mutant) {
                    Ok(accepted) => row.mutants_accepted += accepted as u64,
                    Err(msg) => {
                        eprintln!("{name}: seed {seed} mutant {m}: DIVERGENCE: {msg}");
                        row.divergences += 1;
                    }
                }
                for o in ipg_baselines::probe::run(name, &mutant) {
                    row.baseline_probes += 1;
                    row.baseline_accepts += o.accepted as u64;
                }
            }
        }
        let check_elapsed = t_check.elapsed().as_secs_f64();

        row.avg_len = total_len as f64 / row.generations.max(1) as f64;
        row.gens_per_s = row.generations as f64 / gen_elapsed.max(1e-9);
        row.mutants_per_s = row.mutants as f64 / check_elapsed.max(1e-9);
        println!(
            "{name:<12} gens {:>3}/{n_gens} ({:>7.0}/s, avg {:>6.0} B)  mutants {:>4} \
             ({:>5.1}% accepted)  baseline accepts {:>4}/{:<4}  divergences {}",
            row.generations,
            row.gens_per_s,
            row.avg_len,
            row.mutants,
            100.0 * row.mutants_accepted as f64 / row.mutants.max(1) as f64,
            row.baseline_accepts,
            row.baseline_probes,
            row.divergences,
        );
        if row.gen_failures > 0 || row.divergences > 0 {
            failed = true;
        }
        rows.push(row);
    }

    let mut report = Report::new("ipg-bench-conform/1", cli.quick);
    report.field("base_seed", base_seed);
    report.results(rows.iter().map(|r| {
        format!(
            "{{\"grammar\": \"{}\", \"generations\": {}, \"gen_failures\": {}, \
             \"avg_len\": {:.0}, \"gens_per_s\": {:.0}, \"mutants\": {}, \
             \"mutants_accepted\": {}, \"mutants_per_s\": {:.0}, \
             \"baseline_probes\": {}, \"baseline_accepts\": {}, \"divergences\": {}}}",
            r.grammar,
            r.generations,
            r.gen_failures,
            r.avg_len,
            r.gens_per_s,
            r.mutants,
            r.mutants_accepted,
            r.mutants_per_s,
            r.baseline_probes,
            r.baseline_accepts,
            r.divergences,
        )
    }));
    report.field("ok", !failed);
    report.write(&cli.out);

    if failed {
        eprintln!("conformance harness found failures (see report)");
        std::process::exit(1);
    }
}
