//! Emits `BENCH_inflate.json`: the machine-readable perf record for the
//! DEFLATE fast path and the `zip_inflate` interpreter workload, measured
//! fresh each run so fast-vs-seed ratios always come from the same
//! machine and build.
//!
//! Usage: `cargo run --release -p bench --bin bench_inflate [-- --quick] [-- --out PATH]`
//!
//! * `--quick` — CI-smoke timings (tens of milliseconds per measurement).
//! * `--out PATH` — where to write the JSON (default `BENCH_inflate.json`
//!   in the current directory).
//!
//! Schema (`ipg-bench-inflate/1`): per-workload MB/s of *uncompressed*
//! output for the fast and seed decoders, derived speedups, and
//! interpreter steps/second over the `zip_inflate` grammar.

use bench::harness::{assert_json_literal, measure, Cli, Report};
use ipg_core::interp::Parser;

struct Row {
    name: String,
    implementation: &'static str,
    mb_per_s: f64,
    bytes_out: usize,
    bytes_in: usize,
}

fn main() {
    let cli = Cli::parse("BENCH_inflate.json", &[]);
    let budget = cli.budget(60, 1000);

    let mut workloads: Vec<(String, Vec<u8>)> = vec![
        ("stored/64k".into(), bench::deflate_stored_stream(64 * 1024)),
        ("fixed/64k".into(), bench::deflate_fixed_stream(64 * 1024)),
    ];
    for name in bench::GOLDEN_FIXTURES {
        let label = format!("dynamic/{}", name.trim_end_matches(".bin"));
        workloads.push((label, bench::golden_fixture(name)));
    }

    let mut rows: Vec<Row> = Vec::new();
    for (name, stream) in &workloads {
        let out = ipg_flate::inflate(stream).expect("workload inflates");
        assert_eq!(
            out,
            ipg_flate::inflate_slow(stream).expect("workload inflates on seed path"),
            "fast/seed outputs must be byte-identical for {name}"
        );
        let bytes_out = out.len();
        drop(out);
        if bytes_out == 0 {
            continue; // golden_0.bin decodes to empty output; no rate to report
        }
        type InflateFn = fn(&[u8]) -> Result<Vec<u8>, ipg_flate::InflateError>;
        for (implementation, f) in [
            ("fast", ipg_flate::inflate as InflateFn),
            ("seed", ipg_flate::inflate_slow as InflateFn),
        ] {
            let secs = measure(budget, || {
                std::hint::black_box(f(std::hint::black_box(stream)).expect("valid stream"));
            });
            let mb_per_s = if secs > 0.0 { bytes_out as f64 / secs / 1e6 } else { 0.0 };
            println!("{name:<24} {implementation:<4} {mb_per_s:>10.1} MB/s");
            rows.push(Row {
                name: name.clone(),
                implementation,
                mb_per_s,
                bytes_out,
                bytes_in: stream.len(),
            });
        }
    }

    // Interpreter workload: the zip_inflate grammar end-to-end, with the
    // step count from parse_with_stats giving steps/second.
    let archive = bench::zip_with_entries(4);
    let grammar = ipg_formats::zip::grammar_inflate();
    let parser = Parser::new(grammar);
    let (result, stats) = parser.parse_with_stats(&archive);
    result.expect("benchmark archive parses");
    let secs = measure(budget, || {
        std::hint::black_box(parser.parse(std::hint::black_box(&archive)).expect("valid archive"));
    });
    let steps_per_s = stats.steps as f64 / secs;
    let archive_mb_per_s = archive.len() as f64 / secs / 1e6;
    println!(
        "zip_inflate/interp            {:>10.0} steps/s ({:.1} MB/s archive)",
        steps_per_s, archive_mb_per_s
    );

    let speedup = |workload: &str| -> f64 {
        let get = |implementation: &str| {
            rows.iter()
                .find(|r| r.name == workload && r.implementation == implementation)
                .map(|r| r.mb_per_s)
                .unwrap_or(0.0)
        };
        let seed = get("seed");
        if seed > 0.0 {
            get("fast") / seed
        } else {
            0.0
        }
    };

    let mut report = Report::new("ipg-bench-inflate/1", cli.quick);
    report.results(rows.iter().map(|r| {
        assert_json_literal(&r.name);
        format!(
            "{{\"name\": \"{}\", \"impl\": \"{}\", \"mb_per_s\": {:.2}, \
             \"bytes_out\": {}, \"bytes_in\": {}}}",
            r.name, r.implementation, r.mb_per_s, r.bytes_out, r.bytes_in,
        )
    }));
    report.field(
        "speedup",
        format!(
            "{{\"fixed/64k\": {:.2}, \"dynamic/golden_2048\": {:.2}, \
             \"dynamic/golden_100000\": {:.2}}}",
            speedup("fixed/64k"),
            speedup("dynamic/golden_2048"),
            speedup("dynamic/golden_100000"),
        ),
    );
    report.field(
        "zip_inflate_interp",
        format!(
            "{{\"steps\": {}, \"memo_hits\": {}, \"memo_entries\": {}, \
             \"steps_per_s\": {:.0}, \"archive_mb_per_s\": {:.2}}}",
            stats.steps, stats.memo_hits, stats.memo_entries, steps_per_s, archive_mb_per_s,
        ),
    );
    report.write(&cli.out);

    let s = speedup("dynamic/golden_2048");
    if s < 3.0 {
        eprintln!("WARNING: dynamic/golden_2048 speedup {s:.2}x is below the 3x target");
        // Only full runs enforce the target; quick mode is a smoke test
        // and shared CI runners time too noisily to gate on.
        if !cli.quick {
            std::process::exit(1);
        }
    }
}
