//! Emits `BENCH_inflate.json`: the machine-readable perf record for the
//! DEFLATE fast path and the `zip_inflate` interpreter workload, measured
//! fresh each run so fast-vs-seed ratios always come from the same
//! machine and build.
//!
//! Usage: `cargo run --release -p bench --bin bench_inflate [-- --quick] [-- --out PATH]`
//!
//! * `--quick` — CI-smoke timings (tens of milliseconds per measurement).
//! * `--out PATH` — where to write the JSON (default `BENCH_inflate.json`
//!   in the current directory).
//!
//! Schema (`ipg-bench-inflate/1`): per-workload MB/s of *uncompressed*
//! output for the fast and seed decoders, derived speedups, and
//! interpreter steps/second over the `zip_inflate` grammar.

use ipg_core::interp::Parser;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Args {
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, out: "BENCH_inflate.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown flag `{other}` (expected --quick / --out PATH)");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Mean seconds per call: warm up, then batch until the budget elapses.
fn measure<F: FnMut()>(budget: Duration, mut f: F) -> f64 {
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < budget / 4 || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget {
        f();
        iters += 1;
    }
    start.elapsed().as_secs_f64() / iters as f64
}

struct Row {
    name: String,
    implementation: &'static str,
    mb_per_s: f64,
    bytes_out: usize,
    bytes_in: usize,
}

fn json_escape_is_unneeded(s: &str) -> bool {
    s.chars().all(|c| c.is_ascii_alphanumeric() || "/_.-".contains(c))
}

fn main() {
    let args = parse_args();
    let budget = if args.quick { Duration::from_millis(60) } else { Duration::from_millis(1000) };

    let mut workloads: Vec<(String, Vec<u8>)> = vec![
        ("stored/64k".into(), bench::deflate_stored_stream(64 * 1024)),
        ("fixed/64k".into(), bench::deflate_fixed_stream(64 * 1024)),
    ];
    for name in bench::GOLDEN_FIXTURES {
        let label = format!("dynamic/{}", name.trim_end_matches(".bin"));
        workloads.push((label, bench::golden_fixture(name)));
    }

    let mut rows: Vec<Row> = Vec::new();
    for (name, stream) in &workloads {
        let out = ipg_flate::inflate(stream).expect("workload inflates");
        assert_eq!(
            out,
            ipg_flate::inflate_slow(stream).expect("workload inflates on seed path"),
            "fast/seed outputs must be byte-identical for {name}"
        );
        let bytes_out = out.len();
        drop(out);
        if bytes_out == 0 {
            continue; // golden_0.bin decodes to empty output; no rate to report
        }
        type InflateFn = fn(&[u8]) -> Result<Vec<u8>, ipg_flate::InflateError>;
        for (implementation, f) in [
            ("fast", ipg_flate::inflate as InflateFn),
            ("seed", ipg_flate::inflate_slow as InflateFn),
        ] {
            let secs = measure(budget, || {
                std::hint::black_box(f(std::hint::black_box(stream)).expect("valid stream"));
            });
            let mb_per_s = if secs > 0.0 { bytes_out as f64 / secs / 1e6 } else { 0.0 };
            println!("{name:<24} {implementation:<4} {mb_per_s:>10.1} MB/s");
            rows.push(Row {
                name: name.clone(),
                implementation,
                mb_per_s,
                bytes_out,
                bytes_in: stream.len(),
            });
        }
    }

    // Interpreter workload: the zip_inflate grammar end-to-end, with the
    // step count from parse_with_stats giving steps/second.
    let archive = bench::zip_with_entries(4);
    let grammar = ipg_formats::zip::grammar_inflate();
    let parser = Parser::new(grammar);
    let (result, stats) = parser.parse_with_stats(&archive);
    result.expect("benchmark archive parses");
    let secs = measure(budget, || {
        std::hint::black_box(parser.parse(std::hint::black_box(&archive)).expect("valid archive"));
    });
    let steps_per_s = stats.steps as f64 / secs;
    let archive_mb_per_s = archive.len() as f64 / secs / 1e6;
    println!(
        "zip_inflate/interp            {:>10.0} steps/s ({:.1} MB/s archive)",
        steps_per_s, archive_mb_per_s
    );

    let speedup = |workload: &str| -> f64 {
        let get = |implementation: &str| {
            rows.iter()
                .find(|r| r.name == workload && r.implementation == implementation)
                .map(|r| r.mb_per_s)
                .unwrap_or(0.0)
        };
        let seed = get("seed");
        if seed > 0.0 {
            get("fast") / seed
        } else {
            0.0
        }
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"ipg-bench-inflate/1\",");
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        assert!(json_escape_is_unneeded(&r.name), "workload names stay JSON-literal");
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"impl\": \"{}\", \"mb_per_s\": {:.2}, \
             \"bytes_out\": {}, \"bytes_in\": {}}}{}",
            r.name,
            r.implementation,
            r.mb_per_s,
            r.bytes_out,
            r.bytes_in,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup\": {{");
    let _ = writeln!(json, "    \"fixed/64k\": {:.2},", speedup("fixed/64k"));
    let _ = writeln!(json, "    \"dynamic/golden_2048\": {:.2},", speedup("dynamic/golden_2048"));
    let _ =
        writeln!(json, "    \"dynamic/golden_100000\": {:.2}", speedup("dynamic/golden_100000"));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"zip_inflate_interp\": {{");
    let _ = writeln!(json, "    \"steps\": {},", stats.steps);
    let _ = writeln!(json, "    \"memo_hits\": {},", stats.memo_hits);
    let _ = writeln!(json, "    \"memo_entries\": {},", stats.memo_entries);
    let _ = writeln!(json, "    \"steps_per_s\": {:.0},", steps_per_s);
    let _ = writeln!(json, "    \"archive_mb_per_s\": {:.2}", archive_mb_per_s);
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);

    let s = speedup("dynamic/golden_2048");
    if s < 3.0 {
        eprintln!("WARNING: dynamic/golden_2048 speedup {s:.2}x is below the 3x target");
        // Only full runs enforce the target; quick mode is a smoke test
        // and shared CI runners time too noisily to gate on.
        if !args.quick {
            std::process::exit(1);
        }
    }
}
