//! §7 termination-checking report: every format grammar must pass, with a
//! handful of elementary cycles and well under the paper's 20 ms budget.

use std::time::Instant;

fn main() {
    println!("Termination checking of all format grammars (§5, §7)");
    println!("{:<10} {:>8} {:>12} {:>10}", "Format", "cycles", "time", "verdict");
    for (name, spec) in ipg_formats::all_specs() {
        let parse_start = Instant::now();
        let g = ipg_core::frontend::parse_grammar(spec).expect("embedded specs are valid");
        let _parse_time = parse_start.elapsed();
        let report = ipg_core::termination::check_termination(&g);
        println!(
            "{:<10} {:>8} {:>10.2?} {:>10}",
            name,
            report.cycle_count(),
            report.elapsed,
            if report.ok { "terminates" } else { "UNKNOWN" },
        );
        for cycle in &report.cycles {
            println!(
                "             cycle {} ({})",
                cycle.nonterminals.join(" → "),
                if cycle.decreasing { "decreasing" } else { "NOT refuted" }
            );
        }
    }
    println!();
    println!("(paper: all grammars pass, < 20 ms each, ≤ 5 elementary cycles)");
}
