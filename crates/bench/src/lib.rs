//! Shared workloads for the benchmark harness.
//!
//! The per-table/per-figure entry points are:
//!
//! | Paper artifact | Regenerate with |
//! |---|---|
//! | Table 1 (spec line counts)        | `cargo run -p bench --bin table1` |
//! | Table 2 (implicit intervals)      | `cargo run -p bench --bin table2` |
//! | Fig. 12a/b (`unzip`)              | `cargo bench -p bench --bench fig12_unzip` |
//! | Fig. 12c/d (`readelf`)            | `cargo bench -p bench --bench fig12_readelf` |
//! | Fig. 13a–f (per-format timing)    | `cargo bench -p bench --bench fig13_formats` |
//! | Fig. 14a/b (heap consumption)     | `cargo run -p bench --bin fig14_memory --release` |
//! | §7 termination timing             | `cargo run -p bench --bin termination_report` |
//! | Design-choice ablations           | `cargo bench -p bench --bench ablations` |
//! | Inflate fast-path throughput      | `cargo bench -p bench --bench inflate_throughput` |
//! | `BENCH_inflate.json` perf record  | `cargo run --release -p bench --bin bench_inflate` |
//! | `BENCH_interp.json` perf record   | `cargo run --release -p bench --bin bench_interp` |

use ipg_corpus::{dns, elf, gif, ipv4udp, pdf, pe, zip};

pub mod harness;

/// Compiled recursive-descent parsers emitted by `build.rs` through
/// `ipg-core::codegen` — the paper's generated-C++ analogue. Each module
/// exposes `parse(input) -> Option<Node>`.
pub mod generated {
    /// Generated ZIP parser (zero-copy variant).
    #[allow(dead_code, unused_variables, unused_mut, unused_parens, clippy::all)]
    pub mod zip {
        include!(concat!(env!("OUT_DIR"), "/gen_zip.rs"));
    }
    /// Generated GIF parser.
    #[allow(dead_code, unused_variables, unused_mut, unused_parens, clippy::all)]
    pub mod gif {
        include!(concat!(env!("OUT_DIR"), "/gen_gif.rs"));
    }
    /// Generated PE parser.
    #[allow(dead_code, unused_variables, unused_mut, unused_parens, clippy::all)]
    pub mod pe {
        include!(concat!(env!("OUT_DIR"), "/gen_pe.rs"));
    }
    /// Generated IPv4+UDP parser.
    #[allow(dead_code, unused_variables, unused_mut, unused_parens, clippy::all)]
    pub mod ipv4udp {
        include!(concat!(env!("OUT_DIR"), "/gen_ipv4udp.rs"));
    }
    /// Generated PNG parser (exercises the compiled `star` term).
    #[allow(dead_code, unused_variables, unused_mut, unused_parens, clippy::all)]
    pub mod png {
        include!(concat!(env!("OUT_DIR"), "/gen_png.rs"));
    }
}

/// Entry-count sweep for the ZIP workloads (the paper archives 1..K
/// copies of the same file).
pub const ZIP_SIZES: [usize; 4] = [1, 4, 16, 64];

/// Section-count sweep for ELF/PE.
pub const SECTION_SIZES: [usize; 4] = [2, 8, 32, 128];

/// Frame-count sweep for GIF.
pub const GIF_FRAMES: [usize; 4] = [1, 4, 16, 64];

/// Answer-count sweep for DNS.
pub const DNS_ANSWERS: [usize; 4] = [1, 4, 16, 64];

/// Payload sweep for IPv4+UDP.
pub const UDP_PAYLOADS: [usize; 4] = [64, 256, 1024, 8192];

/// A ZIP archive with `n` deflated entries.
pub fn zip_with_entries(n: usize) -> Vec<u8> {
    zip::generate(&zip::Config { n_entries: n, payload_len: 4096, ..Default::default() }).bytes
}

/// An ELF file with `n` progbits sections and `4 * n` symbols.
pub fn elf_with_sections(n: usize) -> Vec<u8> {
    elf::generate(&elf::Config {
        n_sections: n,
        section_size: 512,
        n_symbols: 4 * n,
        n_dyn: 16,
        seed: 7,
    })
    .bytes
}

/// A PE file with `n` sections.
pub fn pe_with_sections(n: usize) -> Vec<u8> {
    pe::generate(&pe::Config { n_sections: n, section_size: 2048, seed: 7 }).bytes
}

/// A GIF with `n` frames.
pub fn gif_with_frames(n: usize) -> Vec<u8> {
    gif::generate(&gif::Config { n_frames: n, data_per_frame: 2048, ..Default::default() }).bytes
}

/// A DNS response with one question and `n` answers.
pub fn dns_with_answers(n: usize) -> Vec<u8> {
    dns::generate(&dns::Config { n_questions: 1, n_answers: n, compress: true, seed: 7 }).bytes
}

/// An IPv4+UDP datagram with an `n`-byte payload.
pub fn udp_with_payload(n: usize) -> Vec<u8> {
    ipv4udp::generate(&ipv4udp::Config { payload_len: n, options_words: 0, seed: 7 }).bytes
}

/// A PDF with `n` objects (for the memoization ablation: its two-pass
/// pattern re-reads object headers).
pub fn pdf_with_objects(n: usize) -> Vec<u8> {
    pdf::generate(&pdf::Config { n_objects: n, stream_len: 1024, seed: 7 }).bytes
}

/// A PNG with `n` IDAT chunks (the `star`-repetition workload).
pub fn png_with_chunks(n: usize) -> Vec<u8> {
    ipg_corpus::png::generate(&ipg_corpus::png::Config { n_idat: n, ..Default::default() }).bytes
}

/// A ZIP archive of many small deflated entries — the interpreter-bound
/// `zip_inflate` workload for `bench_interp`: grammar evaluation (headers,
/// chains, attribute arithmetic) dominates and the DEFLATE blackbox is a
/// small fixed cost per entry.
pub fn zip_many_small_entries(n: usize) -> Vec<u8> {
    zip::generate(&zip::Config { n_entries: n, payload_len: 128, ..Default::default() }).bytes
}

/// One engine-bound workload per corpus grammar, keyed by the
/// `ipg_formats::Registry::corpus` entry names. Sized so grammar
/// evaluation (not fixture setup) dominates; shared by `bench_interp`
/// (engine-vs-engine) and `bench_serve` (streaming overhead and pool
/// scaling) so their numbers describe the same work.
pub fn grammar_workloads() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("zip", zip_with_entries(16)),
        ("dns", dns_with_answers(16)),
        ("png", png_with_chunks(16)),
        ("gif", gif_with_frames(8)),
        ("elf", elf_with_sections(8)),
        ("ipv4udp", udp_with_payload(1024)),
        ("pe", pe_with_sections(8)),
        ("pdf", pdf_with_objects(8)),
        ("zip_inflate", zip_many_small_entries(64)),
    ]
}

/// Names of the zlib-produced golden DEFLATE fixtures shipped with
/// `ipg-flate` (the dynamic-Huffman cross-implementation vectors).
pub const GOLDEN_FIXTURES: [&str; 5] =
    ["golden_0.bin", "golden_23.bin", "golden_1800.bin", "golden_2048.bin", "golden_100000.bin"];

/// Loads one of `ipg-flate`'s golden DEFLATE fixtures by name.
///
/// # Panics
///
/// If the fixture is missing (the repo checkout is incomplete).
pub fn golden_fixture(name: &str) -> Vec<u8> {
    let path = format!("{}/../ipg-flate/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing golden fixture {path}: {e}"))
}

/// A stored-block DEFLATE stream over `len` incompressible bytes.
pub fn deflate_stored_stream(len: usize) -> Vec<u8> {
    let data: Vec<u8> = (0..len as u32).map(|i| (i.wrapping_mul(2_654_435_761)) as u8).collect();
    ipg_flate::compress_stored(&data)
}

/// A fixed-Huffman DEFLATE stream over `len` bytes of English-like text
/// (our own encoder only emits fixed-Huffman blocks).
pub fn deflate_fixed_stream(len: usize) -> Vec<u8> {
    let data: Vec<u8> = b"The quick brown fox jumps over the lazy dog. "
        .iter()
        .copied()
        .cycle()
        .take(len)
        .collect();
    ipg_flate::compress(&data)
}

/// A ZIP archive of `n` large *stored* entries — the workload where the
/// zero-copy property dominates (archived data is skipped, not copied).
pub fn zip_with_large_stored_entries(n: usize) -> Vec<u8> {
    ipg_corpus::zip::generate(&ipg_corpus::zip::Config {
        n_entries: n,
        payload_len: 64 * 1024,
        method: ipg_corpus::zip::Method::Stored,
        seed: 7,
    })
    .bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_parse_with_the_ipg_grammars() {
        assert!(ipg_formats::zip::parse(&zip_with_entries(2)).is_ok());
        assert!(ipg_formats::elf::parse(&elf_with_sections(2)).is_ok());
        assert!(ipg_formats::pe::parse(&pe_with_sections(2)).is_ok());
        assert!(ipg_formats::gif::parse(&gif_with_frames(2)).is_ok());
        assert!(ipg_formats::dns::parse(&dns_with_answers(2)).is_ok());
        assert!(ipg_formats::ipv4udp::parse(&udp_with_payload(64)).is_ok());
        assert!(ipg_formats::pdf::parse(&pdf_with_objects(2)).is_ok());
    }

    #[test]
    fn generated_parsers_accept_the_workloads() {
        assert!(generated::zip::parse(&zip_with_entries(2)).is_some());
        assert!(generated::gif::parse(&gif_with_frames(2)).is_some());
        assert!(generated::pe::parse(&pe_with_sections(2)).is_some());
        assert!(generated::ipv4udp::parse(&udp_with_payload(64)).is_some());
        assert!(generated::zip::parse(b"not a zip").is_none());
    }

    #[test]
    fn generated_star_term_parses_png_chunk_lists() {
        let f =
            ipg_corpus::png::generate(&ipg_corpus::png::Config { n_idat: 5, ..Default::default() });
        let node = generated::png::parse(&f.bytes).expect("valid PNG");
        let chunks = node.child_array("Chunk").expect("chunk array");
        // tEXt + 5 IDAT (IHDR and IEND are separate).
        assert_eq!(chunks.len(), 6);
        let interp = ipg_formats::png::parse(&f.bytes).expect("valid PNG");
        assert_eq!(chunks.len(), interp.chunks.len());
        assert!(generated::png::parse(&f.bytes[..f.bytes.len() - 4]).is_none());
    }

    #[test]
    fn generated_parsers_agree_with_the_interpreter_on_attributes() {
        let data = udp_with_payload(256);
        let gen = generated::ipv4udp::parse(&data).expect("valid packet");
        let interp = ipg_formats::ipv4udp::parse(&data).expect("valid packet");
        assert_eq!(gen.attr("ihl"), Some(interp.ihl as i64));
        assert_eq!(gen.attr("tot"), Some(interp.total_len as i64));

        let data = zip_with_entries(3);
        let gen = generated::zip::parse(&data).expect("valid archive");
        let interp = ipg_formats::zip::parse(&data).expect("valid archive");
        let eocd = gen.child_node("EOCD").expect("EOCD child");
        assert_eq!(eocd.attr("cdofs"), Some(interp.cd_offset as i64));
        assert_eq!(eocd.attr("n"), Some(interp.entry_count as i64));
    }
}
