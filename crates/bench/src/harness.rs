//! Shared plumbing for the `bench_*` report binaries: the
//! `--quick`/`--out` command line, the warmup-then-batch timing loop, and
//! the `BENCH_*.json` report envelope. Every report binary
//! (`bench_inflate`, `bench_interp`, `bench_conform`, `bench_serve`)
//! parses the same flags and emits the same envelope shape:
//!
//! ```json
//! {
//!   "schema": "ipg-bench-<name>/1",
//!   "quick": false,
//!   "results": [ ... one object per row ... ],
//!   "<trailing summary fields>": ...
//! }
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Parsed command line of a report binary: the shared `--quick` /
/// `--out PATH` flags plus any binary-specific `--flag VALUE` extras
/// declared by the caller.
pub struct Cli {
    /// CI-smoke mode: smaller budgets, gates warn instead of failing.
    pub quick: bool,
    /// Report path (each binary supplies its default).
    pub out: String,
    values: Vec<(&'static str, String)>,
    switches: Vec<&'static str>,
}

impl Cli {
    /// Parses `std::env::args`. `value_flags` declares extra flags that
    /// take one value (e.g. `&["--seed", "--corpus-dir"]`); unknown flags
    /// exit with status 2 and a usage hint.
    pub fn parse(default_out: &str, value_flags: &'static [&'static str]) -> Cli {
        Cli::parse_with_switches(default_out, value_flags, &[])
    }

    /// [`Cli::parse`], additionally accepting valueless boolean
    /// `switch_flags` (e.g. `&["--profile"]`); query them with
    /// [`Cli::switch`].
    pub fn parse_with_switches(
        default_out: &str,
        value_flags: &'static [&'static str],
        switch_flags: &'static [&'static str],
    ) -> Cli {
        let mut cli = Cli {
            quick: false,
            out: default_out.to_owned(),
            values: Vec::new(),
            switches: Vec::new(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => cli.quick = true,
                "--out" => cli.out = it.next().expect("--out requires a path"),
                flag => {
                    if let Some(f) = switch_flags.iter().find(|f| **f == flag) {
                        cli.switches.push(f);
                    } else if let Some(f) = value_flags.iter().find(|f| **f == flag) {
                        let v = it.next().unwrap_or_else(|| panic!("{f} requires a value"));
                        cli.values.push((f, v));
                    } else {
                        let mut extras: Vec<String> =
                            value_flags.iter().map(|f| format!("{f} VALUE")).collect();
                        extras.extend(switch_flags.iter().map(|f| f.to_string()));
                        eprintln!(
                            "unknown flag `{flag}` (expected --quick / --out PATH{}{})",
                            if extras.is_empty() { "" } else { " / " },
                            extras.join(" / "),
                        );
                        std::process::exit(2);
                    }
                }
            }
        }
        cli
    }

    /// The value of a declared extra flag, if it was passed.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.values.iter().find(|(f, _)| *f == flag).map(|(_, v)| v.as_str())
    }

    /// Whether a declared boolean switch was passed.
    pub fn switch(&self, flag: &str) -> bool {
        self.switches.contains(&flag)
    }

    /// A measurement budget: `quick_ms` in quick mode, `full_ms`
    /// otherwise.
    pub fn budget(&self, quick_ms: u64, full_ms: u64) -> Duration {
        Duration::from_millis(if self.quick { quick_ms } else { full_ms })
    }
}

/// Mean seconds per call: warm up for a quarter of the budget, then batch
/// calls until the budget elapses.
pub fn measure<F: FnMut()>(budget: Duration, mut f: F) -> f64 {
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < budget / 4 || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget {
        f();
        iters += 1;
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// [`measure`], repeated `rounds` times, keeping the fastest mean — the
/// robust statistic on noisy shared machines (delays only ever add time,
/// so the minimum is the closest estimate of the true cost).
pub fn measure_best<F: FnMut()>(rounds: u32, budget: Duration, mut f: F) -> f64 {
    (0..rounds.max(1)).map(|_| measure(budget, &mut f)).fold(f64::INFINITY, f64::min)
}

/// Guards the report's unescaped string interpolations: the row builders
/// write names into JSON literally, which is only sound for this
/// character set.
pub fn assert_json_literal(s: &str) {
    assert!(
        s.chars().all(|c| c.is_ascii_alphanumeric() || "/_.-".contains(c)),
        "`{s}` is not JSON-literal-safe (escaping is deliberately unimplemented)"
    );
}

/// A `BENCH_*.json` report under construction. Field order is insertion
/// order: header, then each call in sequence, then the closing brace.
pub struct Report {
    json: String,
    has_fields: bool,
}

impl Report {
    /// Opens the envelope with the shared `schema` and `quick` fields.
    pub fn new(schema: &str, quick: bool) -> Report {
        assert_json_literal(schema);
        let mut r = Report { json: String::from("{\n"), has_fields: false };
        r.field("schema", format!("\"{schema}\""));
        r.field("quick", quick);
        r
    }

    /// Appends one top-level field; `value` must already be valid JSON
    /// (numbers and booleans are; strings need quotes).
    pub fn field(&mut self, key: &str, value: impl Display) {
        assert_json_literal(key);
        if self.has_fields {
            self.json.push_str(",\n");
        }
        self.json.push_str(&format!("  \"{key}\": {value}"));
        self.has_fields = true;
    }

    /// Appends the conventional `results` array; each row must be a
    /// complete JSON object (the binaries format rows with their own
    /// precision).
    pub fn results<I>(&mut self, rows: I)
    where
        I: IntoIterator,
        I::Item: Display,
    {
        self.array("results", rows);
    }

    /// Appends a named array of pre-rendered JSON values.
    pub fn array<I>(&mut self, key: &str, rows: I)
    where
        I: IntoIterator,
        I::Item: Display,
    {
        assert_json_literal(key);
        if self.has_fields {
            self.json.push_str(",\n");
        }
        self.json.push_str(&format!("  \"{key}\": [\n"));
        let rows: Vec<String> = rows.into_iter().map(|r| r.to_string()).collect();
        for (i, row) in rows.iter().enumerate() {
            self.json.push_str("    ");
            self.json.push_str(row);
            self.json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        self.json.push_str("  ]");
        self.has_fields = true;
    }

    /// Closes the envelope, writes it to `path`, and prints the
    /// conventional `wrote <path>` line.
    ///
    /// # Panics
    ///
    /// If the file cannot be written.
    pub fn write(mut self, path: &str) {
        self.json.push_str("\n}\n");
        std::fs::write(path, &self.json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_envelope_shape() {
        let mut r = Report::new("ipg-bench-test/1", true);
        r.results(["{\"a\": 1}".to_string(), "{\"a\": 2}".to_string()]);
        r.field("summary", format!("{:.2}", 1.5));
        r.json.push_str("\n}\n");
        let s = r.json;
        assert!(s.starts_with("{\n  \"schema\": \"ipg-bench-test/1\",\n  \"quick\": true,"));
        assert!(s.contains("\"results\": [\n    {\"a\": 1},\n    {\"a\": 2}\n  ]"));
        assert!(s.ends_with("\"summary\": 1.50\n}\n"));
    }

    #[test]
    #[should_panic(expected = "not JSON-literal-safe")]
    fn literal_guard_rejects_quotes() {
        assert_json_literal("evil\"name");
    }
}
