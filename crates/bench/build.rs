//! Generates compiled recursive-descent parsers (via `ipg-core::codegen`)
//! for the codegen-compatible format grammars, so the Fig. 13 benches can
//! compare *compiled* IPG parsers against the baselines — matching the
//! paper's setting, where the OCaml generator emits C++ that is compiled
//! before measurement.
//!
//! ELF and DNS use parent-referencing local rules (supported by the
//! interpreter only), so their benches run interpreted; the gap is
//! discussed in EXPERIMENTS.md.

use std::path::Path;

fn main() {
    println!("cargo::rerun-if-changed=../ipg-formats/specs");
    let out_dir = std::env::var("OUT_DIR").expect("OUT_DIR set by cargo");
    let targets: &[(&str, &str)] = &[
        ("gen_zip", ipg_formats::zip::SPEC),
        ("gen_gif", ipg_formats::gif::SPEC),
        ("gen_pe", ipg_formats::pe::SPEC),
        ("gen_ipv4udp", ipg_formats::ipv4udp::SPEC),
        ("gen_png", ipg_formats::png::SPEC),
    ];
    for (name, spec) in targets {
        let grammar = ipg_core::frontend::parse_grammar(spec).expect("embedded specs are valid");
        let code = ipg_core::codegen::generate_rust(&grammar).expect("spec is codegen-compatible");
        std::fs::write(Path::new(&out_dir).join(format!("{name}.rs")), code)
            .expect("write generated parser");
    }
}
