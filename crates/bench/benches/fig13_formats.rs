//! Fig. 13 — parsing time across formats and input sizes.
//!
//! * 13a ZIP, 13b GIF, 13c PE, 13d ELF: IPG vs the Kaitai-style baseline.
//! * 13e DNS, 13f IPv4+UDP: IPG vs the Nail-style baseline.
//!
//! Two IPG series are measured where possible:
//!
//! * `ipg` — the memoizing interpreter;
//! * `ipg_gen` — the *compiled* parser emitted by `ipg-core::codegen`
//!   (built by this crate's build script), which matches the paper's
//!   setting: the authors benchmark generated C++, not an interpreter.
//!   ELF and DNS use parent-referencing local rules that codegen does not
//!   support, so they run interpreted only.
//!
//! Expected shapes (paper): Kaitai far slower on ZIP (it copies archived
//! bodies; the IPG parser skips them zero-copy — see the
//! `fig13a_zip_large_stored` group where the effect dominates); rough
//! parity on GIF and PE; parity on ELF until string tables grow large
//! (deep recursion in the IPG grammar); IPG competitive on the packet
//! formats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn zip(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13a_zip");
    for n in bench::ZIP_SIZES {
        let data = bench::zip_with_entries(n);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("ipg", n), &data, |b, d| {
            b.iter(|| ipg_formats::zip::parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("ipg_gen", n), &data, |b, d| {
            b.iter(|| bench::generated::zip::parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("kaitai", n), &data, |b, d| {
            b.iter(|| ipg_baselines::kaitai_style::parse_zip(black_box(d)).expect("valid"));
        });
    }
    group.finish();

    // The workload where zero-copy matters: large stored entries. The
    // compiled IPG parser records body *spans*; the Kaitai-style parser
    // copies every body.
    let mut group = c.benchmark_group("fig13a_zip_large_stored");
    for n in [4usize, 16, 64] {
        let data = bench::zip_with_large_stored_entries(n);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("ipg_gen", n), &data, |b, d| {
            b.iter(|| bench::generated::zip::parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("kaitai", n), &data, |b, d| {
            b.iter(|| ipg_baselines::kaitai_style::parse_zip(black_box(d)).expect("valid"));
        });
    }
    group.finish();
}

fn gif(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13b_gif");
    for n in bench::GIF_FRAMES {
        let data = bench::gif_with_frames(n);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("ipg", n), &data, |b, d| {
            b.iter(|| ipg_formats::gif::parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("ipg_gen", n), &data, |b, d| {
            b.iter(|| bench::generated::gif::parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("kaitai", n), &data, |b, d| {
            b.iter(|| ipg_baselines::kaitai_style::parse_gif(black_box(d)).expect("valid"));
        });
    }
    group.finish();
}

fn pe(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13c_pe");
    for n in bench::SECTION_SIZES {
        let data = bench::pe_with_sections(n);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("ipg", n), &data, |b, d| {
            b.iter(|| ipg_formats::pe::parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("ipg_gen", n), &data, |b, d| {
            b.iter(|| bench::generated::pe::parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("kaitai", n), &data, |b, d| {
            b.iter(|| ipg_baselines::kaitai_style::parse_pe(black_box(d)).expect("valid"));
        });
    }
    group.finish();
}

fn elf(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13d_elf");
    for n in bench::SECTION_SIZES {
        let data = bench::elf_with_sections(n);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("ipg", n), &data, |b, d| {
            b.iter(|| ipg_formats::elf::parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("kaitai", n), &data, |b, d| {
            b.iter(|| ipg_baselines::kaitai_style::parse_elf(black_box(d)).expect("valid"));
        });
    }
    group.finish();
}

fn dns(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13e_dns");
    for n in bench::DNS_ANSWERS {
        let data = bench::dns_with_answers(n);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("ipg", n), &data, |b, d| {
            b.iter(|| ipg_formats::dns::parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("nail", n), &data, |b, d| {
            b.iter(|| ipg_baselines::nail_style::parse_dns(black_box(d)).expect("valid"));
        });
    }
    group.finish();
}

fn ipv4udp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13f_ipv4udp");
    for n in bench::UDP_PAYLOADS {
        let data = bench::udp_with_payload(n);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("ipg", n), &data, |b, d| {
            b.iter(|| ipg_formats::ipv4udp::parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("ipg_gen", n), &data, |b, d| {
            b.iter(|| bench::generated::ipv4udp::parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("nail", n), &data, |b, d| {
            b.iter(|| ipg_baselines::nail_style::parse_ipv4_udp(black_box(d)).expect("valid"));
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = zip, gif, pe, elf, dns, ipv4udp
}
criterion_main!(benches);
