//! DEFLATE decode throughput: the table-driven fast path vs the seed
//! per-bit canonical decoder, over stored, fixed-Huffman, and
//! dynamic-Huffman (zlib golden fixture) streams, plus the end-to-end
//! `zip_inflate` grammar whose blackbox carries the decoder.
//!
//! Quick mode for CI smoke runs: set `IPG_BENCH_QUICK=1` to shrink warm-up
//! and measurement times. `cargo run -p bench --bin bench_inflate` emits
//! the machine-readable `BENCH_inflate.json` version of these numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn inflate_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("inflate_throughput");
    let workloads: Vec<(String, Vec<u8>)> = vec![
        ("stored/64k".into(), bench::deflate_stored_stream(64 * 1024)),
        ("fixed/64k".into(), bench::deflate_fixed_stream(64 * 1024)),
        ("dynamic/golden_2048".into(), bench::golden_fixture("golden_2048.bin")),
        ("dynamic/golden_100000".into(), bench::golden_fixture("golden_100000.bin")),
    ];
    for (name, stream) in &workloads {
        let out_len = ipg_flate::inflate(stream).expect("workload inflates").len();
        group.throughput(Throughput::Bytes(out_len as u64));
        group.bench_with_input(BenchmarkId::new("fast", name), stream, |b, s| {
            b.iter(|| ipg_flate::inflate(black_box(s)).expect("valid stream"));
        });
        group.bench_with_input(BenchmarkId::new("seed", name), stream, |b, s| {
            b.iter(|| ipg_flate::inflate_slow(black_box(s)).expect("valid stream"));
        });
    }
    group.finish();
}

fn zip_inflate_grammar(c: &mut Criterion) {
    use ipg_core::interp::Parser;

    let mut group = c.benchmark_group("zip_inflate_grammar");
    let archive = bench::zip_with_entries(4);
    let grammar = ipg_formats::zip::grammar_inflate();
    group.throughput(Throughput::Bytes(archive.len() as u64));
    group.bench_with_input(BenchmarkId::new("interp", 4), &archive, |b, a| {
        b.iter(|| Parser::new(grammar).parse(black_box(a)).expect("valid archive"));
    });
    group.finish();
}

fn configured() -> Criterion {
    let quick = std::env::var_os("IPG_BENCH_QUICK").is_some();
    let (warm, measure) = if quick { (50, 150) } else { (300, 800) };
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(warm))
        .measurement_time(std::time::Duration::from_millis(measure))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = inflate_streams, zip_inflate_grammar
}
criterion_main!(benches);
