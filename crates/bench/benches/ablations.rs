//! Ablation benches for the design choices called out in DESIGN.md §4.
//!
//! * `memoization` — the O(n²) claim of §3.3: parse the PDF subset (whose
//!   two-pass pattern re-reads object headers) with the memo table on and
//!   off.
//! * `btoi` — §7's specialized integer parsing: decode a 16-bit number via
//!   the recursive bit-level `Int` grammar of Fig. 3 vs the `u16le`
//!   builtin.
//! * `recursion_vs_array` — the Fig. 13d discussion: a chunk list parsed
//!   with the recursive `Blocks` idiom vs a counted `for` array (the
//!   shape a Kleene-star operator would compile to).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipg_core::frontend::parse_grammar;
use ipg_core::interp::Parser;
use std::hint::black_box;

fn memoization(c: &mut Criterion) {
    let g = ipg_formats::pdf::grammar();
    let mut group = c.benchmark_group("ablation_memoization");
    for n in [8usize, 32] {
        let doc = bench::pdf_with_objects(n);
        group.bench_with_input(BenchmarkId::new("memo_on", n), &doc, |b, d| {
            b.iter(|| Parser::new(g).memoize(true).parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("memo_off", n), &doc, |b, d| {
            b.iter(|| Parser::new(g).memoize(false).parse(black_box(d)).expect("valid"));
        });
    }
    group.finish();
}

fn btoi(c: &mut Criterion) {
    // Fig. 3: bit-by-bit binary number grammar.
    let slow = parse_grammar(
        r#"
        start Int;
        Int -> Int[0, EOI - 1] Digit[EOI - 1, EOI] {val = 2 * Int.val + Digit.val}
             / Digit[0, 1] {val = Digit.val};
        Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1};
        "#,
    )
    .expect("valid grammar");
    // The specialized builtin (§7's btoi).
    let fast = parse_grammar("Int := u16le;").expect("valid grammar");

    let ascii: Vec<u8> = (0..16).map(|i| if 0xbeef >> i & 1 == 1 { b'1' } else { b'0' }).collect();
    let binary = 0xbeefu16.to_le_bytes().to_vec();

    let mut group = c.benchmark_group("ablation_btoi");
    group.bench_function("grammar_int_16bit", |b| {
        let p = Parser::new(&slow);
        b.iter(|| p.parse(black_box(&ascii)).expect("valid"));
    });
    group.bench_function("builtin_u16le", |b| {
        let p = Parser::new(&fast);
        b.iter(|| p.parse(black_box(&binary)).expect("valid"));
    });
    group.finish();
}

fn recursion_vs_array(c: &mut Criterion) {
    // A file of N fixed 8-byte records, parsed three ways: the recursive
    // chunk idiom, a counted `for` array, and the Kleene-star extension
    // (the paper's proposed fix for the Fig. 13d recursion cliff).
    let recursive = parse_grammar(
        r#"
        S -> Items[0, EOI];
        Items -> Item[0, EOI] Items[Item.end, EOI] / Item[0, EOI];
        Item -> "R"[0, 1] Payload[1, 8];
        Payload := bytes;
        "#,
    )
    .expect("valid grammar");
    let array = parse_grammar(
        r#"
        S -> assert(EOI % 8 = 0) {n = EOI / 8}
             for i = 0 to n do Item[8 * i, 8 * (i + 1)];
        Item -> "R"[0, 1] Payload[1, 8];
        Payload := bytes;
        "#,
    )
    .expect("valid grammar");
    let star = parse_grammar(
        r#"
        S -> star Item;
        Item -> "R"[0, 1] Payload[1, 8];
        Payload := bytes;
        "#,
    )
    .expect("valid grammar");

    let mut group = c.benchmark_group("ablation_recursion_vs_array");
    for n in [64usize, 512] {
        let mut data = Vec::with_capacity(n * 8);
        for i in 0..n {
            data.push(b'R');
            data.extend_from_slice(&(i as u32).to_le_bytes());
            data.extend_from_slice(&[0, 0, 0]);
        }
        group.bench_with_input(BenchmarkId::new("recursive_list", n), &data, |b, d| {
            let p = Parser::new(&recursive);
            b.iter(|| p.parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("for_array", n), &data, |b, d| {
            let p = Parser::new(&array);
            b.iter(|| p.parse(black_box(d)).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("kleene_star", n), &data, |b, d| {
            let p = Parser::new(&star);
            b.iter(|| p.parse(black_box(d)).expect("valid"));
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = memoization, btoi, recursion_vs_array
}
criterion_main!(benches);
