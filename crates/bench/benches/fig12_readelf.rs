//! Fig. 12c/d — `readelf -h -S --dyn-syms` comparison: IPG-based parsing
//! vs the hand-written (GNU-readelf-style) baseline.
//!
//! * *end-to-end* (Fig. 12c): parse, resolve names, and format the
//!   human-readable listing.
//! * *parsing only* (Fig. 12d): structure recognition alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn ipg_readelf_end_to_end(data: &[u8]) -> String {
    use std::fmt::Write;
    let parsed = ipg_formats::elf::parse(data).expect("valid ELF");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ELF Header: shoff={} shnum={} shstrndx={}",
        parsed.shoff, parsed.shnum, parsed.shstrndx
    );
    for (i, s) in parsed.sections.iter().enumerate() {
        let _ = writeln!(
            out,
            "  [{i:2}] {:<20} type={:<2} off={:#x} size={:#x}",
            s.name.as_deref().unwrap_or(""),
            s.sh_type,
            s.offset,
            s.size
        );
    }
    let symbols: Vec<_> = parsed
        .sections
        .iter()
        .filter_map(|s| match &s.kind {
            ipg_formats::elf::SectionKind::Symbols(v) => Some(v),
            _ => None,
        })
        .flatten()
        .collect();
    let _ = writeln!(out, "Symbols: {}", symbols.len());
    for sym in symbols {
        let _ = writeln!(
            out,
            "  {:#010x} {:5} {}",
            sym.value,
            sym.size,
            sym.name.as_deref().unwrap_or("")
        );
    }
    out
}

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12c_readelf_end_to_end");
    for n in bench::SECTION_SIZES {
        let file = bench::elf_with_sections(n);
        group.throughput(Throughput::Bytes(file.len() as u64));
        group.bench_with_input(BenchmarkId::new("ipg", n), &file, |b, f| {
            b.iter(|| ipg_readelf_end_to_end(black_box(f)));
        });
        group.bench_with_input(BenchmarkId::new("handwritten", n), &file, |b, f| {
            b.iter(|| {
                let parsed =
                    ipg_baselines::handwritten::parse_elf(black_box(f)).expect("valid ELF");
                ipg_baselines::handwritten::format_elf(&parsed, f)
            });
        });
    }
    group.finish();
}

fn parsing_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12d_readelf_parsing");
    for n in bench::SECTION_SIZES {
        let file = bench::elf_with_sections(n);
        group.throughput(Throughput::Bytes(file.len() as u64));
        group.bench_with_input(BenchmarkId::new("ipg", n), &file, |b, f| {
            b.iter(|| ipg_formats::elf::parse(black_box(f)).expect("valid ELF"));
        });
        group.bench_with_input(BenchmarkId::new("handwritten", n), &file, |b, f| {
            b.iter(|| ipg_baselines::handwritten::parse_elf(black_box(f)).expect("valid ELF"));
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = end_to_end, parsing_only
}
criterion_main!(benches);
