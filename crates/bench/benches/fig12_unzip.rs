//! Fig. 12a/b — `unzip` comparison: IPG-based extraction vs the
//! hand-written (Info-ZIP-style) baseline.
//!
//! * *end-to-end* (Fig. 12a): parse + decompress + CRC-check every entry.
//! * *parsing only* (Fig. 12b): structure recognition without touching
//!   entry bodies.
//!
//! Expected shape (paper): hand-written parsing is much faster at pure
//! parsing, but end-to-end times are close because decompression
//! dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12a_unzip_end_to_end");
    for n in bench::ZIP_SIZES {
        let archive = bench::zip_with_entries(n);
        group.throughput(Throughput::Bytes(archive.len() as u64));
        group.bench_with_input(BenchmarkId::new("ipg", n), &archive, |b, a| {
            b.iter(|| ipg_formats::zip::extract(black_box(a)).expect("valid archive"));
        });
        group.bench_with_input(BenchmarkId::new("handwritten", n), &archive, |b, a| {
            b.iter(|| ipg_baselines::handwritten::unzip(black_box(a)).expect("valid archive"));
        });
    }
    group.finish();
}

fn parsing_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12b_unzip_parsing");
    for n in bench::ZIP_SIZES {
        let archive = bench::zip_with_entries(n);
        group.throughput(Throughput::Bytes(archive.len() as u64));
        group.bench_with_input(BenchmarkId::new("ipg", n), &archive, |b, a| {
            b.iter(|| ipg_formats::zip::parse(black_box(a)).expect("valid archive"));
        });
        group.bench_with_input(BenchmarkId::new("handwritten", n), &archive, |b, a| {
            b.iter(|| ipg_baselines::handwritten::parse_zip(black_box(a)).expect("valid archive"));
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = end_to_end, parsing_only
}
criterion_main!(benches);
