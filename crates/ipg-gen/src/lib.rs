//! # ipg-gen — grammar-driven input generation
//!
//! Runs a checked Interval Parsing Grammar *backwards*: instead of parsing
//! bytes into a tree, it synthesizes random-but-valid byte inputs that the
//! grammar's parsers accept. Every format specification thereby becomes its
//! own test-input generator, and the repository's two engines (tree-walking
//! interpreter and bytecode VM) plus the handwritten/Kaitai/Nail baselines
//! can be cross-validated on inputs far beyond the hand-curated corpus —
//! the conformance-fuzzing move of the Nail/Kaitai lineage, applied to the
//! paper's §7 validation.
//!
//! ## How it works
//!
//! The walker ([`walk`]) mirrors the interpreter's big-step semantics, but
//! each *read* becomes a *choice or constraint*:
//!
//! 1. builtins allocate unknowns and write back-patchable field segments;
//! 2. interval expressions stay **symbolic** (linear forms over the
//!    unknowns, built on [`ipg_core::solver::LinExpr`]), so content may be
//!    placed before the offsets and sizes that position it are decided —
//!    exactly the inverse of backward/random-access parsing;
//! 3. predicates, switch guards, and counted-loop bounds become equations
//!    and inequalities in a journaled constraint store ([`lin`]);
//! 4. blackboxes invert through [`hooks::GenHooks`] (DEFLATE bodies are
//!    produced by compressing a random payload with `ipg-flate`);
//! 5. resolution pins the remaining unknowns — tightened sizes go tight,
//!    pointer-like unknowns are packed after the current layout, digits of
//!    backward-parsed numbers are decomposed greedily — and the sheet
//!    ([`sheet`]) is materialized into bytes.
//!
//! Generation is seeded and deterministic: same grammar, same
//! [`GenConfig`], same seed ⇒ same bytes.
//!
//! ```
//! use ipg_core::frontend::parse_grammar;
//! use ipg_gen::Generator;
//!
//! // Fig. 2 of the paper: a header stores the offset/length of the data.
//! let g = parse_grammar(
//!     r#"
//!     S -> H[0, 8] Data[H.offset, H.offset + H.length];
//!     H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
//!     Int := u32le;
//!     Data := bytes;
//!     "#,
//! )?;
//! let input = Generator::new(&g).generate_valid(7).expect("generable");
//! assert!(ipg_core::interp::Parser::new(&g).parse(&input).is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod hooks;
pub mod lin;
pub mod mutate;
pub mod sheet;
mod walk;

pub use hooks::{BlackboxPiece, GenHooks};

/// Murmur3-style avalanche. The RNG stand-in is SplitMix64, whose streams
/// for seeds `k·γ` (γ = its gamma constant) are shifted copies of each
/// other — so seeds must be *hashed*, never multiplied, into RNG states.
pub(crate) fn mix(mut z: u64) -> u64 {
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^= z >> 33;
    z = z.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

use ipg_core::check::Grammar;
use ipg_core::interp::Parser;

/// Generation limits and sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Soft cap on the generated input length (hard cap for the root
    /// slice).
    pub max_len: usize,
    /// Cap on chosen repetition counts (array lengths, chain depths, star
    /// repetitions).
    pub max_items: usize,
    /// Recursion depth limit of the walk.
    pub max_depth: usize,
    /// Attempts per seed before giving up (each attempt re-randomizes).
    pub attempts: usize,
    /// Step fuel for the verification parse in
    /// [`Generator::generate_valid`].
    pub verify_fuel: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_len: 4096,
            max_items: 4,
            max_depth: 80,
            attempts: 48,
            verify_fuel: 5_000_000,
        }
    }
}

/// A configured generator for one checked grammar.
#[derive(Debug)]
pub struct Generator<'g> {
    g: &'g Grammar,
    hooks: GenHooks,
    cfg: GenConfig,
}

impl<'g> Generator<'g> {
    /// A generator with the standard hooks and default configuration.
    pub fn new(g: &'g Grammar) -> Self {
        Generator { g, hooks: GenHooks::standard(), cfg: GenConfig::default() }
    }

    /// Replaces the blackbox hook registry.
    pub fn with_hooks(mut self, hooks: GenHooks) -> Self {
        self.hooks = hooks;
        self
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, cfg: GenConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The grammar this generator targets.
    pub fn grammar(&self) -> &'g Grammar {
        self.g
    }

    /// One raw generation attempt per configured retry: walk, solve,
    /// materialize. The result is *intended* to parse but not yet checked
    /// against an engine — use [`Generator::generate_valid`] for the
    /// checked variant.
    pub fn generate(&self, seed: u64) -> Option<Vec<u8>> {
        for attempt in 0..self.cfg.attempts as u64 {
            let rng_seed = mix(seed ^ mix(attempt.wrapping_add(1)));
            let mut walker = walk::Walker::new(self.g, &self.hooks, self.cfg, rng_seed);
            if let Some(bytes) = walker.generate() {
                return Some(bytes);
            }
        }
        None
    }

    /// Generates until the reference interpreter accepts the input (within
    /// the configured fuel), discarding the rare attempt where a heuristic
    /// in the walker (an undecidable touched-region comparison, a
    /// biased-choice overlap) produced a non-parsing candidate.
    pub fn generate_valid(&self, seed: u64) -> Option<Vec<u8>> {
        let parser = Parser::new(self.g).max_steps(self.cfg.verify_fuel);
        for attempt in 0..self.cfg.attempts as u64 {
            let rng_seed = mix(seed ^ mix(attempt.wrapping_add(1)));
            let mut walker = walk::Walker::new(self.g, &self.hooks, self.cfg, rng_seed);
            if let Some(bytes) = walker.generate() {
                if parser.parse(&bytes).is_ok() {
                    return Some(bytes);
                }
            }
        }
        None
    }
}
