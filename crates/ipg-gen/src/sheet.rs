//! The byte sheet: generated content at *symbolic* offsets.
//!
//! Interval grammars address input randomly — a directory at the end of the
//! file points at headers near the front, slices overlap, and some fields'
//! positions depend on unknowns that are only pinned at the very end (the
//! total input length, a packed section offset, the digits of a PDF xref
//! pointer). The walker therefore never writes into a flat buffer; it
//! records *segments* whose offsets are linear expressions over the
//! constraint store's unknowns, and the buffer is materialized once
//! everything is resolved.
//!
//! Three segment kinds:
//!
//! * [`Seg::Bytes`] — literal content (terminals, blackbox output);
//! * [`Seg::Pending`] — an integer field whose *value* is an unknown,
//!   encoded at materialization time (this is how a count or offset field
//!   is back-patched after layout decides it);
//! * [`Seg::Fill`] — soft filler for `bytes` regions: written only into
//!   bytes nothing else claimed, so overlapping slices never conflict with
//!   real content.

use crate::lin::{Constraints, SVal};
use ipg_core::solver::Var;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Encoding of a [`Seg::Pending`] integer field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enc {
    /// Unsigned 8-bit.
    U8,
    /// 16-bit little-endian.
    U16Le,
    /// 16-bit big-endian.
    U16Be,
    /// 32-bit little-endian.
    U32Le,
    /// 32-bit big-endian.
    U32Be,
    /// 64-bit little-endian.
    U64Le,
    /// 64-bit big-endian.
    U64Be,
    /// Zero-padded ASCII decimal of the given digit count.
    Ascii(u8),
}

impl Enc {
    /// Width in bytes.
    pub fn width(self) -> usize {
        match self {
            Enc::U8 => 1,
            Enc::U16Le | Enc::U16Be => 2,
            Enc::U32Le | Enc::U32Be => 4,
            Enc::U64Le | Enc::U64Be => 8,
            Enc::Ascii(d) => d as usize,
        }
    }

    /// Inclusive value range representable by this encoding.
    pub fn domain(self) -> (i64, i64) {
        match self {
            Enc::U8 => (0, u8::MAX as i64),
            Enc::U16Le | Enc::U16Be => (0, u16::MAX as i64),
            Enc::U32Le | Enc::U32Be => (0, u32::MAX as i64),
            Enc::U64Le | Enc::U64Be => (0, i64::MAX),
            Enc::Ascii(d) => (0, 10i64.saturating_pow(d as u32).saturating_sub(1)),
        }
    }

    fn encode(self, value: i64, out: &mut Vec<u8>) {
        out.clear();
        match self {
            Enc::U8 => out.push(value as u8),
            Enc::U16Le => out.extend_from_slice(&(value as u16).to_le_bytes()),
            Enc::U16Be => out.extend_from_slice(&(value as u16).to_be_bytes()),
            Enc::U32Le => out.extend_from_slice(&(value as u32).to_le_bytes()),
            Enc::U32Be => out.extend_from_slice(&(value as u32).to_be_bytes()),
            Enc::U64Le => out.extend_from_slice(&(value as u64).to_le_bytes()),
            Enc::U64Be => out.extend_from_slice(&(value as u64).to_be_bytes()),
            Enc::Ascii(d) => {
                let s = format!("{value:0width$}", width = d as usize);
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

/// One recorded write.
#[derive(Clone, Debug)]
pub enum Seg {
    /// Literal bytes at a symbolic offset.
    Bytes {
        /// Absolute offset expression.
        at: SVal,
        /// The content.
        bytes: Vec<u8>,
    },
    /// An integer field whose value is the unknown `var`.
    Pending {
        /// Absolute offset expression.
        at: SVal,
        /// The unknown carrying the field value.
        var: Var,
        /// Field encoding.
        enc: Enc,
    },
    /// Soft filler of symbolic length (a `bytes` region).
    Fill {
        /// Absolute offset expression.
        at: SVal,
        /// Length expression.
        len: SVal,
        /// Seed for the deterministic filler bytes.
        seed: u64,
    },
}

impl Seg {
    fn at(&self) -> &SVal {
        match self {
            Seg::Bytes { at, .. } | Seg::Pending { at, .. } | Seg::Fill { at, .. } => at,
        }
    }
}

/// The sheet: an append-only list of segments (rolled back by truncation).
#[derive(Default)]
pub struct Sheet {
    segs: Vec<Seg>,
}

impl Sheet {
    /// An empty sheet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of segments (rollback mark).
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Whether the sheet has no segments.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Drops segments recorded after `mark`.
    pub fn truncate(&mut self, mark: usize) {
        self.segs.truncate(mark);
    }

    /// Records a segment.
    pub fn push(&mut self, seg: Seg) {
        self.segs.push(seg);
    }

    /// The segments.
    pub fn segs(&self) -> &[Seg] {
        &self.segs
    }

    /// High-water mark: one past the largest offset covered by a segment
    /// whose position (and, for fills, length) is fully resolved. This is
    /// the packing cursor for free offset variables.
    pub fn resolved_extent(&self, cons: &Constraints) -> i64 {
        let mut hw = 0i64;
        for seg in &self.segs {
            let Some(at) = cons.eval(seg.at()) else { continue };
            let len = match seg {
                Seg::Bytes { bytes, .. } => bytes.len() as i64,
                Seg::Pending { enc, .. } => enc.width() as i64,
                Seg::Fill { len, .. } => match cons.eval(len) {
                    Some(l) => l,
                    None => continue,
                },
            };
            hw = hw.max(at.saturating_add(len.max(0)));
        }
        hw
    }

    /// Materializes the sheet into a buffer of `total` bytes. Hard segments
    /// (bytes, pending fields) claim their bytes and must agree wherever
    /// they overlap; fills and the global `filler` byte cover the rest.
    /// Returns `None` on a hard conflict or an out-of-range segment.
    pub fn materialize(&self, cons: &Constraints, total: usize, filler: u8) -> Option<Vec<u8>> {
        let mut buf = vec![filler; total];
        let mut claimed = vec![false; total];
        let mut scratch = Vec::with_capacity(16);

        // Pass 1: hard segments.
        for seg in &self.segs {
            let content: &[u8] = match seg {
                Seg::Bytes { bytes, .. } => bytes,
                Seg::Pending { var, enc, .. } => {
                    let value = cons.value(*var)?;
                    let (lo, hi) = enc.domain();
                    if value < lo || value > hi {
                        return None;
                    }
                    enc.encode(value, &mut scratch);
                    &scratch
                }
                Seg::Fill { .. } => continue,
            };
            let at = usize::try_from(cons.eval(seg.at())?).ok()?;
            if at.checked_add(content.len())? > total {
                return None;
            }
            for (i, &b) in content.iter().enumerate() {
                if claimed[at + i] && buf[at + i] != b {
                    return None; // conflicting hard writes
                }
                buf[at + i] = b;
                claimed[at + i] = true;
            }
        }

        // Pass 2: soft fills into unclaimed bytes only.
        for seg in &self.segs {
            let Seg::Fill { at, len, seed } = seg else { continue };
            let at = usize::try_from(cons.eval(at)?).ok()?;
            let len = usize::try_from(cons.eval(len)?).ok()?;
            if at.checked_add(len)? > total {
                return None;
            }
            let mut rng = StdRng::seed_from_u64(*seed);
            for i in 0..len {
                // Lowercase-letter filler: never an ASCII digit (so
                // `ascii_int` builtins stop cleanly at filler boundaries)
                // and never a magic/introducer byte of the corpus formats.
                let b: u8 = rng.random_range(b'a'..=b'z');
                if !claimed[at + i] {
                    buf[at + i] = b;
                    claimed[at + i] = true;
                }
            }
        }
        Some(buf)
    }
}
