//! The generator's constraint store: unknowns, linear equations,
//! inequalities and disequations over [`ipg_core::solver::LinExpr`].
//!
//! Running a grammar *backwards* turns the interpreter's arithmetic into
//! constraints. Reading a length field and using it as an interval
//! endpoint becomes, in reverse, an *unknown* whose value is pinned later —
//! by a predicate (`assert(qn = 0)` at the bottom of a counted chain), by
//! layout (a central-directory offset equals wherever the directory was
//! placed), or by nothing at all (a CRC field the grammar never checks, free
//! to fuzz). This module holds those unknowns and resolves them:
//!
//! * **equations** `e = 0` are discharged by substitution as soon as they
//!   have a single unknown (exact division over [`Rat`], so a non-integer
//!   solution is a hard failure rather than a rounding bug);
//! * **inequalities** `e ≥ 0` (interval well-formedness `0 ≤ l ≤ r ≤ EOI`)
//!   tighten variable bounds eagerly — which is also how slice sizes become
//!   *tight*: an unconstrained `EOI` ends up with a lower bound equal to the
//!   packed layout and is pinned exactly there;
//! * **disequations** `e ≠ 0` (skipped switch guards) are re-checked once
//!   everything is resolved.
//!
//! All mutations go through an undo journal so the walker can backtrack
//! across alternatives and switch cases.

use ipg_core::solver::{LinExpr, Rat, Var};

/// A symbolic `i64`: a linear expression over generator unknowns.
pub type SVal = LinExpr;

/// Constant symbolic value.
pub fn sval(n: i64) -> SVal {
    LinExpr::constant(n)
}

/// Floor of a rational.
fn rat_floor(r: Rat) -> i128 {
    let (n, d) = (r.numer(), r.denom());
    n.div_euclid(d)
}

/// Ceiling of a rational.
fn rat_ceil(r: Rat) -> i128 {
    let (n, d) = (r.numer(), r.denom());
    -((-n).div_euclid(d))
}

/// Book-keeping for one unknown.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
    /// Resolved value, if any.
    pub value: Option<i64>,
    /// Whether an inequality raised the lower bound: such variables are
    /// size/offset-like and are pinned *tight* (to `lo`) at fallback time.
    pub tightened: bool,
    /// Whether the variable participates in layout arithmetic (interval
    /// endpoints, fill lengths, equations). Non-layout variables are free
    /// field content and are sampled over their whole domain.
    pub layout: bool,
}

/// One step of the undo journal.
enum Undo {
    NewVar,
    PushEq,
    PushNeq,
    PushIneq,
    SetValue(u32),
    SetBounds(u32, i64, i64, bool),
}

/// Rollback token for [`Constraints::checkpoint`].
#[derive(Clone, Copy, Debug)]
pub struct Mark(usize);

/// The constraint store became unsatisfiable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Contradiction;

/// The constraint store.
#[derive(Default)]
pub struct Constraints {
    vars: Vec<VarInfo>,
    eqs: Vec<LinExpr>,
    neqs: Vec<LinExpr>,
    ineqs: Vec<LinExpr>,
    journal: Vec<Undo>,
}

impl Constraints {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fresh unknown with the given inclusive bounds.
    pub fn fresh(&mut self, lo: i64, hi: i64) -> Var {
        let id = self.vars.len() as u32;
        self.vars.push(VarInfo { lo, hi, value: None, tightened: false, layout: false });
        self.journal.push(Undo::NewVar);
        Var(id)
    }

    /// The info record of `v`.
    pub fn info(&self, v: Var) -> &VarInfo {
        &self.vars[v.0 as usize]
    }

    /// The resolved value of `v`, if pinned.
    pub fn value(&self, v: Var) -> Option<i64> {
        self.vars[v.0 as usize].value
    }

    /// Marks `v` as participating in layout arithmetic (not undone on
    /// rollback — a conservative over-approximation is harmless).
    pub fn mark_layout(&mut self, v: Var) {
        self.vars[v.0 as usize].layout = true;
    }

    /// Marks every variable of `e` as layout-participating.
    pub fn mark_layout_expr(&mut self, e: &LinExpr) {
        for v in e.vars().collect::<Vec<_>>() {
            self.mark_layout(v);
        }
    }

    /// Substitutes resolved variables into `e`.
    pub fn subst(&self, e: &LinExpr) -> LinExpr {
        e.substitute(|v| self.vars[v.0 as usize].value.map(Rat::from))
    }

    /// Evaluates `e` if every variable it mentions is resolved.
    pub fn eval(&self, e: &LinExpr) -> Option<i64> {
        e.eval_with(|v| self.vars[v.0 as usize].value.map(Rat::from))?.as_i64()
    }

    /// Pins `v := value`. Fails (returning `false`) when out of bounds or
    /// already pinned to a different value.
    pub fn set_value(&mut self, v: Var, value: i64) -> bool {
        let info = &mut self.vars[v.0 as usize];
        match info.value {
            Some(old) => old == value,
            None => {
                if value < info.lo || value > info.hi {
                    return false;
                }
                info.value = Some(value);
                self.journal.push(Undo::SetValue(v.0));
                true
            }
        }
    }

    fn narrow(&mut self, v: Var, lo: i64, hi: i64, from_ineq: bool) -> bool {
        let info = &self.vars[v.0 as usize];
        let (new_lo, new_hi) = (info.lo.max(lo), info.hi.min(hi));
        if new_lo > new_hi {
            return false;
        }
        if let Some(val) = info.value {
            return (new_lo..=new_hi).contains(&val);
        }
        if new_lo != info.lo || new_hi != info.hi {
            self.journal.push(Undo::SetBounds(v.0, info.lo, info.hi, info.tightened));
            let info = &mut self.vars[v.0 as usize];
            let raised = new_lo > info.lo;
            info.lo = new_lo;
            info.hi = new_hi;
            if from_ineq && raised {
                info.tightened = true;
            }
        }
        true
    }

    /// Asserts `e = 0`. Resolves immediately when at most one unknown
    /// remains; `false` on contradiction (including non-integer solutions).
    pub fn add_eq(&mut self, e: LinExpr) -> bool {
        self.mark_layout_expr(&e);
        let r = self.subst(&e);
        if r.is_constant() {
            return r.constant_term().is_zero();
        }
        if let Some((v, c, k)) = r.as_single_var() {
            // c·v + k = 0  ⇒  v = -k/c, which must be an integer.
            let val = (k.neg() * c.recip()).as_i64();
            return match val {
                Some(val) => self.set_value(v, val),
                None => false,
            };
        }
        self.eqs.push(e);
        self.journal.push(Undo::PushEq);
        true
    }

    /// Asserts `e ≠ 0` (checked at the end; immediate when constant).
    pub fn add_neq(&mut self, e: LinExpr) -> bool {
        let r = self.subst(&e);
        if r.is_constant() {
            return !r.constant_term().is_zero();
        }
        self.neqs.push(e);
        self.journal.push(Undo::PushNeq);
        true
    }

    /// Asserts `e ≥ 0`. Single-unknown inequalities tighten bounds eagerly;
    /// `false` on immediate contradiction.
    pub fn add_ineq(&mut self, e: LinExpr) -> bool {
        self.mark_layout_expr(&e);
        let r = self.subst(&e);
        if r.is_constant() {
            return r.constant_term() >= Rat::from(0);
        }
        if let Some((v, c, k)) = r.as_single_var() {
            // c·v + k ≥ 0.
            let bound = k.neg() * c.recip();
            let ok = if c > Rat::from(0) {
                let lo = rat_ceil(bound);
                i64::try_from(lo).is_ok_and(|lo| self.narrow(v, lo, i64::MAX, true))
            } else {
                let hi = rat_floor(bound);
                i64::try_from(hi).is_ok_and(|hi| self.narrow(v, i64::MIN, hi, false))
            };
            if !ok {
                return false;
            }
        }
        self.ineqs.push(e);
        self.journal.push(Undo::PushIneq);
        true
    }

    /// The possible range of `e` under current bounds (interval arithmetic);
    /// `None` on overflow.
    pub fn range(&self, e: &LinExpr) -> Option<(i128, i128)> {
        let r = self.subst(e);
        let k = r.constant_term();
        if k.denom() != 1 {
            return None;
        }
        let (mut lo, mut hi) = (k.numer(), k.numer());
        for (v, c) in r.terms() {
            if c.denom() != 1 {
                return None;
            }
            let c = c.numer();
            let info = &self.vars[v.0 as usize];
            let (a, b) = (c.checked_mul(info.lo as i128)?, c.checked_mul(info.hi as i128)?);
            lo = lo.checked_add(a.min(b))?;
            hi = hi.checked_add(a.max(b))?;
        }
        Some((lo, hi))
    }

    /// Whether `e` is provably `≥ 0` / `≤ 0` under current bounds.
    pub fn sign(&self, e: &LinExpr) -> Option<std::cmp::Ordering> {
        let (lo, hi) = self.range(e)?;
        if lo >= 0 && hi <= 0 {
            Some(std::cmp::Ordering::Equal)
        } else if lo >= 0 {
            Some(std::cmp::Ordering::Greater)
        } else if hi <= 0 {
            Some(std::cmp::Ordering::Less)
        } else {
            None
        }
    }

    /// Current rollback mark.
    pub fn checkpoint(&self) -> Mark {
        Mark(self.journal.len())
    }

    /// Rewinds to `mark`, undoing every later mutation.
    pub fn rollback(&mut self, mark: Mark) {
        while self.journal.len() > mark.0 {
            match self.journal.pop().expect("journal non-empty") {
                Undo::NewVar => {
                    self.vars.pop();
                }
                Undo::PushEq => {
                    self.eqs.pop();
                }
                Undo::PushNeq => {
                    self.neqs.pop();
                }
                Undo::PushIneq => {
                    self.ineqs.pop();
                }
                Undo::SetValue(id) => self.vars[id as usize].value = None,
                Undo::SetBounds(id, lo, hi, tightened) => {
                    let info = &mut self.vars[id as usize];
                    info.lo = lo;
                    info.hi = hi;
                    info.tightened = tightened;
                }
            }
        }
    }

    /// One propagation pass: re-solves equations whose unknown count has
    /// dropped to one and re-tightens bounds from inequalities. Returns
    /// `Ok(progress)` or `Err(Contradiction)`.
    pub fn propagate(&mut self) -> Result<bool, Contradiction> {
        let mut progress = false;
        // Equations: solve single-unknown residuals.
        for i in 0..self.eqs.len() {
            let r = self.subst(&self.eqs[i]);
            if r.is_constant() {
                if !r.constant_term().is_zero() {
                    return Err(Contradiction);
                }
                continue;
            }
            if let Some((v, c, k)) = r.as_single_var() {
                let Some(val) = (k.neg() * c.recip()).as_i64() else { return Err(Contradiction) };
                if !self.set_value(v, val) {
                    return Err(Contradiction);
                }
                progress = true;
            }
        }
        // Inequalities: tighten single-unknown residuals.
        for i in 0..self.ineqs.len() {
            let r = self.subst(&self.ineqs[i]);
            if r.is_constant() {
                if r.constant_term() < Rat::from(0) {
                    return Err(Contradiction);
                }
                continue;
            }
            if let Some((v, c, k)) = r.as_single_var() {
                let bound = k.neg() * c.recip();
                let ok = if c > Rat::from(0) {
                    let lo = rat_ceil(bound);
                    let info = &self.vars[v.0 as usize];
                    if lo > info.lo as i128 {
                        progress = true;
                    }
                    i64::try_from(lo.max(info.lo as i128))
                        .is_ok_and(|lo| self.narrow(v, lo, i64::MAX, true))
                } else {
                    let hi = rat_floor(bound);
                    let info = &self.vars[v.0 as usize];
                    if hi < info.hi as i128 {
                        progress = true;
                    }
                    i64::try_from(hi.min(info.hi as i128))
                        .is_ok_and(|hi| self.narrow(v, i64::MIN, hi, false))
                };
                if !ok {
                    return Err(Contradiction);
                }
            }
        }
        Ok(progress)
    }

    /// Unresolved variables, newest first (the fallback assignment order:
    /// content decided deep in the walk resolves before the offsets and
    /// slice sizes that were created early and depend on it).
    pub fn unresolved_newest_first(&self) -> Vec<Var> {
        (0..self.vars.len() as u32)
            .rev()
            .map(Var)
            .filter(|v| self.vars[v.0 as usize].value.is_none())
            .collect()
    }

    /// Final verification once every variable is pinned: all equations hold,
    /// all inequalities are non-negative, all disequations are non-zero.
    pub fn verify(&self) -> bool {
        self.eqs.iter().all(|e| self.eval(e) == Some(0))
            && self.ineqs.iter().all(|e| self.eval(e).is_some_and(|v| v >= 0))
            && self.neqs.iter().all(|e| self.eval(e).is_some_and(|v| v != 0))
    }

    /// Number of variables created so far.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variables exist.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unknown_equation_resolves_immediately() {
        let mut c = Constraints::new();
        let v = c.fresh(0, 100);
        // 2v - 10 = 0 → v = 5.
        let e = LinExpr::var(v).scale(Rat::from(2)).sub(&LinExpr::constant(10));
        assert!(c.add_eq(e));
        assert_eq!(c.value(v), Some(5));
    }

    #[test]
    fn non_integer_solution_is_a_contradiction() {
        let mut c = Constraints::new();
        let v = c.fresh(0, 100);
        let e = LinExpr::var(v).scale(Rat::from(2)).sub(&LinExpr::constant(5));
        assert!(!c.add_eq(e));
    }

    #[test]
    fn inequality_tightens_bounds() {
        let mut c = Constraints::new();
        let v = c.fresh(0, 1000);
        // v - 22 ≥ 0 → lo = 22, tightened.
        assert!(c.add_ineq(LinExpr::var(v).sub(&LinExpr::constant(22))));
        assert_eq!(c.info(v).lo, 22);
        assert!(c.info(v).tightened);
        // 100 - v ≥ 0 → hi = 100, not "tightened" (upper bounds don't mark).
        assert!(c.add_ineq(LinExpr::constant(100).sub(&LinExpr::var(v))));
        assert_eq!(c.info(v).hi, 100);
    }

    #[test]
    fn rollback_restores_everything() {
        let mut c = Constraints::new();
        let v = c.fresh(0, 10);
        let mark = c.checkpoint();
        let w = c.fresh(0, 10);
        assert!(c.set_value(v, 3));
        assert!(c.add_ineq(LinExpr::var(w)));
        c.rollback(mark);
        assert_eq!(c.len(), 1);
        assert_eq!(c.value(v), None);
        assert!(c.verify());
    }

    #[test]
    fn propagation_chains_through_equations() {
        let mut c = Constraints::new();
        let a = c.fresh(0, 100);
        let b = c.fresh(0, 100);
        // a - b - 2 = 0 (two unknowns: deferred), then b = 5 pins a = 7.
        assert!(c.add_eq(LinExpr::var(a).sub(&LinExpr::var(b)).sub(&LinExpr::constant(2))));
        assert!(c.set_value(b, 5));
        assert!(c.propagate().unwrap());
        assert_eq!(c.value(a), Some(7));
        assert!(c.verify());
    }

    #[test]
    fn range_uses_interval_arithmetic() {
        let mut c = Constraints::new();
        let v = c.fresh(2, 5);
        let e = LinExpr::var(v).scale(Rat::from(3)).add(&LinExpr::constant(1));
        assert_eq!(c.range(&e), Some((7, 16)));
        assert_eq!(c.sign(&e), Some(std::cmp::Ordering::Greater));
    }
}
