//! The backward walker: an *inverse interpreter* for checked IPGs.
//!
//! [`Walker::generate`] mirrors `ipg_core::interp` term for term — same
//! evaluation order (the checker's topological order), same `updStartEnd`
//! bookkeeping, same environment chaining for local rules — but where the
//! interpreter *reads* input, the walker *decides* it:
//!
//! * a builtin leaf becomes a fresh unknown plus a [`Seg::Pending`] field
//!   write (value back-patched after constraint resolution);
//! * a `bytes` leaf becomes soft filler whose length **is** its local `EOI`
//!   expression — choosing a length means resolving that unknown;
//! * predicates and switch guards become equations/inequalities
//!   ([`require`]) instead of checks;
//! * array bounds that depend on an unparsed count field are *chosen* and
//!   the count field is pinned by an equation — the reverse of reading the
//!   count and looping;
//! * blackbox rules call a [`GenHooks`] inverse (e.g. compress a payload
//!   with `ipg-flate` so the parser's `inflate` blackbox will accept it).
//!
//! Alternatives and switch cases are explored with checkpoint/rollback over
//! the constraint store and the sheet, so a contradiction (an always-invalid
//! `[1, 0]` default interval, an unsatisfiable guard) simply backtracks.
//!
//! [`Seg::Pending`]: crate::sheet::Seg::Pending
//! [`require`]: Walker::require

use crate::hooks::GenHooks;
use crate::lin::{sval, Constraints, Mark, SVal};
use crate::sheet::{Enc, Seg, Sheet};
use crate::GenConfig;
use ipg_core::check::{CAlt, CExpr, CInterval, CRuleBody, CTermKind, Grammar, NtId};
use ipg_core::env::wellknown;
use ipg_core::intern::Sym;
use ipg_core::solver::{LinExpr, Rat, Var};
use ipg_core::syntax::{BinOp, Builtin};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::HashMap;

/// The generated stand-in for a parse-tree node: the attribute environment
/// a parent rule can observe (`def` attributes plus `start`/`end`).
#[derive(Clone, Debug)]
pub(crate) struct NodeEnv {
    nt: NtId,
    attrs: Vec<(Sym, SVal)>,
    /// Touched region, local to the node's own slice.
    start: SVal,
    end: SVal,
}

impl NodeEnv {
    fn get(&self, attr: Sym) -> Option<SVal> {
        if attr == wellknown::START {
            return Some(self.start.clone());
        }
        if attr == wellknown::END {
            return Some(self.end.clone());
        }
        self.attrs.iter().rev().find(|(s, _)| *s == attr).map(|(_, v)| v.clone())
    }

    /// Re-bases `start`/`end` by the interval's left endpoint (T-NTSucc).
    fn shifted(mut self, l: &SVal) -> NodeEnv {
        self.start = self.start.add(l);
        self.end = self.end.add(l);
        self
    }
}

/// A completed sibling term, as visible to attribute references.
#[derive(Clone, Debug)]
enum TermRes {
    Node(NodeEnv),
    Array { nt: NtId, elems: Vec<NodeEnv> },
}

/// Per-alternative generation context, mirroring the interpreter's `AltCtx`.
struct Frame<'p> {
    eoi: SVal,
    /// Attribute definitions and scoped loop/existential variables, most
    /// recent last.
    env: Vec<(Sym, SVal)>,
    results: Vec<Option<TermRes>>,
    parent: Option<&'p Frame<'p>>,
    /// Touched region (`None` = nothing touched yet: `start = EOI, end = 0`).
    touched: Option<(SVal, SVal)>,
}

impl Frame<'_> {
    fn lookup(&self, sym: Sym) -> Option<SVal> {
        if let Some((_, v)) = self.env.iter().rev().find(|(s, _)| *s == sym) {
            return Some(v.clone());
        }
        self.parent.and_then(|p| p.lookup(sym))
    }

    fn lookup_outer_node(&self, nt: NtId) -> Option<&NodeEnv> {
        for res in self.results.iter().rev().flatten() {
            if let TermRes::Node(env) = res {
                if env.nt == nt {
                    return Some(env);
                }
            }
        }
        self.parent.and_then(|p| p.lookup_outer_node(nt))
    }

    fn lookup_outer_array(&self, nt: NtId) -> Option<&[NodeEnv]> {
        for res in self.results.iter().rev().flatten() {
            if let TermRes::Array { nt: ant, elems } = res {
                if *ant == nt {
                    return Some(elems);
                }
            }
        }
        self.parent.and_then(|p| p.lookup_outer_array(nt))
    }
}

/// Rollback token spanning the constraint store and the sheet.
#[derive(Clone, Copy)]
struct Checkpoint {
    cons: Mark,
    sheet: usize,
    budget: i64,
}

/// One generation attempt over a checked grammar.
pub(crate) struct Walker<'g> {
    g: &'g Grammar,
    hooks: &'g GenHooks,
    cfg: GenConfig,
    cons: Constraints,
    sheet: Sheet,
    rng: StdRng,
    /// Nonterminals currently being generated (recursion control).
    stack: Vec<NtId>,
    /// Per-attempt random recursion budget per nonterminal.
    chain_target: HashMap<NtId, usize>,
    fill_seed: u64,
    budget_used: i64,
}

impl<'g> Walker<'g> {
    pub fn new(g: &'g Grammar, hooks: &'g GenHooks, cfg: GenConfig, rng_seed: u64) -> Self {
        Walker {
            g,
            hooks,
            cfg,
            cons: Constraints::new(),
            sheet: Sheet::new(),
            rng: StdRng::seed_from_u64(rng_seed),
            stack: Vec::new(),
            chain_target: HashMap::new(),
            fill_seed: rng_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            budget_used: 0,
        }
    }

    /// Runs one attempt: walk, resolve, materialize.
    pub fn generate(&mut self) -> Option<Vec<u8>> {
        let trace = std::env::var_os("IPG_GEN_TRACE").is_some();
        let eoi_var = self.cons.fresh(0, self.cfg.max_len as i64);
        self.cons.mark_layout(eoi_var);
        let eoi = LinExpr::var(eoi_var);
        if self.gen_nt(self.g.start_nt(), sval(0), eoi, None, 0).is_none() {
            if trace {
                eprintln!("ipg-gen: walk failed");
            }
            return None;
        }
        if self.resolve().is_none() {
            if trace {
                eprintln!("ipg-gen: resolution failed");
            }
            return None;
        }
        let total = usize::try_from(self.cons.value(eoi_var)?).ok()?;
        let out = self.sheet.materialize(&self.cons, total, b'.');
        if out.is_none() && trace {
            eprintln!("ipg-gen: materialization conflict (total = {total})");
        }
        out
    }

    // ------------------------------------------------------------------
    // Resolution
    // ------------------------------------------------------------------

    /// Pins every remaining unknown: propagate equations and bound
    /// tightening to a fixpoint, then assign free variables newest-first —
    /// tightened size/offset unknowns go *tight* (their lower bound),
    /// unknowns appearing in segment offsets are packed after the current
    /// layout high-water mark, and everything else is sampled.
    fn resolve(&mut self) -> Option<()> {
        let trace = std::env::var_os("IPG_GEN_TRACE").is_some();
        loop {
            loop {
                match self.cons.propagate() {
                    Err(crate::lin::Contradiction) => {
                        if trace {
                            eprintln!("ipg-gen: propagate contradiction");
                        }
                        return None;
                    }
                    Ok(true) => continue,
                    Ok(false) => break,
                }
            }
            let unresolved = self.cons.unresolved_newest_first();
            let Some(&v) = unresolved.first() else { break };
            if !self.assign_fallback(v) {
                if trace {
                    eprintln!("ipg-gen: fallback failed for v{} {:?}", v.0, self.cons.info(v));
                }
                return None;
            }
        }
        if self.cons.verify() {
            Some(())
        } else {
            if trace {
                eprintln!("ipg-gen: final verification failed");
            }
            None
        }
    }

    /// Assigns a fallback value to `v` (and possibly to the other unknowns
    /// of a shared multi-unknown segment offset, e.g. the digits of a
    /// backward-parsed number).
    fn assign_fallback(&mut self, v: Var) -> bool {
        let hw = self.sheet.resolved_extent(&self.cons);
        let in_fill_len = |cons: &Constraints, sheet: &Sheet, x: Var| {
            sheet.segs().iter().any(|seg| match seg {
                Seg::Fill { len, .. } => !cons.subst(len).coeff(x).is_zero(),
                _ => false,
            })
        };

        // Segment-anchored occurrences of v.
        let mut seg_floor: Option<i64> = None;
        let mut group: Option<LinExpr> = None;
        for seg in self.sheet.segs() {
            let at = match seg {
                Seg::Bytes { at, .. } | Seg::Pending { at, .. } | Seg::Fill { at, .. } => at,
            };
            let r = self.cons.subst(at);
            if r.coeff(v).is_zero() {
                continue;
            }
            if let Some((sv, c, k)) = r.as_single_var() {
                if sv == v && c == Rat::from(1) {
                    if let Some(k) = k.as_i64() {
                        let floor = hw.saturating_sub(k);
                        seg_floor = Some(seg_floor.map_or(floor, |f: i64| f.max(floor)));
                        continue;
                    }
                }
            }
            if group.is_none() {
                group = Some(r);
            }
        }

        let info = self.cons.info(v).clone();

        // 1. Length-like (sizes a `bytes` fill depends on): tight if an
        //    inequality raised the floor (e.g. a blackbox payload length),
        //    otherwise a small budget-friendly sample.
        if in_fill_len(&self.cons, &self.sheet, v) {
            let value = if info.tightened {
                info.lo
            } else {
                let span = info.hi.saturating_sub(info.lo);
                info.lo + self.rng.random_range(0..=span.min(12))
            };
            return self.cons.set_value(v, value);
        }
        // 2. Pointer-like (sole unknown of a segment offset): pack after
        //    the current layout; the floor also covers back-anchored
        //    segments (offset `v - k` ⇒ `v ≥ hw + k`).
        if let Some(floor) = seg_floor {
            return self.cons.set_value(v, info.lo.max(floor));
        }
        // 3. Tightened size/offset: tight.
        if info.tightened {
            return self.cons.set_value(v, info.lo);
        }
        // 4. Shared multi-unknown offset whose unknowns are all free
        //    (the digits of a backward-parsed number): greedy bounded
        //    decomposition onto the layout cursor.
        if let Some(r) = group {
            let mut all_free = true;
            for (x, _) in r.terms() {
                if in_fill_len(&self.cons, &self.sheet, x) || self.cons.info(x).tightened {
                    all_free = false;
                    break;
                }
            }
            if all_free {
                return self.pack_group(&r, hw);
            }
        }
        // 5. Everything else: sampled — small when layout-relevant, whole
        //    domain for free field content.
        let value = if info.layout {
            let span = info.hi.saturating_sub(info.lo);
            info.lo + self.rng.random_range(0..=span.min(12))
        } else {
            self.sample_range(info.lo, info.hi)
        };
        self.cons.set_value(v, value)
    }

    /// Greedy bounded decomposition: assigns all unknowns of `residual`
    /// (a segment offset) so the offset lands exactly on `target`. Handles
    /// the positional-digit case (coefficients 10^i, digits bounded 0–9).
    fn pack_group(&mut self, residual: &LinExpr, target: i64) -> bool {
        let k = residual.constant_term();
        if k.denom() != 1 {
            return false;
        }
        let mut remaining = target as i128 - k.numer();
        let mut terms: Vec<(Var, i128)> = Vec::new();
        for (var, c) in residual.terms() {
            if c.denom() != 1 {
                return false;
            }
            terms.push((var, c.numer()));
        }
        terms.sort_by_key(|&(_, c)| std::cmp::Reverse(c.abs()));
        for (var, c) in terms {
            if c == 0 {
                return false;
            }
            let info = self.cons.info(var).clone();
            let ideal = remaining.div_euclid(c);
            let value = ideal.clamp(info.lo as i128, info.hi as i128);
            let Ok(value) = i64::try_from(value) else { return false };
            if !self.cons.set_value(var, value) {
                return false;
            }
            remaining -= c * value as i128;
        }
        remaining == 0
    }

    // ------------------------------------------------------------------
    // The walk proper
    // ------------------------------------------------------------------

    fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            cons: self.cons.checkpoint(),
            sheet: self.sheet.len(),
            budget: self.budget_used,
        }
    }

    fn rollback(&mut self, cp: Checkpoint) {
        self.cons.rollback(cp.cons);
        self.sheet.truncate(cp.sheet);
        self.budget_used = cp.budget;
    }

    fn ck(&mut self, ok: bool) -> Option<()> {
        if ok {
            Some(())
        } else {
            None
        }
    }

    /// `s ⊢ A ⇓ bytes` backwards: generates content for `nt` on the slice
    /// starting at absolute offset `base` with (symbolic) length `eoi`.
    fn gen_nt(
        &mut self,
        nt: NtId,
        base: SVal,
        eoi: SVal,
        parent: Option<&Frame<'_>>,
        depth: usize,
    ) -> Option<NodeEnv> {
        if depth > self.cfg.max_depth {
            return None;
        }
        let g = self.g;
        let rule = g.rule(nt);
        match &rule.body {
            CRuleBody::Builtin(b) => self.gen_builtin(nt, *b, base, eoi),
            CRuleBody::Blackbox(idx) => self.gen_blackbox(nt, *idx, base, eoi),
            CRuleBody::Alts(alts) => {
                let order = self.alt_order(nt, alts);
                for alt_idx in order {
                    let cp = self.checkpoint();
                    self.stack.push(nt);
                    let res =
                        self.gen_alt(nt, &alts[alt_idx], base.clone(), eoi.clone(), parent, depth);
                    self.stack.pop();
                    match res {
                        Some(env) => return Some(env),
                        None => self.rollback(cp),
                    }
                }
                None
            }
        }
    }

    /// Alternative try-order: random, except that once a nonterminal's
    /// per-attempt recursion budget is exhausted (or the byte budget is),
    /// alternatives that recurse into an in-progress nonterminal are
    /// demoted behind the non-recursive ones.
    fn alt_order(&mut self, nt: NtId, alts: &'g [CAlt]) -> Vec<usize> {
        let on_stack = self.stack.iter().filter(|&&s| s == nt).count();
        let max_items = self.cfg.max_items.max(1);
        let target = *self
            .chain_target
            .entry(nt)
            .or_insert_with(|| 1 + (self.rng.random_range(0..max_items as u64) as usize));
        let over = on_stack >= target
            || self.budget_used > self.cfg.max_len as i64
            || self.stack.len() >= self.cfg.max_depth;
        let recursive = |alt: &CAlt| {
            alt.terms.iter().any(|t| {
                let callees: Vec<NtId> = match &t.kind {
                    CTermKind::Symbol { nt, .. }
                    | CTermKind::Array { nt, .. }
                    | CTermKind::Star { nt, .. } => vec![*nt],
                    CTermKind::Switch { cases } => cases.iter().map(|c| c.nt).collect(),
                    _ => vec![],
                };
                callees.iter().any(|c| self.stack.contains(c) || *c == nt)
            })
        };
        let mut idxs: Vec<usize> = (0..alts.len()).collect();
        // Fisher–Yates.
        for i in (1..idxs.len()).rev() {
            let j = self.rng.random_range(0..=(i as u64)) as usize;
            idxs.swap(i, j);
        }
        if over {
            idxs.sort_by_key(|&i| recursive(&alts[i]));
        }
        idxs
    }

    fn gen_alt(
        &mut self,
        nt: NtId,
        alt: &'g CAlt,
        base: SVal,
        eoi: SVal,
        parent: Option<&Frame<'_>>,
        depth: usize,
    ) -> Option<NodeEnv> {
        let mut frame = Frame {
            eoi: eoi.clone(),
            env: Vec::new(),
            results: vec![None; alt.n_terms],
            parent,
            touched: None,
        };
        for term in &alt.terms {
            self.eval_term(&term.kind, term.orig_index, &base, &mut frame, depth)?;
        }
        let (start, end) = match frame.touched {
            Some((s, e)) => (s, e),
            None => (eoi, sval(0)), // R-AltSucc initial: start = EOI, end = 0
        };
        Some(NodeEnv { nt, attrs: frame.env, start, end })
    }

    fn eval_term(
        &mut self,
        kind: &'g CTermKind,
        orig_index: usize,
        base: &SVal,
        frame: &mut Frame<'_>,
        depth: usize,
    ) -> Option<()> {
        match kind {
            CTermKind::Terminal { bytes, interval } => {
                let (l, r) = self.eval_interval(interval, frame)?;
                let width_ok =
                    self.cons.add_ineq(r.sub(&l).sub(&LinExpr::constant(bytes.len() as i64)));
                self.ck(width_ok)?;
                if !bytes.is_empty() {
                    self.sheet.push(Seg::Bytes { at: base.add(&l), bytes: bytes.to_vec() });
                    self.budget_used += bytes.len() as i64;
                    self.upd_touched(frame, l, r, true);
                }
                Some(())
            }
            CTermKind::Symbol { nt: callee, interval } => {
                let (l, r) = self.eval_interval(interval, frame)?;
                let child = self.call_child(*callee, &l, &r, base, frame, depth)?;
                self.finish_child(child, l, orig_index, frame)
            }
            CTermKind::AttrDef { attr, expr } => {
                let v = self.eval_expr(expr, frame)?;
                frame.env.push((*attr, v));
                Some(())
            }
            CTermKind::Predicate { expr } => {
                for _ in 0..24 {
                    let cp = self.checkpoint();
                    if self.require(expr, frame, true) {
                        return Some(());
                    }
                    self.rollback(cp);
                }
                None
            }
            CTermKind::Array { var, from, to, nt: elem_nt, interval } => {
                let f = self.eval_expr(from, frame)?;
                let t = self.eval_expr(to, frame)?;
                let f_i = self.force_concrete(&f)?;
                let count = match self.cons.eval(&t) {
                    Some(tv) => tv.saturating_sub(f_i).max(0),
                    None => {
                        let c = self.choose_count(0);
                        let eq_ok = self.cons.add_eq(t.sub(&f).sub(&LinExpr::constant(c)));
                        self.ck(eq_ok)?;
                        c
                    }
                };
                if count > 4 * self.cfg.max_items as i64 + 16 {
                    return None; // runaway corpus loop
                }
                let mut elems = Vec::with_capacity(count as usize);
                frame.env.push((*var, sval(f_i)));
                let mut ok = true;
                for k in f_i..f_i + count {
                    let last = frame.env.len() - 1;
                    frame.env[last].1 = sval(k);
                    let Some((l, r)) = self.eval_interval(interval, frame) else {
                        ok = false;
                        break;
                    };
                    let Some(child) = self.call_child(*elem_nt, &l, &r, base, frame, depth) else {
                        ok = false;
                        break;
                    };
                    let (cs, ce) = (child.start.clone(), child.end.clone());
                    let b = self.decide_nonzero(&ce)?;
                    elems.push(child.shifted(&l));
                    self.upd_touched(frame, l.add(&cs), l.add(&ce), b);
                }
                frame.env.pop();
                if !ok {
                    return None;
                }
                frame.results[orig_index] = Some(TermRes::Array { nt: *elem_nt, elems });
                Some(())
            }
            CTermKind::Star { nt: elem_nt, interval } => {
                let (l, r) = self.eval_interval(interval, frame)?;
                // One-or-more: count ∈ [1, max_items + 1].
                let count = 1 + self.choose_count(0);
                let mut pos = sval(0);
                let mut elems = Vec::new();
                for _ in 0..count {
                    let el = l.add(&pos);
                    let child = self.call_child(*elem_nt, &el, &r, base, frame, depth)?;
                    let ce = child.end.clone();
                    // Star demands progress; generate only progressing
                    // repetitions so parse and generation stop identically.
                    if !self.decide_nonzero(&ce)? {
                        return None;
                    }
                    elems.push(child.shifted(&el));
                    pos = pos.add(&ce);
                }
                self.upd_touched(frame, l.clone(), l.add(&pos), true);
                frame.results[orig_index] = Some(TermRes::Array { nt: *elem_nt, elems });
                Some(())
            }
            CTermKind::Switch { cases } => {
                let mut order: Vec<usize> = (0..cases.len()).collect();
                for i in (1..order.len()).rev() {
                    let j = self.rng.random_range(0..=(i as u64)) as usize;
                    order.swap(i, j);
                }
                for ci in order {
                    let cp = self.checkpoint();
                    let mut ok = true;
                    for case in &cases[..ci] {
                        if let Some(guard) = &case.cond {
                            if !self.require(guard, frame, false) {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        if let Some(guard) = &cases[ci].cond {
                            ok = self.require(guard, frame, true);
                        }
                    }
                    if ok {
                        if let Some((l, r)) = self.eval_interval(&cases[ci].interval, frame) {
                            if let Some(child) =
                                self.call_child(cases[ci].nt, &l, &r, base, frame, depth)
                            {
                                self.finish_child(child, l, orig_index, frame)?;
                                return Some(());
                            }
                        }
                    }
                    self.rollback(cp);
                }
                None
            }
        }
    }

    /// Generates a callee on `[l, r)` of the current slice, mirroring
    /// T-NTSucc's environment threading for local rules.
    fn call_child(
        &mut self,
        callee: NtId,
        l: &SVal,
        r: &SVal,
        base: &SVal,
        frame: &Frame<'_>,
        depth: usize,
    ) -> Option<NodeEnv> {
        let local = self.g.rule(callee).is_local;
        let child_base = base.add(l);
        let child_eoi = r.sub(l);
        let parent = if local { Some(frame) } else { None };
        self.gen_nt(callee, child_base, child_eoi, parent, depth + 1)
    }

    /// Stores a symbol/switch child result and widens the touched region.
    fn finish_child(
        &mut self,
        child: NodeEnv,
        l: SVal,
        orig_index: usize,
        frame: &mut Frame<'_>,
    ) -> Option<()> {
        let (cs, ce) = (child.start.clone(), child.end.clone());
        let b = self.decide_nonzero(&ce)?;
        frame.results[orig_index] = Some(TermRes::Node(child.shifted(&l)));
        self.upd_touched(frame, l.add(&cs), l.add(&ce), b);
        Some(())
    }

    /// Evaluates an interval and records its well-formedness constraints
    /// `0 ≤ l ≤ r ≤ EOI`.
    fn eval_interval(
        &mut self,
        interval: &'g CInterval,
        frame: &mut Frame<'_>,
    ) -> Option<(SVal, SVal)> {
        let l = self.eval_expr(&interval.lo, frame)?;
        let r = self.eval_expr(&interval.hi, frame)?;
        let ok = self.cons.add_ineq(l.clone())
            && self.cons.add_ineq(r.sub(&l))
            && self.cons.add_ineq(frame.eoi.sub(&r));
        self.ck(ok)?;
        Some((l, r))
    }

    /// `updStartEnd`, symbolically. Undecidable min/max comparisons fall
    /// back to the sequential heuristic (keep the earlier start, take the
    /// newer end); the post-generation parse check catches the rare miss.
    fn upd_touched(&mut self, frame: &mut Frame<'_>, l: SVal, r: SVal, b: bool) {
        if !b {
            return;
        }
        frame.touched = Some(match frame.touched.take() {
            None => (l, r),
            Some((s, e)) => {
                let s2 = match self.cons.sign(&s.sub(&l)) {
                    Some(Ordering::Less) | Some(Ordering::Equal) => s,
                    Some(Ordering::Greater) => l,
                    None => s,
                };
                let e2 = match self.cons.sign(&e.sub(&r)) {
                    Some(Ordering::Greater) | Some(Ordering::Equal) => e,
                    Some(Ordering::Less) => r,
                    None => r,
                };
                (s2, e2)
            }
        });
    }

    /// Whether `e` (an `end` value, always ≥ 0) is non-zero. Undecidable
    /// cases are *forced* non-zero with an inequality, trading a sliver of
    /// generation space (empty regions) for a sound answer.
    fn decide_nonzero(&mut self, e: &SVal) -> Option<bool> {
        if let Some(v) = self.cons.eval(e) {
            return Some(v != 0);
        }
        match self.cons.range(e) {
            Some((lo, _)) if lo >= 1 => Some(true),
            Some((_, hi)) if hi <= 0 => Some(false),
            _ => {
                let ok = self.cons.add_ineq(e.sub(&LinExpr::constant(1)));
                self.ck(ok)?;
                Some(true)
            }
        }
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    fn gen_builtin(&mut self, nt: NtId, b: Builtin, base: SVal, eoi: SVal) -> Option<NodeEnv> {
        let enc = match b {
            Builtin::U8 => Some(Enc::U8),
            Builtin::U16Le => Some(Enc::U16Le),
            Builtin::U16Be => Some(Enc::U16Be),
            Builtin::U32Le => Some(Enc::U32Le),
            Builtin::U32Be => Some(Enc::U32Be),
            Builtin::U64Le => Some(Enc::U64Le),
            Builtin::U64Be => Some(Enc::U64Be),
            Builtin::AsciiInt | Builtin::Bytes => None,
        };
        if let Some(enc) = enc {
            let w = enc.width() as i64;
            let fits = self.cons.add_ineq(eoi.sub(&LinExpr::constant(w)));
            self.ck(fits)?;
            let (lo, hi) = enc.domain();
            let var = self.cons.fresh(lo, hi);
            self.sheet.push(Seg::Pending { at: base, var, enc });
            self.budget_used += w;
            return Some(NodeEnv {
                nt,
                attrs: vec![(wellknown::VAL, LinExpr::var(var))],
                start: sval(0),
                end: sval(w),
            });
        }
        match b {
            Builtin::AsciiInt => {
                // Digit count: as wide as the slice allows (zero-padded
                // values parse identically), capped so values fit i64
                // comfortably and stay decodable.
                let d = match self.cons.eval(&eoi) {
                    Some(n) if n >= 1 => n.min(7) as u8,
                    Some(_) => return None,
                    None => {
                        let fits = self.cons.add_ineq(eoi.sub(&LinExpr::constant(3)));
                        self.ck(fits)?;
                        3
                    }
                };
                let enc = Enc::Ascii(d);
                let (lo, hi) = enc.domain();
                let var = self.cons.fresh(lo, hi);
                self.sheet.push(Seg::Pending { at: base, var, enc });
                self.budget_used += d as i64;
                Some(NodeEnv {
                    nt,
                    attrs: vec![(wellknown::VAL, LinExpr::var(var))],
                    start: sval(0),
                    end: sval(d as i64),
                })
            }
            Builtin::Bytes => {
                // Consumes the whole slice: `val = end = EOI`, content is
                // soft filler of exactly that (possibly still unknown)
                // length.
                self.fill_seed = self.fill_seed.wrapping_add(0x9e37_79b9);
                self.cons.mark_layout_expr(&eoi);
                self.sheet.push(Seg::Fill { at: base, len: eoi.clone(), seed: self.fill_seed });
                self.budget_used += self.cons.eval(&eoi).unwrap_or(8);
                Some(NodeEnv {
                    nt,
                    attrs: vec![(wellknown::VAL, eoi.clone())],
                    start: sval(0),
                    end: eoi,
                })
            }
            _ => unreachable!("fixed-width handled above"),
        }
    }

    fn gen_blackbox(&mut self, nt: NtId, idx: usize, base: SVal, eoi: SVal) -> Option<NodeEnv> {
        let bb = &self.g.blackboxes()[idx];
        let hook = self.hooks.get(&bb.name)?;
        let budget =
            usize::try_from((self.cfg.max_len as i64 - self.budget_used).max(16)).unwrap_or(16);
        let piece = hook(&mut self.rng, budget)?;
        let n = piece.bytes.len() as i64;
        let fits = self.cons.add_ineq(eoi.sub(&LinExpr::constant(n)));
        self.ck(fits)?;
        let mut attrs = Vec::new();
        for (name, value) in bb.attrs.iter().zip(&piece.attr_values) {
            if let Some(sym) = self.g.attr_sym(name) {
                attrs.push((sym, sval(*value)));
            }
        }
        self.sheet.push(Seg::Bytes { at: base, bytes: piece.bytes });
        self.budget_used += n;
        let start = if n > 0 { sval(0) } else { eoi };
        Some(NodeEnv { nt, attrs, start, end: sval(n) })
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn choose_count(&mut self, min: i64) -> i64 {
        let cap = if self.budget_used > self.cfg.max_len as i64 {
            min
        } else {
            self.cfg.max_items as i64
        };
        self.rng.random_range(min..=cap.max(min))
    }

    /// Pins every unresolved variable of `e` to a sampled value and
    /// evaluates. The sampling bias: full domain for small domains, mostly
    /// small values for wide ones (sizes).
    fn force_concrete(&mut self, e: &SVal) -> Option<i64> {
        let vars: Vec<Var> = self.cons.subst(e).vars().collect();
        for v in vars {
            let info = self.cons.info(v).clone();
            let value = self.sample_range(info.lo, info.hi);
            if !self.cons.set_value(v, value) {
                return None;
            }
        }
        self.cons.eval(e)
    }

    fn sample_range(&mut self, lo: i64, hi: i64) -> i64 {
        let span = hi.saturating_sub(lo);
        if span <= 1024 {
            lo + self.rng.random_range(0..=span.max(0))
        } else if self.rng.random_range(0..2u32) == 0 {
            lo + self.rng.random_range(0..=16i64)
        } else {
            lo + self.rng.random_range(0..=span.min(65_535))
        }
    }

    fn eval_expr(&mut self, e: &'g CExpr, frame: &mut Frame<'_>) -> Option<SVal> {
        match e {
            CExpr::Num(n) => Some(sval(*n)),
            CExpr::Eoi => Some(frame.eoi.clone()),
            CExpr::Local(sym) => frame.lookup(*sym),
            CExpr::Bin(op, a, b) => {
                let a = self.eval_expr(a, frame)?;
                let b = self.eval_expr(b, frame)?;
                self.eval_binop(*op, a, b)
            }
            CExpr::Cond(c, t, f) => {
                let cv = self.eval_expr(c, frame)?;
                let cv = match self.cons.eval(&cv) {
                    Some(v) => v,
                    None => self.force_concrete(&cv)?,
                };
                if cv != 0 {
                    self.eval_expr(t, frame)
                } else {
                    self.eval_expr(f, frame)
                }
            }
            CExpr::NtAttr { term, nt, attr } => {
                let res = frame.results[*term].as_ref()?;
                node_attr(res, *nt, *attr)
            }
            CExpr::OuterAttr { nt, attr } => frame.lookup_outer_node(*nt)?.get(*attr),
            CExpr::ElemAttr { term, nt, index, attr } => {
                let idx = self.eval_expr(index, frame)?;
                let idx = self.force_concrete(&idx)?;
                let Some(TermRes::Array { nt: ant, elems }) = frame.results[*term].as_ref() else {
                    return None;
                };
                if *ant != *nt || idx < 0 {
                    return None;
                }
                elems.get(idx as usize)?.get(*attr)
            }
            CExpr::OuterElem { nt, index, attr } => {
                let idx = self.eval_expr(index, frame)?;
                let idx = self.force_concrete(&idx)?;
                if idx < 0 {
                    return None;
                }
                let elem = frame.lookup_outer_array(*nt)?.get(idx as usize)?.clone();
                elem.get(*attr)
            }
            CExpr::Exists { var, term, nt, cond, then, els } => {
                let n = match term {
                    Some(t) => match frame.results[*t].as_ref()? {
                        TermRes::Array { nt: ant, elems } if *ant == *nt => elems.len(),
                        _ => return None,
                    },
                    None => frame.lookup_outer_array(*nt)?.len(),
                };
                frame.env.push((*var, sval(0)));
                let mut found = None;
                for k in 0..n {
                    let last = frame.env.len() - 1;
                    frame.env[last].1 = sval(k as i64);
                    let cv = match self.eval_expr(cond, frame) {
                        Some(cv) => cv,
                        None => {
                            frame.env.pop();
                            return None;
                        }
                    };
                    let cv = match self.cons.eval(&cv) {
                        Some(v) => Some(v),
                        None => self.force_concrete(&cv),
                    };
                    match cv {
                        Some(0) => continue,
                        Some(_) => {
                            found = Some(k as i64);
                            break;
                        }
                        None => {
                            frame.env.pop();
                            return None;
                        }
                    }
                }
                let out = match found {
                    Some(k) => {
                        let last = frame.env.len() - 1;
                        frame.env[last].1 = sval(k);
                        self.eval_expr(then, frame)
                    }
                    None => {
                        frame.env.pop();
                        return self.eval_expr(els, frame);
                    }
                };
                frame.env.pop();
                out
            }
        }
    }

    fn eval_binop(&mut self, op: BinOp, a: SVal, b: SVal) -> Option<SVal> {
        let ac = self.cons.eval(&a);
        let bc = self.cons.eval(&b);
        match op {
            BinOp::Add => Some(a.add(&b)),
            BinOp::Sub => Some(a.sub(&b)),
            BinOp::Mul => {
                if let Some(av) = ac {
                    Some(b.scale(Rat::from(av)))
                } else if let Some(bv) = bc {
                    Some(a.scale(Rat::from(bv)))
                } else {
                    let av = self.force_concrete(&a)?;
                    Some(b.scale(Rat::from(av)))
                }
            }
            BinOp::Div => {
                if let (Some(av), Some(bv)) = (ac, bc) {
                    if bv == 0 {
                        return None;
                    }
                    return Some(sval(av.wrapping_div(bv)));
                }
                if let Some(c) = bc {
                    if c > 0 {
                        // Inverse trick: pick the quotient, pin the (single)
                        // unknown of the dividend to an exact multiple.
                        let r = self.cons.subst(&a);
                        if let Some((v, coeff, k)) = r.as_single_var() {
                            if coeff == Rat::from(1) {
                                if let Some(k) = k.as_i64() {
                                    let info = self.cons.info(v).clone();
                                    for _ in 0..8 {
                                        let q = self.choose_count(0);
                                        let cand = q * c - k;
                                        if cand >= info.lo && cand <= info.hi {
                                            if self.cons.set_value(v, cand) {
                                                return Some(sval(q));
                                            }
                                            return None;
                                        }
                                    }
                                    // Fall through to plain concretization.
                                }
                            }
                        }
                    }
                }
                let av = self.force_concrete(&a)?;
                let bv = match bc {
                    Some(v) => v,
                    None => self.force_concrete(&b)?,
                };
                if bv == 0 {
                    return None;
                }
                Some(sval(av.wrapping_div(bv)))
            }
            BinOp::Mod
            | BinOp::Shl
            | BinOp::Shr
            | BinOp::BitAnd
            | BinOp::BitOr
            | BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Gt
            | BinOp::Le
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or => {
                let av = match ac {
                    Some(v) => v,
                    None => self.force_concrete(&a)?,
                };
                let bv = match bc {
                    Some(v) => v,
                    None => self.force_concrete(&b)?,
                };
                ipg_core::interp::eval_binop(op, av, bv).map(sval)
            }
        }
    }

    /// Records the constraints that make predicate `e` evaluate truthy
    /// (`want`) or falsy (`!want`), mirroring the interpreter's boolean
    /// encoding (zero = false). Non-linear subterms fall back to
    /// sample-and-check with rollback.
    fn require(&mut self, e: &'g CExpr, frame: &mut Frame<'_>, want: bool) -> bool {
        match e {
            CExpr::Num(n) => (*n != 0) == want,
            CExpr::Bin(op, a, b) => match (op, want) {
                (BinOp::And, true) | (BinOp::Or, false) => {
                    self.require(a, frame, want) && self.require(b, frame, want)
                }
                (BinOp::And, false) | (BinOp::Or, true) => {
                    let first_a = self.rng.random_range(0..2u32) == 0;
                    let (x, y) = if first_a { (a, b) } else { (b, a) };
                    let cp = self.checkpoint();
                    if self.require(x, frame, want) {
                        return true;
                    }
                    self.rollback(cp);
                    self.require(y, frame, want)
                }
                (BinOp::Eq, w) | (BinOp::Ne, w) => {
                    let positive = (*op == BinOp::Eq) == w;
                    // Peephole: `x / c = k` (a truncating-division guard)
                    // becomes the exact interval `k·c ≤ x < (k+1)·c`.
                    if positive {
                        if let Some(done) = self.require_div_eq(a, b, frame) {
                            return done;
                        }
                    }
                    let Some(x) = self.eval_expr(a, frame) else { return false };
                    let Some(y) = self.eval_expr(b, frame) else { return false };
                    if positive {
                        self.cons.add_eq(x.sub(&y))
                    } else {
                        self.cons.add_neq(x.sub(&y))
                    }
                }
                (BinOp::Le, true) | (BinOp::Gt, false) => self.require_ge(b, a, 0, frame),
                (BinOp::Le, false) | (BinOp::Gt, true) => self.require_ge(a, b, 1, frame),
                (BinOp::Lt, true) | (BinOp::Ge, false) => self.require_ge(b, a, 1, frame),
                (BinOp::Lt, false) | (BinOp::Ge, true) => self.require_ge(a, b, 0, frame),
                _ => self.require_sampled(e, frame, want),
            },
            CExpr::Cond(c, t, f) => {
                let Some(cv) = self.eval_expr(c, frame) else { return false };
                let cv = match self.cons.eval(&cv) {
                    Some(v) => Some(v),
                    None => self.force_concrete(&cv),
                };
                match cv {
                    Some(0) => self.require(f, frame, want),
                    Some(_) => self.require(t, frame, want),
                    None => false,
                }
            }
            _ => self.require_sampled(e, frame, want),
        }
    }

    /// `x - y - margin ≥ 0`.
    fn require_ge(
        &mut self,
        x: &'g CExpr,
        y: &'g CExpr,
        margin: i64,
        frame: &mut Frame<'_>,
    ) -> bool {
        let Some(xv) = self.eval_expr(x, frame) else { return false };
        let Some(yv) = self.eval_expr(y, frame) else { return false };
        self.cons.add_ineq(xv.sub(&yv).sub(&LinExpr::constant(margin)))
    }

    /// Peephole for `e / c = k` with constant `c > 0`, `k`: adds
    /// `k·c ≤ e ≤ k·c + c - 1`. Returns `None` when the shape doesn't
    /// match (caller falls through to the generic path).
    fn require_div_eq(
        &mut self,
        a: &'g CExpr,
        b: &'g CExpr,
        frame: &mut Frame<'_>,
    ) -> Option<bool> {
        let (div, rhs) = match (a, b) {
            (CExpr::Bin(BinOp::Div, x, c), k) => ((x, c), k),
            (k, CExpr::Bin(BinOp::Div, x, c)) => ((x, c), k),
            _ => return None,
        };
        let CExpr::Num(c) = &**div.1 else { return None };
        if *c <= 0 {
            return None;
        }
        let x = self.eval_expr(div.0, frame)?;
        let kx = self.eval_expr(rhs, frame)?;
        let k = self.cons.eval(&kx)?;
        if k < 0 {
            // The engines divide truncating toward zero; for a negative
            // quotient the interval below would over-approximate. Fall
            // through to the generic sample-and-check path.
            return None;
        }
        let lo = k.checked_mul(*c)?;
        let ok = self.cons.add_ineq(x.sub(&LinExpr::constant(lo)))
            && self.cons.add_ineq(LinExpr::constant(lo + *c - 1).sub(&x));
        Some(ok)
    }

    /// Fallback: concretize and check, resampling on misses.
    fn require_sampled(&mut self, e: &'g CExpr, frame: &mut Frame<'_>, want: bool) -> bool {
        for _ in 0..48 {
            let cp = self.checkpoint();
            if let Some(v) = self.eval_expr(e, frame).and_then(|sv| self.force_concrete(&sv)) {
                if (v != 0) == want {
                    return true;
                }
            }
            self.rollback(cp);
        }
        false
    }
}

/// Mirror of the interpreter's `node_attr`: arrays answer for their last
/// element (the `star Item "trail"` sequencing idiom).
fn node_attr(res: &TermRes, nt: NtId, attr: Sym) -> Option<SVal> {
    match res {
        TermRes::Node(env) if env.nt == nt => env.get(attr),
        TermRes::Array { nt: ant, elems } if *ant == nt => elems.last()?.get(attr),
        _ => None,
    }
}
