//! The mutation stage of the conformance harness: deterministic, seeded
//! corruptions of a generated (or corpus) input. Both engines must react
//! *identically* to every mutant — same accept/reject outcome, same tree,
//! same deepest error — which is the cross-engine analogue of the paper's
//! "parsers must reject the same corruptions" security argument.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The corruption kinds the harness sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// Flip one bit.
    BitFlip,
    /// Overwrite one byte.
    ByteSet,
    /// Truncate to a prefix.
    Truncate,
    /// Append junk bytes.
    Extend,
    /// Skew a little/big-endian 16/32-bit field by a small delta —
    /// targeted at length/offset/count fields.
    LengthSkew,
}

/// Applies the seeded mutation number `index` to `bytes` and returns a
/// description of what was done. Deterministic per `(seed, index)`.
pub fn mutate(bytes: &mut Vec<u8>, seed: u64, index: u64) -> MutationKind {
    let mut rng = StdRng::seed_from_u64(crate::mix(seed ^ crate::mix(!index)));
    if bytes.is_empty() {
        bytes.push(rng.random_range(0..=255u64) as u8);
        return MutationKind::Extend;
    }
    let kind = match rng.random_range(0..8u32) {
        0..=2 => MutationKind::BitFlip,
        3 => MutationKind::ByteSet,
        4 => MutationKind::Truncate,
        5 => MutationKind::Extend,
        _ => MutationKind::LengthSkew,
    };
    let len = bytes.len();
    match kind {
        MutationKind::BitFlip => {
            let pos = rng.random_range(0..len as u64) as usize;
            let bit = rng.random_range(0..8u32);
            bytes[pos] ^= 1 << bit;
        }
        MutationKind::ByteSet => {
            let pos = rng.random_range(0..len as u64) as usize;
            bytes[pos] = rng.random_range(0..=255u64) as u8;
        }
        MutationKind::Truncate => {
            let keep = rng.random_range(0..len as u64) as usize;
            bytes.truncate(keep);
        }
        MutationKind::Extend => {
            let extra = rng.random_range(1..=16u64) as usize;
            for _ in 0..extra {
                bytes.push(rng.random_range(0..=255u64) as u8);
            }
        }
        MutationKind::LengthSkew => {
            let width = if rng.random_range(0..2u32) == 0 && len >= 4 { 4 } else { 2 };
            if len < width {
                bytes[0] ^= 0xff;
            } else {
                let pos = rng.random_range(0..=(len - width) as u64) as usize;
                let delta = rng.random_range(1..=64u64) as i64
                    * if rng.random_range(0..2u32) == 0 { 1 } else { -1 };
                let be = rng.random_range(0..2u32) == 0;
                if width == 2 {
                    let v = if be {
                        u16::from_be_bytes([bytes[pos], bytes[pos + 1]])
                    } else {
                        u16::from_le_bytes([bytes[pos], bytes[pos + 1]])
                    };
                    let v = (v as i64).wrapping_add(delta) as u16;
                    let enc = if be { v.to_be_bytes() } else { v.to_le_bytes() };
                    bytes[pos..pos + 2].copy_from_slice(&enc);
                } else {
                    let raw = [bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]];
                    let v = if be { u32::from_be_bytes(raw) } else { u32::from_le_bytes(raw) };
                    let v = (v as i64).wrapping_add(delta) as u32;
                    let enc = if be { v.to_be_bytes() } else { v.to_le_bytes() };
                    bytes[pos..pos + 4].copy_from_slice(&enc);
                }
            }
        }
    }
    kind
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic() {
        let base = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        for i in 0..32 {
            let mut a = base.clone();
            let mut b = base.clone();
            let ka = mutate(&mut a, 42, i);
            let kb = mutate(&mut b, 42, i);
            assert_eq!(ka, kb);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mutations_change_or_resize_input() {
        let base = vec![0u8; 64];
        let mut changed = 0;
        for i in 0..64 {
            let mut m = base.clone();
            mutate(&mut m, 7, i);
            if m != base {
                changed += 1;
            }
        }
        // Bit flips, sets, skews, truncations: the overwhelming majority
        // must actually perturb the input.
        assert!(changed > 48, "only {changed}/64 mutants differed");
    }

    #[test]
    fn empty_input_grows() {
        let mut m = Vec::new();
        assert_eq!(mutate(&mut m, 1, 1), MutationKind::Extend);
        assert!(!m.is_empty());
    }
}
