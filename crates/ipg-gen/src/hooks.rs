//! Inverse blackbox hooks.
//!
//! A blackbox rule runs an opaque parser on an interval-confined slice; the
//! generator therefore needs the *inverse*: a producer of bytes the blackbox
//! will accept. Hooks are registered by blackbox name. The contract: when
//! the blackbox runs on the returned bytes (possibly followed by unrelated
//! trailing bytes), it must succeed, consume exactly the returned bytes,
//! and report the returned attribute values.
//!
//! [`GenHooks::standard`] registers the workspace's one real blackbox — the
//! `inflate` DEFLATE decompressor — inverted via [`ipg_flate::compress`]
//! over a compressible random payload.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// What an inverse blackbox produced.
#[derive(Clone, Debug, Default)]
pub struct BlackboxPiece {
    /// Bytes to place on the blackbox's interval.
    pub bytes: Vec<u8>,
    /// Values for the attributes the blackbox declares, in declaration
    /// order.
    pub attr_values: Vec<i64>,
}

/// An inverse blackbox: `(rng, byte budget) → piece`.
pub type HookFn = dyn Fn(&mut StdRng, usize) -> Option<BlackboxPiece> + Send + Sync;

/// The hook registry, keyed by blackbox name.
#[derive(Clone, Default)]
pub struct GenHooks {
    map: HashMap<String, Arc<HookFn>>,
}

impl GenHooks {
    /// An empty registry (grammars without blackbox rules need none).
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard registry: `inflate` ↦ DEFLATE compression of a
    /// compressible random payload.
    pub fn standard() -> Self {
        Self::new().with("inflate", |rng: &mut StdRng, budget: usize| {
            let len = rng.random_range(1..=budget.clamp(1, 512) as u64) as usize;
            let payload = ipg_corpus::text_bytes(rng, len);
            Some(BlackboxPiece { bytes: ipg_flate::compress(&payload), attr_values: vec![] })
        })
    }

    /// Registers `f` under `name`.
    pub fn with<F>(mut self, name: &str, f: F) -> Self
    where
        F: Fn(&mut StdRng, usize) -> Option<BlackboxPiece> + Send + Sync + 'static,
    {
        self.map.insert(name.to_owned(), Arc::new(f));
        self
    }

    /// Looks up the hook for `name`.
    pub fn get(&self, name: &str) -> Option<Arc<HookFn>> {
        self.map.get(name).cloned()
    }
}

impl std::fmt::Debug for GenHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.map.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("GenHooks").field("names", &names).finish()
    }
}

/// Recomputes the CRC-32 field of every ZIP local file header so that a
/// *grammar-valid* generated archive also passes the semantic CRC check of
/// `ipg_formats::zip::extract` and the `unzip` baselines. The grammar never
/// constrains the CRC (it is free fuzz content there); this fix-up supplies
/// the dependent-field semantics via [`ipg_flate::crc32`].
///
/// Walks the local-file-header chain structurally (magic, length fields,
/// method dispatch) and leaves anything malformed untouched.
pub fn zip_fixup_crcs(bytes: &mut [u8]) {
    let mut pos = 0usize;
    while pos + 30 <= bytes.len() && bytes[pos..pos + 4] == [0x50, 0x4b, 0x03, 0x04] {
        let at = |o: usize| pos + o;
        let method = u16::from_le_bytes([bytes[at(8)], bytes[at(9)]]);
        let csize = u32::from_le_bytes([bytes[at(18)], bytes[at(19)], bytes[at(20)], bytes[at(21)]])
            as usize;
        let nlen = u16::from_le_bytes([bytes[at(26)], bytes[at(27)]]) as usize;
        let elen = u16::from_le_bytes([bytes[at(28)], bytes[at(29)]]) as usize;
        let body_start = pos + 30 + nlen + elen;
        let Some(body_end) = body_start.checked_add(csize) else { return };
        if body_end > bytes.len() {
            return;
        }
        let data: Option<Vec<u8>> = match method {
            0 => Some(bytes[body_start..body_end].to_vec()),
            8 => ipg_flate::inflate_with_limit(&bytes[body_start..body_end], 1 << 24)
                .ok()
                .map(|(data, _)| data),
            _ => None,
        };
        if let Some(data) = data {
            let crc = ipg_flate::crc32(&data);
            bytes[at(14)..at(18)].copy_from_slice(&crc.to_le_bytes());
        }
        pos = body_end;
    }
}
