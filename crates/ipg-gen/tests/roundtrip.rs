//! Generate → parse roundtrips, from toy grammars covering each IPG
//! construct up to all nine corpus format grammars.

use ipg_core::frontend::parse_grammar;
use ipg_core::interp::Parser;
use ipg_gen::{GenConfig, Generator};

fn assert_generates(spec: &str, seeds: std::ops::Range<u64>) {
    let g = parse_grammar(spec).expect("spec checks");
    let generator = Generator::new(&g);
    let parser = Parser::new(&g).max_steps(5_000_000);
    for seed in seeds {
        let bytes = generator
            .generate(seed)
            .unwrap_or_else(|| panic!("seed {seed}: generation failed\nspec: {spec}"));
        parser.parse(&bytes).unwrap_or_else(|e| {
            panic!("seed {seed}: generated input does not parse: {e}\nbytes: {bytes:?}")
        });
    }
}

#[test]
fn fig1_anchored_literals() {
    // Front and back anchoring: "aa…bb".
    assert_generates(
        r#"
        S -> A[0, 2] B[EOI - 2, EOI];
        A -> "aa"[0, 2];
        B -> "bb"[0, 2];
        "#,
        0..32,
    );
}

#[test]
fn fig2_random_access_header() {
    assert_generates(
        r#"
        S -> H[0, 8] Data[H.offset, H.offset + H.length];
        H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
        Int := u32le;
        Data := bytes;
        "#,
        0..32,
    );
}

#[test]
fn counted_array_with_pinned_count_field() {
    // The count is read from a field; generation must choose the count and
    // back-patch the field.
    assert_generates(
        r#"
        S -> N[0, 1] {n = N.val} for i = 0 to n do E[1 + 2 * i, 3 + 2 * i];
        E -> Int[0, 2];
        N := u8;
        Int := u16le;
        "#,
        0..32,
    );
}

#[test]
fn chain_rule_and_trailer() {
    // GIF-style chunk chain closed by a trailer byte.
    assert_generates(
        r#"
        S -> Blocks[0, EOI];
        Blocks -> Block[0, EOI] Blocks[Block.end, EOI]
                / Trailer[0, EOI];
        Block -> x"aa"[0, 1] Len[1, 2] {len = Len.val} Data[2, 2 + len];
        Trailer -> x"3b"[0, 1];
        Len := u8;
        Data := bytes;
        "#,
        0..32,
    );
}

#[test]
fn predicates_and_switch_dispatch() {
    assert_generates(
        r#"
        S -> Tag[0, 1] {t = Tag.val} assert(t < 3)
             switch(t = 0 : A[1, 3] / t = 1 : B[1, 5] / C[1, 2]);
        A -> Int16[0, 2];
        B -> Int32[0, 4];
        C -> Byte[0, 1];
        Tag := u8;
        Int16 := u16le;
        Int32 := u32le;
        Byte := u8;
        "#,
        0..32,
    );
}

#[test]
fn star_repetition() {
    assert_generates(
        r#"
        S -> star Item[0, EOI - 1] End[EOI - 1, EOI];
        Item -> x"01"[0, 1] Len[1, 2] {len = Len.val} Body[2, 2 + len];
        End -> x"ff"[0, 1];
        Len := u8;
        Body := bytes;
        "#,
        0..32,
    );
}

#[test]
fn local_rule_counted_chain() {
    // DNS-style inherited-attribute countdown.
    assert_generates(
        r#"
        start S;
        S -> N[0, 1] {qn = N.val} Qs[1, EOI];
        local Qs -> {qn = qn - 1} assert(qn >= 0) Q[0, EOI] Qs[Q.end, EOI]
                  / assert(qn = 0) ""[0, 0];
        Q -> x"51"[0, 1] V[1, 3];
        N := u8;
        V := u16be;
        "#,
        0..32,
    );
}

#[test]
fn backward_digit_recursion() {
    // PDF-startxref-style backward number whose value must equal a layout
    // position (here: the offset of the payload, via random access).
    assert_generates(
        r#"
        start S;
        S -> "%"[0, 1]
             Num[1, EOI - 4] {ofs = Num.val}
             Payload[ofs, EOI - 4]
             "TAIL"[EOI - 4, EOI];
        Num -> Dg[EOI - 1, EOI] Num[0, EOI - 1] {val = Num.val * 10 + Dg.val}
             / "@"[EOI - 1, EOI] {val = 0};
        Payload -> "PAY"[0, 3];
        Dg := ascii_int;
        "#,
        0..16,
    );
}

#[test]
fn division_guards() {
    // ipv4-style: version nibble and modulo-derived header length.
    assert_generates(
        r#"
        S -> VI[0, 1] assert(VI.val / 16 = 4)
             {ihl = (VI.val % 16) * 4} assert(ihl >= 20)
             Rest[1, ihl];
        VI := u8;
        Rest := bytes;
        "#,
        0..32,
    );
}

// ----------------------------------------------------------------------
// The nine corpus format grammars.
// ----------------------------------------------------------------------

fn assert_format_generates(
    name: &str,
    g: &ipg_core::check::Grammar,
    seeds: std::ops::Range<u64>,
    cfg: GenConfig,
) {
    let generator = Generator::new(g).with_config(cfg);
    let parser = Parser::new(g).max_steps(20_000_000);
    for seed in seeds.clone() {
        let bytes = generator
            .generate_valid(seed)
            .unwrap_or_else(|| panic!("{name}: seed {seed}: generation failed"));
        assert!(parser.parse(&bytes).is_ok(), "{name}: seed {seed}: verified input must parse");
    }
}

macro_rules! format_roundtrip {
    ($test:ident, $name:expr, $grammar:expr) => {
        #[test]
        fn $test() {
            assert_format_generates($name, $grammar, 0..8, GenConfig::default());
        }
    };
}

format_roundtrip!(zip_generates, "zip", ipg_formats::zip::grammar());
format_roundtrip!(zip_inflate_generates, "zip_inflate", ipg_formats::zip::grammar_inflate());
format_roundtrip!(dns_generates, "dns", ipg_formats::dns::grammar());
format_roundtrip!(png_generates, "png", ipg_formats::png::grammar());
format_roundtrip!(gif_generates, "gif", ipg_formats::gif::grammar());
format_roundtrip!(elf_generates, "elf", ipg_formats::elf::grammar());
format_roundtrip!(ipv4udp_generates, "ipv4udp", ipg_formats::ipv4udp::grammar());
format_roundtrip!(pe_generates, "pe", ipg_formats::pe::grammar());
format_roundtrip!(pdf_generates, "pdf", ipg_formats::pdf::grammar());
