//! Baseline parsers for the paper's performance comparisons (§7).
//!
//! * [`handwritten`] — direct struct-mapping parsers in the style of GNU
//!   `readelf` and Info-ZIP `unzip` (Fig. 12): sequential field reads, no
//!   parse-tree construction.
//! * [`kaitai_style`] — behaviourally-faithful ports of what Kaitai Struct
//!   generates (Fig. 13a–d): eager stream reads that *copy* consumed data
//!   (most importantly ZIP entry bodies), and seek-based `instances`.
//! * [`nail_style`] — arena-allocating packet parsers in the style of
//!   Nail's generated C (Fig. 13e–f, Fig. 14).
//! * [`alloc_meter`] — a counting global allocator replacing the paper's
//!   Valgrind heap measurements (Fig. 14).
//!
//! All baselines are cross-validated against `ipg-corpus` ground truth and
//! against the IPG parsers in the workspace integration tests.

pub mod alloc_meter;
pub mod handwritten;
pub mod kaitai_style;
pub mod nail_style;
pub mod probe;

/// A tiny cursor over a byte slice shared by the hand-written parsers.
/// Unlike [`kaitai_style::Stream`], reads of bulk data return *borrowed*
/// slices (the zero-copy discipline of hand-written C parsers that map
/// file data directly onto structs).
#[derive(Clone, Copy, Debug)]
pub struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    /// A cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Cur { data, pos: 0 }
    }

    /// A cursor at an absolute position.
    pub fn at(data: &'a [u8], pos: usize) -> Self {
        Cur { data, pos }
    }

    /// Current position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// Takes `n` bytes as a borrowed slice.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.data.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16le(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes(s.try_into().expect("2 bytes")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32le(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64le(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Reads a big-endian `u16`.
    pub fn u16be(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_be_bytes(s.try_into().expect("2 bytes")))
    }

    /// Reads a big-endian `u32`.
    pub fn u32be(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_be_bytes(s.try_into().expect("4 bytes")))
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) -> Option<()> {
        self.take(n).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_reads_and_positions() {
        let data = [1u8, 0, 2, 0, 0, 0, 0xaa, 0xbb];
        let mut c = Cur::new(&data);
        assert_eq!(c.u16le(), Some(1));
        assert_eq!(c.u32le(), Some(2));
        assert_eq!(c.u16be(), Some(0xaabb));
        assert_eq!(c.remaining(), 0);
        assert_eq!(c.u8(), None);
    }

    #[test]
    fn cursor_take_borrows() {
        let data = b"abcdef";
        let mut c = Cur::at(data, 2);
        let s = c.take(3).unwrap();
        assert_eq!(s, b"cde");
        assert_eq!(c.pos(), 5);
    }
}
