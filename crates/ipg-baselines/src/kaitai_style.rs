//! Kaitai-Struct-style parsers — the Fig. 13a–d baselines.
//!
//! Kaitai's generated C++ reads through a `kaitai::kstream`: every `seq`
//! field is **read eagerly and copied into the object being built**
//! (`read_bytes` returns an owned string), and `instances` seek the root
//! stream and parse on demand. The performance-relevant behaviours ported
//! here:
//!
//! * bulk payloads are *copied* when consumed — most visibly ZIP entry
//!   bodies, which is why the paper's Fig. 13a shows Kaitai far behind the
//!   zero-copy IPG parser on archives;
//! * every struct is heap-allocated as the parse proceeds;
//! * random access uses explicit seeks on the root stream (the imperative
//!   `io: _root._io; pos: …` pattern of Fig. 11a).

/// Errors from the Kaitai-style parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KaitaiError(pub &'static str);

impl std::fmt::Display for KaitaiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kaitai-style parser: {}", self.0)
    }
}

impl std::error::Error for KaitaiError {}

type Result<T> = std::result::Result<T, KaitaiError>;

/// The `kaitai::kstream` equivalent: a seekable cursor whose bulk reads
/// **copy**.
#[derive(Clone, Debug)]
pub struct Stream<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Stream<'a> {
    /// A stream over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Stream { data, pos: 0 }
    }

    /// Seeks to an absolute position (the `pos:` key of a Kaitai
    /// instance).
    pub fn seek(&mut self, pos: usize) -> Result<()> {
        if pos > self.data.len() {
            return Err(KaitaiError("seek past end"));
        }
        self.pos = pos;
        Ok(())
    }

    /// Current position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether the stream is exhausted (`_io.eof`).
    pub fn eof(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// `read_bytes(n)` — returns an **owned copy**, as Kaitai's C++ does.
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>> {
        let s = self.data.get(self.pos..self.pos + n).ok_or(KaitaiError("read past end"))?;
        self.pos += n;
        Ok(s.to_vec())
    }

    /// `read_u1`.
    pub fn read_u1(&mut self) -> Result<u8> {
        let b = *self.data.get(self.pos).ok_or(KaitaiError("read past end"))?;
        self.pos += 1;
        Ok(b)
    }

    /// `read_u2le`.
    pub fn read_u2le(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.read_fixed::<2>()?))
    }

    /// `read_u4le`.
    pub fn read_u4le(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.read_fixed::<4>()?))
    }

    /// `read_u8le`.
    pub fn read_u8le(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.read_fixed::<8>()?))
    }

    fn read_fixed<const N: usize>(&mut self) -> Result<[u8; N]> {
        let s = self.data.get(self.pos..self.pos + N).ok_or(KaitaiError("read past end"))?;
        self.pos += N;
        Ok(s.try_into().expect("length checked"))
    }
}

// ---------------------------------------------------------------- ZIP --

/// A Kaitai-style parsed archive: entry bodies are owned copies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KaitaiZip {
    /// Entries `(name, method, crc, body copy)`.
    pub entries: Vec<KaitaiZipEntry>,
}

/// One entry, with its body copied out of the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KaitaiZipEntry {
    /// Stored name (copied).
    pub name: String,
    /// Method.
    pub method: u16,
    /// CRC-32.
    pub crc: u32,
    /// The **copied** compressed body — this copy is what the paper's
    /// Fig. 13a attributes Kaitai's ZIP slowdown to.
    pub body: Vec<u8>,
}

/// Parses an archive in Kaitai's sequential PK-section style.
///
/// # Errors
///
/// [`KaitaiError`] on structural problems.
pub fn parse_zip(data: &[u8]) -> Result<KaitaiZip> {
    let mut io = Stream::new(data);
    let mut entries = Vec::new();
    loop {
        let magic = io.read_u4le()?;
        match magic {
            0x0403_4b50 => {
                io.read_bytes(4)?; // version + flags
                let method = io.read_u2le()?;
                io.read_bytes(4)?; // mod time/date
                let crc = io.read_u4le()?;
                let csize = io.read_u4le()? as usize;
                io.read_u4le()?; // usize
                let namelen = io.read_u2le()? as usize;
                let extralen = io.read_u2le()? as usize;
                let name = String::from_utf8(io.read_bytes(namelen)?)
                    .map_err(|_| KaitaiError("non-utf8 name"))?;
                io.read_bytes(extralen)?;
                let body = io.read_bytes(csize)?; // the copy
                entries.push(KaitaiZipEntry { name, method, crc, body });
            }
            0x0201_4b50 => {
                // Central directory entry: consume (copying, as Kaitai
                // does) and continue.
                io.read_bytes(24)?;
                let namelen = io.read_u2le()? as usize;
                let extralen = io.read_u2le()? as usize;
                let commentlen = io.read_u2le()? as usize;
                io.read_bytes(12)?;
                io.read_bytes(namelen + extralen + commentlen)?;
            }
            0x0605_4b50 => {
                io.read_bytes(16)?;
                let commentlen = io.read_u2le()? as usize;
                io.read_bytes(commentlen)?;
                break;
            }
            _ => return Err(KaitaiError("unknown PK section")),
        }
        if io.eof() {
            break;
        }
    }
    Ok(KaitaiZip { entries })
}

// ---------------------------------------------------------------- GIF --

/// A Kaitai-style parsed GIF.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KaitaiGif {
    /// Screen width.
    pub width: u16,
    /// Screen height.
    pub height: u16,
    /// Copied global color table.
    pub gct: Vec<u8>,
    /// Blocks: `(introducer, copied payload length)`.
    pub blocks: Vec<(u8, usize)>,
}

/// Parses a GIF sequentially, copying sub-block data.
///
/// # Errors
///
/// [`KaitaiError`] on structural problems.
pub fn parse_gif(data: &[u8]) -> Result<KaitaiGif> {
    let mut io = Stream::new(data);
    let sig = io.read_bytes(6)?;
    if &sig != b"GIF89a" && &sig != b"GIF87a" {
        return Err(KaitaiError("bad signature"));
    }
    let width = io.read_u2le()?;
    let height = io.read_u2le()?;
    let flags = io.read_u1()?;
    io.read_bytes(2)?; // bg + aspect
    let gct =
        if flags & 0x80 != 0 { io.read_bytes(3 * (2usize << (flags & 7)))? } else { Vec::new() };

    let mut blocks = Vec::new();
    loop {
        let introducer = io.read_u1()?;
        match introducer {
            0x3b => break,
            0x21 => {
                let _label = io.read_u1()?;
                let len = read_sub_blocks(&mut io)?;
                blocks.push((0x21, len));
            }
            0x2c => {
                io.read_bytes(8)?; // geometry
                let iflags = io.read_u1()?;
                if iflags & 0x80 != 0 {
                    io.read_bytes(3 * (2usize << (iflags & 7)))?;
                }
                io.read_u1()?; // lzw min code size
                let len = read_sub_blocks(&mut io)?;
                blocks.push((0x2c, len));
            }
            _ => return Err(KaitaiError("unknown block introducer")),
        }
    }
    Ok(KaitaiGif { width, height, gct, blocks })
}

fn read_sub_blocks(io: &mut Stream<'_>) -> Result<usize> {
    let mut total = 0;
    loop {
        let n = io.read_u1()? as usize;
        if n == 0 {
            return Ok(total);
        }
        // Copied, as Kaitai's generated reader does.
        let chunk = io.read_bytes(n)?;
        total += chunk.len();
    }
}

// ----------------------------------------------------------------- PE --

/// A Kaitai-style parsed PE file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KaitaiPe {
    /// Number of sections.
    pub n_sections: u16,
    /// Sections: `(raw pointer, copied raw data)`.
    pub sections: Vec<(u32, Vec<u8>)>,
}

/// Parses a PE file with seeks for the signature and section bodies.
///
/// # Errors
///
/// [`KaitaiError`] on structural problems.
pub fn parse_pe(data: &[u8]) -> Result<KaitaiPe> {
    let mut io = Stream::new(data);
    let mz = io.read_bytes(2)?;
    if &mz != b"MZ" {
        return Err(KaitaiError("bad MZ"));
    }
    io.seek(0x3c)?;
    let lfanew = io.read_u4le()? as usize;
    io.seek(lfanew)?;
    if &io.read_bytes(4)? != b"PE\0\0" {
        return Err(KaitaiError("bad PE signature"));
    }
    io.read_u2le()?; // machine
    let n_sections = io.read_u2le()?;
    io.read_bytes(12)?;
    let optsize = io.read_u2le()? as usize;
    io.read_u2le()?; // characteristics
    io.read_bytes(optsize)?;

    let mut headers = Vec::with_capacity(n_sections as usize);
    for _ in 0..n_sections {
        io.read_bytes(16)?; // name + vsize + vaddr
        let rawsize = io.read_u4le()?;
        let rawptr = io.read_u4le()?;
        io.read_bytes(16)?;
        headers.push((rawptr, rawsize));
    }
    let mut sections = Vec::with_capacity(headers.len());
    for (rawptr, rawsize) in headers {
        io.seek(rawptr as usize)?; // instance-style random access
        let body = io.read_bytes(rawsize as usize)?; // copied
        sections.push((rawptr, body));
    }
    Ok(KaitaiPe { n_sections, sections })
}

// ---------------------------------------------------------------- ELF --

/// A Kaitai-style parsed ELF file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KaitaiElf {
    /// `e_shnum`.
    pub shnum: u16,
    /// Sections: `(type, copied body)`.
    pub sections: Vec<(u32, Vec<u8>)>,
    /// Symbol names (copied strings), from SYMTAB sections.
    pub symbol_names: Vec<String>,
}

/// Parses an ELF file with seek-based section access, copying bodies.
///
/// # Errors
///
/// [`KaitaiError`] on structural problems.
pub fn parse_elf(data: &[u8]) -> Result<KaitaiElf> {
    let mut io = Stream::new(data);
    let magic = io.read_bytes(4)?;
    if &magic != b"\x7fELF" {
        return Err(KaitaiError("bad magic"));
    }
    io.seek(0x28)?;
    let shoff = io.read_u8le()? as usize;
    io.seek(0x3c)?;
    let shnum = io.read_u2le()?;

    let mut headers = Vec::with_capacity(shnum as usize);
    for i in 0..shnum as usize {
        io.seek(shoff + i * 64)?;
        io.read_u4le()?; // name
        let sh_type = io.read_u4le()?;
        io.read_bytes(16)?;
        let offset = io.read_u8le()? as usize;
        let size = io.read_u8le()? as usize;
        let link = io.read_u4le()?;
        headers.push((sh_type, offset, size, link));
    }

    let mut sections = Vec::with_capacity(headers.len());
    let mut symbol_names = Vec::new();
    for &(sh_type, offset, size, link) in &headers {
        let body = if sh_type == 0 {
            Vec::new()
        } else {
            io.seek(offset)?;
            io.read_bytes(size)? // copied
        };
        if sh_type == 2 {
            // Resolve names through the linked string table (copied too).
            let &(_, str_off, str_size, _) =
                headers.get(link as usize).ok_or(KaitaiError("bad symtab link"))?;
            io.seek(str_off)?;
            let strtab = io.read_bytes(str_size)?;
            for k in 0..size / 24 {
                let name_off =
                    u32::from_le_bytes(body[k * 24..k * 24 + 4].try_into().expect("4")) as usize;
                let rest = strtab.get(name_off..).ok_or(KaitaiError("bad name offset"))?;
                let len = rest.iter().position(|&b| b == 0).ok_or(KaitaiError("unterminated"))?;
                symbol_names.push(String::from_utf8_lossy(&rest[..len]).into_owned());
            }
        }
        sections.push((sh_type, body));
    }
    Ok(KaitaiElf { shnum, sections, symbol_names })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_corpus::{elf, gif, pe, zip};

    #[test]
    fn zip_copies_bodies_and_matches_ground_truth() {
        let a = zip::generate(&zip::Config { n_entries: 2, ..Default::default() });
        let parsed = parse_zip(&a.bytes).unwrap();
        assert_eq!(parsed.entries.len(), 2);
        for (e, truth) in parsed.entries.iter().zip(&a.entries) {
            assert_eq!(e.name, truth.name);
            assert_eq!(e.crc, truth.crc32);
            assert_eq!(e.body.len(), truth.compressed_size as usize);
            assert_eq!(ipg_flate::inflate(&e.body).unwrap(), a.payload);
        }
    }

    #[test]
    fn gif_matches_ground_truth() {
        let img = gif::generate(&gif::Config::default());
        let parsed = parse_gif(&img.bytes).unwrap();
        assert_eq!(parsed.width, img.summary.width);
        assert_eq!(parsed.gct.len(), img.summary.gct_len);
        assert_eq!(parsed.blocks.len(), img.summary.n_blocks);
    }

    #[test]
    fn pe_matches_ground_truth() {
        let f = pe::generate(&pe::Config { n_sections: 3, ..Default::default() });
        let parsed = parse_pe(&f.bytes).unwrap();
        assert_eq!(parsed.n_sections, 3);
        for ((ptr, body), (_, truth_ptr, truth_size)) in
            parsed.sections.iter().zip(&f.summary.sections)
        {
            assert_eq!(ptr, truth_ptr);
            assert_eq!(body.len(), *truth_size as usize);
        }
    }

    #[test]
    fn elf_matches_ground_truth() {
        let f = elf::generate(&elf::Config { n_symbols: 4, ..Default::default() });
        let parsed = parse_elf(&f.bytes).unwrap();
        assert_eq!(parsed.shnum, f.summary.shnum);
        assert_eq!(parsed.symbol_names, f.summary.symbol_names);
    }

    #[test]
    fn seek_past_end_fails() {
        let mut s = Stream::new(b"abc");
        assert!(s.seek(4).is_err());
        assert!(s.seek(3).is_ok());
        assert!(s.eof());
    }

    #[test]
    fn truncated_inputs_fail() {
        let a = zip::generate(&zip::Config::default());
        assert!(parse_zip(&a.bytes[..40]).is_err());
        let img = gif::generate(&gif::Config::default());
        assert!(parse_gif(&img.bytes[..10]).is_err());
    }
}
