//! A counting global allocator — the offline substitute for the paper's
//! Valgrind heap measurements (Fig. 14).
//!
//! Binaries that want heap numbers install it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ipg_baselines::alloc_meter::CountingAllocator =
//!     ipg_baselines::alloc_meter::CountingAllocator;
//! ```
//!
//! and then wrap the code under measurement in [`measure`]. Counters are
//! process-global; measurements of concurrent allocations interleave, so
//! keep measured sections single-threaded (as the benchmarks do).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

/// A `#[global_allocator]` that counts allocations and bytes.
pub struct CountingAllocator;

// SAFETY: delegates directly to `System`; the bookkeeping has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            record_alloc(new_size - layout.size());
        } else {
            LIVE_BYTES.fetch_sub((layout.size() - new_size) as i64, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

fn record_alloc(size: usize) {
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

/// Heap statistics over a measured region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of allocation calls (allocs + growing reallocs).
    pub allocations: u64,
    /// Total bytes requested.
    pub bytes_allocated: u64,
    /// Peak live bytes *above* the level at the start of the measurement.
    pub peak_bytes: u64,
}

/// Runs `f` and reports the allocation activity it caused.
///
/// Only meaningful when [`CountingAllocator`] is installed as the global
/// allocator; otherwise all counters read zero.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
    let count0 = ALLOC_COUNT.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let live0 = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live0, Ordering::Relaxed);
    let r = f();
    let stats = AllocStats {
        allocations: ALLOC_COUNT.load(Ordering::Relaxed) - count0,
        bytes_allocated: ALLOC_BYTES.load(Ordering::Relaxed) - bytes0,
        peak_bytes: (PEAK_BYTES.load(Ordering::Relaxed) - live0).max(0) as u64,
    };
    (r, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the test binary does not install the allocator, so only the
    // bookkeeping arithmetic is testable here; end-to-end behaviour is
    // exercised by the fig14 binary.
    #[test]
    fn measure_without_installed_allocator_reads_zero() {
        let (v, stats) = measure(|| vec![0u8; 1024].len());
        assert_eq!(v, 1024);
        assert_eq!(stats.allocations, 0);
    }

    #[test]
    fn record_alloc_updates_peak() {
        let live0 = LIVE_BYTES.load(Ordering::Relaxed);
        PEAK_BYTES.store(live0, Ordering::Relaxed);
        record_alloc(100);
        assert!(PEAK_BYTES.load(Ordering::Relaxed) >= live0 + 100);
        LIVE_BYTES.fetch_sub(100, Ordering::Relaxed);
        ALLOC_COUNT.fetch_sub(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_sub(100, Ordering::Relaxed);
    }
}
