//! Nail-style packet parsers — the Fig. 13e/f and Fig. 14 baselines.
//!
//! Nail's generated C parsers allocate every parsed structure out of a
//! bump **arena** ("arena-based memory management to avoid performance
//! impact from calling malloc", §7). The ports here keep that discipline:
//! all variable-length data (names, rdata, payloads) is copied into one
//! arena and referenced by offset, so a whole parse costs a handful of
//! large allocations rather than many small ones.

/// Errors from the Nail-style parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NailError(pub &'static str);

impl std::fmt::Display for NailError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "nail-style parser: {}", self.0)
    }
}

impl std::error::Error for NailError {}

type Result<T> = std::result::Result<T, NailError>;

/// A bump arena for parsed byte data.
#[derive(Clone, Debug)]
pub struct Arena {
    buf: Vec<u8>,
}

/// A span into an [`Arena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaRef {
    /// Offset into the arena buffer.
    pub off: u32,
    /// Length in bytes.
    pub len: u32,
}

impl Arena {
    /// An arena pre-sized for a message of `capacity` bytes (Nail sizes
    /// its arena from the input length).
    pub fn with_capacity(capacity: usize) -> Self {
        Arena { buf: Vec::with_capacity(capacity) }
    }

    /// Copies `data` into the arena.
    pub fn push(&mut self, data: &[u8]) -> ArenaRef {
        let off = self.buf.len() as u32;
        self.buf.extend_from_slice(data);
        ArenaRef { off, len: data.len() as u32 }
    }

    /// Resolves a reference.
    pub fn get(&self, r: ArenaRef) -> &[u8] {
        &self.buf[r.off as usize..(r.off + r.len) as usize]
    }

    /// Bytes used.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

// ---------------------------------------------------------------- DNS --

/// A Nail-style parsed DNS message; all strings live in the arena.
#[derive(Clone, Debug)]
pub struct NailDns {
    /// Backing storage.
    pub arena: Arena,
    /// Transaction id.
    pub id: u16,
    /// Questions: `(name, qtype, qclass)`.
    pub questions: Vec<(ArenaRef, u16, u16)>,
    /// Answers: `(name, rtype, ttl, rdata)`.
    pub answers: Vec<(ArenaRef, u16, u32, ArenaRef)>,
}

impl NailDns {
    /// A question's dotted name.
    pub fn question_name(&self, i: usize) -> &str {
        std::str::from_utf8(self.arena.get(self.questions[i].0)).expect("names are ASCII")
    }

    /// An answer's dotted name.
    pub fn answer_name(&self, i: usize) -> &str {
        std::str::from_utf8(self.arena.get(self.answers[i].0)).expect("names are ASCII")
    }
}

fn be16(data: &[u8], pos: usize) -> Result<u16> {
    data.get(pos..pos + 2)
        .map(|s| u16::from_be_bytes(s.try_into().expect("2 bytes")))
        .ok_or(NailError("truncated"))
}

fn be32(data: &[u8], pos: usize) -> Result<u32> {
    data.get(pos..pos + 4)
        .map(|s| u32::from_be_bytes(s.try_into().expect("4 bytes")))
        .ok_or(NailError("truncated"))
}

/// Reads a (possibly compressed) name starting at `pos` into the arena as
/// a dotted string; returns the reference and the new position.
fn read_name(data: &[u8], mut pos: usize, arena: &mut Arena) -> Result<(ArenaRef, usize)> {
    let mut name = Vec::new();
    let mut end_pos = None;
    let mut hops = 0;
    loop {
        let &len = data.get(pos).ok_or(NailError("truncated name"))?;
        if len == 0 {
            pos += 1;
            break;
        }
        if len & 0xc0 == 0xc0 {
            let lo = *data.get(pos + 1).ok_or(NailError("truncated pointer"))?;
            if end_pos.is_none() {
                end_pos = Some(pos + 2);
            }
            pos = ((len as usize & 0x3f) << 8) | lo as usize;
            hops += 1;
            if hops > 64 {
                return Err(NailError("pointer loop"));
            }
            continue;
        }
        let label =
            data.get(pos + 1..pos + 1 + len as usize).ok_or(NailError("truncated label"))?;
        if !name.is_empty() {
            name.push(b'.');
        }
        name.extend_from_slice(label);
        pos += 1 + len as usize;
    }
    Ok((arena.push(&name), end_pos.unwrap_or(pos)))
}

/// Parses a DNS message, Nail style.
///
/// # Errors
///
/// [`NailError`] on malformed messages.
pub fn parse_dns(data: &[u8]) -> Result<NailDns> {
    if data.len() < 12 {
        return Err(NailError("truncated header"));
    }
    let mut arena = Arena::with_capacity(data.len());
    let id = be16(data, 0)?;
    let qd = be16(data, 4)? as usize;
    let an = be16(data, 6)? as usize;

    let mut pos = 12;
    let mut questions = Vec::with_capacity(qd);
    for _ in 0..qd {
        let (name, p) = read_name(data, pos, &mut arena)?;
        let qtype = be16(data, p)?;
        let qclass = be16(data, p + 2)?;
        pos = p + 4;
        questions.push((name, qtype, qclass));
    }
    let mut answers = Vec::with_capacity(an);
    for _ in 0..an {
        let (name, p) = read_name(data, pos, &mut arena)?;
        let rtype = be16(data, p)?;
        let ttl = be32(data, p + 4)?;
        let rdlen = be16(data, p + 8)? as usize;
        let rdata = data.get(p + 10..p + 10 + rdlen).ok_or(NailError("truncated rdata"))?;
        let rdata = arena.push(rdata);
        pos = p + 10 + rdlen;
        answers.push((name, rtype, ttl, rdata));
    }
    Ok(NailDns { arena, id, questions, answers })
}

// ----------------------------------------------------------- IPv4+UDP --

/// A Nail-style parsed datagram.
#[derive(Clone, Debug)]
pub struct NailIpv4Udp {
    /// Backing storage.
    pub arena: Arena,
    /// IHL in bytes.
    pub ihl: usize,
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
    /// UDP ports.
    pub sport: u16,
    /// UDP destination port.
    pub dport: u16,
    /// Payload (copied into the arena, as Nail materializes fields).
    pub payload: ArenaRef,
}

/// Parses an IPv4+UDP datagram, Nail style.
///
/// # Errors
///
/// [`NailError`] on malformed datagrams.
pub fn parse_ipv4_udp(data: &[u8]) -> Result<NailIpv4Udp> {
    if data.len() < 28 {
        return Err(NailError("truncated"));
    }
    let vihl = data[0];
    if vihl >> 4 != 4 {
        return Err(NailError("not IPv4"));
    }
    let ihl = (vihl & 0x0f) as usize * 4;
    if ihl < 20 || ihl + 8 > data.len() {
        return Err(NailError("bad IHL"));
    }
    let total = be16(data, 2)? as usize;
    if total > data.len() || total < ihl + 8 {
        return Err(NailError("bad total length"));
    }
    if data[9] != 17 {
        return Err(NailError("not UDP"));
    }
    let mut arena = Arena::with_capacity(total);
    let src: [u8; 4] = data[12..16].try_into().expect("4 bytes");
    let dst: [u8; 4] = data[16..20].try_into().expect("4 bytes");
    let sport = be16(data, ihl)?;
    let dport = be16(data, ihl + 2)?;
    let udp_len = be16(data, ihl + 4)? as usize;
    if udp_len < 8 || ihl + udp_len > total {
        return Err(NailError("bad UDP length"));
    }
    let payload = arena.push(&data[ihl + 8..ihl + udp_len]);
    Ok(NailIpv4Udp { arena, ihl, src, dst, sport, dport, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_corpus::{dns, ipv4udp};

    #[test]
    fn dns_matches_ground_truth() {
        let m = dns::generate(&dns::Config::default());
        let parsed = parse_dns(&m.bytes).unwrap();
        assert_eq!(parsed.id, m.summary.id);
        assert_eq!(parsed.questions.len(), m.summary.questions.len());
        for (i, expected) in m.summary.questions.iter().enumerate() {
            assert_eq!(parsed.question_name(i), expected);
        }
        for (i, (name, ip)) in m.summary.answers.iter().enumerate() {
            assert_eq!(parsed.answer_name(i), name, "compression pointers resolve");
            assert_eq!(parsed.arena.get(parsed.answers[i].3), ip);
        }
    }

    #[test]
    fn dns_uncompressed() {
        let m = dns::generate(&dns::Config { compress: false, ..Default::default() });
        let parsed = parse_dns(&m.bytes).unwrap();
        for (i, (name, _)) in m.summary.answers.iter().enumerate() {
            assert_eq!(parsed.answer_name(i), name);
        }
    }

    #[test]
    fn arena_keeps_allocation_count_low() {
        let m = dns::generate(&dns::Config { n_answers: 50, ..Default::default() });
        let parsed = parse_dns(&m.bytes).unwrap();
        // All names and rdata share one buffer.
        assert!(!parsed.arena.is_empty());
        assert_eq!(parsed.answers.len(), 50);
    }

    #[test]
    fn ipv4_udp_matches_ground_truth() {
        let p = ipv4udp::generate(&ipv4udp::Config { options_words: 2, ..Default::default() });
        let parsed = parse_ipv4_udp(&p.bytes).unwrap();
        assert_eq!(parsed.ihl, p.summary.ihl_bytes);
        assert_eq!(parsed.src, p.summary.src);
        assert_eq!(parsed.dst, p.summary.dst);
        assert_eq!(parsed.sport, p.summary.sport);
        assert_eq!(parsed.arena.get(parsed.payload).len(), p.summary.payload_len);
    }

    #[test]
    fn malformed_packets_rejected() {
        let p = ipv4udp::generate(&ipv4udp::Config::default());
        let mut bad = p.bytes.clone();
        bad[0] = 0x63; // IPv6, IHL 3
        assert!(parse_ipv4_udp(&bad).is_err());
        assert!(parse_ipv4_udp(&p.bytes[..20]).is_err());
        let m = dns::generate(&dns::Config::default());
        assert!(parse_dns(&m.bytes[..10]).is_err());
    }

    #[test]
    fn dns_pointer_loop_detected() {
        // Header claiming one question whose name is a pointer to itself.
        let mut msg = vec![0u8; 12];
        msg[5] = 1; // qdcount = 1
        msg.extend_from_slice(&[0xc0, 12]); // pointer to offset 12 (itself)
        msg.extend_from_slice(&[0, 1, 0, 1]);
        assert!(parse_dns(&msg).is_err());
    }
}
