//! The baseline lane of the conformance-fuzzing oracle matrix.
//!
//! For each format, [`run`] executes every baseline implementation that
//! exists for it (handwritten / Kaitai-style / Nail-style) on the given
//! input and reports per-baseline accept/reject outcomes. On fuzzer-made
//! inputs the baselines are *probes*, not equality oracles: the IPG
//! grammars are deliberately more permissive than the struct-mapping
//! baselines (a grammar-valid ZIP may carry a central directory whose
//! `lofs` fields point nowhere — the grammar never dereferences them, the
//! baselines do), so the harness asserts that baselines terminate without
//! panicking and *records* the accept matrix rather than demanding
//! agreement. Strict three-way agreement on corpus-realistic inputs is
//! asserted separately in `tests/agreement.rs`.

use crate::{handwritten, kaitai_style, nail_style};

/// Outcome of one baseline on one input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Baseline identifier, e.g. `"handwritten"`, `"kaitai"`, `"nail"`.
    pub baseline: &'static str,
    /// Whether the baseline accepted the input.
    pub accepted: bool,
}

/// Runs every baseline applicable to `format` (an `ipg-formats` module
/// name: `"zip"`, `"zip_inflate"`, `"elf"`, `"gif"`, `"pe"`, `"dns"`,
/// `"ipv4udp"`, `"png"`, `"pdf"`) on `bytes`. Formats without a baseline
/// return an empty vector. Never panics — that property *is* the test.
pub fn run(format: &str, bytes: &[u8]) -> Vec<ProbeOutcome> {
    let mut out = Vec::new();
    let mut push = |baseline: &'static str, accepted: bool| {
        out.push(ProbeOutcome { baseline, accepted });
    };
    match format {
        "zip" | "zip_inflate" => {
            push("handwritten", handwritten::parse_zip(bytes).is_ok());
            push("kaitai", kaitai_style::parse_zip(bytes).is_ok());
            if format == "zip_inflate" {
                push("handwritten-unzip", handwritten::unzip(bytes).is_ok());
            }
        }
        "elf" => {
            push("handwritten", handwritten::parse_elf(bytes).is_ok());
            push("kaitai", kaitai_style::parse_elf(bytes).is_ok());
        }
        "gif" => push("kaitai", kaitai_style::parse_gif(bytes).is_ok()),
        "pe" => push("kaitai", kaitai_style::parse_pe(bytes).is_ok()),
        "dns" => push("nail", nail_style::parse_dns(bytes).is_ok()),
        "ipv4udp" => push("nail", nail_style::parse_ipv4_udp(bytes).is_ok()),
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_defaults_are_accepted_by_their_baselines() {
        let z = ipg_corpus::zip::generate(&Default::default());
        assert!(run("zip", &z.bytes).iter().all(|o| o.accepted));
        let e = ipg_corpus::elf::generate(&Default::default());
        assert!(run("elf", &e.bytes).iter().all(|o| o.accepted));
        let d = ipg_corpus::dns::generate(&Default::default());
        assert!(run("dns", &d.bytes).iter().all(|o| o.accepted));
    }

    #[test]
    fn junk_is_rejected_not_panicked() {
        for format in ["zip", "zip_inflate", "elf", "gif", "pe", "dns", "ipv4udp", "png", "pdf"] {
            let outcomes = run(format, b"not a file of any format at all........");
            assert!(outcomes.iter().all(|o| !o.accepted), "{format}: {outcomes:?}");
            let _ = run(format, b"");
        }
    }

    #[test]
    fn formats_without_baselines_probe_empty() {
        assert!(run("png", b"x").is_empty());
        assert!(run("pdf", b"x").is_empty());
    }
}
