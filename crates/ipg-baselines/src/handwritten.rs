//! Hand-written, direct struct-mapping parsers — the Fig. 12 baselines.
//!
//! These play the role of GNU `readelf` and Info-ZIP `unzip` in the
//! paper's comparison: they read fields straight into structs with a
//! cursor, build no parse tree, and never copy bulk data (entry bodies and
//! section contents stay borrowed spans).

use crate::Cur;

/// Errors from the hand-written parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineError(pub &'static str);

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline parser: {}", self.0)
    }
}

impl std::error::Error for BaselineError {}

type Result<T> = std::result::Result<T, BaselineError>;

fn err<T>(msg: &'static str) -> Result<T> {
    Err(BaselineError(msg))
}

// ---------------------------------------------------------------- ELF --

/// readelf-style view of an ELF file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElfQuick<'a> {
    /// `e_shoff`.
    pub shoff: u64,
    /// `e_shnum`.
    pub shnum: u16,
    /// `e_shstrndx`.
    pub shstrndx: u16,
    /// Section headers `(name_off, type, offset, size, link)`.
    pub sections: Vec<ElfQuickSection>,
    /// Symbols from every SYMTAB section: `(name, value, size)`.
    pub symbols: Vec<(&'a str, u64, u64)>,
}

/// One section header, directly mapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElfQuickSection {
    /// `sh_name`.
    pub name_off: u32,
    /// `sh_type`.
    pub sh_type: u32,
    /// `sh_offset`.
    pub offset: u64,
    /// `sh_size`.
    pub size: u64,
    /// `sh_link`.
    pub link: u32,
}

/// Parses an ELF64-LE file the way `readelf -h -S --dyn-syms` would:
/// header, section table, symbol tables with names.
///
/// # Errors
///
/// [`BaselineError`] on structural problems.
pub fn parse_elf(data: &[u8]) -> Result<ElfQuick<'_>> {
    if data.len() < 64 || &data[..4] != b"\x7fELF" {
        return err("not an ELF file");
    }
    let mut c = Cur::at(data, 0x28);
    let shoff = c.u64le().ok_or(BaselineError("truncated header"))?;
    let mut c = Cur::at(data, 0x3a);
    let shentsize = c.u16le().ok_or(BaselineError("truncated header"))?;
    let shnum = c.u16le().ok_or(BaselineError("truncated header"))?;
    let shstrndx = c.u16le().ok_or(BaselineError("truncated header"))?;
    if shentsize != 64 {
        return err("unexpected e_shentsize");
    }

    let mut sections = Vec::with_capacity(shnum as usize);
    for i in 0..shnum as usize {
        let mut c = Cur::at(data, shoff as usize + i * 64);
        let name_off = c.u32le().ok_or(BaselineError("truncated section header"))?;
        let sh_type = c.u32le().ok_or(BaselineError("truncated section header"))?;
        c.skip(16).ok_or(BaselineError("truncated section header"))?;
        let offset = c.u64le().ok_or(BaselineError("truncated section header"))?;
        let size = c.u64le().ok_or(BaselineError("truncated section header"))?;
        let link = c.u32le().ok_or(BaselineError("truncated section header"))?;
        if sh_type != 0 && offset.saturating_add(size) > data.len() as u64 {
            return err("section out of bounds");
        }
        sections.push(ElfQuickSection { name_off, sh_type, offset, size, link });
    }

    // Symbol tables (type 2), with names out of the linked string table.
    let mut symbols = Vec::new();
    for s in &sections {
        if s.sh_type != 2 {
            continue;
        }
        let strtab = sections.get(s.link as usize).ok_or(BaselineError("bad symtab link"))?;
        // The per-section bounds check above skips NULL sections, so a
        // crafted symtab may link to one with garbage offset/size — slice
        // checked, not assumed.
        let str_bytes = strtab
            .offset
            .checked_add(strtab.size)
            .filter(|&end| end <= data.len() as u64)
            .and_then(|end| data.get(strtab.offset as usize..end as usize))
            .ok_or(BaselineError("string table out of bounds"))?;
        let n = (s.size / 24) as usize;
        for k in 0..n {
            let mut c = Cur::at(data, s.offset as usize + k * 24);
            let name_off = c.u32le().ok_or(BaselineError("truncated symbol"))? as usize;
            c.skip(4).ok_or(BaselineError("truncated symbol"))?;
            let value = c.u64le().ok_or(BaselineError("truncated symbol"))?;
            let size = c.u64le().ok_or(BaselineError("truncated symbol"))?;
            let rest = str_bytes.get(name_off..).ok_or(BaselineError("bad name offset"))?;
            let len =
                rest.iter().position(|&b| b == 0).ok_or(BaselineError("unterminated name"))?;
            let name =
                std::str::from_utf8(&rest[..len]).map_err(|_| BaselineError("non-utf8 name"))?;
            symbols.push((name, value, size));
        }
    }

    Ok(ElfQuick { shoff, shnum, shstrndx, sections, symbols })
}

/// Formats an [`ElfQuick`] roughly like `readelf -h -S --dyn-syms` — the
/// "following processing" half of the Fig. 12 end-to-end measurement.
pub fn format_elf(elf: &ElfQuick<'_>, data: &[u8]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ELF Header: shoff={} shnum={} shstrndx={}",
        elf.shoff, elf.shnum, elf.shstrndx
    );
    let shstr = elf.sections.get(elf.shstrndx as usize);
    for (i, s) in elf.sections.iter().enumerate() {
        let name = shstr
            .and_then(|t| data.get(t.offset as usize + s.name_off as usize..))
            .and_then(|r| r.iter().position(|&b| b == 0).map(|l| &r[..l]))
            .map(|b| String::from_utf8_lossy(b).into_owned())
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  [{i:2}] {name:<20} type={:<2} off={:#x} size={:#x}",
            s.sh_type, s.offset, s.size
        );
    }
    let _ = writeln!(out, "Symbols: {}", elf.symbols.len());
    for (name, value, size) in &elf.symbols {
        let _ = writeln!(out, "  {value:#010x} {size:5} {name}");
    }
    out
}

// ---------------------------------------------------------------- ZIP --

/// One extracted archive entry (unzip-style).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnzippedFile {
    /// Stored name.
    pub name: String,
    /// Decompressed contents.
    pub data: Vec<u8>,
}

/// A parsed (not yet decompressed) archive, zero-copy like unzip's
/// central-directory walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZipQuick<'a> {
    /// Entries: `(name, method, crc, body)`.
    pub entries: Vec<(&'a str, u16, u32, &'a [u8])>,
}

/// Parses local file headers sequentially, borrowing bodies.
///
/// # Errors
///
/// [`BaselineError`] on structural problems.
pub fn parse_zip(data: &[u8]) -> Result<ZipQuick<'_>> {
    if data.len() < 22 {
        return err("too short for an archive");
    }
    let mut c = Cur::at(data, data.len() - 22);
    if c.u32le() != Some(0x0605_4b50) {
        return err("missing end record");
    }
    c.skip(4).ok_or(BaselineError("truncated end record"))?;
    let n = c.u16le().ok_or(BaselineError("truncated end record"))? as usize;

    let mut entries = Vec::with_capacity(n);
    let mut c = Cur::new(data);
    for _ in 0..n {
        if c.u32le() != Some(0x0403_4b50) {
            return err("missing local header");
        }
        c.skip(4).ok_or(BaselineError("truncated local header"))?;
        let method = c.u16le().ok_or(BaselineError("truncated local header"))?;
        c.skip(4).ok_or(BaselineError("truncated local header"))?;
        let crc = c.u32le().ok_or(BaselineError("truncated local header"))?;
        let csize = c.u32le().ok_or(BaselineError("truncated local header"))? as usize;
        c.skip(4).ok_or(BaselineError("truncated local header"))?;
        let namelen = c.u16le().ok_or(BaselineError("truncated local header"))? as usize;
        let extralen = c.u16le().ok_or(BaselineError("truncated local header"))? as usize;
        let name = std::str::from_utf8(c.take(namelen).ok_or(BaselineError("truncated name"))?)
            .map_err(|_| BaselineError("non-utf8 name"))?;
        c.skip(extralen).ok_or(BaselineError("truncated extra"))?;
        let body = c.take(csize).ok_or(BaselineError("truncated body"))?;
        entries.push((name, method, crc, body));
    }
    Ok(ZipQuick { entries })
}

/// Parses *and* extracts, like `unzip`: inflate each body and verify its
/// CRC — the end-to-end half of Fig. 12a.
///
/// # Errors
///
/// [`BaselineError`] on structural problems, decompression failures, or
/// CRC mismatches.
pub fn unzip(data: &[u8]) -> Result<Vec<UnzippedFile>> {
    let archive = parse_zip(data)?;
    let mut out = Vec::with_capacity(archive.entries.len());
    for (name, method, crc, body) in archive.entries {
        let data = match method {
            0 => body.to_vec(),
            8 => ipg_flate::inflate(body).map_err(|_| BaselineError("bad deflate stream"))?,
            _ => return err("unsupported method"),
        };
        if ipg_flate::crc32(&data) != crc {
            return err("crc mismatch");
        }
        out.push(UnzippedFile { name: name.to_owned(), data });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_corpus::{elf, zip};

    #[test]
    fn elf_matches_ground_truth() {
        let f = elf::generate(&elf::Config::default());
        let parsed = parse_elf(&f.bytes).unwrap();
        assert_eq!(parsed.shoff, f.summary.shoff);
        assert_eq!(parsed.shnum, f.summary.shnum);
        assert_eq!(parsed.sections.len(), f.summary.sections.len());
        for (s, &(ty, ofs, sz)) in parsed.sections.iter().zip(&f.summary.sections) {
            assert_eq!(s.sh_type, ty);
            assert_eq!(s.offset, ofs);
            assert_eq!(s.size, sz);
        }
        let names: Vec<&str> = parsed.symbols.iter().map(|&(n, _, _)| n).collect();
        let expected: Vec<&str> = f.summary.symbol_names.iter().map(String::as_str).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn elf_rejects_garbage() {
        assert!(parse_elf(b"not elf").is_err());
        let f = elf::generate(&elf::Config::default());
        assert!(parse_elf(&f.bytes[..100]).is_err());
    }

    #[test]
    fn format_elf_mentions_sections_and_symbols() {
        let f = elf::generate(&elf::Config { n_symbols: 2, ..Default::default() });
        let parsed = parse_elf(&f.bytes).unwrap();
        let text = format_elf(&parsed, &f.bytes);
        assert!(text.contains(".dynamic"));
        assert!(text.contains(&f.summary.symbol_names[0]));
    }

    #[test]
    fn unzip_roundtrips_the_corpus() {
        let a = zip::generate(&zip::Config { n_entries: 3, ..Default::default() });
        let files = unzip(&a.bytes).unwrap();
        assert_eq!(files.len(), 3);
        for f in &files {
            assert_eq!(f.data, a.payload);
        }
    }

    #[test]
    fn unzip_detects_corruption() {
        let mut a = zip::generate(&zip::Config { n_entries: 1, ..Default::default() }).bytes;
        // Damage a byte in the middle of the first body.
        let idx = 60;
        a[idx] ^= 0x55;
        assert!(unzip(&a).is_err());
    }

    #[test]
    fn zip_parse_is_zero_copy() {
        let a = zip::generate(&zip::Config::default());
        let parsed = parse_zip(&a.bytes).unwrap();
        // Bodies are borrowed from the input buffer.
        let (_, _, _, body) = parsed.entries[0];
        let base = a.bytes.as_ptr() as usize;
        let ptr = body.as_ptr() as usize;
        assert!(ptr >= base && ptr < base + a.bytes.len());
    }
}
