//! Blackbox parsers (§3.4 of the paper).
//!
//! IPGs are *modular*: an interval confines exactly what part of the input
//! an external, opaque parser may see. The canonical example — used by the
//! ZIP case study in §7 — hands the compressed bytes of an archive entry to
//! a DEFLATE decompressor.
//!
//! A blackbox parser receives the local input slice and reports how many
//! bytes it consumed, the decoded payload, and the values of the integer
//! attributes it declared up front (so attribute checking can treat a
//! blackbox rule like any other rule with a known `def` set).

/// The result of running a blackbox parser on a local input slice.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlackboxResult {
    /// Number of input bytes consumed (sets the node's `end` attribute so
    /// implicit intervals after the blackbox work).
    pub consumed: usize,
    /// Decoded output bytes (e.g. decompressed data). May be empty.
    pub data: Vec<u8>,
    /// Values of the attributes declared in [`Blackbox::attrs`], in the
    /// same order.
    pub attr_values: Vec<i64>,
}

/// The function type of a blackbox parser.
///
/// The argument is the interval-confined local input. Errors are reported
/// as strings and surface as parse failures (the enclosing biased choice
/// may still recover).
pub type BlackboxFn = dyn Fn(&[u8]) -> Result<BlackboxResult, String> + Send + Sync;

/// A named blackbox parser together with its declared attribute names.
#[derive(Clone)]
pub struct Blackbox {
    /// Name under which the grammar references this parser.
    pub name: String,
    /// Attribute names this parser defines (its `def` set).
    pub attrs: Vec<String>,
    /// The implementation.
    pub run: std::sync::Arc<BlackboxFn>,
}

impl std::fmt::Debug for Blackbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blackbox")
            .field("name", &self.name)
            .field("attrs", &self.attrs)
            .field("run", &"<fn>")
            .finish()
    }
}

impl Blackbox {
    /// Wraps `f` as a blackbox named `name` declaring no attributes beyond
    /// the implicit `start`/`end`.
    pub fn new<F>(name: &str, f: F) -> Self
    where
        F: Fn(&[u8]) -> Result<BlackboxResult, String> + Send + Sync + 'static,
    {
        Blackbox { name: name.to_owned(), attrs: Vec::new(), run: std::sync::Arc::new(f) }
    }

    /// Wraps `f` as a blackbox that declares the given attributes; `f` must
    /// return exactly `attrs.len()` values in [`BlackboxResult::attr_values`].
    pub fn with_attrs<F>(name: &str, attrs: &[&str], f: F) -> Self
    where
        F: Fn(&[u8]) -> Result<BlackboxResult, String> + Send + Sync + 'static,
    {
        Blackbox {
            name: name.to_owned(),
            attrs: attrs.iter().map(|s| (*s).to_owned()).collect(),
            run: std::sync::Arc::new(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackbox_runs_on_confined_slice() {
        let bb = Blackbox::new("upper", |input| {
            Ok(BlackboxResult {
                consumed: input.len(),
                data: input.to_ascii_uppercase(),
                attr_values: vec![],
            })
        });
        let out = (bb.run)(b"zip").unwrap();
        assert_eq!(out.data, b"ZIP");
        assert_eq!(out.consumed, 3);
    }

    #[test]
    fn blackbox_errors_are_strings() {
        let bb = Blackbox::new("never", |_| Err("nope".to_owned()));
        assert_eq!((bb.run)(b"x").unwrap_err(), "nope");
    }

    #[test]
    fn with_attrs_declares_def_set() {
        let bb = Blackbox::with_attrs("len", &["n"], |input| {
            Ok(BlackboxResult {
                consumed: input.len(),
                data: Vec::new(),
                attr_values: vec![input.len() as i64],
            })
        });
        assert_eq!(bb.attrs, vec!["n".to_owned()]);
        assert_eq!((bb.run)(b"abcd").unwrap().attr_values, vec![4]);
    }

    #[test]
    fn debug_does_not_print_the_closure() {
        let bb = Blackbox::new("x", |_| Ok(BlackboxResult::default()));
        let dbg = format!("{bb:?}");
        assert!(dbg.contains("\"x\""));
        assert!(dbg.contains("<fn>"));
    }
}
