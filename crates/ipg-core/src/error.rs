//! Error types shared across the crate.

use std::fmt;

/// Convenience alias used by all fallible public functions in this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// The unified error type of `ipg-core`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// The textual frontend rejected the grammar source.
    Syntax {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Attribute checking failed (undefined reference or cyclic
    /// dependencies inside an alternative).
    Check(String),
    /// The grammar is structurally malformed (duplicate rule, unknown
    /// nonterminal, missing start symbol, …).
    Grammar(String),
    /// Parsing an input failed. Reports the deepest failure observed.
    Parse(ParseError),
    /// The termination checker could not prove that parsing terminates.
    Termination(String),
    /// A blackbox parser reported an error.
    Blackbox(String),
    /// A streaming session was misused (input after completion, byte
    /// budget exceeded, …) or evicted by its host.
    Session(String),
    /// A persisted `.ipgc` artifact could not be loaded: bad magic,
    /// format-version skew, checksum mismatch, truncation, or an
    /// inconsistency between the artifact and the grammar it claims to
    /// have been compiled from. Loading never panics on malformed bytes.
    Artifact(String),
    /// A service worker panicked while executing this job. The panic was
    /// caught at the job boundary: the job is lost, the worker recovered
    /// and keeps serving, and the payload message is preserved here so
    /// the caller sees *why* instead of a dropped reply channel.
    WorkerPanic(String),
}

/// Details about a failed parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Absolute input offset of the deepest failure.
    pub offset: usize,
    /// Name of the nonterminal being parsed when the deepest failure
    /// occurred (if any).
    pub nonterminal: Option<String>,
    /// Human-readable description of the deepest failure.
    pub msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { line, col, msg } => {
                write!(f, "syntax error at {line}:{col}: {msg}")
            }
            Error::Check(msg) => write!(f, "attribute check failed: {msg}"),
            Error::Grammar(msg) => write!(f, "malformed grammar: {msg}"),
            Error::Parse(pe) => write!(f, "{pe}"),
            Error::Termination(msg) => write!(f, "termination check failed: {msg}"),
            Error::Blackbox(msg) => write!(f, "blackbox parser failed: {msg}"),
            Error::Session(msg) => write!(f, "session error: {msg}"),
            Error::Artifact(msg) => write!(f, "artifact error: {msg}"),
            Error::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse failed at offset {}", self.offset)?;
        if let Some(nt) = &self.nonterminal {
            write!(f, " in {nt}")?;
        }
        write!(f, ": {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(pe: ParseError) -> Self {
        Error::Parse(pe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_syntax_error() {
        let e = Error::Syntax { line: 3, col: 7, msg: "unexpected `]`".into() };
        assert_eq!(e.to_string(), "syntax error at 3:7: unexpected `]`");
    }

    #[test]
    fn display_parse_error_with_nonterminal() {
        let e = Error::from(ParseError {
            offset: 42,
            nonterminal: Some("Header".into()),
            msg: "terminal mismatch".into(),
        });
        assert_eq!(e.to_string(), "parse failed at offset 42 in Header: terminal mismatch");
    }

    #[test]
    fn parse_error_without_nonterminal() {
        let pe = ParseError { offset: 0, nonterminal: None, msg: "empty input".into() };
        assert_eq!(pe.to_string(), "parse failed at offset 0: empty input");
    }
}
