//! Recursive-descent parser for the textual IPG notation.
//!
//! Grammar of the notation (informally):
//!
//! ```text
//! grammar   := item*
//! item      := "start" NAME ";"
//!            | "local"? rule
//! rule      := NAME "->" alts where? ";"
//!            | NAME ":=" NAME ";"              // builtin
//!            | NAME ":=" "blackbox" NAME ";"   // blackbox
//! where     := "where" "{" rule* "}"
//! alts      := terms ("/" terms)*
//! terms     := term*
//! term      := NAME interval?                  // nonterminal
//!            | STRING interval?                // terminal
//!            | "{" NAME "=" expr "}"           // attribute definition
//!            | "assert" "(" expr ")"           // predicate
//!            | "for" NAME "=" expr "to" expr "do" NAME interval
//!            | "switch" "(" case ("/" case)* ")"
//!            | "star" NAME interval?             // one-or-more repetition
//! case      := (expr ":")? NAME interval?
//! interval  := "[" expr "]"                    // length only
//!            | "[" expr "," expr "]"
//! expr      := ternary with the usual precedence; references are
//!              NAME | NAME "." NAME | NAME "(" expr ")" "." NAME | EOI |
//!              "exists" NAME "in" NAME "." expr "?" expr ":" expr
//! ```
//!
//! Missing intervals are filled in afterwards by
//! [`super::completion::complete_intervals`].

use super::lexer::{lex, Spanned, Tok};
use crate::error::{Error, Result};
use crate::syntax::{
    Alternative, BinOp, Builtin, Expr, Grammar, Interval, IntervalOrigin, Reference, Rule,
    RuleBody, SwitchCase, Term,
};

/// An interval as written: possibly absent or length-only.
#[derive(Clone, Debug)]
pub(super) enum RawInterval {
    /// No interval written.
    Missing,
    /// `[len]`.
    Length(Expr),
    /// `[lo, hi]`.
    Full(Expr, Expr),
}

/// Parses the textual notation into a surface grammar with *raw* intervals
/// encoded as follows: missing and length-only intervals are temporarily
/// represented with placeholder expressions and fixed by the completion
/// pass. Callers should use [`super::parse_surface`] instead.
pub(super) fn parse_items(src: &str) -> Result<(Grammar, Vec<PendingTerm>)> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0, expr_depth: 0 };
    let mut grammar = Grammar::default();
    let mut pending = Vec::new();

    while !p.at(Tok::Eof) {
        if p.eat_name_kw("start") {
            let name = p.expect_name("start nonterminal")?;
            p.expect(Tok::Semi)?;
            grammar.start = Some(name);
            continue;
        }
        let is_local = p.eat_name_kw("local");
        p.parse_rule(is_local, &mut grammar, &mut pending)?;
    }
    Ok((grammar, pending))
}

/// Location of a term whose interval needs completion: rule index,
/// alternative index, term index, plus the raw interval and (for switch
/// terms) per-case raw intervals.
#[derive(Clone, Debug)]
pub(super) struct PendingTerm {
    /// Index into [`Grammar::rules`].
    pub rule: usize,
    /// Alternative index within the rule.
    pub alt: usize,
    /// Term index within the alternative.
    pub term: usize,
    /// Raw interval(s): one for plain terms, one per case for switches.
    pub raw: Vec<RawInterval>,
}

/// Maximum expression nesting depth. Deeper expressions are rejected with
/// a clean error instead of risking stack exhaustion in this parser and in
/// every later pass that recurses over the expression tree.
const MAX_EXPR_DEPTH: u32 = 128;

struct P {
    toks: Vec<Spanned>,
    pos: usize,
    expr_depth: u32,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn here(&self) -> (usize, usize) {
        let s = &self.toks[self.pos];
        (s.line, s.col)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        let (line, col) = self.here();
        Err(Error::Syntax { line, col, msg: msg.into() })
    }

    fn at(&self, t: Tok) -> bool {
        *self.peek() == t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if self.at(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        if self.eat(t.clone()) {
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    /// Consumes a NAME token equal to `kw`.
    fn eat_name_kw(&mut self, kw: &str) -> bool {
        if let Tok::Name(n) = self.peek() {
            if n == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_name(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            Tok::Name(n) => {
                self.pos += 1;
                Ok(n)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn parse_rule(
        &mut self,
        is_local: bool,
        grammar: &mut Grammar,
        pending: &mut Vec<PendingTerm>,
    ) -> Result<()> {
        let name = self.expect_name("rule name")?;
        if self.eat(Tok::ColonEq) {
            // Builtin or blackbox rule.
            let kind = self.expect_name("builtin name or `blackbox`")?;
            let body = if kind == "blackbox" {
                let bb = self.expect_name("blackbox name")?;
                RuleBody::Blackbox(bb)
            } else {
                match Builtin::from_name(&kind) {
                    Some(b) => RuleBody::Builtin(b),
                    None => return self.err(format!("unknown builtin `{kind}`")),
                }
            };
            self.expect(Tok::Semi)?;
            grammar.rules.push(Rule { name, body, is_local });
            return Ok(());
        }
        self.expect(Tok::Arrow)?;
        let rule_index = grammar.rules.len();
        // Reserve the slot so nested `where` rules come after their parent.
        grammar.rules.push(Rule { name: name.clone(), body: RuleBody::Alts(Vec::new()), is_local });

        let mut alts = vec![self.parse_alt(rule_index, grammar.rules.len(), pending, 0)?];
        while self.eat(Tok::Slash) {
            let alt_idx = alts.len();
            alts.push(self.parse_alt(rule_index, grammar.rules.len(), pending, alt_idx)?);
        }
        grammar.rules[rule_index].body = RuleBody::Alts(alts);

        if self.eat_name_kw("where") {
            self.expect(Tok::LBrace)?;
            while !self.eat(Tok::RBrace) {
                if self.at(Tok::Eof) {
                    return self.err("unterminated `where` block");
                }
                self.parse_rule(true, grammar, pending)?;
            }
        }
        self.expect(Tok::Semi)?;
        Ok(())
    }

    fn parse_alt(
        &mut self,
        rule: usize,
        _rules_len: usize,
        pending: &mut Vec<PendingTerm>,
        alt: usize,
    ) -> Result<Alternative> {
        let mut terms = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::Name(n)
                    if n != "where"
                        && n != "for"
                        && n != "switch"
                        && n != "assert"
                        && n != "local"
                        && n != "star"
                        && n != "start" =>
                {
                    self.pos += 1;
                    let raw = self.parse_raw_interval()?;
                    let term_idx = terms.len();
                    let interval = placeholder_interval(&raw);
                    if !matches!(raw, RawInterval::Full(..)) {
                        pending.push(PendingTerm { rule, alt, term: term_idx, raw: vec![raw] });
                    }
                    terms.push(Term::Symbol { name: n, interval });
                }
                Tok::Str(bytes) => {
                    self.pos += 1;
                    let raw = self.parse_raw_interval()?;
                    let term_idx = terms.len();
                    let interval = placeholder_interval(&raw);
                    if !matches!(raw, RawInterval::Full(..)) {
                        pending.push(PendingTerm { rule, alt, term: term_idx, raw: vec![raw] });
                    }
                    terms.push(Term::Terminal { bytes, interval });
                }
                Tok::LBrace => {
                    self.pos += 1;
                    let name = self.expect_name("attribute name")?;
                    self.expect(Tok::Eq)?;
                    let expr = self.parse_expr()?;
                    self.expect(Tok::RBrace)?;
                    terms.push(Term::AttrDef { name, expr });
                }
                Tok::Name(n) if n == "assert" => {
                    self.pos += 1;
                    self.expect(Tok::LParen)?;
                    let expr = self.parse_expr()?;
                    self.expect(Tok::RParen)?;
                    terms.push(Term::Predicate { expr });
                }
                Tok::Name(n) if n == "for" => {
                    self.pos += 1;
                    let var = self.expect_name("loop variable")?;
                    self.expect(Tok::Eq)?;
                    let from = self.parse_expr()?;
                    if !self.eat_name_kw("to") {
                        return self.err("expected `to` in for-term");
                    }
                    let to = self.parse_expr()?;
                    if !self.eat_name_kw("do") {
                        return self.err("expected `do` in for-term");
                    }
                    let name = self.expect_name("array element nonterminal")?;
                    let raw = self.parse_raw_interval()?;
                    let interval = match raw {
                        RawInterval::Full(lo, hi) => Interval::new(lo, hi),
                        _ => {
                            return self.err(
                                "array terms need an explicit `[lo, hi]` interval \
                                 (per-element intervals cannot be inferred)",
                            )
                        }
                    };
                    terms.push(Term::Array { var, from, to, name, interval });
                }
                Tok::Name(n) if n == "star" => {
                    self.pos += 1;
                    let name = self.expect_name("star element nonterminal")?;
                    let raw = self.parse_raw_interval()?;
                    let term_idx = terms.len();
                    let interval = placeholder_interval(&raw);
                    if !matches!(raw, RawInterval::Full(..)) {
                        pending.push(PendingTerm { rule, alt, term: term_idx, raw: vec![raw] });
                    }
                    terms.push(Term::Star { name, interval });
                }
                Tok::Name(n) if n == "switch" => {
                    self.pos += 1;
                    self.expect(Tok::LParen)?;
                    let mut cases = Vec::new();
                    let mut raws = Vec::new();
                    loop {
                        let (case, raw) = self.parse_switch_case()?;
                        cases.push(case);
                        raws.push(raw);
                        if self.eat(Tok::Slash) {
                            continue;
                        }
                        self.expect(Tok::RParen)?;
                        break;
                    }
                    let default = cases.pop().expect("at least one case parsed");
                    if default.cond.is_some() {
                        return self.err("the last switch case is the default and takes no guard");
                    }
                    let term_idx = terms.len();
                    if raws.iter().any(|r| !matches!(r, RawInterval::Full(..))) {
                        pending.push(PendingTerm { rule, alt, term: term_idx, raw: raws });
                    }
                    terms.push(Term::Switch { cases, default: Box::new(default) });
                }
                _ => break,
            }
        }
        Ok(Alternative { terms })
    }

    /// One switch case: `expr : NAME interval?` or `NAME interval?`
    /// (default). Distinguished by trying the expression and checking for a
    /// `:`; positions are restored on the other path.
    fn parse_switch_case(&mut self) -> Result<(SwitchCase, RawInterval)> {
        let save = self.pos;
        // Try `expr : NAME ...` first.
        if let Ok(cond) = self.parse_expr() {
            if self.eat(Tok::Colon) {
                let name = self.expect_name("switch case nonterminal")?;
                let raw = self.parse_raw_interval()?;
                let interval = placeholder_interval(&raw);
                return Ok((SwitchCase { cond: Some(cond), name, interval }, raw));
            }
        }
        // Default case: plain `NAME interval?`.
        self.pos = save;
        let name = self.expect_name("switch case nonterminal")?;
        let raw = self.parse_raw_interval()?;
        let interval = placeholder_interval(&raw);
        Ok((SwitchCase { cond: None, name, interval }, raw))
    }

    fn parse_raw_interval(&mut self) -> Result<RawInterval> {
        if !self.eat(Tok::LBrack) {
            return Ok(RawInterval::Missing);
        }
        let first = self.parse_expr()?;
        if self.eat(Tok::Comma) {
            let second = self.parse_expr()?;
            self.expect(Tok::RBrack)?;
            Ok(RawInterval::Full(first, second))
        } else {
            self.expect(Tok::RBrack)?;
            Ok(RawInterval::Length(first))
        }
    }

    // ---- expressions -------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.expr_depth += 1;
        if self.expr_depth > MAX_EXPR_DEPTH {
            self.expr_depth -= 1;
            return self.err(format!("expression nesting deeper than {MAX_EXPR_DEPTH} levels"));
        }
        let result = self.parse_ternary();
        self.expr_depth -= 1;
        result
    }

    fn parse_ternary(&mut self) -> Result<Expr> {
        let cond = self.parse_bin(1)?;
        if self.eat(Tok::Question) {
            let then = self.parse_expr()?;
            self.expect(Tok::Colon)?;
            let els = self.parse_expr()?;
            Ok(Expr::Cond(Box::new(cond), Box::new(then), Box::new(els)))
        } else {
            Ok(cond)
        }
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        while let Some(op) = self.peek_binop() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<BinOp> {
        Some(match self.peek() {
            Tok::Plus => BinOp::Add,
            Tok::Minus => BinOp::Sub,
            Tok::Star => BinOp::Mul,
            Tok::Slash => BinOp::Div,
            Tok::Percent => BinOp::Mod,
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Gt => BinOp::Gt,
            Tok::Le => BinOp::Le,
            Tok::Ge => BinOp::Ge,
            Tok::AndAnd => BinOp::And,
            Tok::OrOr => BinOp::Or,
            Tok::Shl => BinOp::Shl,
            Tok::Shr => BinOp::Shr,
            Tok::Amp => BinOp::BitAnd,
            Tok::Pipe => BinOp::BitOr,
            _ => return None,
        })
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(Tok::Minus) {
            let e = self.parse_unary()?;
            return Ok(match e {
                Expr::Num(n) => Expr::Num(-n),
                other => Expr::Bin(BinOp::Sub, Box::new(Expr::Num(0)), Box::new(other)),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.pos += 1;
                Ok(Expr::Num(n))
            }
            Tok::LParen => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Name(n) if n == "EOI" => {
                self.pos += 1;
                Ok(Expr::Ref(Reference::Eoi))
            }
            Tok::Name(n) if n == "exists" => {
                self.pos += 1;
                let var = self.expect_name("existential variable")?;
                if !self.eat_name_kw("in") {
                    return self.err("expected `in` after existential variable");
                }
                let array = self.expect_name("array nonterminal")?;
                self.expect(Tok::Dot)?;
                let cond = self.parse_bin(1)?;
                self.expect(Tok::Question)?;
                let then = self.parse_expr()?;
                self.expect(Tok::Colon)?;
                let els = self.parse_expr()?;
                Ok(Expr::Exists {
                    var,
                    array,
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                })
            }
            Tok::Name(n) => {
                self.pos += 1;
                if self.eat(Tok::Dot) {
                    let attr = self.expect_name("attribute name")?;
                    Ok(Expr::Ref(Reference::Attr { nt: n, attr }))
                } else if self.at(Tok::LParen) {
                    // `A(e).attr` — element reference.
                    self.pos += 1;
                    let index = self.parse_expr()?;
                    self.expect(Tok::RParen)?;
                    self.expect(Tok::Dot)?;
                    let attr = self.expect_name("attribute name")?;
                    Ok(Expr::Ref(Reference::Elem { nt: n, index: Box::new(index), attr }))
                } else {
                    Ok(Expr::Ref(Reference::Local(n)))
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

/// A stand-in interval while completion is pending; never observed by
/// users because completion replaces it (or parsing fails).
fn placeholder_interval(raw: &RawInterval) -> Interval {
    match raw {
        RawInterval::Full(lo, hi) => Interval::new(lo.clone(), hi.clone()),
        RawInterval::Length(len) => {
            Interval { lo: Expr::Num(0), hi: len.clone(), origin: IntervalOrigin::InferredLength }
        }
        RawInterval::Missing => Interval {
            lo: Expr::Num(0),
            hi: Expr::Ref(Reference::Eoi),
            origin: IntervalOrigin::InferredFull,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2() {
        let (g, pending) = parse_items(
            r#"
            S -> H[0, 8] Data[H.offset, H.offset + H.length];
            H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
            Int := u32le;
            Data := bytes;
            "#,
        )
        .unwrap();
        assert_eq!(g.rules.len(), 4);
        assert!(pending.is_empty(), "all intervals explicit");
        let s = &g.rules[0];
        let RuleBody::Alts(alts) = &s.body else { panic!() };
        assert_eq!(alts[0].terms.len(), 2);
    }

    #[test]
    fn parses_alternatives_and_division() {
        let (g, _) = parse_items(
            "S -> {n = EOI / 3} A[0, n] / B[0, EOI]; A -> \"a\"[0,1]; B -> \"b\"[0,1];",
        )
        .unwrap();
        let RuleBody::Alts(alts) = &g.rules[0].body else { panic!() };
        assert_eq!(alts.len(), 2, "the / inside braces is division, outside separates alts");
    }

    #[test]
    fn parses_for_and_exists() {
        let (g, _) = parse_items(
            "S -> H[0,8] for i = 0 to H.num do SH[8 + 8*i, 16 + 8*i] \
             {x = exists j in SH . SH(j).ofs = 0 ? j : -1}; H -> {num = 1} \"\"[0,0]; SH -> {ofs = EOI} \"\"[0,0];",
        )
        .unwrap();
        let RuleBody::Alts(alts) = &g.rules[0].body else { panic!() };
        assert!(matches!(alts[0].terms[1], Term::Array { .. }));
        let Term::AttrDef { expr: Expr::Exists { .. }, .. } = &alts[0].terms[2] else {
            panic!("expected exists in attr def");
        };
    }

    #[test]
    fn parses_switch_with_default() {
        let (g, _) = parse_items(
            "S -> T[0,1] switch(T.val = 1 : A[1, EOI] / T.val >= 1536 : B[1, EOI] / C[1, EOI]); \
             T := u8; A := bytes; B := bytes; C := bytes;",
        )
        .unwrap();
        let RuleBody::Alts(alts) = &g.rules[0].body else { panic!() };
        let Term::Switch { cases, default } = &alts[0].terms[1] else { panic!() };
        assert_eq!(cases.len(), 2);
        assert!(default.cond.is_none());
        assert_eq!(default.name, "C");
    }

    #[test]
    fn where_rules_are_local_and_hoisted() {
        let (g, _) = parse_items(
            "S -> A[0,1] D[0, EOI] where { D -> B[A.val, EOI]; }; A := u8; B := bytes;",
        )
        .unwrap();
        assert_eq!(g.rules.len(), 4);
        let d = g.rule("D").unwrap();
        assert!(d.is_local);
        assert!(!g.rule("S").unwrap().is_local);
    }

    #[test]
    fn pending_terms_record_missing_and_length_intervals() {
        let (_, pending) =
            parse_items("S -> \"magic\" A B[10]; A -> \"\"[0,0]; B -> \"\"[0,0];").unwrap();
        // "magic" missing, A missing, B length-only.
        assert_eq!(pending.len(), 3);
        assert!(matches!(pending[0].raw[0], RawInterval::Missing));
        assert!(matches!(pending[1].raw[0], RawInterval::Missing));
        assert!(matches!(pending[2].raw[0], RawInterval::Length(_)));
    }

    #[test]
    fn ternary_and_precedence() {
        let (g, _) = parse_items("S -> {x = 1 + 2 * 3 = 7 ? 10 : 20} \"\"[0,0];").unwrap();
        let RuleBody::Alts(alts) = &g.rules[0].body else { panic!() };
        let Term::AttrDef { expr, .. } = &alts[0].terms[0] else { panic!() };
        assert_eq!(expr.to_string(), "1 + 2 * 3 = 7 ? 10 : 20");
    }

    #[test]
    fn unary_minus() {
        let (g, _) = parse_items("S -> {x = -5} {y = 0 - EOI} \"\"[0,0];").unwrap();
        let RuleBody::Alts(alts) = &g.rules[0].body else { panic!() };
        let Term::AttrDef { expr, .. } = &alts[0].terms[0] else { panic!() };
        assert_eq!(*expr, Expr::Num(-5));
    }

    #[test]
    fn start_directive() {
        let (g, _) = parse_items("start B; A -> \"\"[0,0]; B -> \"\"[0,0];").unwrap();
        assert_eq!(g.start.as_deref(), Some("B"));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_items("S -> [0, 1];").unwrap_err();
        let Error::Syntax { line, .. } = err else { panic!("expected syntax error") };
        assert_eq!(line, 1);
    }

    #[test]
    fn rejects_guard_on_last_switch_case() {
        let err = parse_items("S -> switch(x = 1 : A[0,1] / x = 2 : B[0,1]); A := u8; B := u8;")
            .unwrap_err();
        assert!(err.to_string().contains("default"));
    }
}
