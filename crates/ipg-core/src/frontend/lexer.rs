//! Lexer for the textual IPG notation.

use crate::error::{Error, Result};

/// A token of the `.ipg` notation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Name(String),
    /// Integer literal.
    Num(i64),
    /// String literal (already unescaped).
    Str(Vec<u8>),
    /// `->`
    Arrow,
    /// `:=`
    ColonEq,
    /// `;`
    Semi,
    /// `/`
    Slash,
    /// `[`
    LBrack,
    /// `]`
    RBrack,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

/// A token with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Tokenizes `src`. `//` comments run to end of line.
///
/// # Errors
///
/// Returns [`Error::Syntax`] on malformed literals or unexpected
/// characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(Error::Syntax { line, col, msg: format!($($arg)*) })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let mut push = |tok: Tok| out.push(Spanned { tok, line: tline, col: tcol });

        match c {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
                col += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                let (s, consumed, lines) = lex_string(&src[i..], line, col)?;
                push(Tok::Str(s));
                i += consumed;
                if lines > 0 {
                    line += lines;
                    col = 1;
                } else {
                    col += consumed;
                }
            }
            b'x' if bytes.get(i + 1) == Some(&b'"') => {
                let (s, consumed) = lex_hex_string(&src[i..], line, col)?;
                push(Tok::Str(s));
                i += consumed;
                col += consumed;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                match text.parse::<i64>() {
                    Ok(n) => push(Tok::Num(n)),
                    Err(_) => err!("integer literal `{text}` out of range"),
                }
                col += i - start;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push(Tok::Name(src[start..i].to_owned()));
                col += i - start;
            }
            _ => {
                let two = if i + 1 < bytes.len() { &bytes[i..i + 2] } else { &bytes[i..i + 1] };
                let (tok, width) = match two {
                    b"->" => (Tok::Arrow, 2),
                    b":=" => (Tok::ColonEq, 2),
                    b"!=" => (Tok::Ne, 2),
                    b"<=" => (Tok::Le, 2),
                    b">=" => (Tok::Ge, 2),
                    b"<<" => (Tok::Shl, 2),
                    b">>" => (Tok::Shr, 2),
                    b"&&" => (Tok::AndAnd, 2),
                    b"||" => (Tok::OrOr, 2),
                    _ => match c {
                        b';' => (Tok::Semi, 1),
                        b'/' => (Tok::Slash, 1),
                        b'[' => (Tok::LBrack, 1),
                        b']' => (Tok::RBrack, 1),
                        b'{' => (Tok::LBrace, 1),
                        b'}' => (Tok::RBrace, 1),
                        b'(' => (Tok::LParen, 1),
                        b')' => (Tok::RParen, 1),
                        b',' => (Tok::Comma, 1),
                        b'.' => (Tok::Dot, 1),
                        b'?' => (Tok::Question, 1),
                        b':' => (Tok::Colon, 1),
                        b'=' => (Tok::Eq, 1),
                        b'<' => (Tok::Lt, 1),
                        b'>' => (Tok::Gt, 1),
                        b'&' => (Tok::Amp, 1),
                        b'|' => (Tok::Pipe, 1),
                        b'+' => (Tok::Plus, 1),
                        b'-' => (Tok::Minus, 1),
                        b'*' => (Tok::Star, 1),
                        b'%' => (Tok::Percent, 1),
                        other => err!("unexpected character `{}`", other as char),
                    },
                };
                push(tok);
                i += width;
                col += width;
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, line, col });
    Ok(out)
}

/// Lexes a quoted string starting at `src[0] == '"'`. Returns the bytes,
/// the number of source bytes consumed, and the number of newlines crossed.
fn lex_string(src: &str, line: usize, col: usize) -> Result<(Vec<u8>, usize, usize)> {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[0], b'"');
    let mut out = Vec::new();
    let mut i = 1;
    let mut lines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1, lines)),
            b'\\' => {
                let esc = bytes.get(i + 1).copied();
                match esc {
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'0') => out.push(0),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'"') => out.push(b'"'),
                    Some(b'x') => {
                        let hex = src.get(i + 2..i + 4).ok_or(Error::Syntax {
                            line,
                            col,
                            msg: "truncated \\x escape".into(),
                        })?;
                        let v = u8::from_str_radix(hex, 16).map_err(|_| Error::Syntax {
                            line,
                            col,
                            msg: format!("invalid \\x escape `\\x{hex}`"),
                        })?;
                        out.push(v);
                        i += 2;
                    }
                    _ => {
                        return Err(Error::Syntax {
                            line,
                            col,
                            msg: "invalid escape in string literal".into(),
                        })
                    }
                }
                i += 2;
            }
            b'\n' => {
                lines += 1;
                out.push(b'\n');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    Err(Error::Syntax { line, col, msg: "unterminated string literal".into() })
}

/// Lexes a hex string `x"7f454c46"` starting at `src[0] == 'x'`.
fn lex_hex_string(src: &str, line: usize, col: usize) -> Result<(Vec<u8>, usize)> {
    let bytes = src.as_bytes();
    debug_assert_eq!(&bytes[..2], b"x\"");
    let mut out = Vec::new();
    let mut i = 2;
    let mut nibble: Option<u8> = None;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'"' => {
                if nibble.is_some() {
                    return Err(Error::Syntax {
                        line,
                        col,
                        msg: "hex string has an odd number of digits".into(),
                    });
                }
                return Ok((out, i + 1));
            }
            b' ' | b'_' => i += 1,
            _ => {
                let v = (c as char).to_digit(16).ok_or_else(|| Error::Syntax {
                    line,
                    col,
                    msg: format!("invalid hex digit `{}`", c as char),
                })? as u8;
                match nibble.take() {
                    Some(hi) => out.push(hi << 4 | v),
                    None => nibble = Some(v),
                }
                i += 1;
            }
        }
    }
    Err(Error::Syntax { line, col, msg: "unterminated hex string".into() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_a_rule() {
        assert_eq!(
            toks("S -> A[0, 2];"),
            vec![
                Tok::Name("S".into()),
                Tok::Arrow,
                Tok::Name("A".into()),
                Tok::LBrack,
                Tok::Num(0),
                Tok::Comma,
                Tok::Num(2),
                Tok::RBrack,
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn two_char_operators_win_over_one_char() {
        assert_eq!(
            toks("-> := != <= >= << >> && ||"),
            vec![
                Tok::Arrow,
                Tok::ColonEq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::Shr,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment ; -> \nb"),
            vec![Tok::Name("a".into()), Tok::Name("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""a\x00b\n\"q\\""#),
            vec![Tok::Str(vec![b'a', 0, b'b', b'\n', b'"', b'q', b'\\']), Tok::Eof]
        );
    }

    #[test]
    fn hex_strings() {
        assert_eq!(toks(r#"x"7f454c46""#), vec![Tok::Str(vec![0x7f, 0x45, 0x4c, 0x46]), Tok::Eof]);
        assert_eq!(
            toks(r#"x"7f 45_4c 46""#),
            vec![Tok::Str(vec![0x7f, 0x45, 0x4c, 0x46]), Tok::Eof]
        );
        assert!(lex(r#"x"7f4""#).is_err(), "odd digit count");
    }

    #[test]
    fn identifier_starting_with_x_is_not_a_hex_string() {
        assert_eq!(toks("xyz x2"), vec![Tok::Name("xyz".into()), Tok::Name("x2".into()), Tok::Eof]);
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(lex("\"abc").is_err());
        assert!(lex("x\"ab").is_err());
    }

    #[test]
    fn unexpected_character() {
        let err = lex("S -> @;").unwrap_err();
        assert!(err.to_string().contains('@'));
    }
}
