//! Textual frontend for IPGs: the `.ipg` notation.
//!
//! The notation mirrors the paper's mathematical syntax in ASCII:
//!
//! ```text
//! // Fig. 2 — the random access pattern.
//! S -> H[0, 8] Data[H.offset, H.offset + H.length];
//! H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
//! Int := u32le;
//! Data := bytes;
//! ```
//!
//! * rules end with `;`, alternatives are separated by `/` (biased choice);
//! * predicates `⟨e⟩` are written `assert(e)`;
//! * intervals may be omitted (`A`), given as a length (`A[10]`), or given
//!   in full (`A[lo, hi]`); missing parts are auto-completed (§3.4);
//! * `Name := u32le;` declares a specialized builtin leaf parser, and
//!   `Name := blackbox dec;` delegates to a registered [`Blackbox`];
//! * `where { … }` after a rule's alternatives declares local rules that
//!   inherit the invoking alternative's attributes;
//! * `start Name;` overrides the start nonterminal (default: first rule).

mod completion;
mod lexer;
mod parser;

pub use completion::{interval_stats, IntervalStats};
pub use lexer::{lex, Spanned, Tok};

use crate::blackbox::Blackbox;
use crate::error::Result;
use crate::syntax;

/// Parses the textual notation into a *surface* grammar with all implicit
/// intervals completed.
///
/// # Errors
///
/// Returns [`crate::Error::Syntax`] on notation errors and
/// [`crate::Error::Grammar`] when an implicit interval cannot be inferred.
pub fn parse_surface(src: &str) -> Result<syntax::Grammar> {
    let (mut grammar, pending) = parser::parse_items(src)?;
    completion::complete_intervals(&mut grammar, &pending)?;
    Ok(grammar)
}

/// Parses, completes, checks and lowers a grammar in one step.
///
/// # Errors
///
/// As [`parse_surface`], plus [`crate::Error::Check`] from attribute
/// checking.
pub fn parse_grammar(src: &str) -> Result<crate::check::Grammar> {
    crate::check::check(parse_surface(src)?)
}

/// Like [`parse_grammar`], but first registers blackbox parsers the
/// grammar's `:= blackbox name;` rules refer to.
///
/// # Errors
///
/// As [`parse_grammar`].
pub fn parse_grammar_with(src: &str, blackboxes: Vec<Blackbox>) -> Result<crate::check::Grammar> {
    let mut surface = parse_surface(src)?;
    for bb in blackboxes {
        surface.register_blackbox(bb);
    }
    crate::check::check(surface)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Parser;

    #[test]
    fn end_to_end_fig2() {
        let g = parse_grammar(
            r#"
            S -> H[0, 8] Data[H.offset, H.offset + H.length];
            H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
            Int := u32le;
            Data := bytes;
            "#,
        )
        .unwrap();
        let mut input = Vec::new();
        input.extend_from_slice(&8u32.to_le_bytes());
        input.extend_from_slice(&4u32.to_le_bytes());
        input.extend_from_slice(b"DATA");
        let tree = Parser::new(&g).parse(&input).unwrap();
        assert_eq!(tree.child_node_sym(g.nt_sym("Data").unwrap()).unwrap().span(), (8, 12));
    }

    #[test]
    fn roundtrip_display_then_reparse() {
        let src = r#"
            start S;
            S -> H[0, 8] Data[H.offset, H.offset + H.length] assert(H.offset > 0);
            H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
            Int := u32le;
            Data := bytes;
        "#;
        let g1 = parse_surface(src).unwrap();
        let printed = g1.to_string();
        let g2 = parse_surface(&printed).unwrap();
        assert_eq!(printed, g2.to_string(), "pretty-printing is a fixpoint");
    }

    #[test]
    fn where_clause_end_to_end() {
        let g = parse_grammar(
            r#"
            S -> A[0, 1] D[0, EOI] where { D -> B[A.val, EOI] C[B.end, EOI]; };
            A := u8;
            B -> "b"[0, 1];
            C -> "c"[0, 1];
            "#,
        )
        .unwrap();
        let p = Parser::new(&g);
        // A.val = 2 → B at 2, C right after.
        assert!(p.parse(b"\x02.bc").is_ok());
        assert!(p.parse(b"\x02b.c").is_err());
    }

    #[test]
    fn hex_terminals_parse() {
        let g = parse_grammar(r#"S -> x"7f454c46"[0, 4] Rest[4, EOI]; Rest := bytes;"#).unwrap();
        assert!(Parser::new(&g).parse(b"\x7fELFxxxx").is_ok());
        assert!(Parser::new(&g).parse(b"\x7fELG").is_err());
    }

    #[test]
    fn blackbox_by_name() {
        let bb = Blackbox::new("upper", |input| {
            Ok(crate::blackbox::BlackboxResult {
                consumed: input.len(),
                data: input.to_ascii_uppercase(),
                attr_values: vec![],
            })
        });
        let g = parse_grammar_with(
            r#"S -> "h:"[0, 2] Body[2, EOI]; Body := blackbox upper;"#,
            vec![bb],
        )
        .unwrap();
        let tree = Parser::new(&g).parse(b"h:abc").unwrap();
        assert_eq!(&tree.child_blackbox_sym(g.nt_sym("Body").unwrap()).unwrap().data[..], b"ABC");
    }

    #[test]
    fn missing_blackbox_is_an_error() {
        let err = parse_grammar(r#"S -> Body[0, EOI]; Body := blackbox nope;"#).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn binary_number_grammar_from_text() {
        let g = parse_grammar(
            r#"
            start Int;
            Int -> Int[0, EOI - 1] Digit[EOI - 1, EOI] {val = 2 * Int.val + Digit.val}
                 / Digit[0, 1] {val = Digit.val};
            Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1};
            "#,
        )
        .unwrap();
        let p = Parser::new(&g);
        let tree = p.parse(b"1101").unwrap();
        assert_eq!(tree.as_node().unwrap().attr(&g, "val"), Some(13));
    }
}
