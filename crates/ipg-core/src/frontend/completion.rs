//! Implicit-interval auto-completion (§3.4 of the paper).
//!
//! Scanning each alternative left to right:
//!
//! * a missing left endpoint becomes `0` for the left-most positional term,
//!   `P.end` when the previous positional term is a nonterminal `P`, and
//!   the previous term's right endpoint when it is a terminal string;
//! * a missing right endpoint becomes `EOI` for nonterminals and
//!   `lo + |s|` for terminal strings;
//! * a single bracketed expression `[e]` is a *length*: the left endpoint
//!   is inferred as above and the right endpoint is `lo + e`.
//!
//! Attribute definitions and predicates are transparent to the scan. Terms
//! following an array or switch term must carry explicit intervals (the
//! paper's examples always do); we report an error otherwise. Every
//! completed interval records its [`IntervalOrigin`] so the Table 2
//! statistics can be regenerated.

use super::parser::{PendingTerm, RawInterval};
use crate::error::{Error, Result};
use crate::syntax::{Expr, Grammar, Interval, IntervalOrigin, RuleBody, Term};

/// What the previous positional term contributes to inference.
#[derive(Clone, Debug)]
enum Prev {
    /// No positional term yet: left endpoint is 0.
    None,
    /// Previous was nonterminal `name`: left endpoint is `name.end`.
    Symbol(String),
    /// Previous was a terminal with this right endpoint.
    Terminal(Expr),
    /// Previous was an array or switch: inference impossible.
    Opaque(&'static str),
}

/// Fills in all pending intervals in `grammar`.
///
/// # Errors
///
/// Returns [`Error::Grammar`] when an interval cannot be inferred (e.g.
/// directly after an array term).
pub(super) fn complete_intervals(grammar: &mut Grammar, pending: &[PendingTerm]) -> Result<()> {
    for p in pending {
        let rule_name = grammar.rules[p.rule].name.clone();
        let RuleBody::Alts(alts) = &mut grammar.rules[p.rule].body else {
            unreachable!("pending terms only come from alternatives")
        };
        let alt = &mut alts[p.alt];

        let prev = prev_of(&alt.terms, p.term);
        let lo = infer_lo(&prev, &rule_name, p.term)?;

        match &mut alt.terms[p.term] {
            Term::Symbol { interval, .. } | Term::Star { interval, .. } => {
                *interval = complete_one(&p.raw[0], &lo, None)?;
            }
            Term::Terminal { bytes, interval } => {
                let len = bytes.len() as i64;
                *interval = complete_one(&p.raw[0], &lo, Some(len))?;
            }
            Term::Switch { cases, default } => {
                for (case, raw) in
                    cases.iter_mut().chain(std::iter::once(default.as_mut())).zip(&p.raw)
                {
                    if !matches!(raw, RawInterval::Full(..)) {
                        case.interval = complete_one(raw, &lo, None)?;
                    }
                }
            }
            other => {
                return Err(Error::Grammar(format!(
                    "rule `{rule_name}`: cannot auto-complete interval of {other}"
                )))
            }
        }
    }
    Ok(())
}

/// The inference contribution of the positional term nearest before
/// `index`.
fn prev_of(terms: &[Term], index: usize) -> Prev {
    for term in terms[..index].iter().rev() {
        match term {
            Term::Symbol { name, .. } => return Prev::Symbol(name.clone()),
            Term::Terminal { interval, .. } => return Prev::Terminal(interval.hi.clone()),
            Term::Array { .. } => return Prev::Opaque("an array term"),
            Term::Star { .. } => return Prev::Opaque("a star term"),
            Term::Switch { .. } => return Prev::Opaque("a switch term"),
            Term::AttrDef { .. } | Term::Predicate { .. } => continue,
        }
    }
    Prev::None
}

fn infer_lo(prev: &Prev, rule_name: &str, term_index: usize) -> Result<Expr> {
    match prev {
        Prev::None => Ok(Expr::Num(0)),
        Prev::Symbol(name) => Ok(Expr::attr(name, "end")),
        Prev::Terminal(hi) => Ok(hi.clone()),
        Prev::Opaque(what) => Err(Error::Grammar(format!(
            "rule `{rule_name}`: term #{term_index} needs an explicit interval \
             (cannot infer a left endpoint after {what})"
        ))),
    }
}

/// Completes one raw interval given the inferred left endpoint; for
/// terminal strings `terminal_len` is the literal's length.
fn complete_one(raw: &RawInterval, lo: &Expr, terminal_len: Option<i64>) -> Result<Interval> {
    Ok(match raw {
        RawInterval::Full(l, h) => Interval::new(l.clone(), h.clone()),
        RawInterval::Length(len) => Interval {
            lo: lo.clone(),
            hi: lo.clone() + len.clone(),
            origin: IntervalOrigin::InferredLength,
        },
        RawInterval::Missing => Interval {
            lo: lo.clone(),
            hi: match terminal_len {
                Some(n) => lo.clone() + Expr::Num(n),
                None => Expr::eoi(),
            },
            origin: IntervalOrigin::InferredFull,
        },
    })
}

/// Statistics about interval annotations for Table 2 of the paper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntervalStats {
    /// Total number of intervals in the grammar.
    pub total: usize,
    /// Intervals fully inferred by auto-completion.
    pub fully_inferred: usize,
    /// Intervals written with only a length.
    pub length_only: usize,
}

impl IntervalStats {
    /// Intervals written out in full by the user.
    pub fn explicit(&self) -> usize {
        self.total - self.fully_inferred - self.length_only
    }
}

/// Computes the Table 2 statistics for a surface grammar.
pub fn interval_stats(grammar: &Grammar) -> IntervalStats {
    let mut stats = IntervalStats::default();
    for interval in grammar.intervals() {
        stats.total += 1;
        match interval.origin {
            IntervalOrigin::Explicit => {}
            IntervalOrigin::InferredFull => stats.fully_inferred += 1,
            IntervalOrigin::InferredLength => stats.length_only += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::super::parse_surface;
    use super::*;

    #[test]
    fn paper_completion_example() {
        // §3.4: S -> "magic" A B[10]
        // completes to S -> "magic"[0,5] A[5,EOI] B[A.end, A.end+10].
        let g = parse_surface("S -> \"magic\" A B[10]; A -> \"\"[0, 0]; B -> \"\"[0, 0];").unwrap();
        let RuleBody::Alts(alts) = &g.rules[0].body else { panic!() };
        let ivs: Vec<String> = alts[0]
            .terms
            .iter()
            .map(|t| match t {
                Term::Symbol { interval, .. } | Term::Terminal { interval, .. } => {
                    interval.to_string()
                }
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ivs, vec!["[0, 0 + 5]", "[0 + 5, EOI]", "[A.end, A.end + 10]"]);
    }

    #[test]
    fn first_symbol_starts_at_zero_ends_at_eoi() {
        let g = parse_surface("S -> A; A -> \"\"[0, 0];").unwrap();
        let RuleBody::Alts(alts) = &g.rules[0].body else { panic!() };
        let Term::Symbol { interval, .. } = &alts[0].terms[0] else { panic!() };
        assert_eq!(interval.to_string(), "[0, EOI]");
        assert_eq!(interval.origin, IntervalOrigin::InferredFull);
    }

    #[test]
    fn attr_defs_are_transparent_to_the_scan() {
        let g = parse_surface("S -> A {x = A.end} B; A -> \"a\"[0,1]; B -> \"b\"[0,1];").unwrap();
        let RuleBody::Alts(alts) = &g.rules[0].body else { panic!() };
        let Term::Symbol { interval, .. } = &alts[0].terms[2] else { panic!() };
        assert_eq!(interval.to_string(), "[A.end, EOI]");
    }

    #[test]
    fn gif_style_chunk_sequence() {
        // GIF -> Header[6] LSD Blocks Trailer (§4.2).
        let g = parse_surface(
            "GIF -> Header[6] LSD Blocks Trailer;
             Header -> \"GIF89a\"[0, 6];
             LSD -> \"\"[0, 0]; Blocks -> \"\"[0, 0]; Trailer -> \"\"[0, 0];",
        )
        .unwrap();
        let RuleBody::Alts(alts) = &g.rules[0].body else { panic!() };
        let texts: Vec<String> = alts[0].terms.iter().map(|t| t.to_string()).collect();
        assert_eq!(texts[0], "Header[0, 0 + 6]");
        assert_eq!(texts[1], "LSD[Header.end, EOI]");
        assert_eq!(texts[2], "Blocks[LSD.end, EOI]");
        assert_eq!(texts[3], "Trailer[Blocks.end, EOI]");
    }

    #[test]
    fn implicit_after_array_is_an_error() {
        let err =
            parse_surface("S -> for i = 0 to 2 do A[i, i + 1] B; A -> \"\"[0,0]; B -> \"\"[0,0];")
                .unwrap_err();
        assert!(err.to_string().contains("explicit interval"), "got: {err}");
    }

    #[test]
    fn switch_cases_inherit_the_left_endpoint() {
        let g = parse_surface(
            "S -> T[0, 1] switch(T.val = 1 : A[4] / B); T := u8; A -> \"\"[0,0]; B -> \"\"[0,0];",
        )
        .unwrap();
        let RuleBody::Alts(alts) = &g.rules[0].body else { panic!() };
        let Term::Switch { cases, default } = &alts[0].terms[1] else { panic!() };
        assert_eq!(cases[0].interval.to_string(), "[T.end, T.end + 4]");
        assert_eq!(default.interval.to_string(), "[T.end, EOI]");
    }

    #[test]
    fn stats_count_origins() {
        let g = parse_surface(
            "S -> \"magic\" A B[10] C[0, EOI]; A -> \"\"[0,0]; B -> \"\"[0,0]; C -> \"\"[0,0];",
        )
        .unwrap();
        let stats = interval_stats(&g);
        // magic, A, B, C in rule S + three explicit [0,0] in A/B/C.
        assert_eq!(stats.total, 7);
        assert_eq!(stats.fully_inferred, 2);
        assert_eq!(stats.length_only, 1);
        assert_eq!(stats.explicit(), 4);
    }
}
