//! Bump-allocated parse trees for the bytecode VM.
//!
//! The tree-walking interpreter allocates one `Rc<Tree>` (plus a children
//! `Vec`) per node, which dominates its hot loop. The VM instead appends
//! every node to a [`TreeArena`]: nodes are addressed by dense `u32`
//! [`TreeId`]s and children live as contiguous index ranges in one shared
//! vector, so building a node is two `Vec` pushes and *sharing* a memoized
//! subtree is copying a `u32`.
//!
//! The memoizing semantics reuse a cached result at several call sites
//! (the O(n²) bound of §3.3 of the paper relies on it). Arena nodes are
//! therefore immutable once allocated: the caller-side `start`/`end`
//! re-basing of rule T-NTSucc ([`TreeArena::adjust`]) allocates a fresh
//! root record that *shares* the original children range, exactly like the
//! interpreter's `Rc`-sharing `adjust_tree`.
//!
//! Read access goes through the zero-copy views [`TreeRef`], [`NodeRef`],
//! [`ArrayRef`], and [`BlackboxRef`], which mirror the accessors of
//! [`crate::tree::Node`] (`child_node_nt`, `attr`, `span`, …) so
//! extractors migrate mechanically. [`TreeRef::to_tree`] converts back to the
//! `Rc`-based [`Tree`] — the differential tests use it to require
//! node-for-node equality between the two engines.

use crate::check::NtId;
use crate::env::{wellknown, Env};
use crate::intern::Sym;
use crate::tree::{ArrayNode, BlackboxNode, Leaf, Node, Tree};
use std::rc::Rc;
use std::sync::Arc;

/// Handle of a tree record in a [`TreeArena`]: the record kind in the low
/// three bits, a 29-bit index within that kind's storage above them.
/// Keeping the kind in the id lets the per-kind vectors stay densely
/// packed — a leaf costs 16 bytes instead of one full node-sized enum
/// slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeId(u32);

const TAG_NODE: u32 = 0;
const TAG_ARRAY: u32 = 1;
const TAG_LEAF: u32 = 2;
const TAG_BLACKBOX: u32 = 3;
/// A re-based reference to a node/blackbox (rule T-NTSucc): instead of
/// cloning the record with shifted `start`/`end`, the arena stores a
/// 16-byte `(inner id, delta)` pair and readers apply the delta lazily.
const TAG_SHIFT: u32 = 4;

impl TreeId {
    #[inline]
    fn new(tag: u32, index: usize) -> Self {
        // 2^29 records of one kind would need multi-GiB inputs under a
        // byte-granular grammar; fail loudly instead of aliasing ids.
        assert!(index < (1 << 29), "tree arena overflow: {index} records");
        TreeId((index as u32) << 3 | tag)
    }

    #[inline]
    fn tag(self) -> u32 {
        self.0 & 7
    }

    #[inline]
    fn index(self) -> usize {
        (self.0 >> 3) as usize
    }
}

impl std::fmt::Debug for TreeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.tag() {
            TAG_NODE => "node",
            TAG_ARRAY => "array",
            TAG_LEAF => "leaf",
            TAG_BLACKBOX => "blackbox",
            _ => "shift",
        };
        write!(f, "TreeId({kind} {})", self.index())
    }
}

/// A contiguous range of entries in the arena's shared children vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ChildRange {
    pub(crate) start: u32,
    pub(crate) len: u32,
}

impl ChildRange {
    const EMPTY: ChildRange = ChildRange { start: 0, len: 0 };
}

/// Nonterminal name table shared between a program and the arenas of its
/// parses, so views can resolve names without the grammar in hand.
#[derive(Debug)]
pub(crate) struct NtTable {
    pub(crate) names: Vec<Arc<str>>,
    pub(crate) syms: Vec<Sym>,
}

/// A borrowed tree record — the arena-side mirror of [`Tree`]. Records
/// live in per-kind vectors; this enum is only a dispatch view.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Entry<'a> {
    Node(&'a ANode),
    Array(&'a AArray),
    Leaf(&'a Leaf),
    Blackbox(&'a ABlackbox),
}

/// Arena mirror of [`crate::tree::Node`].
#[derive(Clone, Debug)]
pub(crate) struct ANode {
    pub(crate) nt: NtId,
    pub(crate) env: Env,
    pub(crate) children: ChildRange,
    pub(crate) base: usize,
    pub(crate) input_len: usize,
    pub(crate) alt_index: u32,
}

/// Arena mirror of [`crate::tree::ArrayNode`].
#[derive(Clone, Debug)]
pub(crate) struct AArray {
    pub(crate) nt: NtId,
    pub(crate) elems: ChildRange,
}

/// Arena mirror of [`crate::tree::BlackboxNode`].
#[derive(Clone, Debug)]
pub(crate) struct ABlackbox {
    pub(crate) nt: NtId,
    pub(crate) env: Env,
    pub(crate) data: Arc<[u8]>,
    pub(crate) base: usize,
    pub(crate) input_len: usize,
}

/// All parse-tree records of one VM parse, stored per kind.
#[derive(Debug)]
pub struct TreeArena {
    nodes: Vec<ANode>,
    arrays: Vec<AArray>,
    leaves: Vec<Leaf>,
    blackboxes: Vec<ABlackbox>,
    /// Lazy re-basings: `(inner node/blackbox id, start/end delta)`.
    shifts: Vec<(TreeId, i64)>,
    children: Vec<TreeId>,
    table: Arc<NtTable>,
}

impl TreeArena {
    /// An allocation-free placeholder (what a finished streaming session
    /// swaps in when handing its arena over).
    pub(crate) fn empty(table: Arc<NtTable>) -> Self {
        TreeArena {
            nodes: Vec::new(),
            arrays: Vec::new(),
            leaves: Vec::new(),
            blackboxes: Vec::new(),
            shifts: Vec::new(),
            children: Vec::new(),
            table,
        }
    }

    /// An arena pre-sized from compile-time program statistics
    /// ([`crate::bytecode::Program::size_hints`]) instead of the default
    /// small capacities.
    pub(crate) fn with_hints(table: Arc<NtTable>, hints: &crate::bytecode::SizeHints) -> Self {
        TreeArena {
            nodes: Vec::with_capacity(hints.nodes),
            arrays: Vec::new(),
            leaves: Vec::with_capacity(hints.leaves),
            blackboxes: Vec::new(),
            shifts: Vec::with_capacity(hints.shifts),
            children: Vec::with_capacity(hints.children),
            table,
        }
    }

    /// Dispatch view of `id`. Shifted references resolve to their inner
    /// record; use [`TreeArena::resolve`] when the delta matters.
    pub(crate) fn entry(&self, id: TreeId) -> Entry<'_> {
        match id.tag() {
            TAG_NODE => Entry::Node(&self.nodes[id.index()]),
            TAG_ARRAY => Entry::Array(&self.arrays[id.index()]),
            TAG_LEAF => Entry::Leaf(&self.leaves[id.index()]),
            TAG_BLACKBOX => Entry::Blackbox(&self.blackboxes[id.index()]),
            _ => {
                let (inner, _) = self.shifts[id.index()];
                self.entry(inner)
            }
        }
    }

    /// Unwraps a possibly-shifted id into `(raw id, start/end delta)`.
    #[inline]
    pub(crate) fn resolve(&self, id: TreeId) -> (TreeId, i64) {
        if id.tag() == TAG_SHIFT {
            self.shifts[id.index()]
        } else {
            (id, 0)
        }
    }

    pub(crate) fn child_ids(&self, range: ChildRange) -> &[TreeId] {
        &self.children[range.start as usize..(range.start + range.len) as usize]
    }

    fn push_children(&mut self, ids: &[TreeId]) -> ChildRange {
        if ids.is_empty() {
            return ChildRange::EMPTY;
        }
        let start = self.children.len() as u32;
        self.children.extend_from_slice(ids);
        ChildRange { start, len: ids.len() as u32 }
    }

    pub(crate) fn alloc_leaf(&mut self, start: usize, end: usize) -> TreeId {
        let id = TreeId::new(TAG_LEAF, self.leaves.len());
        self.leaves.push(Leaf { start, end });
        id
    }

    pub(crate) fn alloc_node(
        &mut self,
        nt: NtId,
        env: Env,
        children: &[TreeId],
        base: usize,
        input_len: usize,
        alt_index: u32,
    ) -> TreeId {
        let children = self.push_children(children);
        let id = TreeId::new(TAG_NODE, self.nodes.len());
        self.nodes.push(ANode { nt, env, children, base, input_len, alt_index });
        id
    }

    pub(crate) fn alloc_array(&mut self, nt: NtId, elems: &[TreeId]) -> TreeId {
        let elems = self.push_children(elems);
        let id = TreeId::new(TAG_ARRAY, self.arrays.len());
        self.arrays.push(AArray { nt, elems });
        id
    }

    pub(crate) fn alloc_blackbox(
        &mut self,
        nt: NtId,
        env: Env,
        data: Arc<[u8]>,
        base: usize,
        input_len: usize,
    ) -> TreeId {
        let id = TreeId::new(TAG_BLACKBOX, self.blackboxes.len());
        self.blackboxes.push(ABlackbox { nt, env, data, base, input_len });
        id
    }

    /// The callee-relative `(start, end)` of a returned tree (mirror of the
    /// interpreter's `tree_start_end`). Only called on results fresh from a
    /// rule invocation, which are never shifted references.
    pub(crate) fn start_end(&self, id: TreeId) -> (i64, i64) {
        debug_assert_ne!(id.tag(), TAG_SHIFT, "start_end on an adjusted tree");
        match id.tag() {
            TAG_NODE => {
                let env = &self.nodes[id.index()].env;
                (env.fast_start(), env.fast_end())
            }
            TAG_BLACKBOX => {
                let env = &self.blackboxes[id.index()].env;
                (env.fast_start(), env.fast_end())
            }
            _ => (0, 0),
        }
    }

    /// Rule T-NTSucc's re-basing, observably identical to the
    /// interpreter's `adjust_tree` (a copied root with `start`/`end`
    /// shifted by `l`, children shared) but stored as a lazy 16-byte
    /// shifted reference instead of a cloned record.
    pub(crate) fn adjust(&mut self, id: TreeId, l: i64) -> TreeId {
        debug_assert_ne!(id.tag(), TAG_SHIFT, "adjust of an already-adjusted tree");
        if l == 0 {
            return id;
        }
        match id.tag() {
            TAG_NODE | TAG_BLACKBOX => {
                let sid = TreeId::new(TAG_SHIFT, self.shifts.len());
                self.shifts.push((id, l));
                sid
            }
            _ => id,
        }
    }

    /// Attribute lookup on a node-like tree, checking the nonterminal
    /// (mirror of the interpreter's `node_attr`; arrays read the *last*
    /// element's attribute).
    pub(crate) fn node_attr(&self, id: TreeId, nt: NtId, attr: Sym) -> Option<i64> {
        let (id, delta) = self.resolve(id);
        let v = match self.entry(id) {
            Entry::Node(n) if n.nt == nt => n.env.get(attr),
            Entry::Blackbox(b) if b.nt == nt => b.env.get(attr),
            Entry::Array(a) if a.nt == nt => {
                let last = *self.child_ids(a.elems).last()?;
                return self.node_attr(last, nt, attr);
            }
            _ => None,
        };
        // A shifted reference reads like the interpreter's adjusted copy:
        // `start`/`end` carry the delta, every other attribute is shared.
        if delta != 0
            && (attr == crate::env::wellknown::START || attr == crate::env::wellknown::END)
        {
            v.map(|v| v + delta)
        } else {
            v
        }
    }

    /// The name of nonterminal `nt`.
    pub fn nt_name(&self, nt: NtId) -> &str {
        &self.table.names[nt.0 as usize]
    }

    /// A view of tree `id`.
    pub fn view(&self, id: TreeId) -> TreeRef<'_> {
        TreeRef { arena: self, id }
    }

    /// Number of allocated tree records (nodes created for memo-shared
    /// subtrees and re-based copies included).
    pub fn len(&self) -> usize {
        self.nodes.len()
            + self.arrays.len()
            + self.leaves.len()
            + self.blackboxes.len()
            + self.shifts.len()
    }

    /// Whether nothing has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A borrowed view of any tree record — the arena-side analogue of
/// [`Tree`].
#[derive(Clone, Copy)]
pub struct TreeRef<'a> {
    arena: &'a TreeArena,
    id: TreeId,
}

/// A borrowed nonterminal node — the arena-side analogue of [`Node`].
/// Carries the `start`/`end` delta of a shifted reference so attribute
/// reads match the interpreter's adjusted copies.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    arena: &'a TreeArena,
    node: &'a ANode,
    delta: i64,
}

/// A borrowed array — the arena-side analogue of
/// [`crate::tree::ArrayNode`].
#[derive(Clone, Copy)]
pub struct ArrayRef<'a> {
    arena: &'a TreeArena,
    arr: &'a AArray,
}

/// A borrowed blackbox result — the arena-side analogue of
/// [`BlackboxNode`].
#[derive(Clone, Copy)]
pub struct BlackboxRef<'a> {
    arena: &'a TreeArena,
    bb: &'a ABlackbox,
    delta: i64,
}

impl<'a> TreeRef<'a> {
    /// This tree's arena id.
    pub fn id(&self) -> TreeId {
        self.id
    }

    /// This tree as a nonterminal node, if it is one.
    pub fn as_node(&self) -> Option<NodeRef<'a>> {
        let (id, delta) = self.arena.resolve(self.id);
        match self.arena.entry(id) {
            Entry::Node(node) => Some(NodeRef { arena: self.arena, node, delta }),
            _ => None,
        }
    }

    /// This tree as an array, if it is one.
    pub fn as_array(&self) -> Option<ArrayRef<'a>> {
        match self.arena.entry(self.id) {
            Entry::Array(arr) => Some(ArrayRef { arena: self.arena, arr }),
            _ => None,
        }
    }

    /// This tree as a terminal leaf, if it is one.
    pub fn as_leaf(&self) -> Option<Leaf> {
        match self.arena.entry(self.id) {
            Entry::Leaf(l) => Some(*l),
            _ => None,
        }
    }

    /// This tree as a blackbox result, if it is one.
    pub fn as_blackbox(&self) -> Option<BlackboxRef<'a>> {
        let (id, delta) = self.arena.resolve(self.id);
        match self.arena.entry(id) {
            Entry::Blackbox(bb) => Some(BlackboxRef { arena: self.arena, bb, delta }),
            _ => None,
        }
    }

    /// The first direct child node parsed with nonterminal `nt` (resolve
    /// a name once via [`crate::check::Grammar::nt_id`]).
    pub fn child_node_nt(&self, nt: NtId) -> Option<NodeRef<'a>> {
        self.as_node()?.child_node_nt(nt)
    }

    /// The first direct child array of `nt` elements.
    pub fn child_array_nt(&self, nt: NtId) -> Option<ArrayRef<'a>> {
        self.as_node()?.child_array_nt(nt)
    }

    /// The first direct blackbox child parsed with nonterminal `nt`.
    pub fn child_blackbox_nt(&self, nt: NtId) -> Option<BlackboxRef<'a>> {
        self.as_node()?.child_blackbox_nt(nt)
    }

    /// Total number of tree records reachable from this tree (counts
    /// shared subtrees once per reference, like [`Tree::size`]).
    pub fn size(&self) -> usize {
        match self.arena.entry(self.id) {
            Entry::Node(n) => {
                1 + self
                    .arena
                    .child_ids(n.children)
                    .iter()
                    .map(|c| self.arena.view(*c).size())
                    .sum::<usize>()
            }
            Entry::Array(a) => {
                1 + self
                    .arena
                    .child_ids(a.elems)
                    .iter()
                    .map(|c| self.arena.view(*c).size())
                    .sum::<usize>()
            }
            Entry::Leaf(_) | Entry::Blackbox(_) => 1,
        }
    }

    /// Deep conversion to the `Rc`-based [`Tree`] (shared subtrees are
    /// duplicated by value). The differential tests compare the result
    /// against the reference interpreter's output with `==`.
    pub fn to_tree(&self) -> Rc<Tree> {
        let table = &self.arena.table;
        let (id, delta) = self.arena.resolve(self.id);
        match self.arena.entry(id) {
            Entry::Leaf(l) => Rc::new(Tree::Leaf(*l)),
            Entry::Node(n) => {
                let children = self
                    .arena
                    .child_ids(n.children)
                    .iter()
                    .map(|c| self.arena.view(*c).to_tree())
                    .collect();
                let mut env = n.env.clone();
                if delta != 0 {
                    env.fast_shift_start_end(delta);
                }
                Rc::new(Tree::Node(Node {
                    nt: n.nt,
                    name: table.names[n.nt.0 as usize].clone(),
                    name_sym: table.syms[n.nt.0 as usize],
                    env,
                    children,
                    base: n.base,
                    input_len: n.input_len,
                    alt_index: n.alt_index as usize,
                }))
            }
            Entry::Array(a) => {
                let elems = self
                    .arena
                    .child_ids(a.elems)
                    .iter()
                    .map(|c| self.arena.view(*c).to_tree())
                    .collect();
                Rc::new(Tree::Array(ArrayNode {
                    nt: a.nt,
                    name: table.names[a.nt.0 as usize].clone(),
                    name_sym: table.syms[a.nt.0 as usize],
                    elems,
                }))
            }
            Entry::Blackbox(b) => {
                let mut env = b.env.clone();
                if delta != 0 {
                    env.fast_shift_start_end(delta);
                }
                Rc::new(Tree::Blackbox(BlackboxNode {
                    nt: b.nt,
                    name: table.names[b.nt.0 as usize].clone(),
                    name_sym: table.syms[b.nt.0 as usize],
                    env,
                    data: b.data.clone(),
                    base: b.base,
                    input_len: b.input_len,
                }))
            }
        }
    }
}

impl<'a> NodeRef<'a> {
    /// The nonterminal this node was parsed with.
    pub fn nt(&self) -> NtId {
        self.node.nt
    }

    /// The nonterminal's name.
    pub fn name(&self) -> &'a str {
        self.arena.nt_name(self.node.nt)
    }

    /// Looks up a user attribute by name (requires the grammar for symbol
    /// resolution), mirroring [`Node::attr`].
    pub fn attr(&self, grammar: &crate::check::Grammar, name: &str) -> Option<i64> {
        let sym = grammar.attr_sym(name)?;
        self.attr_by_sym(sym)
    }

    /// Looks up an attribute by pre-resolved symbol.
    pub fn attr_by_sym(&self, sym: Sym) -> Option<i64> {
        let v = self.node.env.get(sym)?;
        if self.delta != 0 && (sym == wellknown::START || sym == wellknown::END) {
            Some(v + self.delta)
        } else {
            Some(v)
        }
    }

    /// The node's `start` special attribute, as in [`Node::touched_start`].
    pub fn touched_start(&self) -> i64 {
        self.node.env.fast_start() + self.delta
    }

    /// The node's `end` special attribute.
    pub fn touched_end(&self) -> i64 {
        self.node.env.fast_end() + self.delta
    }

    /// The absolute input span `[base, base + input_len)` this node was
    /// asked to describe.
    pub fn span(&self) -> (usize, usize) {
        (self.node.base, self.node.base + self.node.input_len)
    }

    /// Absolute offset of this node's local input slice.
    pub fn base(&self) -> usize {
        self.node.base
    }

    /// Length of this node's local input slice (`EOI`).
    pub fn input_len(&self) -> usize {
        self.node.input_len
    }

    /// Index of the alternative that succeeded (0-based).
    pub fn alt_index(&self) -> usize {
        self.node.alt_index as usize
    }

    /// Children in written term order.
    pub fn children(&self) -> impl Iterator<Item = TreeRef<'a>> + use<'a> {
        let arena = self.arena;
        arena.child_ids(self.node.children).iter().map(move |id| arena.view(*id))
    }

    /// The first direct child node parsed with nonterminal `nt` (the
    /// pre-resolved fast path; see [`crate::check::Grammar::nt_id`]).
    pub fn child_node_nt(&self, nt: NtId) -> Option<NodeRef<'a>> {
        self.children().find_map(|c| c.as_node().filter(|n| n.node.nt == nt))
    }

    /// The first direct child array of `nt` elements.
    pub fn child_array_nt(&self, nt: NtId) -> Option<ArrayRef<'a>> {
        self.children().find_map(|c| c.as_array().filter(|a| a.arr.nt == nt))
    }

    /// The first direct blackbox child parsed with nonterminal `nt`.
    pub fn child_blackbox_nt(&self, nt: NtId) -> Option<BlackboxRef<'a>> {
        self.children().find_map(|c| c.as_blackbox().filter(|b| b.bb.nt == nt))
    }
}

impl<'a> ArrayRef<'a> {
    /// The element nonterminal.
    pub fn nt(&self) -> NtId {
        self.arr.nt
    }

    /// The element nonterminal's name.
    pub fn name(&self) -> &'a str {
        self.arena.nt_name(self.arr.nt)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.arr.elems.len as usize
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.arr.elems.len == 0
    }

    /// Element `i` as a node.
    pub fn node(&self, i: usize) -> Option<NodeRef<'a>> {
        let id = *self.arena.child_ids(self.arr.elems).get(i)?;
        self.arena.view(id).as_node()
    }

    /// Iterates over elements.
    pub fn elems(&self) -> impl Iterator<Item = TreeRef<'a>> + use<'a> {
        let arena = self.arena;
        arena.child_ids(self.arr.elems).iter().map(move |id| arena.view(*id))
    }

    /// Iterates over elements as nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeRef<'a>> + use<'a> {
        self.elems().filter_map(|t| t.as_node())
    }
}

impl<'a> BlackboxRef<'a> {
    /// The nonterminal whose rule is the blackbox.
    pub fn nt(&self) -> NtId {
        self.bb.nt
    }

    /// Its name.
    pub fn name(&self) -> &'a str {
        self.arena.nt_name(self.bb.nt)
    }

    /// Decoded output (e.g. decompressed bytes).
    pub fn data(&self) -> &'a [u8] {
        &self.bb.data
    }

    /// Looks up a declared attribute by name.
    pub fn attr(&self, grammar: &crate::check::Grammar, name: &str) -> Option<i64> {
        let sym = grammar.attr_sym(name)?;
        let v = self.bb.env.get(sym)?;
        if self.delta != 0 && (sym == wellknown::START || sym == wellknown::END) {
            Some(v + self.delta)
        } else {
            Some(v)
        }
    }

    /// The absolute input span the blackbox was confined to.
    pub fn span(&self) -> (usize, usize) {
        (self.bb.base, self.bb.base + self.bb.input_len)
    }
}
