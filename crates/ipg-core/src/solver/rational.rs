//! Exact rational arithmetic for the Fourier–Motzkin solver.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// An exact rational number with `i128` numerator and denominator.
///
/// Always normalized: `den > 0` and `gcd(|num|, den) == 1`. The `i128`
/// width gives FM elimination ample headroom for the tiny systems produced
/// by termination checking; overflow panics rather than silently wrapping.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// Creates `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()) as i128;
        Rat { num: sign * num / g, den: den.abs() / g }
    }

    /// Whether this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Rat {
        Rat::new(self.den, self.num)
    }

    /// Additive inverse.
    #[allow(clippy::should_implement_trait)] // consistent with `recip` as a plain method
    pub fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }

    /// The numerator (of the normalized representation).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// The exact integer value, if the rational is an integer that fits in
    /// `i64`. Used by the grammar-driven input generator to read solved
    /// attribute values back out of linear expressions.
    pub fn as_i64(self) -> Option<i64> {
        if self.den == 1 {
            i64::try_from(self.num).ok()
        } else {
            None
        }
    }
}

impl Default for Rat {
    /// Zero.
    fn default() -> Self {
        Rat { num: 0, den: 1 }
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b.max(1);
    }
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat { num: n as i128, den: 1 }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // a - b = a + (-b)
    fn sub(self, rhs: Rat) -> Rat {
        self + rhs.neg()
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::from(0));
    }

    #[test]
    fn arithmetic() {
        let half = Rat::new(1, 2);
        let third = Rat::new(1, 3);
        assert_eq!(half + third, Rat::new(5, 6));
        assert_eq!(half - third, Rat::new(1, 6));
        assert_eq!(half * third, Rat::new(1, 6));
        assert_eq!(half.recip(), Rat::from(2));
        assert_eq!(half.neg() + half, Rat::from(0));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::from(-1) < Rat::from(0));
        assert!(Rat::new(-1, 2) > Rat::from(-1));
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 1).to_string(), "3");
        assert_eq!(Rat::new(3, 2).to_string(), "3/2");
        assert_eq!(Rat::new(-3, 2).to_string(), "-3/2");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }
}
