//! A small linear-arithmetic satisfiability checker.
//!
//! The termination checker of §5 asks, per elementary cycle of the
//! nonterminal dependency graph, whether
//! `el₀ = 0 ∧ er₀ = EOI ∧ … ∧ elₙ = 0 ∧ erₙ = EOI`
//! is satisfiable. The paper discharges these queries with Z3; this module
//! is the offline substitute (see DESIGN.md): interval expressions are
//! normalized to linear forms over free variables and the conjunction of
//! (in)equalities is decided by **Fourier–Motzkin elimination over the
//! rationals**.
//!
//! Soundness direction: if this solver reports UNSAT, the system has no
//! rational solution, hence no integer solution, hence the cycle cannot
//! keep re-parsing the full `[0, EOI]` interval — the same conclusion the
//! paper draws from Z3's `unsat`. If the solver reports SAT (or a
//! non-linear subterm forced a fresh unconstrained variable), termination
//! checking conservatively fails, exactly like the paper's algorithm.

mod rational;

pub use rational::Rat;

use std::collections::BTreeMap;

/// A variable of a linear system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

/// A linear expression `Σ cᵢ·xᵢ + k`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinExpr {
    /// Coefficients per variable (no zero entries).
    coeffs: BTreeMap<Var, Rat>,
    /// Constant term.
    constant: Rat,
}

impl LinExpr {
    /// The constant expression `k`.
    pub fn constant(k: impl Into<Rat>) -> Self {
        LinExpr { coeffs: BTreeMap::new(), constant: k.into() }
    }

    /// The variable expression `x`.
    pub fn var(x: Var) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(x, Rat::from(1));
        LinExpr { coeffs, constant: Rat::from(0) }
    }

    /// `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (&v, &c) in &other.coeffs {
            out.add_term(v, c);
        }
        out.constant = out.constant + other.constant;
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(Rat::from(-1)))
    }

    /// `c · self`.
    pub fn scale(&self, c: Rat) -> LinExpr {
        if c.is_zero() {
            return LinExpr::default();
        }
        LinExpr {
            coeffs: self.coeffs.iter().map(|(&v, &k)| (v, k * c)).collect(),
            constant: self.constant * c,
        }
    }

    fn add_term(&mut self, v: Var, c: Rat) {
        let entry = self.coeffs.entry(v).or_insert_with(|| Rat::from(0));
        *entry = *entry + c;
        if entry.is_zero() {
            self.coeffs.remove(&v);
        }
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: Var) -> Rat {
        self.coeffs.get(&v).copied().unwrap_or_else(|| Rat::from(0))
    }

    /// The constant term.
    pub fn constant_term(&self) -> Rat {
        self.constant
    }

    /// Whether the expression mentions no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.coeffs.keys().copied()
    }

    /// Number of variables mentioned.
    pub fn var_count(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the expression under a partial assignment. Returns `None`
    /// when a mentioned variable has no value.
    pub fn eval_with(&self, mut value_of: impl FnMut(Var) -> Option<Rat>) -> Option<Rat> {
        let mut acc = self.constant;
        for (&v, &c) in &self.coeffs {
            acc = acc + c * value_of(v)?;
        }
        Some(acc)
    }

    /// Substitutes known variable values, returning the residual expression
    /// over the still-unknown variables.
    pub fn substitute(&self, mut value_of: impl FnMut(Var) -> Option<Rat>) -> LinExpr {
        let mut out = LinExpr::constant(self.constant);
        for (&v, &c) in &self.coeffs {
            match value_of(v) {
                Some(val) => out.constant = out.constant + c * val,
                None => out.add_term(v, c),
            }
        }
        out
    }

    /// If the expression is `c·x + k` for a single variable `x`, returns
    /// `(x, c, k)`.
    pub fn as_single_var(&self) -> Option<(Var, Rat, Rat)> {
        if self.coeffs.len() != 1 {
            return None;
        }
        let (&v, &c) = self.coeffs.iter().next().expect("one entry");
        Some((v, c, self.constant))
    }

    /// Iterates over `(variable, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (Var, Rat)> + '_ {
        self.coeffs.iter().map(|(&v, &c)| (v, c))
    }
}

/// A conjunction of linear constraints, each of the form `e ≥ 0`.
#[derive(Clone, Debug, Default)]
pub struct System {
    /// Constraints `e ≥ 0`.
    constraints: Vec<LinExpr>,
}

impl System {
    /// An empty (trivially satisfiable) system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asserts `e ≥ 0`.
    pub fn assert_ge0(&mut self, e: LinExpr) {
        self.constraints.push(e);
    }

    /// Asserts `a ≥ b`.
    pub fn assert_ge(&mut self, a: LinExpr, b: LinExpr) {
        self.assert_ge0(a.sub(&b));
    }

    /// Asserts `a = b`.
    pub fn assert_eq(&mut self, a: LinExpr, b: LinExpr) {
        self.assert_ge0(a.sub(&b));
        self.assert_ge0(b.sub(&a));
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the system has no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Decides rational satisfiability by Fourier–Motzkin elimination.
    ///
    /// Exponential in the worst case, but termination queries are tiny
    /// (the paper reports at most five elementary cycles per format, each
    /// contributing a handful of constraints).
    pub fn is_satisfiable(&self) -> bool {
        let mut constraints = self.constraints.clone();
        loop {
            // Constant constraints decide immediately; drop satisfied ones.
            let mut next = Vec::with_capacity(constraints.len());
            for c in constraints {
                if c.is_constant() {
                    if c.constant_term() < Rat::from(0) {
                        return false;
                    }
                } else {
                    next.push(c);
                }
            }
            constraints = next;
            let Some(v) = pick_variable(&constraints) else {
                return true; // no variables left, no violated constants
            };

            // Partition on the sign of v's coefficient.
            let mut lowers: Vec<LinExpr> = Vec::new(); // coeff > 0: v ≥ -(rest)
            let mut uppers: Vec<LinExpr> = Vec::new(); // coeff < 0: v ≤ rest
            let mut rest: Vec<LinExpr> = Vec::new();
            for c in constraints {
                let k = c.coeff(v);
                if k.is_zero() {
                    rest.push(c);
                } else if k > Rat::from(0) {
                    lowers.push(c.scale(k.recip()));
                } else {
                    uppers.push(c.scale(k.neg().recip()));
                }
            }
            // lowers: v + L ≥ 0 → v ≥ -L; uppers: -v + U ≥ 0 → v ≤ U.
            // Combine every pair: U + L ≥ 0 (v cancels exactly).
            for lo in &lowers {
                for up in &uppers {
                    let mut combined = lo.add(up);
                    debug_assert!(combined.coeff(v).is_zero());
                    combined.coeffs.remove(&v);
                    rest.push(combined);
                }
            }
            constraints = rest;
        }
    }
}

/// Chooses the variable whose elimination produces the fewest new
/// constraints (a standard FM heuristic).
fn pick_variable(constraints: &[LinExpr]) -> Option<Var> {
    use std::collections::HashMap;
    let mut counts: HashMap<Var, (usize, usize)> = HashMap::new();
    for c in constraints {
        for v in c.vars() {
            let e = counts.entry(v).or_default();
            if c.coeff(v) > Rat::from(0) {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
    }
    counts.into_iter().min_by_key(|&(v, (lo, up))| (lo * up, v)).map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Var {
        Var(0)
    }
    fn y() -> Var {
        Var(1)
    }

    #[test]
    fn empty_system_is_sat() {
        assert!(System::new().is_satisfiable());
    }

    #[test]
    fn constant_contradiction_is_unsat() {
        let mut s = System::new();
        s.assert_ge0(LinExpr::constant(-1));
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn single_variable_bounds() {
        // x ≥ 2 ∧ x ≤ 5 — SAT.
        let mut s = System::new();
        s.assert_ge(LinExpr::var(x()), LinExpr::constant(2));
        s.assert_ge(LinExpr::constant(5), LinExpr::var(x()));
        assert!(s.is_satisfiable());

        // x ≥ 5 ∧ x ≤ 2 — UNSAT.
        let mut s = System::new();
        s.assert_ge(LinExpr::var(x()), LinExpr::constant(5));
        s.assert_ge(LinExpr::constant(2), LinExpr::var(x()));
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn equalities() {
        // x = 3 ∧ x = 4 — UNSAT.
        let mut s = System::new();
        s.assert_eq(LinExpr::var(x()), LinExpr::constant(3));
        s.assert_eq(LinExpr::var(x()), LinExpr::constant(4));
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn termination_query_shape_decreasing() {
        // Fig. 3's recursion Int → Int[0, EOI-1]: el = 0, er = EOI - 1.
        // Query: 0 = 0 ∧ EOI - 1 = EOI — UNSAT (the interval strictly
        // shrinks), so the cycle terminates.
        let eoi = Var(7);
        let mut s = System::new();
        s.assert_eq(LinExpr::constant(0), LinExpr::constant(0));
        s.assert_eq(LinExpr::var(eoi).sub(&LinExpr::constant(1)), LinExpr::var(eoi));
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn termination_query_shape_nondecreasing() {
        // §5's diverging example A → B[0, EOI], B → A[0, EOI]:
        // 0 = 0 ∧ EOI = EOI ∧ 0 = 0 ∧ EOI = EOI — SAT.
        let eoi = Var(7);
        let mut s = System::new();
        for _ in 0..2 {
            s.assert_eq(LinExpr::constant(0), LinExpr::constant(0));
            s.assert_eq(LinExpr::var(eoi), LinExpr::var(eoi));
        }
        assert!(s.is_satisfiable());
    }

    #[test]
    fn end_gt_zero_extension_shape() {
        // GIF Blocks → Block[0,EOI] Blocks[Block.end, EOI]:
        // el = Block.end, er = EOI, with Block.end ≥ 1 (Block consumes a
        // terminal). Query: Block.end = 0 ∧ end ≥ 1 — UNSAT.
        let end = Var(3);
        let mut s = System::new();
        s.assert_eq(LinExpr::var(end), LinExpr::constant(0));
        s.assert_ge(LinExpr::var(end), LinExpr::constant(1));
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn two_variable_chain() {
        // x ≥ y + 1 ∧ y ≥ x → UNSAT.
        let mut s = System::new();
        s.assert_ge(LinExpr::var(x()), LinExpr::var(y()).add(&LinExpr::constant(1)));
        s.assert_ge(LinExpr::var(y()), LinExpr::var(x()));
        assert!(!s.is_satisfiable());

        // x ≥ y ∧ y ≥ x (x = y) → SAT.
        let mut s = System::new();
        s.assert_ge(LinExpr::var(x()), LinExpr::var(y()));
        s.assert_ge(LinExpr::var(y()), LinExpr::var(x()));
        assert!(s.is_satisfiable());
    }

    #[test]
    fn rational_coefficients_survive_elimination() {
        // 2x + 3y ≥ 6 ∧ x ≤ 0 ∧ y ≤ 0 → UNSAT.
        let mut s = System::new();
        let e = LinExpr::var(x()).scale(Rat::from(2)).add(&LinExpr::var(y()).scale(Rat::from(3)));
        s.assert_ge(e, LinExpr::constant(6));
        s.assert_ge(LinExpr::constant(0), LinExpr::var(x()));
        s.assert_ge(LinExpr::constant(0), LinExpr::var(y()));
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn linexpr_algebra() {
        let e = LinExpr::var(x()).add(&LinExpr::var(x())); // 2x
        assert_eq!(e.coeff(x()), Rat::from(2));
        let z = e.sub(&e);
        assert!(z.is_constant());
        assert!(z.constant_term().is_zero());
    }

    /// Brute-force cross-check: random small integer systems; whenever
    /// exhaustive search over a box finds a witness, FM must agree
    /// (FM = UNSAT ⇒ no witness anywhere, in particular in the box).
    #[test]
    fn fm_never_refutes_a_witnessed_system() {
        let mut seed = 0xdead_beefu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..200 {
            let n_vars = 2 + (rng() % 2) as usize;
            let n_cons = 1 + (rng() % 4) as usize;
            let mut sys = System::new();
            let mut rows = Vec::new();
            for _ in 0..n_cons {
                let k = (rng() % 7) as i64 - 3;
                let mut e = LinExpr::constant(k);
                let mut row = vec![k];
                for v in 0..n_vars {
                    let c = (rng() % 5) as i64 - 2;
                    row.push(c);
                    e = e.add(&LinExpr::var(Var(v as u32)).scale(Rat::from(c)));
                }
                sys.assert_ge0(e);
                rows.push(row);
            }
            // Exhaustive search over [-4, 4]^n.
            let mut witness = false;
            let mut assign = vec![-4i64; n_vars];
            'outer: loop {
                if rows.iter().all(|row| {
                    let mut acc = row[0];
                    for (v, &a) in assign.iter().enumerate() {
                        acc += row[v + 1] * a;
                    }
                    acc >= 0
                }) {
                    witness = true;
                    break;
                }
                for a in assign.iter_mut() {
                    *a += 1;
                    if *a <= 4 {
                        continue 'outer;
                    }
                    *a = -4;
                }
                break;
            }
            if witness {
                assert!(sys.is_satisfiable(), "FM refuted a witnessed system");
            }
        }
    }
}
