//! Execution of builtin leaf parsers.
//!
//! The paper replaces the bit-by-bit `Int` grammar of Fig. 3 with a
//! specialized `btoi` function in generated parsers (§7). These are the
//! corresponding Rust primitives: each takes the interval-confined local
//! input and returns the decoded `val` plus the number of bytes consumed,
//! or `None` on failure.

use crate::syntax::Builtin;

/// Runs builtin `b` on the local input slice.
///
/// Returns `(val, consumed)` on success. Fixed-width integers fail when the
/// input is shorter than their width; [`Builtin::AsciiInt`] fails when the
/// input does not start with an ASCII digit (or the value overflows `i64`);
/// [`Builtin::Bytes`] always succeeds, consuming everything.
pub fn run_builtin(b: Builtin, input: &[u8]) -> Option<(i64, usize)> {
    match b {
        Builtin::U8 => input.first().map(|&v| (v as i64, 1)),
        Builtin::U16Le => fixed(input, 2, |s| u16::from_le_bytes(s.try_into().unwrap()) as i64),
        Builtin::U16Be => fixed(input, 2, |s| u16::from_be_bytes(s.try_into().unwrap()) as i64),
        Builtin::U32Le => fixed(input, 4, |s| u32::from_le_bytes(s.try_into().unwrap()) as i64),
        Builtin::U32Be => fixed(input, 4, |s| u32::from_be_bytes(s.try_into().unwrap()) as i64),
        Builtin::U64Le => fixed(input, 8, |s| i64::from_le_bytes(s.try_into().unwrap())),
        Builtin::U64Be => fixed(input, 8, |s| i64::from_be_bytes(s.try_into().unwrap())),
        Builtin::AsciiInt => ascii_int(input),
        Builtin::Bytes => Some((input.len() as i64, input.len())),
    }
}

fn fixed(input: &[u8], width: usize, decode: impl Fn(&[u8]) -> i64) -> Option<(i64, usize)> {
    if input.len() < width {
        None
    } else {
        Some((decode(&input[..width]), width))
    }
}

fn ascii_int(input: &[u8]) -> Option<(i64, usize)> {
    let digits = input.iter().take_while(|b| b.is_ascii_digit()).count();
    if digits == 0 {
        return None;
    }
    let mut val: i64 = 0;
    for &b in &input[..digits] {
        val = val.checked_mul(10)?.checked_add((b - b'0') as i64)?;
    }
    Some((val, digits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_reads_one_byte() {
        assert_eq!(run_builtin(Builtin::U8, &[0xff, 1]), Some((255, 1)));
        assert_eq!(run_builtin(Builtin::U8, &[]), None);
    }

    #[test]
    fn little_and_big_endian_disagree() {
        let bytes = [0x01, 0x02, 0x03, 0x04];
        assert_eq!(run_builtin(Builtin::U32Le, &bytes), Some((0x0403_0201, 4)));
        assert_eq!(run_builtin(Builtin::U32Be, &bytes), Some((0x0102_0304, 4)));
        assert_eq!(run_builtin(Builtin::U16Le, &bytes), Some((0x0201, 2)));
        assert_eq!(run_builtin(Builtin::U16Be, &bytes), Some((0x0102, 2)));
    }

    #[test]
    fn fixed_width_requires_enough_input() {
        assert_eq!(run_builtin(Builtin::U32Le, &[1, 2, 3]), None);
        assert_eq!(run_builtin(Builtin::U64Be, &[0; 7]), None);
        assert_eq!(run_builtin(Builtin::U64Le, &[0; 9]), Some((0, 8)));
    }

    #[test]
    fn u64_decodes_as_i64() {
        let bytes = 0x1234_5678_9abc_def0u64.to_le_bytes();
        assert_eq!(run_builtin(Builtin::U64Le, &bytes), Some((0x1234_5678_9abc_def0, 8)));
    }

    #[test]
    fn ascii_int_consumes_digit_prefix() {
        assert_eq!(run_builtin(Builtin::AsciiInt, b"123abc"), Some((123, 3)));
        assert_eq!(run_builtin(Builtin::AsciiInt, b"0"), Some((0, 1)));
        assert_eq!(run_builtin(Builtin::AsciiInt, b"abc"), None);
        assert_eq!(run_builtin(Builtin::AsciiInt, b""), None);
    }

    #[test]
    fn ascii_int_rejects_overflow() {
        assert_eq!(run_builtin(Builtin::AsciiInt, b"99999999999999999999"), None);
    }

    #[test]
    fn bytes_consumes_everything() {
        assert_eq!(run_builtin(Builtin::Bytes, b"abcd"), Some((4, 4)));
        assert_eq!(run_builtin(Builtin::Bytes, b""), Some((0, 0)));
    }
}
