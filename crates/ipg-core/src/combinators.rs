//! Interval parser combinators — the Rust port of the monadic OCaml
//! library from the paper's appendix (A.2).
//!
//! A [`P<T>`] is a parser producing a `T`. Its internal state is the
//! triple `(l, r, c)`: the *interval* `[l, r)` currently assigned to the
//! parser (absolute offsets into the global input) and the current parsing
//! position `c`. The key combinator is [`P::local`] (the appendix's `%`
//! operator): it runs a parser inside a sub-interval given in *relative*
//! offsets, then restores the enclosing interval — exactly matching the
//! IPG semantics of `A[el, er]`.
//!
//! ```
//! use ipg_core::combinators::{byte, eoi, fix, P};
//!
//! // The binary number parser of Fig. 3, as combinators (appendix A.2).
//! fn digit() -> P<i64> {
//!     byte(b'0').map(|_| 0).or(byte(b'1').map(|_| 1))
//! }
//! let int_p = fix(|intp| {
//!     eoi()
//!         .and_then(move |n| {
//!             let intp = intp.clone();
//!             intp.local_dyn(move |_| (0, n - 1))
//!                 .and_then(move |hi| {
//!                     digit().local_dyn(move |eoi| (eoi - 1, eoi)).map(move |d| hi * 2 + d)
//!                 })
//!         })
//!         .or(digit().local(0, 1))
//! });
//! assert_eq!(int_p.run(b"101"), Some(5));
//! assert_eq!(int_p.run(b"2"), None);
//! ```

use std::rc::Rc;

/// The monad state of the appendix: assigned interval `[l, r)` and current
/// position `c`, all absolute offsets into the global input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct State {
    /// Left endpoint of the assigned interval.
    pub l: usize,
    /// Right endpoint of the assigned interval.
    pub r: usize,
    /// Current parsing position (`l ≤ c ≤ r`).
    pub c: usize,
}

/// The function type backing an interval parser.
type ParseFn<T> = dyn Fn(&[u8], State) -> Option<(T, State)>;

/// An interval parser producing values of type `T`.
///
/// Cloning is cheap (reference-counted closure).
pub struct P<T>(Rc<ParseFn<T>>);

impl<T> Clone for P<T> {
    fn clone(&self) -> Self {
        P(Rc::clone(&self.0))
    }
}

impl<T: 'static> P<T> {
    /// Wraps a raw state-transition function.
    pub fn from_fn(f: impl Fn(&[u8], State) -> Option<(T, State)> + 'static) -> Self {
        P(Rc::new(f))
    }

    /// Runs the parser on the whole input.
    pub fn run(&self, input: &[u8]) -> Option<T> {
        self.run_state(input, State { l: 0, r: input.len(), c: 0 }).map(|(v, _)| v)
    }

    /// Runs the parser from an explicit state (exposed for composing with
    /// hand-written parsers).
    pub fn run_state(&self, input: &[u8], st: State) -> Option<(T, State)> {
        (self.0)(input, st)
    }

    /// Monadic bind (`>>=`).
    pub fn and_then<U: 'static>(self, f: impl Fn(T) -> P<U> + 'static) -> P<U> {
        P(Rc::new(move |inp, st| {
            let (v, st1) = (self.0)(inp, st)?;
            (f(v).0)(inp, st1)
        }))
    }

    /// Functorial map.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> P<U> {
        P(Rc::new(move |inp, st| {
            let (v, st1) = (self.0)(inp, st)?;
            Some((f(v), st1))
        }))
    }

    /// Biased choice (the paper's `/`): `other` runs only if `self` fails,
    /// from the same state.
    pub fn or(self, other: P<T>) -> P<T> {
        P(Rc::new(move |inp, st| (self.0)(inp, st).or_else(|| (other.0)(inp, st))))
    }

    /// Sequencing that keeps the second value (the appendix's `$$`).
    pub fn then<U: 'static>(self, next: P<U>) -> P<U> {
        P(Rc::new(move |inp, st| {
            let (_, st1) = (self.0)(inp, st)?;
            (next.0)(inp, st1)
        }))
    }

    /// Sequencing that keeps both values.
    pub fn pair<U: 'static>(self, next: P<U>) -> P<(T, U)> {
        P(Rc::new(move |inp, st| {
            let (a, st1) = (self.0)(inp, st)?;
            let (b, st2) = (next.0)(inp, st1)?;
            Some(((a, b), st2))
        }))
    }

    /// The appendix's `%` combinator: run `self` confined to the interval
    /// `[lo, hi)` given in offsets *relative* to the current interval, then
    /// restore the interval and set the position to the sub-interval's
    /// (relative) right end.
    ///
    /// Fails when the relative interval does not satisfy
    /// `0 ≤ lo ≤ hi ≤ EOI` (note: the OCaml appendix requires `lo < hi`;
    /// we allow the empty interval to match the core IPG semantics, where
    /// `[0, 0]` is valid).
    pub fn local(self, lo: i64, hi: i64) -> P<T> {
        self.local_dyn(move |_| (lo, hi))
    }

    /// Like [`P::local`], but the relative interval may depend on the
    /// current `EOI` (length of the enclosing interval).
    pub fn local_dyn(self, f: impl Fn(i64) -> (i64, i64) + 'static) -> P<T> {
        P(Rc::new(move |inp, st| {
            let eoi = (st.r - st.l) as i64;
            let (lo, hi) = f(eoi);
            if !(0 <= lo && lo <= hi && hi <= eoi) {
                return None;
            }
            let inner =
                State { l: st.l + lo as usize, r: st.l + hi as usize, c: st.l + lo as usize };
            let (v, _) = (self.0)(inp, inner)?;
            // Restore the enclosing interval; position moves to the end of
            // the sub-interval (as in the appendix's definition of `%`).
            Some((v, State { l: st.l, r: st.r, c: st.l + hi as usize }))
        }))
    }

    /// Runs `self` on `[lo, lo + len)` where `lo` is the current *position*
    /// relative to the interval — the combinator analogue of implicit
    /// length intervals (`A[10]`).
    pub fn here(self, len: i64) -> P<T> {
        P(Rc::new(move |inp, st| {
            let rel = (st.c - st.l) as i64;
            (self.clone().local_dyn(move |_| (rel, rel + len)).0)(inp, st)
        }))
    }
}

/// Always succeeds with `v`, consuming nothing (monadic `return`).
pub fn ret<T: Clone + 'static>(v: T) -> P<T> {
    P(Rc::new(move |_, st| Some((v.clone(), st))))
}

/// Always fails.
pub fn fail<T: 'static>() -> P<T> {
    P(Rc::new(|_, _| None))
}

/// The length of the current interval (`EOI`).
pub fn eoi() -> P<i64> {
    P(Rc::new(|_, st| Some((((st.r - st.l) as i64), st))))
}

/// The current position, relative to the current interval.
pub fn pos() -> P<i64> {
    P(Rc::new(|_, st| Some(((st.c - st.l) as i64, st))))
}

/// Succeeds iff `cond` is true (predicate `⟨e⟩`).
pub fn guard(cond: bool) -> P<()> {
    P(Rc::new(move |_, st| if cond { Some(((), st)) } else { None }))
}

/// Matches a single byte equal to `ch` at the current position (the
/// appendix's `charP`).
pub fn byte(ch: u8) -> P<u8> {
    P(Rc::new(move |inp, st| {
        if st.c < st.r && inp[st.c] == ch {
            Some((ch, State { c: st.c + 1, ..st }))
        } else {
            None
        }
    }))
}

/// Matches any single byte.
pub fn any_byte() -> P<u8> {
    P(Rc::new(
        |inp, st| {
            if st.c < st.r {
                Some((inp[st.c], State { c: st.c + 1, ..st }))
            } else {
                None
            }
        },
    ))
}

/// Matches the literal byte string `s` at the current position.
pub fn literal(s: &[u8]) -> P<()> {
    let s = s.to_vec();
    P(Rc::new(move |inp, st| {
        if st.c + s.len() <= st.r && &inp[st.c..st.c + s.len()] == s.as_slice() {
            Some(((), State { c: st.c + s.len(), ..st }))
        } else {
            None
        }
    }))
}

/// Reads a fixed-width little-endian unsigned integer (the `btoi`
/// specialization of §7).
pub fn uint_le(width: usize) -> P<i64> {
    uint(width, false)
}

/// Reads a fixed-width big-endian unsigned integer.
pub fn uint_be(width: usize) -> P<i64> {
    uint(width, true)
}

fn uint(width: usize, big_endian: bool) -> P<i64> {
    assert!(width <= 8, "width above 8 bytes would overflow i64");
    P(Rc::new(move |inp, st| {
        if st.c + width > st.r {
            return None;
        }
        let slice = &inp[st.c..st.c + width];
        let mut v: i64 = 0;
        if big_endian {
            for &b in slice {
                v = (v << 8) | b as i64;
            }
        } else {
            for &b in slice.iter().rev() {
                v = (v << 8) | b as i64;
            }
        }
        Some((v, State { c: st.c + width, ..st }))
    }))
}

/// The remaining bytes of the current interval, as an owned vector.
pub fn rest() -> P<Vec<u8>> {
    P(Rc::new(|inp, st| Some((inp[st.c..st.r].to_vec(), State { c: st.r, ..st }))))
}

/// Runs `p` exactly `n` times, collecting the results (array terms).
pub fn count<T: 'static>(n: usize, p: P<T>) -> P<Vec<T>> {
    P(Rc::new(move |inp, mut st| {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let (v, st1) = (p.0)(inp, st)?;
            out.push(v);
            st = st1;
        }
        Some((out, st))
    }))
}

/// Runs `p` zero or more times until it fails, collecting the results.
pub fn many<T: 'static>(p: P<T>) -> P<Vec<T>> {
    P(Rc::new(move |inp, mut st| {
        let mut out = Vec::new();
        while let Some((v, st1)) = (p.0)(inp, st) {
            // Refuse to loop on non-advancing parsers.
            if st1 == st {
                break;
            }
            out.push(v);
            st = st1;
        }
        Some((out, st))
    }))
}

/// Ties the recursive knot: `fix(f)` behaves as `f(fix(f))`, evaluated
/// lazily so recursive grammars (like Fig. 3's `Int`) can be expressed.
pub fn fix<T: 'static>(f: impl Fn(P<T>) -> P<T> + 'static) -> P<T> {
    let f = Rc::new(f);
    fix_rc(f)
}

fn fix_rc<T: 'static>(f: Rc<dyn Fn(P<T>) -> P<T>>) -> P<T> {
    let g = Rc::clone(&f);
    P(Rc::new(move |inp, st| {
        let p = g(fix_rc(Rc::clone(&g)));
        (p.0)(inp, st)
    }))
}

impl<T> std::fmt::Debug for P<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("P(<parser>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digit() -> P<i64> {
        byte(b'0').map(|_| 0).or(byte(b'1').map(|_| 1))
    }

    /// The appendix's `intP` example.
    fn int_p() -> P<i64> {
        fix(|intp| {
            eoi()
                .and_then(move |n| {
                    let intp = intp.clone();
                    intp.local_dyn(move |_| (0, n - 1)).and_then(move |hi| {
                        digit().local_dyn(move |e| (e - 1, e)).map(move |d| hi * 2 + d)
                    })
                })
                .or(digit().local(0, 1))
        })
    }

    #[test]
    fn binary_number_matches_fig3() {
        let p = int_p();
        assert_eq!(p.run(b"0"), Some(0));
        assert_eq!(p.run(b"1"), Some(1));
        assert_eq!(p.run(b"101"), Some(5));
        assert_eq!(p.run(b"1111"), Some(15));
        assert_eq!(p.run(b""), None);
        assert_eq!(p.run(b"2"), None);
    }

    #[test]
    fn combinators_agree_with_interpreter_on_binary_numbers() {
        use crate::frontend::parse_grammar;
        use crate::interp::Parser;
        let g = parse_grammar(
            r#"
            start Int;
            Int -> Int[0, EOI - 1] Digit[EOI - 1, EOI] {val = 2 * Int.val + Digit.val}
                 / Digit[0, 1] {val = Digit.val};
            Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1};
            "#,
        )
        .unwrap();
        let interp = Parser::new(&g);
        let comb = int_p();
        // Exhaustive over all strings of length ≤ 6 over {0, 1, x}.
        let alphabet = [b'0', b'1', b'x'];
        let mut inputs: Vec<Vec<u8>> = vec![Vec::new()];
        for _ in 0..6 {
            let mut next = Vec::new();
            for s in &inputs {
                for &a in &alphabet {
                    let mut t = s.clone();
                    t.push(a);
                    next.push(t);
                }
            }
            for s in &next {
                let lhs =
                    interp.parse(s).ok().map(|t| t.as_node().unwrap().attr(&g, "val").unwrap());
                let rhs = comb.run(s);
                assert_eq!(lhs, rhs, "disagreement on {s:?}");
            }
            inputs = next;
        }
    }

    #[test]
    fn local_confines_the_view() {
        // rest() inside a local interval sees only that slice.
        let p = rest().local(2, 5);
        assert_eq!(p.run(b"abcdefg"), Some(b"cde".to_vec()));
        // Out-of-range interval fails.
        assert_eq!(rest().local(2, 99).run(b"abc"), None);
        // Negative left endpoint fails.
        assert_eq!(rest().local(-1, 2).run(b"abc"), None);
    }

    #[test]
    fn empty_local_interval_is_valid() {
        assert_eq!(rest().local(1, 1).run(b"ab"), Some(Vec::new()));
    }

    #[test]
    fn random_access_pattern() {
        // Fig. 2 via combinators: header holds offset and length.
        let p = uint_le(4)
            .pair(uint_le(4))
            .local(0, 8)
            .and_then(|(ofs, len)| rest().local_dyn(move |_| (ofs, ofs + len)));
        let mut input = Vec::new();
        input.extend_from_slice(&10u32.to_le_bytes());
        input.extend_from_slice(&3u32.to_le_bytes());
        input.extend_from_slice(b"..ABCxx");
        assert_eq!(p.run(&input), Some(b"ABC".to_vec()));
    }

    #[test]
    fn sequencing_moves_the_position() {
        let p = literal(b"PK").then(uint_le(2));
        assert_eq!(p.run(&[b'P', b'K', 0x34, 0x12]), Some(0x1234));
        assert_eq!(p.run(b"XX\x01\x02"), None);
    }

    #[test]
    fn count_and_many() {
        let p = count(3, any_byte());
        assert_eq!(p.run(b"abc"), Some(b"abc".to_vec()));
        assert_eq!(p.run(b"ab"), None);
        let p = many(byte(b'a'));
        assert_eq!(p.run(b"aaab"), Some(b"aaa".to_vec()));
        assert_eq!(p.run(b""), Some(Vec::new()));
    }

    #[test]
    fn many_does_not_loop_on_empty_success() {
        let p = many(ret(1));
        assert_eq!(p.run(b"x"), Some(Vec::new()));
    }

    #[test]
    fn biased_choice_is_ordered() {
        let p = byte(b'a').map(|_| 1).or(any_byte().map(|_| 2));
        assert_eq!(p.run(b"a"), Some(1));
        assert_eq!(p.run(b"z"), Some(2));
    }

    #[test]
    fn guard_implements_predicates() {
        let p = eoi().and_then(|n| guard(n % 3 == 0).map(move |_| n));
        assert_eq!(p.run(b"abcdef"), Some(6));
        assert_eq!(p.run(b"abcd"), None);
    }

    #[test]
    fn uint_endianness() {
        assert_eq!(uint_le(2).run(&[0x01, 0x02]), Some(0x0201));
        assert_eq!(uint_be(2).run(&[0x01, 0x02]), Some(0x0102));
        assert_eq!(uint_be(4).run(&[0, 0, 0, 5]), Some(5));
        assert_eq!(uint_le(4).run(&[1, 2]), None, "short input");
    }

    #[test]
    fn here_parses_at_the_current_position() {
        // "magic" then a 2-byte length-prefixed region at the position.
        let p = literal(b"hd").then(rest().here(3));
        assert_eq!(p.run(b"hdABCtail"), Some(b"ABC".to_vec()));
    }
}
