//! Abstract syntax of Interval Parsing Grammars.
//!
//! This module defines the *surface* AST: names are plain strings, terms
//! appear in their written order, and intervals remember whether they were
//! written explicitly or inferred by the frontend's auto-completion (the
//! paper's §3.4; the distinction feeds Table 2 of the evaluation).
//!
//! Surface grammars are constructed either programmatically through
//! [`GrammarBuilder`] or textually through [`crate::frontend::parse_grammar`].
//! Before parsing they are *checked and lowered* by [`crate::check::check`]
//! into a [`crate::check::Grammar`], which resolves names to dense ids and
//! topologically reorders terms.

mod builder;
mod display;
mod expr;

pub use builder::{AltBuilder, GrammarBuilder};
pub use expr::{BinOp, Expr, Reference};

pub(crate) use display::format_bytes;

use crate::blackbox::Blackbox;
use std::fmt;

/// A complete surface grammar: an ordered list of rules, the first of which
/// is the start nonterminal (unless overridden).
#[derive(Clone, Debug, Default)]
pub struct Grammar {
    /// Rules in declaration order. Exactly one rule per nonterminal.
    pub rules: Vec<Rule>,
    /// Name of the start nonterminal. Defaults to the first rule's name.
    pub start: Option<String>,
    /// Opaque legacy parsers referenced by [`RuleBody::Blackbox`] rules,
    /// keyed by [`Blackbox::name`].
    pub blackboxes: Vec<Blackbox>,
}

/// A single grammar rule: `A -> alt1 / … / altn`.
#[derive(Clone, Debug)]
pub struct Rule {
    /// The nonterminal this rule defines.
    pub name: String,
    /// The right-hand side.
    pub body: RuleBody,
    /// Local (`where`) rules inherit the attribute environment of the
    /// alternative that invokes them (§3.4, "Local Rules").
    pub is_local: bool,
}

/// The right-hand side of a rule.
#[derive(Clone, Debug)]
pub enum RuleBody {
    /// An ordered list of biased-choice alternatives.
    Alts(Vec<Alternative>),
    /// A specialized leaf parser (the paper's `btoi`, §7).
    Builtin(Builtin),
    /// An opaque external parser invoked on the local input slice (§3.4,
    /// "Blackbox Parsers"). The string names an entry of
    /// [`Grammar::blackboxes`].
    Blackbox(String),
}

/// One alternative: a sequence of terms, all of which must succeed.
#[derive(Clone, Debug, Default)]
pub struct Alternative {
    /// Terms in written order.
    pub terms: Vec<Term>,
}

/// A term of an alternative (Fig. 5 of the paper, plus the full-language
/// switch term of §3.4).
#[derive(Clone, Debug)]
pub enum Term {
    /// `A[el, er]` — parse nonterminal `A` on the given slice.
    Symbol {
        /// Nonterminal name.
        name: String,
        /// Input slice assigned to the nonterminal.
        interval: Interval,
    },
    /// `"s"[el, er]` — match the literal bytes `s` at the start of the slice.
    Terminal {
        /// The literal bytes (may be empty: ε).
        bytes: Vec<u8>,
        /// Input slice assigned to the literal.
        interval: Interval,
    },
    /// `{id = e}` — define attribute `id` of the enclosing nonterminal.
    AttrDef {
        /// Attribute name.
        name: String,
        /// Defining expression.
        expr: Expr,
    },
    /// `⟨e⟩` (written `assert(e)` in the textual notation) — fail unless `e`
    /// evaluates to a non-zero value.
    Predicate {
        /// The boolean formula.
        expr: Expr,
    },
    /// `for id = e1 to e2 do A[el, er]` — an array of `e2 - e1` elements.
    /// The loop variable `id` is in scope inside `el` and `er` only.
    Array {
        /// Loop variable name.
        var: String,
        /// Inclusive start of the loop range.
        from: Expr,
        /// Exclusive end of the loop range.
        to: Expr,
        /// Element nonterminal.
        name: String,
        /// Per-element interval (may mention `var`).
        interval: Interval,
    },
    /// `switch(e1 : A1[..] / … / en : An[..] / D[..])` — the first choice
    /// whose condition is non-zero parses; if none holds, the default does.
    Switch {
        /// Guarded choices, tried left to right.
        cases: Vec<SwitchCase>,
        /// The unguarded default choice.
        default: Box<SwitchCase>,
    },
    /// `star A[el, er]` — the Kleene-star extension the paper proposes as
    /// future work (§7, the Fig. 13d discussion): within the interval,
    /// parse `A` one or more times, each repetition starting where the
    /// previous one ended, *iteratively* — equivalent to the recursive
    /// `As -> A As[A.end, EOI] / A` chunk idiom but without the recursion
    /// depth. Each repetition must make progress; a repetition that
    /// touches nothing ends the loop.
    Star {
        /// Element nonterminal.
        name: String,
        /// Interval the whole repetition is confined to.
        interval: Interval,
    },
}

/// One guarded choice of a switch term. For the default choice the guard is
/// `None`.
#[derive(Clone, Debug)]
pub struct SwitchCase {
    /// The guard; `None` for the default branch.
    pub cond: Option<Expr>,
    /// Nonterminal parsed when this choice is selected.
    pub name: String,
    /// Its interval.
    pub interval: Interval,
}

/// An interval `[el, er)` attached to a symbol occurrence.
#[derive(Clone, Debug)]
pub struct Interval {
    /// Left endpoint (inclusive), relative to the enclosing rule's input.
    pub lo: Expr,
    /// Right endpoint (exclusive), relative to the enclosing rule's input.
    pub hi: Expr,
    /// How this interval came to be (written by the user, or inferred).
    pub origin: IntervalOrigin,
}

impl Interval {
    /// An explicitly written interval.
    pub fn new(lo: Expr, hi: Expr) -> Self {
        Interval { lo, hi, origin: IntervalOrigin::Explicit }
    }
}

/// Provenance of an interval, recorded so the implicit-interval statistics
/// of Table 2 can be regenerated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntervalOrigin {
    /// Both endpoints written by the user.
    Explicit,
    /// Both endpoints inferred by auto-completion.
    InferredFull,
    /// The user wrote only a length; the left endpoint was inferred.
    InferredLength,
}

/// Specialized leaf parsers (the paper specializes `Int` into an efficient
/// `btoi` function; these are its Rust analogues).
///
/// Every builtin defines the attribute `val`:
///
/// * integer builtins set `val` to the decoded integer and consume exactly
///   their width (they fail if the local input is shorter);
/// * [`Builtin::AsciiInt`] consumes a non-empty prefix of ASCII digits and
///   sets `val` to the decimal value;
/// * [`Builtin::Bytes`] consumes the entire local input and sets `val` to
///   its length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit little-endian integer.
    U16Le,
    /// Unsigned 16-bit big-endian integer.
    U16Be,
    /// Unsigned 32-bit little-endian integer.
    U32Le,
    /// Unsigned 32-bit big-endian integer.
    U32Be,
    /// Unsigned 64-bit little-endian integer (decoded as `i64`, wrapping).
    U64Le,
    /// Unsigned 64-bit big-endian integer (decoded as `i64`, wrapping).
    U64Be,
    /// A non-empty run of ASCII digits, decoded as a decimal integer.
    AsciiInt,
    /// The entire local input, accepted verbatim; `val` is its length.
    Bytes,
}

impl Builtin {
    /// The number of bytes a fixed-width builtin consumes, if fixed.
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            Builtin::U8 => Some(1),
            Builtin::U16Le | Builtin::U16Be => Some(2),
            Builtin::U32Le | Builtin::U32Be => Some(4),
            Builtin::U64Le | Builtin::U64Be => Some(8),
            Builtin::AsciiInt | Builtin::Bytes => None,
        }
    }

    /// The name used in the textual notation (`Int := u32le;`).
    pub fn name(self) -> &'static str {
        match self {
            Builtin::U8 => "u8",
            Builtin::U16Le => "u16le",
            Builtin::U16Be => "u16be",
            Builtin::U32Le => "u32le",
            Builtin::U32Be => "u32be",
            Builtin::U64Le => "u64le",
            Builtin::U64Be => "u64be",
            Builtin::AsciiInt => "ascii_int",
            Builtin::Bytes => "bytes",
        }
    }

    /// Parses the textual notation name back into a builtin.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "u8" => Builtin::U8,
            "u16le" => Builtin::U16Le,
            "u16be" => Builtin::U16Be,
            "u32le" => Builtin::U32Le,
            "u32be" => Builtin::U32Be,
            "u64le" => Builtin::U64Le,
            "u64be" => Builtin::U64Be,
            "ascii_int" => Builtin::AsciiInt,
            "bytes" => Builtin::Bytes,
            _ => return None,
        })
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Grammar {
    /// Looks up the rule for `name`.
    pub fn rule(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// The start nonterminal: [`Grammar::start`] if set, otherwise the first
    /// rule's name.
    pub fn start_name(&self) -> Option<&str> {
        self.start.as_deref().or_else(|| self.rules.first().map(|r| r.name.as_str()))
    }

    /// Registers a blackbox parser so that `A := blackbox name;` rules can
    /// reference it by [`Blackbox::name`].
    pub fn register_blackbox(&mut self, bb: Blackbox) {
        self.blackboxes.push(bb);
    }

    /// Iterates over every interval occurring in the grammar (for the
    /// implicit-interval statistics of Table 2).
    pub fn intervals(&self) -> Vec<&Interval> {
        let mut out = Vec::new();
        for rule in &self.rules {
            if let RuleBody::Alts(alts) = &rule.body {
                for alt in alts {
                    for term in &alt.terms {
                        match term {
                            Term::Symbol { interval, .. }
                            | Term::Terminal { interval, .. }
                            | Term::Array { interval, .. }
                            | Term::Star { interval, .. } => out.push(interval),
                            Term::Switch { cases, default } => {
                                out.extend(cases.iter().map(|c| &c.interval));
                                out.push(&default.interval);
                            }
                            Term::AttrDef { .. } | Term::Predicate { .. } => {}
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_roundtrip_names() {
        for b in [
            Builtin::U8,
            Builtin::U16Le,
            Builtin::U16Be,
            Builtin::U32Le,
            Builtin::U32Be,
            Builtin::U64Le,
            Builtin::U64Be,
            Builtin::AsciiInt,
            Builtin::Bytes,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::from_name("i128"), None);
    }

    #[test]
    fn builtin_widths() {
        assert_eq!(Builtin::U8.fixed_width(), Some(1));
        assert_eq!(Builtin::U32Be.fixed_width(), Some(4));
        assert_eq!(Builtin::U64Le.fixed_width(), Some(8));
        assert_eq!(Builtin::Bytes.fixed_width(), None);
    }

    #[test]
    fn start_name_defaults_to_first_rule() {
        let g = Grammar {
            rules: vec![Rule {
                name: "S".into(),
                body: RuleBody::Builtin(Builtin::U8),
                is_local: false,
            }],
            start: None,
            blackboxes: vec![],
        };
        assert_eq!(g.start_name(), Some("S"));
    }
}
