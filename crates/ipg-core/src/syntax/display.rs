//! Pretty-printing of surface grammars in the textual notation understood
//! by [`crate::frontend::parse_grammar`], so that grammars round-trip:
//! `parse(g.to_string())` is structurally equal to `g` (modulo interval
//! provenance, which prints explicitly).

use super::{Alternative, Grammar, Interval, Rule, RuleBody, SwitchCase, Term};
use std::fmt;

/// Renders literal bytes either as a quoted string (when all printable
/// ASCII) or as a hex string `x"…"`.
pub(crate) fn format_bytes(bytes: &[u8]) -> String {
    let printable = bytes.iter().all(|&b| (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\');
    if printable {
        format!("\"{}\"", std::str::from_utf8(bytes).expect("checked printable ASCII"))
    } else {
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        format!("x\"{hex}\"")
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl fmt::Display for SwitchCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(cond) = &self.cond {
            write!(f, "{cond} : ")?;
        }
        write!(f, "{}{}", self.name, self.interval)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Symbol { name, interval } => write!(f, "{name}{interval}"),
            Term::Terminal { bytes, interval } => {
                write!(f, "{}{interval}", format_bytes(bytes))
            }
            Term::AttrDef { name, expr } => write!(f, "{{{name} = {expr}}}"),
            Term::Predicate { expr } => write!(f, "assert({expr})"),
            Term::Array { var, from, to, name, interval } => {
                write!(f, "for {var} = {from} to {to} do {name}{interval}")
            }
            Term::Star { name, interval } => write!(f, "star {name}{interval}"),
            Term::Switch { cases, default } => {
                f.write_str("switch(")?;
                for case in cases {
                    write!(f, "{case} / ")?;
                }
                write!(f, "{default})")
            }
        }
    }
}

impl fmt::Display for Alternative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("\"\"[0, 0]");
        }
        for (i, term) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{term}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            RuleBody::Alts(alts) => {
                write!(f, "{} -> ", self.name)?;
                for (i, alt) in alts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" / ")?;
                    }
                    write!(f, "{alt}")?;
                }
                f.write_str(";")
            }
            RuleBody::Builtin(b) => write!(f, "{} := {b};", self.name),
            RuleBody::Blackbox(name) => write!(f, "{} := blackbox {name};", self.name),
        }
    }
}

impl fmt::Display for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(start) = &self.start {
            writeln!(f, "start {start};")?;
        }
        for rule in &self.rules {
            if rule.is_local {
                writeln!(f, "local {rule}")?;
            } else {
                writeln!(f, "{rule}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::syntax::{AltBuilder, Builtin, Expr, GrammarBuilder};

    #[test]
    fn bytes_render_as_string_or_hex() {
        assert_eq!(super::format_bytes(b"PK"), "\"PK\"");
        assert_eq!(super::format_bytes(&[0x7f, 0x45, 0x4c, 0x46]), "x\"7f454c46\"");
        assert_eq!(super::format_bytes(b""), "\"\"");
    }

    #[test]
    fn rule_display_matches_frontend_notation() {
        let g = GrammarBuilder::new()
            .rule(
                "S",
                vec![AltBuilder::new()
                    .symbol("H", Expr::num(0), Expr::num(8))
                    .symbol(
                        "Data",
                        Expr::attr("H", "offset"),
                        Expr::attr("H", "offset") + Expr::attr("H", "length"),
                    )
                    .build()],
            )
            .builtin("Int", Builtin::U32Le)
            .build_unchecked();
        let text = g.to_string();
        assert!(text.contains("S -> H[0, 8] Data[H.offset, H.offset + H.length];"));
        assert!(text.contains("Int := u32le;"));
    }

    #[test]
    fn empty_alternative_prints_epsilon() {
        let g = GrammarBuilder::new().rule("E", vec![AltBuilder::new().build()]).build_unchecked();
        assert!(g.to_string().contains("E -> \"\"[0, 0];"));
    }

    #[test]
    fn attr_def_and_predicate_display() {
        let g = GrammarBuilder::new()
            .rule(
                "S",
                vec![AltBuilder::new()
                    .attr("n", Expr::eoi() / Expr::num(3))
                    .pred(Expr::local("n").gt(Expr::num(0)))
                    .build()],
            )
            .build_unchecked();
        let text = g.to_string();
        assert!(text.contains("{n = EOI / 3}"), "got: {text}");
        assert!(text.contains("assert(n > 0)"), "got: {text}");
    }
}
