//! Surface expressions and attribute references (Fig. 5 of the paper).
//!
//! All expressions evaluate to `i64`. Booleans are encoded as integers:
//! zero is false, anything else is true — exactly as in the paper, where a
//! predicate `⟨e⟩` fails iff `e` evaluates to 0.
//!
//! The arithmetic operators `+ - * /` are overloaded on [`Expr`] so that
//! grammar-building code reads naturally:
//!
//! ```
//! use ipg_core::syntax::Expr;
//! let e = Expr::attr("H", "offset") + Expr::attr("H", "length");
//! assert_eq!(e.to_string(), "H.offset + H.length");
//! ```

use std::fmt;
use std::ops;

/// A surface expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Ternary conditional `c ? t : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Attribute reference.
    Ref(Reference),
    /// Existential `∃var. cond ? then : els` (§3.4): scans the array of
    /// nonterminal `array` for the first index (bound to `var`) at which
    /// `cond` is non-zero; evaluates `then` with `var` bound if found,
    /// `els` otherwise.
    Exists {
        /// The bound index variable.
        var: String,
        /// Name of the array nonterminal scanned.
        array: String,
        /// Per-element condition (may mention `var`).
        cond: Box<Expr>,
        /// Result when some element satisfies `cond`.
        then: Box<Expr>,
        /// Result when no element satisfies `cond`.
        els: Box<Expr>,
    },
}

/// Binary operators. The comparison and logical operators return 0 or 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; evaluation fails on division by zero)
    Div,
    /// `%` (evaluation fails on modulo by zero)
    Mod,
    /// `=` equality
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// logical and `∧`
    And,
    /// logical or `∨`
    Or,
    /// bitwise shift left `<<`
    Shl,
    /// bitwise shift right `>>`
    Shr,
    /// bitwise and `&`
    BitAnd,
    /// bitwise or `|`
    BitOr,
}

/// An attribute reference (the `ref` production of Fig. 5).
///
/// The special attributes `start` and `end` of a sibling nonterminal are
/// ordinary [`Reference::Attr`] references with those names; `EOI` has its
/// own variant because it refers to the *current* rule's input length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reference {
    /// `id` — an attribute of the current alternative, or an enclosing loop
    /// or existential variable.
    Local(String),
    /// `A.id` — attribute `id` of sibling nonterminal `A` (includes
    /// `A.start` and `A.end`).
    Attr {
        /// Sibling nonterminal name.
        nt: String,
        /// Attribute name.
        attr: String,
    },
    /// `A(e).id` — attribute `id` of element `e` of the sibling array of
    /// `A`s.
    Elem {
        /// Array element nonterminal name.
        nt: String,
        /// Element index expression.
        index: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// `EOI` — the length of the current rule's input.
    Eoi,
}

impl Expr {
    /// Integer literal.
    pub fn num(n: i64) -> Expr {
        Expr::Num(n)
    }

    /// `EOI`.
    pub fn eoi() -> Expr {
        Expr::Ref(Reference::Eoi)
    }

    /// A local attribute or loop-variable reference.
    pub fn local(name: &str) -> Expr {
        Expr::Ref(Reference::Local(name.to_owned()))
    }

    /// `nt.attr`.
    pub fn attr(nt: &str, attr: &str) -> Expr {
        Expr::Ref(Reference::Attr { nt: nt.to_owned(), attr: attr.to_owned() })
    }

    /// `nt(index).attr`.
    pub fn elem(nt: &str, index: Expr, attr: &str) -> Expr {
        Expr::Ref(Reference::Elem {
            nt: nt.to_owned(),
            index: Box::new(index),
            attr: attr.to_owned(),
        })
    }

    /// `nt.end` — one past the right-most input offset touched by `nt`.
    pub fn end_of(nt: &str) -> Expr {
        Expr::attr(nt, "end")
    }

    /// `nt.start` — the left-most input offset touched by `nt`.
    pub fn start_of(nt: &str) -> Expr {
        Expr::attr(nt, "start")
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// `self = rhs` (equality, returning 0 or 1).
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, rhs)
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, rhs)
    }

    /// Logical conjunction.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, self, rhs)
    }

    /// Logical disjunction.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, rhs)
    }

    /// `self % rhs`.
    #[allow(clippy::should_implement_trait)] // named like `eq`/`lt` above, by value
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mod, self, rhs)
    }

    /// `self << rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn shl(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Shl, self, rhs)
    }

    /// `self >> rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Shr, self, rhs)
    }

    /// Bitwise and.
    #[allow(clippy::should_implement_trait)]
    pub fn bitand(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::BitAnd, self, rhs)
    }

    /// Bitwise or.
    #[allow(clippy::should_implement_trait)]
    pub fn bitor(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::BitOr, self, rhs)
    }

    /// Ternary conditional `self ? then : els`.
    pub fn cond(self, then: Expr, els: Expr) -> Expr {
        Expr::Cond(Box::new(self), Box::new(then), Box::new(els))
    }

    /// Existential scan over the array of `array_nt` (see [`Expr::Exists`]).
    pub fn exists(var: &str, array_nt: &str, cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::Exists {
            var: var.to_owned(),
            array: array_nt.to_owned(),
            cond: Box::new(cond),
            then: Box::new(then),
            els: Box::new(els),
        }
    }
}

impl From<i64> for Expr {
    fn from(n: i64) -> Expr {
        Expr::Num(n)
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
}

impl BinOp {
    /// The token used in the textual notation.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
        }
    }

    /// Binding strength for the pretty printer and the frontend parser
    /// (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 3,
            BinOp::BitOr => 4,
            BinOp::BitAnd => 5,
            BinOp::Shl | BinOp::Shr => 6,
            BinOp::Add | BinOp::Sub => 7,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 8,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl Expr {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, outer: u8) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Bin(op, a, b) => {
                let p = op.precedence();
                let need = p < outer;
                if need {
                    f.write_str("(")?;
                }
                a.fmt_prec(f, p)?;
                write!(f, " {op} ")?;
                // Left-associative: the right operand needs one more level.
                b.fmt_prec(f, p + 1)?;
                if need {
                    f.write_str(")")?;
                }
                Ok(())
            }
            Expr::Cond(c, t, e) => {
                let need = outer > 0;
                if need {
                    f.write_str("(")?;
                }
                c.fmt_prec(f, 1)?;
                f.write_str(" ? ")?;
                t.fmt_prec(f, 0)?;
                f.write_str(" : ")?;
                e.fmt_prec(f, 0)?;
                if need {
                    f.write_str(")")?;
                }
                Ok(())
            }
            Expr::Ref(r) => write!(f, "{r}"),
            Expr::Exists { var, array, cond, then, els } => {
                if outer > 0 {
                    f.write_str("(")?;
                }
                write!(f, "exists {var} in {array} . ")?;
                cond.fmt_prec(f, 1)?;
                f.write_str(" ? ")?;
                then.fmt_prec(f, 0)?;
                f.write_str(" : ")?;
                els.fmt_prec(f, 0)?;
                if outer > 0 {
                    f.write_str(")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl fmt::Display for Reference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reference::Local(id) => f.write_str(id),
            Reference::Attr { nt, attr } => write!(f, "{nt}.{attr}"),
            Reference::Elem { nt, index, attr } => write!(f, "{nt}({index}).{attr}"),
            Reference::Eoi => f.write_str("EOI"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_overloads_build_the_expected_tree() {
        let e = Expr::num(1) + Expr::num(2) * Expr::num(3);
        assert_eq!(
            e,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Num(1)),
                Box::new(Expr::Bin(BinOp::Mul, Box::new(Expr::Num(2)), Box::new(Expr::Num(3)))),
            )
        );
    }

    #[test]
    fn display_respects_precedence() {
        let e = (Expr::num(1) + Expr::num(2)) * Expr::num(3);
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        let e = Expr::num(1) + Expr::num(2) * Expr::num(3);
        assert_eq!(e.to_string(), "1 + 2 * 3");
    }

    #[test]
    fn display_is_left_associative() {
        let e = Expr::num(1) - Expr::num(2) - Expr::num(3);
        assert_eq!(e.to_string(), "1 - 2 - 3");
        let e = Expr::num(1) - (Expr::num(2) - Expr::num(3));
        assert_eq!(e.to_string(), "1 - (2 - 3)");
    }

    #[test]
    fn display_references() {
        assert_eq!(Expr::eoi().to_string(), "EOI");
        assert_eq!(Expr::attr("H", "ofs").to_string(), "H.ofs");
        assert_eq!(Expr::elem("SH", Expr::local("i"), "sz").to_string(), "SH(i).sz");
        assert_eq!(Expr::end_of("A").to_string(), "A.end");
    }

    #[test]
    fn display_conditional_and_exists() {
        let e = Expr::local("x").gt(Expr::num(0)).cond(Expr::num(1), Expr::num(2));
        assert_eq!(e.to_string(), "x > 0 ? 1 : 2");
        let e = Expr::exists(
            "j",
            "OH",
            Expr::elem("OH", Expr::local("j"), "link").eq(Expr::local("i")),
            Expr::elem("OH", Expr::local("j"), "len"),
            Expr::num(-1),
        );
        assert_eq!(e.to_string(), "exists j in OH . OH(j).link = i ? OH(j).len : -1");
    }

    #[test]
    fn comparisons_display_with_paper_spelling() {
        let e = Expr::eoi().rem(Expr::num(3)).eq(Expr::num(0));
        assert_eq!(e.to_string(), "EOI % 3 = 0");
    }
}
