//! Programmatic construction of surface grammars.
//!
//! The textual frontend ([`crate::frontend`]) is the main way to write IPGs,
//! but tests, generators, and embedders often want to assemble a grammar in
//! Rust directly. [`GrammarBuilder`] collects rules; [`AltBuilder`] collects
//! the terms of one alternative.
//!
//! ```
//! use ipg_core::syntax::{AltBuilder, Expr, GrammarBuilder};
//!
//! // Fig. 1 of the paper: S -> A[0,2] B[EOI-2, EOI]; accepts "aa…bb".
//! let g = GrammarBuilder::new()
//!     .rule(
//!         "S",
//!         vec![AltBuilder::new()
//!             .symbol("A", Expr::num(0), Expr::num(2))
//!             .symbol("B", Expr::eoi() - Expr::num(2), Expr::eoi())
//!             .build()],
//!     )
//!     .rule(
//!         "A",
//!         vec![AltBuilder::new().terminal(b"aa", Expr::num(0), Expr::num(2)).build()],
//!     )
//!     .rule(
//!         "B",
//!         vec![AltBuilder::new().terminal(b"bb", Expr::num(0), Expr::num(2)).build()],
//!     )
//!     .build()?;
//! assert_eq!(g.start_nt_name(), "S");
//! # Ok::<(), ipg_core::Error>(())
//! ```

use super::{Alternative, Builtin, Expr, Grammar, Interval, Rule, RuleBody, SwitchCase, Term};
use crate::blackbox::Blackbox;

/// Builds a surface [`Grammar`] rule by rule.
#[derive(Clone, Debug, Default)]
pub struct GrammarBuilder {
    grammar: Grammar,
}

impl GrammarBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the start nonterminal (defaults to the first rule added).
    pub fn start(mut self, name: &str) -> Self {
        self.grammar.start = Some(name.to_owned());
        self
    }

    /// Adds a rule `name -> alts[0] / alts[1] / …`.
    pub fn rule(mut self, name: &str, alts: Vec<Alternative>) -> Self {
        self.grammar.rules.push(Rule {
            name: name.to_owned(),
            body: RuleBody::Alts(alts),
            is_local: false,
        });
        self
    }

    /// Adds a *local* rule: one that inherits the attribute environment of
    /// the alternative invoking it (the paper's `where` clauses).
    pub fn local_rule(mut self, name: &str, alts: Vec<Alternative>) -> Self {
        self.grammar.rules.push(Rule {
            name: name.to_owned(),
            body: RuleBody::Alts(alts),
            is_local: true,
        });
        self
    }

    /// Adds a builtin leaf rule, e.g. `Int := u32le`.
    pub fn builtin(mut self, name: &str, builtin: Builtin) -> Self {
        self.grammar.rules.push(Rule {
            name: name.to_owned(),
            body: RuleBody::Builtin(builtin),
            is_local: false,
        });
        self
    }

    /// Adds a rule delegating to the blackbox parser registered under
    /// `blackbox_name` (see [`GrammarBuilder::register_blackbox`]).
    pub fn blackbox_rule(mut self, name: &str, blackbox_name: &str) -> Self {
        self.grammar.rules.push(Rule {
            name: name.to_owned(),
            body: RuleBody::Blackbox(blackbox_name.to_owned()),
            is_local: false,
        });
        self
    }

    /// Registers a blackbox parser implementation.
    pub fn register_blackbox(mut self, bb: Blackbox) -> Self {
        self.grammar.register_blackbox(bb);
        self
    }

    /// Finishes building, returning the raw surface grammar without
    /// checking it. Prefer [`GrammarBuilder::build`].
    pub fn build_unchecked(self) -> Grammar {
        self.grammar
    }

    /// Finishes building and runs attribute checking + lowering, yielding a
    /// parse-ready grammar.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Check`] or [`crate::Error::Grammar`] when the
    /// grammar is malformed (undefined references, cyclic attribute
    /// dependencies, duplicate or missing rules).
    pub fn build(self) -> crate::Result<crate::check::Grammar> {
        crate::check::check(self.grammar)
    }
}

/// Builds one [`Alternative`] term by term. All methods are consuming so
/// alternatives can be assembled in a single expression.
#[derive(Clone, Debug, Default)]
pub struct AltBuilder {
    terms: Vec<Term>,
}

impl AltBuilder {
    /// Creates an empty alternative (which accepts any input and defines no
    /// attributes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `name[lo, hi]`.
    pub fn symbol(mut self, name: &str, lo: Expr, hi: Expr) -> Self {
        self.terms.push(Term::Symbol { name: name.to_owned(), interval: Interval::new(lo, hi) });
        self
    }

    /// Appends `"bytes"[lo, hi]`.
    pub fn terminal(mut self, bytes: &[u8], lo: Expr, hi: Expr) -> Self {
        self.terms.push(Term::Terminal { bytes: bytes.to_vec(), interval: Interval::new(lo, hi) });
        self
    }

    /// Appends an attribute definition `{name = expr}`.
    pub fn attr(mut self, name: &str, expr: Expr) -> Self {
        self.terms.push(Term::AttrDef { name: name.to_owned(), expr });
        self
    }

    /// Appends a predicate `⟨expr⟩`.
    pub fn pred(mut self, expr: Expr) -> Self {
        self.terms.push(Term::Predicate { expr });
        self
    }

    /// Appends `for var = from to to do name[lo, hi]`.
    pub fn array(
        mut self,
        var: &str,
        from: Expr,
        to: Expr,
        name: &str,
        lo: Expr,
        hi: Expr,
    ) -> Self {
        self.terms.push(Term::Array {
            var: var.to_owned(),
            from,
            to,
            name: name.to_owned(),
            interval: Interval::new(lo, hi),
        });
        self
    }

    /// Appends a switch term. `cases` are `(guard, nonterminal, lo, hi)`
    /// tried in order; `default` is `(nonterminal, lo, hi)`.
    pub fn switch(
        mut self,
        cases: Vec<(Expr, &str, Expr, Expr)>,
        default: (&str, Expr, Expr),
    ) -> Self {
        self.terms.push(Term::Switch {
            cases: cases
                .into_iter()
                .map(|(cond, name, lo, hi)| SwitchCase {
                    cond: Some(cond),
                    name: name.to_owned(),
                    interval: Interval::new(lo, hi),
                })
                .collect(),
            default: Box::new(SwitchCase {
                cond: None,
                name: default.0.to_owned(),
                interval: Interval::new(default.1, default.2),
            }),
        });
        self
    }

    /// Appends `star name[lo, hi]` — one-or-more repetition.
    pub fn star(mut self, name: &str, lo: Expr, hi: Expr) -> Self {
        self.terms.push(Term::Star { name: name.to_owned(), interval: Interval::new(lo, hi) });
        self
    }

    /// Appends an already-constructed term.
    pub fn term(mut self, term: Term) -> Self {
        self.terms.push(term);
        self
    }

    /// Finishes the alternative.
    pub fn build(self) -> Alternative {
        Alternative { terms: self.terms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_rules_in_order() {
        let g = GrammarBuilder::new()
            .rule("S", vec![AltBuilder::new().terminal(b"x", Expr::num(0), Expr::num(1)).build()])
            .builtin("Int", Builtin::U32Le)
            .build_unchecked();
        assert_eq!(g.rules.len(), 2);
        assert_eq!(g.rules[0].name, "S");
        assert!(matches!(g.rules[1].body, RuleBody::Builtin(Builtin::U32Le)));
        assert_eq!(g.start_name(), Some("S"));
    }

    #[test]
    fn local_rules_are_flagged() {
        let g = GrammarBuilder::new()
            .rule("S", vec![AltBuilder::new().symbol("D", Expr::num(0), Expr::eoi()).build()])
            .local_rule("D", vec![AltBuilder::new().build()])
            .build_unchecked();
        assert!(!g.rules[0].is_local);
        assert!(g.rules[1].is_local);
    }

    #[test]
    fn switch_builder_orders_cases() {
        let alt = AltBuilder::new()
            .switch(
                vec![(Expr::local("flag").eq(Expr::num(1)), "A", Expr::num(0), Expr::eoi())],
                ("B", Expr::num(0), Expr::num(0)),
            )
            .build();
        match &alt.terms[0] {
            Term::Switch { cases, default } => {
                assert_eq!(cases.len(), 1);
                assert_eq!(cases[0].name, "A");
                assert!(cases[0].cond.is_some());
                assert_eq!(default.name, "B");
                assert!(default.cond.is_none());
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }
}
