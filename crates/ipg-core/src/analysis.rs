//! Streamability analysis — the future-work direction sketched in §8 of
//! the paper:
//!
//! > "We can first have an analysis that determines if it is possible to
//! > generate a stream parser from an IPG: within each production rule, it
//! > checks if the attribute dependency is only from left to right."
//!
//! A grammar is *streamable* when a parser could consume the input
//! strictly left to right without random access or knowledge of the total
//! input length. Concretely, a rule is streamable when every alternative
//! satisfies:
//!
//! 1. **no reordering was needed** — the written term order already
//!    respects attribute dependencies (dependencies flow left to right);
//! 2. **no interval mentions `EOI`** — a stream parser does not know the
//!    input length (`EOI` in predicates/attributes is also flagged, since
//!    it is equally unavailable);
//! 3. **every interval is sequential** — each positional term starts
//!    exactly where the previous one ended (left endpoint `0` for the
//!    first term, `prev.end` or the previous terminal's right endpoint
//!    afterwards) and right endpoints are either a fixed offset or a
//!    length added to the left endpoint. Anything else (offsets computed
//!    from parsed data, backward references) requires seeking.
//!
//! The analysis is conservative: `streamable = true` means a left-to-right
//! single-pass parser exists for the rule shape; `false` means this
//! analysis could not prove it, with [`RuleStreamability::blockers`]
//! explaining why. The whole grammar is streamable when every rule
//! reachable from the start symbol is.

use crate::check::{CAlt, CExpr, CInterval, CRuleBody, CTermKind, Grammar, NtId};
use crate::env::wellknown;
use crate::syntax::BinOp;
use std::collections::HashSet;
use std::fmt;

/// Streamability verdict for a whole grammar.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Whether every rule reachable from the start symbol is streamable.
    pub streamable: bool,
    /// Per-rule verdicts (reachable rules only), in nonterminal order.
    pub rules: Vec<RuleStreamability>,
}

/// Streamability verdict for one rule.
#[derive(Clone, Debug)]
pub struct RuleStreamability {
    /// The nonterminal.
    pub name: String,
    /// Whether this rule's shape admits single-pass parsing.
    pub streamable: bool,
    /// Human-readable reasons when not streamable.
    pub blockers: Vec<String>,
}

/// Nonterminals reachable from the start symbol.
fn reachable_rules(grammar: &Grammar) -> HashSet<u32> {
    let mut reachable: HashSet<u32> = HashSet::new();
    let mut stack = vec![grammar.start_nt()];
    while let Some(nt) = stack.pop() {
        if !reachable.insert(nt.0) {
            continue;
        }
        if let CRuleBody::Alts(alts) = &grammar.rule(nt).body {
            for alt in alts {
                for term in &alt.terms {
                    match &term.kind {
                        CTermKind::Symbol { nt, .. }
                        | CTermKind::Array { nt, .. }
                        | CTermKind::Star { nt, .. } => stack.push(*nt),
                        CTermKind::Switch { cases } => {
                            stack.extend(cases.iter().map(|c| c.nt));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    reachable
}

/// Analyzes `grammar` for streamability (see the module docs).
pub fn stream_analysis(grammar: &Grammar) -> StreamReport {
    let reachable = reachable_rules(grammar);

    let mut rules = Vec::new();
    let mut all_ok = true;
    for nt in 0..grammar.nt_count() as u32 {
        if !reachable.contains(&nt) {
            continue;
        }
        let verdict = analyze_rule(grammar, NtId(nt));
        all_ok &= verdict.streamable;
        rules.push(verdict);
    }
    StreamReport { streamable: all_ok, rules }
}

fn analyze_rule(grammar: &Grammar, nt: NtId) -> RuleStreamability {
    let rule = grammar.rule(nt);
    let mut blockers = Vec::new();
    match &rule.body {
        CRuleBody::Builtin(b) => {
            // Fixed-width and digit-prefix builtins stream; `bytes`
            // consumes "the rest of the interval", which needs the length.
            if matches!(b, crate::syntax::Builtin::Bytes) {
                blockers.push("`bytes` consumes up to the interval end (needs length)".into());
            }
        }
        CRuleBody::Blackbox(_) => {
            blockers.push("blackbox parsers receive a length-bounded buffer".into())
        }
        CRuleBody::Alts(alts) => {
            for (i, alt) in alts.iter().enumerate() {
                analyze_alt(grammar, alt, i, &mut blockers);
            }
            // Biased choice with more than one alternative needs input
            // backtracking buffers; that is still streamable with a
            // bounded buffer, so it is reported but not a blocker.
        }
    }
    RuleStreamability {
        name: grammar.nt_name(nt).to_owned(),
        streamable: blockers.is_empty(),
        blockers,
    }
}

fn analyze_alt(grammar: &Grammar, alt: &CAlt, alt_index: usize, blockers: &mut Vec<String>) {
    // 1. Written order must equal evaluation order.
    let mut last = None;
    for term in &alt.terms {
        if let Some(prev) = last {
            if term.orig_index < prev {
                blockers.push(format!(
                    "alternative {alt_index}: terms were reordered (right-to-left \
                     attribute dependency)"
                ));
                break;
            }
        }
        last = Some(term.orig_index);
    }

    // 2./3. Interval shapes.
    //
    // We track the expected "current position" expression: position 0 at
    // the start; after a streamable term, the position is that term's
    // right end. A left endpoint must syntactically match the tracked
    // position; EOI anywhere is a blocker.
    let mut pos = PosShape::Zero;
    let mut ordered: Vec<&crate::check::CTerm> = alt.terms.iter().collect();
    ordered.sort_by_key(|t| t.orig_index);
    for term in ordered {
        match &term.kind {
            CTermKind::AttrDef { expr, .. } | CTermKind::Predicate { expr } => {
                if mentions_eoi(expr) {
                    blockers.push(format!(
                        "alternative {alt_index}: expression uses EOI (input length \
                         unknown to a stream parser)"
                    ));
                }
            }
            CTermKind::Symbol { nt, interval } | CTermKind::Star { nt, interval } => {
                check_interval(grammar, *nt, interval, &mut pos, alt_index, blockers);
            }
            CTermKind::Terminal { interval, .. } => {
                check_terminal_interval(interval, &mut pos, alt_index, blockers);
            }
            CTermKind::Array { interval, .. } => {
                // Arrays index by loop variable: streamable only when the
                // element interval is contiguous, which we conservatively
                // do not try to prove.
                if mentions_eoi(&interval.lo) || mentions_eoi(&interval.hi) {
                    blockers.push(format!("alternative {alt_index}: array interval uses EOI"));
                }
                blockers
                    .push(format!("alternative {alt_index}: array terms index by position (seek)"));
                pos = PosShape::Unknown;
            }
            CTermKind::Switch { cases } => {
                for case in cases {
                    let mut case_pos = pos.clone();
                    check_interval(
                        grammar,
                        case.nt,
                        &case.interval,
                        &mut case_pos,
                        alt_index,
                        blockers,
                    );
                }
                pos = PosShape::Unknown;
            }
        }
    }
}

/// The shape of "where the stream head is" after the terms seen so far.
#[derive(Clone, Debug, PartialEq)]
enum PosShape {
    /// At offset 0 (start of the rule's input).
    Zero,
    /// At a constant offset.
    Const(i64),
    /// Not tracked precisely; the next term must chain via `B.end`.
    Unknown,
}

fn check_interval(
    grammar: &Grammar,
    _nt: NtId,
    interval: &CInterval,
    pos: &mut PosShape,
    alt_index: usize,
    blockers: &mut Vec<String>,
) {
    let _ = grammar;
    // A right endpoint of *exactly* EOI means "the rest of the input" —
    // perfectly streamable (the callee decides how much to consume).
    // Arithmetic on EOI (EOI - 5, EOI / 3) needs the input length.
    let hi_is_plain_eoi = matches!(interval.hi, CExpr::Eoi);
    if mentions_eoi(&interval.lo) || (!hi_is_plain_eoi && mentions_eoi(&interval.hi)) {
        blockers.push(format!("alternative {alt_index}: interval uses EOI"));
        *pos = PosShape::Unknown;
        return;
    }
    if !lo_matches(&interval.lo, pos) {
        blockers.push(format!(
            "alternative {alt_index}: interval does not start at the stream position \
             (random access)"
        ));
        *pos = PosShape::Unknown;
        return;
    }
    // The right end becomes the new position when it is a constant;
    // otherwise the next term must continue via `B.end`, which
    // `lo_matches` accepts for any tracked position.
    *pos = match &interval.hi {
        CExpr::Num(n) => PosShape::Const(*n),
        _ => PosShape::Unknown,
    };
}

fn check_terminal_interval(
    interval: &CInterval,
    pos: &mut PosShape,
    alt_index: usize,
    blockers: &mut Vec<String>,
) {
    let hi_is_plain_eoi = matches!(interval.hi, CExpr::Eoi);
    if mentions_eoi(&interval.lo) || (!hi_is_plain_eoi && mentions_eoi(&interval.hi)) {
        blockers.push(format!("alternative {alt_index}: terminal interval uses EOI"));
        *pos = PosShape::Unknown;
        return;
    }
    if !lo_matches(&interval.lo, pos) {
        blockers.push(format!(
            "alternative {alt_index}: terminal does not start at the stream position"
        ));
        *pos = PosShape::Unknown;
        return;
    }
    *pos = match const_fold(&interval.hi) {
        Some(n) => PosShape::Const(n),
        None => PosShape::Unknown,
    };
}

/// Does the left endpoint syntactically continue from the tracked
/// position?
fn lo_matches(lo: &CExpr, pos: &PosShape) -> bool {
    // `B.end` continues from wherever B finished.
    if let CExpr::NtAttr { attr, .. } = lo {
        if *attr == wellknown::END {
            return true;
        }
    }
    match (const_fold(lo), pos) {
        (Some(0), PosShape::Zero) => true,
        (Some(n), PosShape::Const(c)) => n == *c,
        _ => false,
    }
}

/// Folds constant expressions (auto-completion produces shapes like
/// `0 + 6`, which must still read as sequential).
fn const_fold(e: &CExpr) -> Option<i64> {
    match e {
        CExpr::Num(n) => Some(*n),
        CExpr::Bin(op, a, b) => {
            let a = const_fold(a)?;
            let b = const_fold(b)?;
            match op {
                BinOp::Add => Some(a.wrapping_add(b)),
                BinOp::Sub => Some(a.wrapping_sub(b)),
                BinOp::Mul => Some(a.wrapping_mul(b)),
                BinOp::Div if b != 0 => Some(a.wrapping_div(b)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// What a streaming session must hold back before a grammar's parse can
/// run to completion — the per-grammar "anchor requirement" consumed by
/// [`crate::interp::vm::Session`].
///
/// `EOI` is the only construct that makes an IPG parse depend on input
/// that has not arrived yet: every other interval endpoint is computed
/// from already-parsed bytes. The classification is purely syntactic over
/// the rules reachable from the start symbol:
///
/// * **[`AnchorRequirement::Prefix`]** — no reachable expression mentions
///   `EOI` at all. The machine can run as bytes arrive and only the final
///   bookkeeping (the root's own `EOI`/`start` attributes) waits for
///   end-of-input.
/// * **[`AnchorRequirement::Suffix`]** — every `EOI` mention is an
///   interval endpoint of the shape `EOI - c` (constant `c ≥ 0`, plain
///   `EOI` being `c = 0`). The parse is anchored a bounded distance from
///   the end: nothing that consults `EOI` can run before the final
///   `k = max c` bytes (and with them the total length) are known, but
///   everything else streams.
/// * **[`AnchorRequirement::FullLength`]** — `EOI` feeds attribute or
///   predicate arithmetic (`EOI / 3`, `{n = EOI}`), so interval shapes
///   anywhere in the grammar can depend on the total length; the session
///   must hold the whole input before those rules run.
///
/// The analysis is conservative in the same direction as
/// [`stream_analysis`]: it may over-require (classify a streamable
/// grammar as `FullLength`) but never under-requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnchorRequirement {
    /// No reachable rule consults `EOI`.
    Prefix,
    /// `EOI` appears only as `EOI - c` interval endpoints; `k` is the
    /// largest such `c` (the final `k` bytes anchor the parse).
    Suffix {
        /// Maximum constant distance from the end used as an anchor.
        k: usize,
    },
    /// `EOI` participates in general arithmetic; the full input length is
    /// required.
    FullLength,
}

impl AnchorRequirement {
    /// Whether the grammar can make parsing progress before end-of-input.
    pub fn is_prefix_streamable(&self) -> bool {
        matches!(self, AnchorRequirement::Prefix)
    }
}

impl fmt::Display for AnchorRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnchorRequirement::Prefix => write!(f, "prefix-streamable"),
            AnchorRequirement::Suffix { k } => write!(f, "suffix-anchored (final {k} bytes)"),
            AnchorRequirement::FullLength => write!(f, "full-length"),
        }
    }
}

/// Computes the [`AnchorRequirement`] of `grammar` (see the enum docs).
pub fn anchor_requirement(grammar: &Grammar) -> AnchorRequirement {
    // A non-rule start symbol receives the whole input directly (builtins
    // read "their interval", which for the root is everything).
    if !matches!(grammar.rule(grammar.start_nt()).body, CRuleBody::Alts(_)) {
        return AnchorRequirement::FullLength;
    }
    let reachable = reachable_rules(grammar);
    let mut acc = AnchorRequirement::Prefix;
    for nt in 0..grammar.nt_count() as u32 {
        if !reachable.contains(&nt) {
            continue;
        }
        if let CRuleBody::Alts(alts) = &grammar.rule(NtId(nt)).body {
            for alt in alts {
                for term in &alt.terms {
                    anchor_of_term(&term.kind, &mut acc);
                    if acc == AnchorRequirement::FullLength {
                        return acc;
                    }
                }
            }
        }
    }
    acc
}

fn anchor_of_term(kind: &CTermKind, acc: &mut AnchorRequirement) {
    match kind {
        CTermKind::Symbol { interval, .. }
        | CTermKind::Terminal { interval, .. }
        | CTermKind::Star { interval, .. } => anchor_of_interval(interval, acc),
        CTermKind::AttrDef { expr, .. } | CTermKind::Predicate { expr } => {
            anchor_of_value_expr(expr, acc)
        }
        CTermKind::Array { from, to, interval, .. } => {
            anchor_of_value_expr(from, acc);
            anchor_of_value_expr(to, acc);
            anchor_of_interval(interval, acc);
        }
        CTermKind::Switch { cases } => {
            for case in cases {
                if let Some(cond) = &case.cond {
                    anchor_of_value_expr(cond, acc);
                }
                anchor_of_interval(&case.interval, acc);
            }
        }
    }
}

fn anchor_of_interval(interval: &CInterval, acc: &mut AnchorRequirement) {
    for endpoint in [&interval.lo, &interval.hi] {
        match eoi_anchor_distance(endpoint) {
            // No EOI in this endpoint: no requirement.
            Some(None) => {}
            // `EOI - c`: a suffix anchor `c` bytes from the end.
            Some(Some(c)) => bump_suffix(acc, c),
            // EOI in a non-anchor shape.
            None => *acc = AnchorRequirement::FullLength,
        }
    }
}

fn anchor_of_value_expr(e: &CExpr, acc: &mut AnchorRequirement) {
    if mentions_eoi(e) {
        *acc = AnchorRequirement::FullLength;
    }
}

fn bump_suffix(acc: &mut AnchorRequirement, k: usize) {
    match acc {
        AnchorRequirement::Prefix => *acc = AnchorRequirement::Suffix { k },
        AnchorRequirement::Suffix { k: cur } => *cur = (*cur).max(k),
        AnchorRequirement::FullLength => {}
    }
}

/// Classifies an interval endpoint with respect to `EOI`:
///
/// * `Some(None)` — the expression never mentions `EOI`;
/// * `Some(Some(c))` — the expression is `EOI - c` up to constant folding
///   (plain `EOI` is `c = 0`; `c < 0`, i.e. an endpoint past the end, is
///   reported as `c = 0` since it needs exactly the length);
/// * `None` — `EOI` appears in a shape that is not `EOI ± constant`.
fn eoi_anchor_distance(e: &CExpr) -> Option<Option<usize>> {
    if !mentions_eoi(e) {
        return Some(None);
    }
    match linear_eoi(e) {
        Some((1, c)) => Some(Some((-c).max(0) as usize)),
        _ => None,
    }
}

/// Folds `e` into `coeff * EOI + c` when it has that shape.
fn linear_eoi(e: &CExpr) -> Option<(i64, i64)> {
    match e {
        CExpr::Eoi => Some((1, 0)),
        CExpr::Num(n) => Some((0, *n)),
        CExpr::Bin(op, a, b) => {
            let (ca, ka) = linear_eoi(a)?;
            let (cb, kb) = linear_eoi(b)?;
            match op {
                BinOp::Add => Some((ca + cb, ka.wrapping_add(kb))),
                BinOp::Sub => Some((ca - cb, ka.wrapping_sub(kb))),
                BinOp::Mul if ca == 0 && cb == 0 => Some((0, ka.wrapping_mul(kb))),
                BinOp::Div if ca == 0 && cb == 0 && kb != 0 => Some((0, ka.wrapping_div(kb))),
                _ => None,
            }
        }
        // Anything else that reaches here mentions EOI in a shape we do
        // not fold (attributes, conditionals, …).
        _ => None,
    }
}

fn mentions_eoi(e: &CExpr) -> bool {
    match e {
        CExpr::Eoi => true,
        CExpr::Num(_) | CExpr::Local(_) => false,
        CExpr::Bin(_, a, b) => mentions_eoi(a) || mentions_eoi(b),
        CExpr::Cond(a, b, c) => mentions_eoi(a) || mentions_eoi(b) || mentions_eoi(c),
        CExpr::NtAttr { .. } | CExpr::OuterAttr { .. } => false,
        CExpr::ElemAttr { index, .. } | CExpr::OuterElem { index, .. } => mentions_eoi(index),
        CExpr::Exists { cond, then, els, .. } => {
            mentions_eoi(cond) || mentions_eoi(then) || mentions_eoi(els)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::parse_grammar;

    #[test]
    fn sequential_tlv_grammar_is_streamable() {
        let g = parse_grammar(
            r#"
            S -> Tag {t = Tag.val} Len {n = Len.val} Body[n] "!"[Body.end, Body.end + 1];
            Tag := u8;
            Len := u16be;
            Body := bytes;
            "#,
        )
        .unwrap();
        let report = stream_analysis(&g);
        // Body is `bytes` (length-bounded) — flagged on the Body rule, but
        // S itself is sequential.
        let s = report.rules.iter().find(|r| r.name == "S").unwrap();
        assert!(s.streamable, "blockers: {:?}", s.blockers);
    }

    #[test]
    fn random_access_grammar_is_not_streamable() {
        let g = parse_grammar(
            r#"
            S -> H[0, 8] Data[H.offset, H.offset + H.length];
            H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
            Int := u32le;
            Data := bytes;
            "#,
        )
        .unwrap();
        let report = stream_analysis(&g);
        assert!(!report.streamable);
        let s = report.rules.iter().find(|r| r.name == "S").unwrap();
        assert!(!s.streamable);
        assert!(s.blockers.iter().any(|b| b.contains("random access")), "{:?}", s.blockers);
    }

    #[test]
    fn plain_eoi_right_endpoint_is_streamable() {
        // `A[0, EOI]` just means "the rest of the input" — a stream parser
        // can hand that over without knowing the length.
        let g = parse_grammar(r#"S -> A[0, EOI]; A -> "x"[0, 1];"#).unwrap();
        let report = stream_analysis(&g);
        assert!(report.streamable, "{report:?}");
    }

    #[test]
    fn eoi_arithmetic_blocks_streaming() {
        // The a^n b^n c^n grammar needs the total length up front.
        let g = parse_grammar(r#"S -> {n = EOI / 3} A[0, n]; A -> "a"[0, 1];"#).unwrap();
        let report = stream_analysis(&g);
        let s = report.rules.iter().find(|r| r.name == "S").unwrap();
        assert!(!s.streamable);
        assert!(s.blockers.iter().any(|b| b.contains("EOI")), "{:?}", s.blockers);
    }

    #[test]
    fn backward_parsing_is_not_streamable() {
        let g = ipg_formats_pdf_like();
        let report = stream_analysis(&g);
        assert!(!report.streamable);
    }

    fn ipg_formats_pdf_like() -> Grammar {
        parse_grammar(
            r#"
            S -> "%%EOF"[EOI - 5, EOI] Head[0, 5];
            Head := bytes;
            "#,
        )
        .unwrap()
    }

    #[test]
    fn completion_artifacts_are_const_folded() {
        // Auto-completion writes shapes like `0 + 6`; the analysis must
        // still read the sequence "magic"[0, 0+6] A[0+6+…] as sequential.
        let g = parse_grammar(r#"S -> "magic" "!" Tail; Tail -> "t"[0, 1];"#).unwrap();
        let report = stream_analysis(&g);
        assert!(report.streamable, "{report:?}");
    }

    #[test]
    fn star_terms_participate_in_the_analysis() {
        let g = parse_grammar(
            r#"
            S -> star Item;
            Item -> "R"[0, 1] Len[1, 2] {n = Len.val} Body[2, 2 + n];
            Len := u8;
            Body := bytes;
            "#,
        )
        .unwrap();
        let report = stream_analysis(&g);
        let s = report.rules.iter().find(|r| r.name == "S").unwrap();
        assert!(s.streamable, "star over sequential items streams: {:?}", s.blockers);
    }

    #[test]
    fn unreachable_rules_are_ignored() {
        let g = parse_grammar(
            r#"
            S -> "x"[0, 1];
            Dead -> A[0, EOI];
            A -> "y"[0, 1];
            "#,
        )
        .unwrap();
        let report = stream_analysis(&g);
        assert!(report.streamable, "Dead is unreachable from S");
        assert!(report.rules.iter().all(|r| r.name != "Dead"));
    }

    #[test]
    fn anchor_requirement_prefix_for_closed_grammars() {
        // Every interval is written out and closed; nothing consults EOI.
        // (Implicit intervals would not do: auto-completion writes plain
        // `EOI` right endpoints, which classify as `Suffix { k: 0 }`.)
        let g = parse_grammar(
            r#"
            S -> Tag[0, 1] {t = Tag.val} Len[1, 3] {n = Len.val} Body[3, 3 + n];
            Tag := u8;
            Len := u16be;
            Body := bytes;
            "#,
        )
        .unwrap();
        assert_eq!(anchor_requirement(&g), AnchorRequirement::Prefix);
        assert!(anchor_requirement(&g).is_prefix_streamable());
    }

    #[test]
    fn anchor_requirement_suffix_distance_is_the_max_constant() {
        // `%%EOF` trailer 5 bytes from the end, plus a plain-EOI interval:
        // the grammar is anchored by its final 5 bytes.
        let g = parse_grammar(
            r#"
            S -> "%%EOF"[EOI - 5, EOI] Head[0, EOI - 5];
            Head := bytes;
            "#,
        )
        .unwrap();
        assert_eq!(anchor_requirement(&g), AnchorRequirement::Suffix { k: 5 });
        assert!(!anchor_requirement(&g).is_prefix_streamable());
    }

    #[test]
    fn anchor_requirement_plain_eoi_is_a_zero_suffix() {
        let g = parse_grammar(r#"S -> A[0, EOI]; A -> "x"[0, 1];"#).unwrap();
        assert_eq!(anchor_requirement(&g), AnchorRequirement::Suffix { k: 0 });
    }

    #[test]
    fn anchor_requirement_eoi_arithmetic_needs_the_full_length() {
        // a^n b^n c^n: interval widths are EOI / 3.
        let g = parse_grammar(r#"S -> {n = EOI / 3} A[0, n]; A -> "a"[0, 1];"#).unwrap();
        assert_eq!(anchor_requirement(&g), AnchorRequirement::FullLength);
    }

    #[test]
    fn anchor_requirement_ignores_unreachable_rules() {
        let g = parse_grammar(
            r#"
            S -> "x"[0, 1];
            Dead -> A[EOI - 1, EOI];
            A -> "y"[0, 1];
            "#,
        )
        .unwrap();
        assert_eq!(anchor_requirement(&g), AnchorRequirement::Prefix);
    }

    #[test]
    fn reordered_dependencies_block_streaming() {
        // Forward reference forces reordering → right-to-left dependency.
        let g = parse_grammar(
            r#"
            S -> B1[0, B2.a] B2[2, 4] / "x"[0, 1];
            B1 := bytes;
            B2 -> Int[0, 2] {a = Int.val};
            Int := u16le;
            "#,
        )
        .unwrap();
        let report = stream_analysis(&g);
        let s = report.rules.iter().find(|r| r.name == "S").unwrap();
        assert!(!s.streamable);
        assert!(s.blockers.iter().any(|b| b.contains("reordered")), "{:?}", s.blockers);
    }
}
